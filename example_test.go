package adaudit_test

// Godoc examples for the public API. They compile with the package's tests;
// none declare expected output because the simulation results depend on the
// machine-independent but verbose seeded world.

import (
	"fmt"
	"log"
	"os"

	adaudit "github.com/adaudit/impliedidentity"
)

// ExampleNewLab builds the simulated world and reproduces the paper's
// Campaign 1, printing Table 4a next to the published coefficients.
func ExampleNewLab() {
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 1, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	res, err := lab.RunStockExperiment(adaudit.StockExperimentOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adaudit.FormatTable4(res.Table4, "a"))
}

// ExampleLab_RunFigure1 reproduces the paper's headline two-ad contrast.
func ExampleLab_RunFigure1() {
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 1, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	pipeline, err := adaudit.NewSyntheticPipeline(2000, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lab.RunFigure1(pipeline, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adaudit.FormatFigure1(res))
}

// ExampleAuditPower sizes an audit before spending anything: how many image
// pairs does detecting a 5-point skew take at 95% power?
func ExampleAuditPower() {
	design := adaudit.PowerOptions{
		Delta:            0.05,
		BaseRate:         0.55,
		ImpressionsPerAd: 180,
	}
	pairs, err := adaudit.MinimumPairs(design, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	design.Pairs = pairs
	power, err := adaudit.AuditPower(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d pairs -> %.1f%% power\n", pairs, 100*power)
	// Output: 15 pairs -> 95.8% power
}

// ExampleWriteDeliveriesCSV exports per-ad measurements for downstream
// analysis.
func ExampleWriteDeliveriesCSV() {
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 1, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	res, err := lab.RunStockExperiment(adaudit.StockExperimentOptions{Seed: 2, PerPerson: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := adaudit.WriteDeliveriesCSV(os.Stdout, res.Deliveries[:1]); err != nil {
		log.Fatal(err)
	}
}
