package adaudit

// End-to-end tests through the public facade only — the API surface a
// downstream user of the library sees.

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	lab, pipe := benchWorld(t) // reuse the shared world fixture
	res := benchStockResultT(t, lab)

	// Formatting surfaces.
	if out := FormatTable3(res.Table3); !strings.Contains(out, "race:black") {
		t.Errorf("FormatTable3:\n%s", out)
	}
	if out := FormatTable4(res.Table4, "a"); !strings.Contains(out, "Intercept") {
		t.Errorf("FormatTable4:\n%s", out)
	}
	if out := FormatFigure3(res.Deliveries, "Figure 3"); !strings.Contains(out, "child") {
		t.Errorf("FormatFigure3:\n%s", out)
	}
	if out := FormatFigure4(Figure4(res.Deliveries)); !strings.Contains(out, "teen") {
		t.Errorf("FormatFigure4:\n%s", out)
	}
	row := SummarizeCampaign(res.Run, "Stock", "§5.2")
	if out := FormatTable2([]Table2Row{row}); !strings.Contains(out, "Stock") {
		t.Errorf("FormatTable2:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteDeliveriesCSV(&buf, res.Deliveries); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "frac_black") {
		t.Error("CSV missing header")
	}

	// Figure 1 through the facade.
	fig1, err := lab.RunFigure1(pipe, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFigure1(fig1); !strings.Contains(out, "white delivery") {
		t.Errorf("FormatFigure1:\n%s", out)
	}
}

// benchStockResultT adapts the benchmark fixture for tests.
func benchStockResultT(t *testing.T, lab *Lab) *StockResult {
	t.Helper()
	benchStockOnce.Do(func() {
		res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 1002})
		if err != nil {
			panic(err)
		}
		benchStock = res
	})
	return benchStock
}

func TestScaleConstantsDistinct(t *testing.T) {
	if ScaleTest == ScaleBench || ScaleBench == ScaleFull {
		t.Error("scale constants must be distinct")
	}
}
