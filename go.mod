module github.com/adaudit/impliedidentity

go 1.22
