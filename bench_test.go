package adaudit

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation (regenerating the artifact end to end), plus the five ablation
// benches DESIGN.md calls out (A1-A5). Benchmarks report the artifact's
// headline quantity as a custom metric so `go test -bench` output doubles as
// a compact reproduction summary.
//
// Scale: the shared world is built once at ScaleTest so a full -bench=. run
// stays in the minutes range; the CLI (`adaudit -scale full run all`)
// regenerates everything at paper-comparable scale.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

var (
	benchOnce sync.Once
	benchLab  *Lab
	benchPipe *SyntheticPipeline
)

func benchWorld(tb testing.TB) (*Lab, *SyntheticPipeline) {
	tb.Helper()
	benchOnce.Do(func() {
		lab, err := NewLab(LabConfig{Seed: 1000, Scale: ScaleTest})
		if err != nil {
			panic(err)
		}
		pipe, err := NewSyntheticPipeline(2000, 1001)
		if err != nil {
			panic(err)
		}
		benchLab, benchPipe = lab, pipe
	})
	return benchLab, benchPipe
}

var (
	benchStockOnce sync.Once
	benchStock     *StockResult
)

func benchStockResult(b *testing.B) *StockResult {
	b.Helper()
	lab, _ := benchWorld(b)
	benchStockOnce.Do(func() {
		res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 1002})
		if err != nil {
			panic(err)
		}
		benchStock = res
	})
	return benchStock
}

// BenchmarkTable1Stratification regenerates Table 1: stratified balanced
// sampling from both registries.
func BenchmarkTable1Stratification(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl, nc := lab.BalancedSamples(lab.Config.Scale.PerCell(), int64(i))
		rows := core.Table1(fl, nc)
		if len(rows) != 6 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTable2Campaigns regenerates the Table 2 ledger row for the stock
// campaign.
func BenchmarkTable2Campaigns(b *testing.B) {
	res := benchStockResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := SummarizeCampaign(res.Run, "Stock", "§5.2")
		if row.Ads == 0 {
			b.Fatal("empty row")
		}
	}
}

// BenchmarkTable3StockDelivery regenerates Table 3 end to end: a full
// 200-ad stock campaign plus aggregation.
func BenchmarkTable3StockDelivery(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 2000 + int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		byGroup := map[string]Table3Row{}
		for _, r := range res.Table3 {
			byGroup[r.Group] = r
		}
		gap = byGroup["race:black"].FracBlack - byGroup["race:white"].FracBlack
	}
	b.ReportMetric(100*gap, "raceGapPts")
}

// BenchmarkFigure3Panels regenerates the Figure 3 panel series from the
// stock deliveries.
func BenchmarkFigure3Panels(b *testing.B) {
	res := benchStockResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := FormatFigure3(res.Deliveries, "Figure 3")
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable4aRegression regenerates the Table 4a fits.
func BenchmarkTable4aRegression(b *testing.B) {
	res := benchStockResult(b)
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		t4, err := core.RegressTable4(res.Deliveries, core.AgeTarget65Plus)
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = t4.Black.Coefficient("Black")
	}
	b.ReportMetric(coef, "blackCoef")
}

// BenchmarkTable4bRegression regenerates Table 4b end to end: the
// age-capped campaign plus its regression.
func BenchmarkTable4bRegression(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 3000 + int64(i), AgeMax: 45, BudgetCents: 350})
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = res.Table4.Black.Coefficient("Black")
	}
	b.ReportMetric(coef, "blackCoef")
}

// BenchmarkFigure4OlderAudience regenerates the Figure 4 series.
func BenchmarkFigure4OlderAudience(b *testing.B) {
	res := benchStockResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := Figure4(res.Deliveries)
		if len(pts) != 5 {
			b.Fatal("bad figure 4")
		}
	}
}

// BenchmarkFigure6LatentSweep regenerates the Figure 6 grid: tune one
// source face to all 20 demographic combinations.
func BenchmarkFigure6LatentSweep(b *testing.B) {
	_, pipe := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specs, err := pipe.SyntheticSpecs(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(specs) != 20 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkTable4cRegression and BenchmarkFigure5Synthetic regenerate
// Campaign 3 (synthetic faces) and its analyses.
func BenchmarkTable4cRegression(b *testing.B) {
	lab, pipe := benchWorld(b)
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		specs, err := pipe.SyntheticSpecs(3)
		if err != nil {
			b.Fatal(err)
		}
		auds, err := lab.DefaultSplitAudiences("bench-syn", 4000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		run, err := lab.RunPairedCampaign(CampaignConfig{
			Name: "bench synthetic", BudgetCents: 200, AgeMax: 44, Seed: 4100 + int64(i),
		}, specs, auds)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := MeasureCampaign(run)
		if err != nil {
			b.Fatal(err)
		}
		t4, err := core.RegressTable4(ds, core.AgeTarget35Plus)
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = t4.Black.Coefficient("Black")
	}
	b.ReportMetric(coef, "blackCoef")
}

// BenchmarkFigure5Synthetic regenerates the Figure 5 panels from a synthetic
// campaign (smaller: one source person).
func BenchmarkFigure5Synthetic(b *testing.B) {
	lab, pipe := benchWorld(b)
	specs, err := pipe.SyntheticSpecs(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auds, err := lab.DefaultSplitAudiences("bench-fig5", 5000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		run, err := lab.RunPairedCampaign(CampaignConfig{
			Name: "bench fig5", BudgetCents: 200, AgeMax: 44, Seed: 5100 + int64(i),
		}, specs, auds)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := MeasureCampaign(run)
		if err != nil {
			b.Fatal(err)
		}
		if out := FormatFigure3(ds, "Figure 5"); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure1JobAdPair regenerates the Figure 1 contrast.
func BenchmarkFigure1JobAdPair(b *testing.B) {
	lab, pipe := benchWorld(b)
	b.ResetTimer()
	var contrast float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunFigure1(pipe, 6000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		contrast = res.WhiteImageFracWhite - res.BlackImageFracWhite
	}
	b.ReportMetric(100*contrast, "whiteDeliveryGapPts")
}

var (
	benchEmpOnce sync.Once
	benchEmp     *EmploymentResult
)

func benchEmployment(b *testing.B) *EmploymentResult {
	b.Helper()
	lab, pipe := benchWorld(b)
	benchEmpOnce.Do(func() {
		res, err := lab.RunEmploymentExperiment(EmploymentExperimentOptions{Seed: 7000, Pipeline: pipe})
		if err != nil {
			panic(err)
		}
		benchEmp = res
	})
	return benchEmp
}

// BenchmarkFigure7Employment regenerates Campaign 4 and the Figure 7 panels.
func BenchmarkFigure7Employment(b *testing.B) {
	lab, pipe := benchWorld(b)
	b.ResetTimer()
	var congruent float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunEmploymentExperiment(EmploymentExperimentOptions{Seed: 7100 + int64(i), Pipeline: pipe})
		if err != nil {
			b.Fatal(err)
		}
		congruent = core.CongruentRaceShare(res.RacePanel)
	}
	b.ReportMetric(100*congruent, "congruentSharePct")
}

// BenchmarkTable5MixedEffects regenerates the Table 5 fits.
func BenchmarkTable5MixedEffects(b *testing.B) {
	res := benchEmployment(b)
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		t5, err := core.RegressTable5(res.Deliveries)
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = t5.RaceOverall.Coefficient("Implied: Black")
	}
	b.ReportMetric(coef, "raceCoefIII")
}

// BenchmarkTableA1PovertyControl regenerates the Appendix A experiment.
func BenchmarkTableA1PovertyControl(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunPovertyExperiment(PovertyExperimentOptions{Seed: 8000 + int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = res.TableA1.Coefficient("Black")
	}
	b.ReportMetric(coef, "blackCoef")
}

// BenchmarkFigure2RaceInference regenerates the E11 methodology validation.
func BenchmarkFigure2RaceInference(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var mae float64
	for i := 0; i < b.N; i++ {
		res, err := lab.ValidateRaceInference(2, 9000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		mae = res.MeanAbsError
	}
	b.ReportMetric(100*mae, "inferenceErrPts")
}

// Ablation benches (DESIGN.md A1-A5) -------------------------------------

// BenchmarkAblationNoEAR: delivery optimization off; the race coefficient
// must collapse.
func BenchmarkAblationNoEAR(b *testing.B) {
	b.ResetTimer()
	var coef float64
	for i := 0; i < b.N; i++ {
		lab, err := NewLab(LabConfig{Seed: 10000 + int64(i), Scale: ScaleTest, DisableEAR: true})
		if err != nil {
			b.Fatal(err)
		}
		res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 10100 + int64(i)})
		lab.Close()
		if err != nil {
			b.Fatal(err)
		}
		coef, _ = res.Table4.Black.Coefficient("Black")
	}
	b.ReportMetric(coef, "blackCoefNoEAR")
}

// BenchmarkAblationAffinity: the Table 4 race coefficient scales with the
// behaviour model's affinity strength.
func BenchmarkAblationAffinity(b *testing.B) {
	b.ResetTimer()
	var lowC, highC float64
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{0.5, 1.5} {
			cfg := population.DefaultBehaviorConfig()
			cfg.AffinityScale = scale
			lab, err := NewLab(LabConfig{Seed: 11000 + int64(i), Scale: ScaleTest, Behavior: cfg})
			if err != nil {
				b.Fatal(err)
			}
			res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 11100 + int64(i)})
			lab.Close()
			if err != nil {
				b.Fatal(err)
			}
			c, _ := res.Table4.Black.Coefficient("Black")
			if scale < 1 {
				lowC = c
			} else {
				highC = c
			}
		}
	}
	b.ReportMetric(lowC, "blackCoefHalf")
	b.ReportMetric(highC, "blackCoef1p5")
}

// BenchmarkAblationRegionGranularity: state-level splits leak <1% of
// impressions; DMA-level travel leaks an order of magnitude more.
func BenchmarkAblationRegionGranularity(b *testing.B) {
	b.ResetTimer()
	var stateLeak, dmaLeak float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			prob float64
			dst  *float64
		}{{0.004, &stateLeak}, {0.12, &dmaLeak}} {
			lab, err := NewLab(LabConfig{Seed: 12000 + int64(i), Scale: ScaleTest, TravelProb: tc.prob})
			if err != nil {
				b.Fatal(err)
			}
			res, err := lab.ValidateRaceInference(1, 12100+int64(i))
			lab.Close()
			if err != nil {
				b.Fatal(err)
			}
			*tc.dst = res.MeanOutOfState
		}
	}
	b.ReportMetric(100*stateLeak, "stateLeakPct")
	b.ReportMetric(100*dmaLeak, "dmaLeakPct")
}

// BenchmarkAblationReversedCopies: the two-copy aggregation cancels an
// injected location confounder.
func BenchmarkAblationReversedCopies(b *testing.B) {
	b.ResetTimer()
	var mae float64
	for i := 0; i < b.N; i++ {
		lab, err := NewLab(LabConfig{Seed: 13000 + int64(i), Scale: ScaleTest, FLActivityBoost: 1.5})
		if err != nil {
			b.Fatal(err)
		}
		res, err := lab.ValidateRaceInference(1, 13100+int64(i))
		lab.Close()
		if err != nil {
			b.Fatal(err)
		}
		mae = res.MeanAbsError
	}
	b.ReportMetric(100*mae, "confoundedErrPts")
}

// BenchmarkAblationPacing: budget utilisation with the pacing controller vs
// greedy spend.
func BenchmarkAblationPacing(b *testing.B) {
	b.ResetTimer()
	var paced, greedy float64
	for i := 0; i < b.N; i++ {
		for _, g := range []bool{false, true} {
			lab, err := NewLab(LabConfig{Seed: 14000 + int64(i), Scale: ScaleTest, GreedyPacing: g})
			if err != nil {
				b.Fatal(err)
			}
			res, err := lab.RunStockExperiment(StockExperimentOptions{Seed: 14100 + int64(i), PerPerson: 1})
			lab.Close()
			if err != nil {
				b.Fatal(err)
			}
			util := res.Run.TotalSpendCents() / float64(200*res.Run.AdCount())
			if g {
				greedy = util
			} else {
				paced = util
			}
		}
	}
	b.ReportMetric(100*paced, "pacedBudgetUtilPct")
	b.ReportMetric(100*greedy, "greedyBudgetUtilPct")
}

// Substrate micro-benchmarks ----------------------------------------------

// BenchmarkVoterGeneration measures synthetic registry generation.
func BenchmarkVoterGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := voter.DefaultGeneratorConfig(demo.StateFL, int64(i))
		cfg.NumVoters = 10000
		if _, err := voter.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryCSV measures the CSV emitter.
func BenchmarkDeliveryCSV(b *testing.B) {
	res := benchStockResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteDeliveriesCSV(io.Discard, res.Deliveries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuctionDay measures one full delivery day for a two-ad pair —
// the simulator's hot loop.
func BenchmarkAuctionDay(b *testing.B) {
	lab, pipe := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunFigure1(pipe, 15100+int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel delivery benches ------------------------------------------------

var (
	benchDelivOnce sync.Once
	benchDelivPlat *platform.Platform
	benchDelivCA   string
)

// benchDeliveryWorld builds a dedicated platform (review rejection off, so
// every created ad is active) over the shared bench population, plus one
// balanced custom audience, reused by every worker-count sub-benchmark.
func benchDeliveryWorld(b *testing.B) (*platform.Platform, string) {
	b.Helper()
	lab, _ := benchWorld(b)
	benchDelivOnce.Do(func() {
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		cfg := platform.DefaultConfig(21001)
		cfg.Training.LogRows = 12000
		cfg.ReviewRejectProb = 0
		p, err := platform.New(cfg, lab.Pop, behave)
		if err != nil {
			panic(err)
		}
		fl, nc := lab.BalancedSamples(60, 21002)
		var hashes []string
		for _, sample := range [][]voter.Record{fl, nc} {
			for i := range sample {
				r := &sample[i]
				hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
			}
		}
		ca, err := p.CreateCustomAudience("bench-delivery", hashes)
		if err != nil {
			panic(err)
		}
		benchDelivPlat, benchDelivCA = p, ca.ID
	})
	return benchDelivPlat, benchDelivCA
}

// benchDeliveryAdSet creates a fresh four-ad campaign (budgets far above the
// market's spend ceiling, as in the differential suite's golden scenarios)
// and returns the ad IDs in creation order.
func benchDeliveryAdSet(b *testing.B, p *platform.Platform, caID string) []string {
	b.Helper()
	cmp, err := p.CreateCampaign("bench-delivery", platform.ObjectiveTraffic, platform.SpecialNone, 2019)
	if err != nil {
		b.Fatal(err)
	}
	targeting := platform.Targeting{CustomAudienceIDs: []string{caID}}
	ids := make([]string, 0, 4)
	for _, prof := range []demo.Profile{
		{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
		{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
		{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
		{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
	} {
		creative := platform.Creative{Image: image.FromProfile(prof), Headline: "h", LinkURL: "https://example.com"}
		ad, err := p.CreateAd(cmp.ID, creative, targeting, 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, ad.ID)
	}
	return ids
}

// benchDeliveryDigest canonicalizes the ads' delivery reports (IDs
// normalized to creation order, map cells sorted) and folds the SHA-256 into
// a float-exact 32-bit value, reported as the `digest` metric so CI can
// diff two runs' outputs straight from the -bench output.
func benchDeliveryDigest(b *testing.B, p *platform.Platform, ids []string) float64 {
	b.Helper()
	h := sha256.New()
	for i, id := range ids {
		st, err := p.Insights(id)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(h, "ad#%d|%d|%d|%d|%.6f|%v|", i, st.Impressions, st.Reach, st.Clicks, st.SpendCents, st.HourlySeries)
		cells := make([]platform.BreakdownKey, 0, len(st.Breakdown))
		for k := range st.Breakdown {
			cells = append(cells, k)
		}
		sort.Slice(cells, func(a, c int) bool {
			ka, kc := cells[a], cells[c]
			if ka.Age != kc.Age {
				return ka.Age < kc.Age
			}
			if ka.Gender != kc.Gender {
				return ka.Gender < kc.Gender
			}
			return ka.Region < kc.Region
		})
		for _, k := range cells {
			fmt.Fprintf(h, "%d/%d/%d=%d|", k.Age, k.Gender, k.Region, st.Breakdown[k])
		}
		races := make([]demo.Race, 0, len(st.RaceOracle))
		for r := range st.RaceOracle {
			races = append(races, r)
		}
		sort.Slice(races, func(a, c int) bool { return races[a] < races[c] })
		for _, r := range races {
			fmt.Fprintf(h, "r%d=%d|", r, st.RaceOracle[r])
		}
	}
	sum := h.Sum(nil)
	return float64(binary.BigEndian.Uint32(sum[:4]))
}

// BenchmarkDeliveryWorkers measures one full delivery day (fresh ad set per
// iteration) at each shard count. The `digest` metric fingerprints the
// delivery output: it must be identical between repeated runs at the same
// worker count (the CI bench-smoke job enforces this), and workers=1 must
// match the sequential engine by the differential suite's construction.
func BenchmarkDeliveryWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, caID := benchDeliveryWorld(b)
			b.ResetTimer()
			var digest float64
			for i := 0; i < b.N; i++ {
				ids := benchDeliveryAdSet(b, p, caID)
				if err := p.RunDayWorkers(ids, 21500, workers); err != nil {
					b.Fatal(err)
				}
				digest = benchDeliveryDigest(b, p, ids)
			}
			b.ReportMetric(digest, "digest")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// Extension benches (DESIGN.md E13-E15) -----------------------------------

// BenchmarkExtensionObjectives regenerates the E13 objective comparison.
func BenchmarkExtensionObjectives(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var awarenessGap, trafficGap float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunObjectiveComparison(16000 + 100*int64(i))
		if err != nil {
			b.Fatal(err)
		}
		awarenessGap = res.Gaps[0].RaceGap
		trafficGap = res.Gaps[1].RaceGap
	}
	b.ReportMetric(100*awarenessGap, "awarenessGapPts")
	b.ReportMetric(100*trafficGap, "trafficGapPts")
}

// BenchmarkExtensionGroupPhotos regenerates the E14 group-photo experiment.
func BenchmarkExtensionGroupPhotos(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var pairFrac float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunGroupPhotoExperiment(17000 + 10*int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pairFrac = res.DiversePair.FracBlack
	}
	b.ReportMetric(100*pairFrac, "pairBlackPct")
}

// BenchmarkExtensionLookalike regenerates the E15 lookalike experiment.
func BenchmarkExtensionLookalike(b *testing.B) {
	lab, _ := benchWorld(b)
	b.ResetTimer()
	var lift float64
	for i := 0; i < b.N; i++ {
		res, err := lab.RunLookalikeExperiment(1200, 1500, 18000+10*int64(i))
		if err != nil {
			b.Fatal(err)
		}
		lift = res.Lift()
	}
	b.ReportMetric(lift, "liftPts")
}

// BenchmarkExtensionFeedback regenerates the E16 feedback-loop experiment
// (two rounds on a dedicated world — retraining mutates the platform).
func BenchmarkExtensionFeedback(b *testing.B) {
	b.ResetTimer()
	var finalCoef float64
	for i := 0; i < b.N; i++ {
		lab, err := NewLab(LabConfig{Seed: 19000 + int64(i), Scale: ScaleTest})
		if err != nil {
			b.Fatal(err)
		}
		res, err := lab.RunFeedbackLoop(2, 19100+int64(i))
		lab.Close()
		if err != nil {
			b.Fatal(err)
		}
		finalCoef = res.Rounds[len(res.Rounds)-1].BlackCoef
	}
	b.ReportMetric(finalCoef, "finalBlackCoef")
}
