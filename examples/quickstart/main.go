// Quickstart: reproduce the paper's Figure 1 — two identical lumber job ads
// whose only difference is whether the pictured man is white or Black, run
// at the same time with the same budget against the same balanced audience.
// The delivery algorithm routes them to starkly different racial audiences.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	adaudit "github.com/adaudit/impliedidentity"
)

func main() {
	fmt.Println("Building the simulated world (registries, population, trained platform)...")
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 42, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	fmt.Printf("Marketing API is live at %s\n\n", lab.URL())

	fmt.Println("Generating two synthetic faces (same person, different implied race)...")
	pipeline, err := adaudit.NewSyntheticPipeline(2000, 43)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Running the two-ad campaign for one simulated day...")
	res, err := lab.RunFigure1(pipeline, 44)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(adaudit.FormatFigure1(res))
	fmt.Println()
	fmt.Println("Same budget, same audience, same time — the only difference is the face.")
}
