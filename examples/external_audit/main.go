// External audit: the whole measurement pipeline driven by hand, the way an
// outside auditor would run it against a deployed platform server —
// without any of the core package's conveniences:
//
//  1. write voter extracts to disk and parse them back with the FL/NC
//     format readers (the files a real audit downloads from the states);
//  2. stratify a balanced sample and build the two race-split Custom
//     Audiences of Figure 2, uploading PII hashes over HTTP;
//  3. create two ads differing only in the pictured person's race, deliver
//     them for a day, and read the insights breakdowns;
//  4. compute the region-split race inference from the raw API responses.
//
// Run with:
//
//	go run ./examples/external_audit
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// --- the platform side: world + server (in production this is the
	// standalone `adplatform` binary) ---
	fmt.Println("Platform side: generating registries and training the delivery model...")
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 11)
	flCfg.NumVoters = 20000
	ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, 12)
	ncCfg.NumVoters = 20000
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return err
	}
	nc, err := voter.Generate(ncCfg)
	if err != nil {
		return err
	}
	pop, err := population.Build(population.Config{Seed: 13}, fl, nc)
	if err != nil {
		return err
	}
	behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
	if err != nil {
		return err
	}
	cfg := platform.DefaultConfig(14)
	cfg.Training.LogRows = 20000
	plat, err := platform.New(cfg, pop, behave)
	if err != nil {
		return err
	}
	srv, err := marketing.NewServer(plat)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("Marketing API live at", ts.URL)

	// --- the auditor side: everything below only touches voter files and
	// the HTTP API ---
	dir, err := os.MkdirTemp("", "voter-extracts")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	flPath := filepath.Join(dir, "fl.txt")
	f, err := os.Create(flPath)
	if err != nil {
		return err
	}
	if err := voter.WriteFL(f, fl.Records); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf, err := os.Open(flPath)
	if err != nil {
		return err
	}
	flRecords, err := voter.ParseFL(rf)
	rf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("Auditor side: parsed %d FL voter records from disk\n", len(flRecords))

	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		return err
	}
	client.SetMinInterval(5 * time.Millisecond) // polite, single-vantage collection

	rng := rand.New(rand.NewSource(15))
	flSample := voter.StratifiedSample(flRecords, 200, rng)
	ncSample := voter.StratifiedSample(nc.Records, 200, rng)
	hashes := func(records []voter.Record, race demo.Race) []string {
		var out []string
		for i := range records {
			r := &records[i]
			if r.Race == race {
				out = append(out, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
			}
		}
		return out
	}
	primary, err := client.CreateAudience(ctx, "FLwhite+NCblack",
		append(hashes(flSample, demo.RaceWhite), hashes(ncSample, demo.RaceBlack)...))
	if err != nil {
		return err
	}
	reversed, err := client.CreateAudience(ctx, "FLblack+NCwhite",
		append(hashes(flSample, demo.RaceBlack), hashes(ncSample, demo.RaceWhite)...))
	if err != nil {
		return err
	}
	fmt.Printf("Uploaded split audiences: %d and %d matched accounts\n", primary.MatchedSize, reversed.MatchedSize)

	cmp, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "external audit", Objective: "TRAFFIC"})
	if err != nil {
		return err
	}
	imgW := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgB := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	imgW.ApplyPresentationBias()
	imgB.ApplyPresentationBias()
	var adIDs []string
	type copyRef struct {
		id         string
		blackState string // which region counts as Black delivery
	}
	copies := map[string][]copyRef{}
	for _, spec := range []struct {
		key string
		img image.Features
	}{{"white-image", imgW}, {"black-image", imgB}} {
		for _, aud := range []struct {
			id         string
			blackState string
		}{{primary.ID, "NC"}, {reversed.ID, "FL"}} {
			ad, err := client.CreateAd(ctx, marketing.CreateAdRequest{
				CampaignID: cmp.ID,
				Creative: marketing.WireCreative{
					Image:    marketing.WireImageFrom(spec.img),
					Headline: "Considering a career in project management?",
					LinkURL:  "https://example.edu/guide",
				},
				Targeting:        marketing.WireTargeting{CustomAudienceIDs: []string{aud.id}},
				DailyBudgetCents: 400,
			})
			if err != nil {
				return err
			}
			adIDs = append(adIDs, ad.ID)
			copies[spec.key] = append(copies[spec.key], copyRef{id: ad.ID, blackState: aud.blackState})
		}
	}
	fmt.Println("Launching all copies simultaneously for one simulated day...")
	if err := client.Deliver(ctx, adIDs, 16); err != nil {
		return err
	}

	for _, key := range []string{"white-image", "black-image"} {
		var black, countable, total int
		for _, ref := range copies[key] {
			ins, err := client.Insights(ctx, ref.id)
			if err != nil {
				return err
			}
			total += ins.Impressions
			for _, row := range ins.Breakdown {
				switch row.Region {
				case "other":
					// Out-of-state impressions are discarded (§3.3).
				case ref.blackState:
					black += row.Impressions
					countable += row.Impressions
				default:
					countable += row.Impressions
				}
			}
		}
		fmt.Printf("  %-12s %5d impressions, %5.1f%% inferred Black delivery\n",
			key, total, 100*float64(black)/float64(countable))
	}
	fmt.Println("Identical targeting, budget, and timing — the difference is the algorithm.")
	return nil
}
