// Poverty control: the paper's Appendix A. Because of residential
// segregation, the Black voters in a balanced audience live in poorer ZIP
// codes than the white voters, so a skeptic could attribute race skews to
// economics. This example subsamples the audiences until ZIP-level poverty
// is identically distributed across every race×gender cell, re-runs the
// stock ads under the hostile review environment the authors hit (most ads
// rejected, appeals recover some), and fits the Table A1 regression on the
// survivors: the race effect persists.
//
// Run with:
//
//	go run ./examples/poverty_control
package main

import (
	"fmt"
	"log"

	adaudit "github.com/adaudit/impliedidentity"
)

func main() {
	fmt.Println("Building the simulated world...")
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 99, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	fmt.Println("Matching ZIP-poverty distributions across race×gender cells and re-running the ads...")
	res, err := lab.RunPovertyExperiment(adaudit.PovertyExperimentOptions{Seed: 100})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(adaudit.FormatPovertySummary(res))
	fmt.Println()
	fmt.Println("Regression on the surviving ads (race effect should persist):")
	fmt.Println(res.TableA1.String())
}
