// Employment audit: the paper's §6 "real-world ads" experiment. Eleven job
// categories are advertised with the same synthetic adult face composited
// onto job-specific backgrounds, in four implied-identity configurations
// (male/female × white/Black). The audit measures, per job, how the implied
// identity shifts the racial and gender makeup of who actually sees the ad —
// the employment-discrimination question that motivates the paper's policy
// discussion.
//
// Run with:
//
//	go run ./examples/employment_audit
package main

import (
	"fmt"
	"log"
	"os"

	adaudit "github.com/adaudit/impliedidentity"
)

func main() {
	fmt.Println("Building the simulated world...")
	lab, err := adaudit.NewLab(adaudit.LabConfig{Seed: 7, Scale: adaudit.ScaleTest})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	fmt.Println("Running Campaign 4: 11 jobs × 4 implied identities × 2 audience copies = 88 ads,")
	fmt.Println("flagged as EMPLOYMENT (special ad category: no age or gender targeting allowed)...")
	res, err := lab.RunEmploymentExperiment(adaudit.EmploymentExperimentOptions{
		Seed:             8,
		DiscoverySamples: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(adaudit.FormatFigure7(res.RacePanel, res.GenderPanel))
	fmt.Println()
	fmt.Print(adaudit.FormatTable5(res.Table5))

	// Dump the per-ad measurements for downstream analysis.
	f, err := os.Create("employment_deliveries.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := adaudit.WriteDeliveriesCSV(f, res.Deliveries); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPer-ad measurements written to employment_deliveries.csv")
}
