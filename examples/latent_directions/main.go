// Latent directions: the paper's §5.4 technique in isolation. Sample random
// faces from the generative network, label each with the Deepface-style
// classifier, fit one regression per demographic attribute on the flattened
// activation vectors, and then *edit* a face by walking the fitted
// directions — producing 20 demographic variants of the same synthetic
// person while holding everything else (lighting, pose, expression bank)
// nearly constant.
//
// Run with:
//
//	go run ./examples/latent_directions
package main

import (
	"fmt"
	"log"

	adaudit "github.com/adaudit/impliedidentity"
)

func main() {
	const samples = 5000
	fmt.Printf("Sampling %d faces and fitting latent directions (gender, race, age)...\n", samples)
	pipeline, err := adaudit.NewSyntheticPipeline(samples, 2024)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Generating the 20-variant grid for one source person...")
	specs, err := pipeline.SyntheticSpecs(1)
	if err != nil {
		log.Fatal(err)
	}

	var sweep []adaudit.SweepCell
	source := pipeline.Samples[0].Image
	fmt.Printf("source face: classifier reads it as %v\n\n", pipeline.Classifier.Profile(source))
	for _, spec := range specs {
		sweep = append(sweep, adaudit.SweepCell{
			Target:     spec.Profile,
			Classified: pipeline.Classifier.Profile(spec.Image),
		})
	}
	fmt.Print(adaudit.FormatFigure6(sweep))

	fmt.Println("\nInherited bias check (§5.4): the gender classifier partially keys on the")
	fmt.Printf("smile axis (weight %+.3f), so walking the 'female' latent direction also\n",
		pipeline.Classifier.SmileWeight())
	fmt.Println("introduces a more pronounced smile — exactly the caveat the paper reports.")
}
