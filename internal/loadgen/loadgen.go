// Package loadgen generates concurrent advertiser traffic against the
// marketing API. Real audit studies hammer the platform from many parallel
// campaigns (the paper ran 688 ads across parallel campaigns; Ali et al.'s
// "Discrimination through optimization" drove the Marketing API at scale
// under the same pacing constraints), so the load generator replays that
// shape as virtual-advertiser scenarios: upload a Custom Audience, create a
// campaign, create N ads, deliver, poll insights.
//
// Two driving disciplines are supported:
//
//   - closed loop: a fixed-size worker pool, each worker running scenarios
//     back to back — concurrency is constant, arrival rate adapts to
//     service time;
//   - open loop: scenarios arrive on a seeded Poisson process at a target
//     rate regardless of completions — the discipline that surfaces queueing
//     collapse, since slow responses do not slow the offered load.
//
// Everything the generator decides (audience membership, ad creatives,
// budgets, delivery seeds, arrival gaps) derives from Config.Seed, so a run
// is reproducible: the same seed issues the identical request sequence, and
// only measured latencies vary between runs.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/privacy"
)

// Mode selects the driving discipline.
type Mode string

// Driving disciplines.
const (
	ModeClosed Mode = "closed"
	ModeOpen   Mode = "open"
)

// Operation names, used as metric keys and JSON report keys.
const (
	OpCreateAudience = "create_audience"
	OpCreateCampaign = "create_campaign"
	OpCreateAd       = "create_ad"
	OpDeliver        = "deliver"
	OpInsights       = "insights"
)

// Ops lists every operation in scenario order.
var Ops = []string{OpCreateAudience, OpCreateCampaign, OpCreateAd, OpDeliver, OpInsights}

// Config parameterizes a load run.
type Config struct {
	// Seed drives every workload decision. Same seed → same request
	// sequence.
	Seed int64
	// Mode is the driving discipline (default closed loop).
	Mode Mode
	// Workers is the closed-loop concurrency (default 4). In open-loop
	// mode it is ignored: each arrival gets its own goroutine.
	Workers int
	// ArrivalRPS is the open-loop scenario arrival rate per second
	// (default 4).
	ArrivalRPS float64
	// Scenarios is how many virtual advertisers to run (default 8).
	Scenarios int
	// AdsPerCampaign is the number of ads each advertiser creates
	// (default 2).
	AdsPerCampaign int
	// AudienceSize is the number of PII hashes per audience upload
	// (default 200).
	AudienceSize int
	// InsightsPolls is how many insights reads follow each delivered ad
	// (default 2), alternating the full breakdown with a gender-only one —
	// the polling pattern of the audit's data collection.
	InsightsPolls int
	// Hashes is the PII hash pool audiences are drawn from. Required: the
	// platform rejects targeting that matches no users.
	Hashes []string
	// DeliveryWorkers is passed through on every deliver call: the
	// platform-side shard count for the parallel delivery engine. 0 defers
	// to the server's configured default; 1 forces the sequential oracle.
	DeliveryWorkers int
	// ShardCount records the process topology behind the target (from the
	// router's GET /v1/topology) in the report. Informational only: 0 means
	// the target is a single adplatform process.
	ShardCount int
	// Privacy records the target's insights privatization policy in the
	// report, so serving benches can attribute an insights-path latency or
	// suppression delta to the privacy level. Informational: the policy
	// lives on the server (or router); the runner additionally counts the
	// privatized responses and suppressed cells it actually observes.
	Privacy privacy.Config
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ArrivalRPS <= 0 {
		c.ArrivalRPS = 4
	}
	if c.Scenarios <= 0 {
		c.Scenarios = 8
	}
	if c.AdsPerCampaign <= 0 {
		c.AdsPerCampaign = 2
	}
	if c.AudienceSize <= 0 {
		c.AudienceSize = 200
	}
	if c.InsightsPolls <= 0 {
		c.InsightsPolls = 2
	}
	return c
}

// Runner executes load scenarios against one marketing API client.
type Runner struct {
	cfg    Config
	client *marketing.Client
	reg    *obs.Registry
	clock  marketing.Clock

	completed atomic.Int64
	failed    atomic.Int64

	// Observed privatization on the insights path: responses carrying a
	// privacy block, and the total cells those responses withheld.
	privatized      atomic.Int64
	suppressedCells atomic.Int64
}

// New validates the configuration and builds a runner.
func New(cfg Config, client *marketing.Client) (*Runner, error) {
	if client == nil {
		return nil, fmt.Errorf("loadgen: nil client")
	}
	cfg = cfg.withDefaults()
	if cfg.Mode != ModeClosed && cfg.Mode != ModeOpen {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if len(cfg.Hashes) == 0 {
		return nil, fmt.Errorf("loadgen: empty PII hash pool")
	}
	r := &Runner{cfg: cfg, client: client, reg: obs.NewRegistry(), clock: marketing.SystemClock}
	client.SetMetrics(r.reg)
	return r, nil
}

// SetClock replaces the wall clock used for latency measurement, letting
// tests and deterministic replays drive the runner against a fake clock.
func (r *Runner) SetClock(c marketing.Clock) {
	if c != nil {
		r.clock = c
	}
}

// Metrics exposes the client-side registry (per-operation latency
// histograms and error counters).
func (r *Runner) Metrics() *obs.Registry { return r.reg }

// observe times one API operation into the per-op histogram and counters.
func (r *Runner) observe(op string, f func() error) error {
	start := r.clock.Now()
	err := f()
	r.reg.Histogram("op.latency|" + op).Observe(r.clock.Now().Sub(start))
	r.reg.Counter("op.requests|" + op).Inc()
	if err != nil {
		r.reg.Counter("op.errors|" + op).Inc()
	}
	return err
}

// profileFor draws a creative demographic deterministically from the
// scenario RNG, covering the audit's image space.
func profileFor(rng *rand.Rand) demo.Profile {
	genders := []demo.Gender{demo.GenderFemale, demo.GenderMale}
	races := []demo.Race{demo.RaceBlack, demo.RaceWhite}
	ages := demo.AllImpliedAges()
	return demo.Profile{
		Gender: genders[rng.Intn(len(genders))],
		Race:   races[rng.Intn(len(races))],
		Age:    ages[rng.Intn(len(ages))],
	}
}

// scenario runs one virtual advertiser end to end. Every decision comes
// from the scenario's own RNG (seeded from Config.Seed and the scenario
// index), so the workload is independent of worker interleaving.
func (r *Runner) scenario(ctx context.Context, idx int) error {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(idx)*7919))
	hashes := make([]string, 0, r.cfg.AudienceSize)
	start := rng.Intn(len(r.cfg.Hashes))
	for i := 0; i < r.cfg.AudienceSize; i++ {
		hashes = append(hashes, r.cfg.Hashes[(start+i)%len(r.cfg.Hashes)])
	}

	var caResp *marketing.CreateAudienceResponse
	if err := r.observe(OpCreateAudience, func() (err error) {
		caResp, err = r.client.CreateAudience(ctx, fmt.Sprintf("loadgen-aud-%d", idx), hashes)
		return err
	}); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	var cmpResp *marketing.CreateCampaignResponse
	if err := r.observe(OpCreateCampaign, func() (err error) {
		cmpResp, err = r.client.CreateCampaign(ctx, marketing.CreateCampaignRequest{
			Name:      fmt.Sprintf("loadgen-cmp-%d", idx),
			Objective: "TRAFFIC",
		})
		return err
	}); err != nil {
		return err
	}

	adIDs := make([]string, 0, r.cfg.AdsPerCampaign)
	for a := 0; a < r.cfg.AdsPerCampaign; a++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		img := image.FromProfile(profileFor(rng))
		budget := 100 + rng.Intn(200)
		var adResp *marketing.AdResponse
		if err := r.observe(OpCreateAd, func() (err error) {
			adResp, err = r.client.CreateAd(ctx, marketing.CreateAdRequest{
				CampaignID: cmpResp.ID,
				Creative: marketing.WireCreative{
					Image:    marketing.WireImageFrom(img),
					Headline: "loadgen",
					LinkURL:  "https://example.test/offer",
				},
				Targeting:        marketing.WireTargeting{CustomAudienceIDs: []string{caResp.ID}},
				DailyBudgetCents: budget,
			})
			return err
		}); err != nil {
			return err
		}
		if adResp.Status == "ACTIVE" {
			adIDs = append(adIDs, adResp.ID)
		}
	}
	if len(adIDs) == 0 {
		// All ads rejected by review: a complete (if unlucky) advertiser
		// session, not a harness failure.
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	deliverSeed := rng.Int63()
	if err := r.observe(OpDeliver, func() error {
		return r.client.DeliverWorkers(ctx, adIDs, deliverSeed, r.cfg.DeliveryWorkers)
	}); err != nil {
		return err
	}

	for p := 0; p < r.cfg.InsightsPolls; p++ {
		for _, id := range adIDs {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := r.observe(OpInsights, func() error {
				var resp *marketing.InsightsResponse
				var err error
				if p%2 == 1 {
					resp, err = r.client.InsightsBreakdown(ctx, id, "gender")
				} else {
					resp, err = r.client.Insights(ctx, id)
				}
				if err == nil && resp.Privacy != nil {
					r.privatized.Add(1)
					r.suppressedCells.Add(int64(resp.Privacy.SuppressedCells))
				}
				return err
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// runOne executes scenario idx and tallies its outcome.
func (r *Runner) runOne(ctx context.Context, idx int) {
	if err := r.scenario(ctx, idx); err != nil {
		r.failed.Add(1)
		return
	}
	r.completed.Add(1)
}

// Run executes the configured scenarios and returns the report. Cancelling
// the context stops new work; in-flight API calls finish (the marketing API
// has no streaming endpoints, so calls are short).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	start := r.clock.Now()
	switch r.cfg.Mode {
	case ModeClosed:
		r.runClosed(ctx)
	case ModeOpen:
		r.runOpen(ctx)
	}
	return r.report(r.clock.Now().Sub(start)), ctx.Err()
}

// runClosed drives a fixed worker pool over the scenario queue.
func (r *Runner) runClosed(ctx context.Context) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				r.runOne(ctx, idx)
			}
		}()
	}
	for i := 0; i < r.cfg.Scenarios; i++ {
		if ctx.Err() != nil {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runOpen launches scenarios on a seeded Poisson arrival process at
// ArrivalRPS, independent of completions.
func (r *Runner) runOpen(ctx context.Context) {
	arrivals := rand.New(rand.NewSource(r.cfg.Seed ^ 0x5ca1ab1e))
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Scenarios; i++ {
		if i > 0 {
			// Exponential inter-arrival gap for a Poisson process.
			gap := time.Duration(arrivals.ExpFloat64() / r.cfg.ArrivalRPS * float64(time.Second))
			select {
			case <-time.After(gap):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r.runOne(ctx, idx)
		}(i)
	}
	wg.Wait()
}

// report assembles the machine-readable run summary.
func (r *Runner) report(wall time.Duration) *Report {
	snap := r.reg.Snapshot()
	rep := &Report{
		Schema:             ReportSchema,
		Name:               "serving",
		Seed:               r.cfg.Seed,
		Mode:               string(r.cfg.Mode),
		Scenarios:          r.cfg.Scenarios,
		ScenariosCompleted: int(r.completed.Load()),
		ScenariosFailed:    int(r.failed.Load()),
		AdsPerCampaign:     r.cfg.AdsPerCampaign,
		AudienceSize:       r.cfg.AudienceSize,
		DeliveryWorkers:    r.cfg.DeliveryWorkers,
		Shards:             r.cfg.ShardCount,
		WallSeconds:        math.Round(wall.Seconds()*1000) / 1000,
		Operations:         map[string]OpReport{},
	}
	if r.cfg.Mode == ModeClosed {
		rep.Workers = r.cfg.Workers
	} else {
		rep.ArrivalRPS = r.cfg.ArrivalRPS
	}
	// A privacy block appears when the run was configured for a privatizing
	// target OR when privatized responses were actually observed — the
	// latter catches a target armed out-of-band.
	if r.cfg.Privacy.Enabled() || r.privatized.Load() > 0 {
		rep.Privacy = &PrivacyReport{
			Level:                r.cfg.Privacy.Level.String(),
			K:                    r.cfg.Privacy.K,
			Epsilon:              r.cfg.Privacy.Epsilon,
			PrivatizedResponses:  r.privatized.Load(),
			SuppressedCellsTotal: r.suppressedCells.Load(),
		}
	}
	// The client shares this registry (New wires it), so its resilience
	// counters land in the same snapshot as the per-op histograms.
	rep.Retries = snap.Counters[marketing.MetricClientRetries]
	rep.BreakerRejects = snap.Counters[marketing.MetricClientBreakerRejects]
	for _, op := range Ops {
		requests := snap.Counters["op.requests|"+op]
		if requests == 0 {
			continue
		}
		rep.Operations[op] = OpReport{
			Requests: requests,
			Errors:   snap.Counters["op.errors|"+op],
			Latency:  snap.Histograms["op.latency|"+op],
		}
		rep.Requests += requests
		rep.Errors += snap.Counters["op.errors|"+op]
	}
	if rep.WallSeconds > 0 {
		rep.ThroughputRPS = math.Round(float64(rep.Requests)/rep.WallSeconds*100) / 100
	}
	return rep
}
