package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
)

// chaosTarget self-hosts a marketing server wrapped in the fault injector,
// returning the platform handle so the soak can audit its inventory.
func chaosTarget(t testing.TB, faultCfg faults.Config) (*marketing.Client, *platform.Platform, *marketing.Server) {
	t.Helper()
	pop, behave, _ := world(t)
	cfg := platform.DefaultConfig(903)
	cfg.Training.LogRows = 2000
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, pop, behave)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := marketing.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faultCfg, srv.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(srv.Handler()))
	t.Cleanup(ts.Close)
	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client, p, srv
}

// TestChaosSoakExactlyOnce is the acceptance soak: a full load run against a
// server injecting faults into 20% of requests (every kind: latency, 429,
// 5xx, connection drops, slow drips) under a fixed schedule seed. The
// resilient client must absorb every fault — all scenarios complete with
// zero operation errors — and the platform's inventory must show every
// create executed exactly once: no lost campaigns from dropped responses, no
// duplicates from retried POSTs. Run it with -race; the whole
// client/injector/server stack is concurrent.
func TestChaosSoakExactlyOnce(t *testing.T) {
	const (
		scenarios = 12
		adsPer    = 2
		polls     = 2
	)
	client, p, srv := chaosTarget(t, faults.Config{Seed: 42, Rate: 0.2, Kinds: faults.AllKinds()})
	// Deep attempt budget with short waits: at a 20% fault rate a handful of
	// back-to-back faults per call is routine, and the soak must outlast the
	// worst streak without stretching wall time.
	client.SetRetryPolicy(marketing.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	})

	runner, err := New(Config{
		Seed:           42,
		Workers:        6,
		Scenarios:      scenarios,
		AdsPerCampaign: adsPer,
		AudienceSize:   50,
		InsightsPolls:  polls,
		Hashes:         hashPool(t, 2000),
	}, client)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.ScenariosCompleted != scenarios || rep.ScenariosFailed != 0 {
		t.Fatalf("scenarios: %d completed, %d failed, want %d/0",
			rep.ScenariosCompleted, rep.ScenariosFailed, scenarios)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d operation errors surfaced through the retry layer, want 0", rep.Errors)
	}

	// Exactly-once: the platform holds precisely the objects the workload
	// created — a dropped response that was retried must not double-create,
	// a lost create must not leave a hole.
	inv := p.Inventory()
	if inv.Audiences != scenarios {
		t.Errorf("audiences %d, want %d", inv.Audiences, scenarios)
	}
	if inv.Campaigns != scenarios {
		t.Errorf("campaigns %d, want %d", inv.Campaigns, scenarios)
	}
	if inv.Ads != scenarios*adsPer {
		t.Errorf("ads %d, want %d", inv.Ads, scenarios*adsPer)
	}
	seen := map[string]bool{}
	for _, name := range inv.CampaignNames {
		if seen[name] {
			t.Errorf("campaign %q created twice", name)
		}
		seen[name] = true
	}

	// The soak only proves something if the injector actually fired and the
	// client actually retried.
	snap := srv.Metrics().Snapshot()
	if snap.Counters[faults.MetricInjected] == 0 {
		t.Error("no faults injected; the soak exercised nothing")
	}
	if rep.Retries == 0 {
		t.Error("no client retries recorded under a 20% fault rate")
	}
	t.Logf("soak: %d requests, %d faults injected, %d retries, %d idempotent replays",
		rep.Requests,
		snap.Counters[faults.MetricInjected],
		rep.Retries,
		snap.Counters[marketing.MetricIdempotentReplays])
}

// TestChaosScheduleReproducible pins the acceptance requirement that a fault
// seed fully determines the fault schedule: two injectors built from the
// same config must agree on every slot's decision, so a failing soak can be
// replayed exactly.
func TestChaosScheduleReproducible(t *testing.T) {
	cfg := faults.Config{Seed: 42, Rate: 0.2, Kinds: faults.AllKinds()}
	a, err := faults.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		da, db := a.ScheduleAt(i), b.ScheduleAt(i)
		if da != db {
			t.Fatalf("slot %d: schedules diverge (%+v vs %+v)", i, da, db)
		}
	}
}
