package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/store"
)

// ackLedger records every operation the server ACKNOWLEDGED (2xx response
// reached the client). The durability contract under test: an acked create
// or delivery survives any crash, because the response was only written
// after the WAL record was flushed.
type ackLedger struct {
	mu        sync.Mutex
	audiences map[string]bool
	campaigns map[string]string // id -> name
	ads       map[string]bool
	delivered map[string]int // adID -> impressions seen post-deliver (-1 unknown)
}

func newAckLedger() *ackLedger {
	return &ackLedger{
		audiences: map[string]bool{},
		campaigns: map[string]string{},
		ads:       map[string]bool{},
		delivered: map[string]int{},
	}
}

// crashServer is one incarnation of the durable platform between restarts.
type crashServer struct {
	p  *platform.Platform
	st *store.Store
	ts *httptest.Server
}

// startCrashServer recovers the platform from dir and serves it with fault
// injection armed and persist-before-respond wired in.
func startCrashServer(t *testing.T, dir string, faultSeed int64) *crashServer {
	t.Helper()
	pop, behave, _ := world(t)
	cfg := platform.DefaultConfig(903)
	cfg.Training.LogRows = 2000
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, pop, behave)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := store.Open(store.Options{
		Dir: dir,
		// Fsync none: the soak simulates process crashes (Kill drops the
		// store's unflushed buffer), not machine power loss, and fsyncs
		// would only slow the loop without changing what Kill can lose.
		Fsync:         store.FsyncNone,
		FlushInterval: 500 * time.Microsecond,
		SnapshotEvery: 25, // force snapshot+compaction churn during the soak
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(p); err != nil {
		t.Fatal(err)
	}
	srv, err := marketing.NewServer(p, marketing.WithPersister(st), marketing.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{Seed: faultSeed, Rate: 0.2, Kinds: faults.AllKinds()}, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &crashServer{p: p, st: st, ts: httptest.NewServer(inj.Middleware(srv.Handler()))}
}

// kill crashes the incarnation: the store drops its unflushed tail exactly
// like a SIGKILLed process, and every client connection breaks mid-flight.
func (cs *crashServer) kill() {
	cs.st.Kill()
	cs.ts.CloseClientConnections()
	cs.ts.Close()
}

// newCrashClient returns a client with a deep retry budget, matching the
// chaos soak: at a 20% fault rate back-to-back faults per call are routine.
func newCrashClient(t *testing.T, url string) *marketing.Client {
	t.Helper()
	client, err := marketing.NewClient(url)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(marketing.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	})
	return client
}

// runScenario drives one advertiser flow (audience → campaign → ads →
// deliver → insights), acking each step into the ledger only after the
// server's 2xx. Failures just end the scenario — during a crash window they
// are expected.
func runScenario(ctx context.Context, client *marketing.Client, led *ackLedger, hashes []string, tag string) {
	aud, err := client.CreateAudience(ctx, "crash-aud-"+tag, hashes)
	if err != nil {
		return
	}
	led.mu.Lock()
	led.audiences[aud.ID] = true
	led.mu.Unlock()

	cmpName := "crash-cmp-" + tag
	cmp, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{
		Name: cmpName, Objective: "TRAFFIC", AccountAge: 2019,
	})
	if err != nil {
		return
	}
	led.mu.Lock()
	led.campaigns[cmp.ID] = cmpName
	led.mu.Unlock()

	var adIDs []string
	for i := 0; i < 2; i++ {
		ad, err := client.CreateAd(ctx, marketing.CreateAdRequest{
			CampaignID:       cmp.ID,
			Creative:         marketing.WireCreative{Headline: "h"},
			Targeting:        marketing.WireTargeting{CustomAudienceIDs: []string{aud.ID}},
			DailyBudgetCents: 200,
		})
		if err != nil {
			return
		}
		led.mu.Lock()
		led.ads[ad.ID] = true
		led.mu.Unlock()
		adIDs = append(adIDs, ad.ID)
	}

	if err := client.Deliver(ctx, adIDs, 42); err != nil {
		return
	}
	led.mu.Lock()
	for _, id := range adIDs {
		led.delivered[id] = -1
	}
	led.mu.Unlock()
	for _, id := range adIDs {
		if ins, err := client.Insights(ctx, id); err == nil {
			led.mu.Lock()
			led.delivered[id] = ins.Impressions
			led.mu.Unlock()
		}
	}
}

// runLoad runs workers through scenarios until the context dies or the
// scenario budget is spent.
func runLoad(ctx context.Context, client *marketing.Client, led *ackLedger, hashes []string, workers, scenarios int, phase string) {
	var wg sync.WaitGroup
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= scenarios || ctx.Err() != nil {
					return
				}
				runScenario(ctx, client, led, hashes, fmt.Sprintf("%s-%d", phase, i))
			}
		}()
	}
	wg.Wait()
}

// deliveredCount reports how many delivery acks the ledger holds.
func (l *ackLedger) deliveredCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.delivered)
}

// verifyLedger asserts every acked object and delivery day exists on p.
func verifyLedger(t *testing.T, p *platform.Platform, led *ackLedger, phase string) {
	t.Helper()
	led.mu.Lock()
	defer led.mu.Unlock()
	for id := range led.audiences {
		if _, err := p.Audience(id); err != nil {
			t.Errorf("%s: acked audience %s lost: %v", phase, id, err)
		}
	}
	for id, name := range led.campaigns {
		c, err := p.Campaign(id)
		if err != nil {
			t.Errorf("%s: acked campaign %s lost: %v", phase, id, err)
			continue
		}
		if c.Name != name {
			t.Errorf("%s: campaign %s recovered with name %q, want %q", phase, id, c.Name, name)
		}
	}
	for id := range led.ads {
		if _, err := p.Ad(id); err != nil {
			t.Errorf("%s: acked ad %s lost: %v", phase, id, err)
		}
	}
	for id, imp := range led.delivered {
		ad, err := p.Ad(id)
		if err != nil {
			t.Errorf("%s: delivered ad %s lost: %v", phase, id, err)
			continue
		}
		if ad.Status != platform.StatusCompleted {
			t.Errorf("%s: ad %s delivery day lost: status %v, want COMPLETED", phase, id, ad.Status)
		}
		st, err := p.Insights(id)
		if err != nil {
			t.Errorf("%s: delivered ad %s has no insights: %v", phase, id, err)
			continue
		}
		if imp >= 0 && st.Impressions != imp {
			t.Errorf("%s: ad %s recovered with %d impressions, served %d", phase, id, st.Impressions, imp)
		}
	}
	// No duplicates: a retried create that double-executed would produce a
	// second campaign with the same name.
	seen := map[string]bool{}
	for _, name := range p.Inventory().CampaignNames {
		if seen[name] {
			t.Errorf("%s: campaign %q exists twice", phase, name)
		}
		seen[name] = true
	}
}

// TestCrashRecoverySoak is the durability acceptance soak: concurrent
// advertiser load against a fault-injecting (20%), durably-backed server;
// the server is crashed mid-load (store buffer dropped, connections cut),
// restarted from disk, loaded again, gracefully shut down, and restarted
// once more. After every restart, every acknowledged create and every
// committed delivery day must be present — zero acked state lost — while
// torn WAL tails from the crash are truncated, not fatal. Run with -race.
func TestCrashRecoverySoak(t *testing.T) {
	dir := t.TempDir()
	hashes := hashPool(t, 2000)
	led := newAckLedger()

	// Phase 1: load until at least two delivery days committed, then crash
	// mid-load.
	cs1 := startCrashServer(t, dir, 42)
	client1 := newCrashClient(t, cs1.ts.URL)
	ctx1, cancel1 := context.WithCancel(context.Background())
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		runLoad(ctx1, client1, led, hashes, 6, 200, "p1")
	}()
	deadline := time.Now().Add(60 * time.Second)
	for led.deliveredCount() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if led.deliveredCount() < 4 {
		t.Fatal("phase 1 never committed a delivery day")
	}
	cs1.kill() // mid-load: workers are still issuing requests
	cancel1()
	<-loadDone
	p1Audiences := len(led.audiences)

	// Phase 2: recover from the crash and verify, then keep loading.
	cs2 := startCrashServer(t, dir, 43)
	verifyLedger(t, cs2.p, led, "after crash")
	client2 := newCrashClient(t, cs2.ts.URL)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	runLoad(ctx2, client2, led, hashes, 4, 6, "p2")
	if len(led.audiences) <= p1Audiences {
		t.Error("phase 2 load created nothing; the recovered server is not serving writes")
	}
	// Graceful shutdown this time: drain, flush, final snapshot.
	cs2.ts.Close()
	rp, err := cs2.st.Close()
	if err != nil {
		t.Fatalf("graceful close after recovery: %v", err)
	}
	if rp.TailRecords != 0 {
		t.Errorf("graceful close left %d WAL records outside the final snapshot", rp.TailRecords)
	}

	// Phase 3: restart once more and verify the union of both phases.
	cs3 := startCrashServer(t, dir, 44)
	defer func() {
		cs3.ts.Close()
		_, _ = cs3.st.Close()
	}()
	verifyLedger(t, cs3.p, led, "after graceful restart")

	led.mu.Lock()
	t.Logf("soak: %d audiences, %d campaigns, %d ads, %d delivered ads acked and verified across 1 crash + 1 graceful restart",
		len(led.audiences), len(led.campaigns), len(led.ads), len(led.delivered))
	led.mu.Unlock()
}
