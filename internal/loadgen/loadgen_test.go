package loadgen

import (
	"context"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// The shared world: one registry/population/behaviour set reused by every
// test server, so the expensive generation runs once. Platforms are built
// per server (they hold mutable delivery state).
var (
	worldOnce sync.Once
	worldPop  *population.Population
	worldBhv  *population.Behavior
	worldFL   *voter.Registry
)

func world(t testing.TB) (*population.Population, *population.Behavior, *voter.Registry) {
	t.Helper()
	worldOnce.Do(func() {
		flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 901)
		flCfg.NumVoters = 6000
		fl, err := voter.Generate(flCfg)
		if err != nil {
			panic(err)
		}
		pop, err := population.Build(population.Config{Seed: 902}, fl)
		if err != nil {
			panic(err)
		}
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		worldPop, worldBhv, worldFL = pop, behave, fl
	})
	return worldPop, worldBhv, worldFL
}

// newTarget self-hosts a fresh marketing server over a fresh platform.
func newTarget(t testing.TB) (*marketing.Client, *marketing.Server, *httptest.Server) {
	t.Helper()
	pop, behave, _ := world(t)
	cfg := platform.DefaultConfig(903)
	cfg.Training.LogRows = 2000
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, pop, behave)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := marketing.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client, srv, ts
}

// hashPool derives PII hashes for audience uploads from the voter registry,
// the same client-side hashing path the audit uses.
func hashPool(t testing.TB, n int) []string {
	t.Helper()
	_, _, fl := world(t)
	if n > len(fl.Records) {
		n = len(fl.Records)
	}
	hashes := make([]string, 0, n)
	for i := range fl.Records[:n] {
		r := &fl.Records[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	return hashes
}

func baseConfig(t testing.TB) Config {
	return Config{
		Seed:           42,
		Workers:        3,
		Scenarios:      6,
		AdsPerCampaign: 2,
		AudienceSize:   150,
		InsightsPolls:  2,
		Hashes:         hashPool(t, 2000),
	}
}

// countChecks asserts the request accounting a deterministic healthy run
// must produce.
func countChecks(t *testing.T, rep *Report, scenarios, adsPer, polls int) {
	t.Helper()
	if rep.ScenariosCompleted != scenarios || rep.ScenariosFailed != 0 {
		t.Fatalf("scenarios: %d completed, %d failed, want %d/0",
			rep.ScenariosCompleted, rep.ScenariosFailed, scenarios)
	}
	want := map[string]int64{
		OpCreateAudience: int64(scenarios),
		OpCreateCampaign: int64(scenarios),
		OpCreateAd:       int64(scenarios * adsPer),
		OpDeliver:        int64(scenarios),
		OpInsights:       int64(scenarios * adsPer * polls),
	}
	var total int64
	for op, n := range want {
		got := rep.Operations[op]
		if got.Requests != n {
			t.Errorf("%s: %d requests, want %d", op, got.Requests, n)
		}
		if got.Errors != 0 {
			t.Errorf("%s: %d errors", op, got.Errors)
		}
		if got.Latency.Count != n || got.Latency.MaxMs <= 0 {
			t.Errorf("%s latency snapshot: %+v", op, got.Latency)
		}
		total += n
	}
	if rep.Requests != total || rep.Errors != 0 {
		t.Errorf("totals: %d requests %d errors, want %d/0", rep.Requests, rep.Errors, total)
	}
	if rep.ThroughputRPS <= 0 || rep.WallSeconds <= 0 {
		t.Errorf("throughput %v over %vs", rep.ThroughputRPS, rep.WallSeconds)
	}
}

func TestClosedLoopRun(t *testing.T) {
	client, srv, _ := newTarget(t)
	cfg := baseConfig(t)
	r, err := New(cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	countChecks(t, rep, cfg.Scenarios, cfg.AdsPerCampaign, cfg.InsightsPolls)
	if rep.Mode != "closed" || rep.Workers != cfg.Workers {
		t.Errorf("mode/workers: %s/%d", rep.Mode, rep.Workers)
	}

	// The server-side registry must agree with the client-side accounting:
	// every create_ad the generator issued is a POST /v1/ads the server
	// counted.
	snap := srv.Metrics().Snapshot()
	pairs := map[string]string{
		OpCreateAudience: "POST /v1/customaudiences",
		OpCreateCampaign: "POST /v1/campaigns",
		OpCreateAd:       "POST /v1/ads",
		OpDeliver:        "POST /v1/deliver",
		OpInsights:       "GET /v1/insights",
	}
	for op, route := range pairs {
		if got := snap.Counters[obs.MetricRequests+"|"+route]; got != rep.Operations[op].Requests {
			t.Errorf("server counted %d for %s, client sent %d", got, route, rep.Operations[op].Requests)
		}
		if got := snap.Counters[obs.MetricRequests+".2xx|"+route]; got != rep.Operations[op].Requests {
			t.Errorf("server 2xx %d for %s, want %d", got, route, rep.Operations[op].Requests)
		}
	}
}

func TestOpenLoopRun(t *testing.T) {
	client, _, _ := newTarget(t)
	cfg := baseConfig(t)
	cfg.Mode = ModeOpen
	cfg.ArrivalRPS = 300 // keep the seeded arrival schedule fast for tests
	cfg.Scenarios = 5
	r, err := New(cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	countChecks(t, rep, cfg.Scenarios, cfg.AdsPerCampaign, cfg.InsightsPolls)
	if rep.Mode != "open" || rep.ArrivalRPS != 300 || rep.Workers != 0 {
		t.Errorf("open-loop report header: %+v", rep)
	}
}

// TestDeterministicWorkload runs the same seed against two identically
// seeded fresh worlds: the request sequence (counts, errors, scenario
// outcomes) must be identical; only latencies may differ.
func TestDeterministicWorkload(t *testing.T) {
	runs := make([]*Report, 2)
	for i := range runs {
		client, _, _ := newTarget(t)
		r, err := New(baseConfig(t), client)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = rep
	}
	a, b := runs[0], runs[1]
	if a.Requests != b.Requests || a.Errors != b.Errors ||
		a.ScenariosCompleted != b.ScenariosCompleted || a.ScenariosFailed != b.ScenariosFailed {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
	for op := range a.Operations {
		if a.Operations[op].Requests != b.Operations[op].Requests {
			t.Errorf("%s: %d vs %d requests", op, a.Operations[op].Requests, b.Operations[op].Requests)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	client, _, _ := newTarget(t)
	if _, err := New(Config{Hashes: []string{"h"}}, nil); err == nil {
		t.Error("nil client: want error")
	}
	if _, err := New(Config{}, client); err == nil {
		t.Error("empty hash pool: want error")
	}
	if _, err := New(Config{Mode: "bursty", Hashes: []string{"h"}}, client); err == nil {
		t.Error("unknown mode: want error")
	}
}

func TestCancelledContextStopsWork(t *testing.T) {
	client, _, _ := newTarget(t)
	r, err := New(baseConfig(t), client)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := r.Run(ctx)
	if err == nil {
		t.Error("cancelled run should surface ctx.Err()")
	}
	if rep.Requests != 0 || rep.ScenariosCompleted != 0 {
		t.Errorf("cancelled run still did work: %+v", rep)
	}
}

func TestReportRoundTrip(t *testing.T) {
	client, srv, _ := newTarget(t)
	cfg := baseConfig(t)
	cfg.Scenarios = 2
	r, err := New(cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics().Snapshot()
	rep.ServerMetrics = &snap
	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Requests != rep.Requests || back.ServerMetrics == nil {
		t.Errorf("round trip: %+v", back)
	}
	if back.ServerMetrics.Counters[obs.MetricRequests] == 0 {
		t.Error("server metrics lost in round trip")
	}
}
