package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// ReportSchema tags the JSON layout so future perf PRs can extend it while
// still parsing old trajectory points (BENCH_serving_v*.json).
const ReportSchema = "adaudit/bench-serving/v1"

// PrivacyReport is the insights-privacy block of a load report: the policy
// the run was told the target enforces (level/k/epsilon) and the
// privatization the runner observed in responses. A serving-perf comparison
// across privacy levels reads the insights-op latency next to this block —
// the "privacy tax" on the reporting path.
type PrivacyReport struct {
	Level   string  `json:"level"`
	K       int     `json:"k,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	// PrivatizedResponses counts insights responses carrying a privacy
	// block; SuppressedCellsTotal sums the breakdown cells they withheld.
	PrivatizedResponses  int64 `json:"privatized_responses"`
	SuppressedCellsTotal int64 `json:"suppressed_cells_total"`
}

// OpReport is one operation's client-side accounting.
type OpReport struct {
	Requests int64                 `json:"requests"`
	Errors   int64                 `json:"errors"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// Report is the machine-readable result of a load run. Checked into the
// repo as BENCH_serving_v1.json it forms the serving-performance trajectory
// later PRs compare against.
type Report struct {
	Schema             string  `json:"schema"`
	Name               string  `json:"name"`
	Seed               int64   `json:"seed"`
	Mode               string  `json:"mode"`
	Workers            int     `json:"workers,omitempty"`
	ArrivalRPS         float64 `json:"arrival_rps,omitempty"`
	Scenarios          int     `json:"scenarios"`
	ScenariosCompleted int     `json:"scenarios_completed"`
	ScenariosFailed    int     `json:"scenarios_failed"`
	AdsPerCampaign     int     `json:"ads_per_campaign"`
	AudienceSize       int     `json:"audience_size"`
	// DeliveryWorkers is the per-request delivery shard count sent with
	// every deliver call (0 = server default).
	DeliveryWorkers int `json:"delivery_workers,omitempty"`
	// Shards is the process topology behind the target when it is a router
	// (scraped from GET /v1/topology); 0 for a single-process target.
	Shards        int     `json:"shards,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Retries counts client-side retry attempts beyond each call's first
	// try; BreakerRejects counts calls refused outright by the client's
	// open circuit breaker.
	Retries        int64 `json:"retries,omitempty"`
	BreakerRejects int64 `json:"breaker_rejects,omitempty"`
	// RequestsShed and FaultsInjected are scraped from the target's
	// GET /metrics at the end of the run (zero when scraping failed or the
	// server runs without faults/shedding).
	RequestsShed   int64 `json:"requests_shed,omitempty"`
	FaultsInjected int64 `json:"faults_injected,omitempty"`
	// Privacy records the insights privatization regime of the run: the
	// configured policy plus what the runner actually observed on the wire.
	// Omitted when privacy is off and no privatized response was seen.
	Privacy *PrivacyReport `json:"privacy,omitempty"`
	// Operations maps operation name → client-side latency/error stats.
	Operations map[string]OpReport `json:"operations"`
	// ServerMetrics optionally embeds the target's GET /metrics snapshot at
	// the end of the run, tying client-observed latencies to server-side
	// counters in one artifact.
	ServerMetrics *obs.Snapshot `json:"server_metrics,omitempty"`
}

// WriteJSON emits the indented report.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		return fmt.Errorf("loadgen: writing report: %w", errors.Join(err, f.Close()))
	}
	return f.Close()
}

// ReadReport parses a report produced by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: parsing report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("loadgen: unknown report schema %q", rep.Schema)
	}
	return &rep, nil
}
