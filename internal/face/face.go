// Package face implements the study's stand-in for the Deepface library
// (§5.4): machine classifiers that estimate the gender, race, and age
// implied by a face image. Two distinct consumers instantiate it:
//
//   - the audit pipeline, which uses it to label 50,000 GAN samples before
//     fitting latent directions; and
//   - the simulated platform, which uses an independently trained instance
//     as its content-understanding model (the perception feeding delivery
//     optimization).
//
// The classifiers are trained on a synthetic corpus whose images carry the
// presentation biases package image bakes into the distribution (feminine
// presentation correlates with smiling). The trained models therefore
// inherit those biases — a gender classifier that partially keys on smile —
// reproducing the paper's caveat that "this approach is subject to all
// biases that arise from the combination of biases in self-presentation,
// training data, latent space allocation, and classification biases of
// Deepface."
package face

import (
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Classifier estimates demographics from image features.
type Classifier struct {
	gender *stats.LogitResult // P(presents female)
	race   *stats.LogitResult // P(presents Black) with white as distractor
	age    *stats.OLSResult   // apparent age in years
}

// TrainOptions configures classifier training.
type TrainOptions struct {
	CorpusSize int   // labelled training faces; default 5000
	Seed       int64 // corpus sampling seed
	// LabelNoise is the fraction of training labels flipped at random,
	// modelling annotation error in face-classification training sets.
	LabelNoise float64
}

// Train fits the three estimators on a freshly sampled labelled corpus.
func Train(opt TrainOptions) (*Classifier, error) {
	if opt.CorpusSize == 0 {
		opt.CorpusSize = 5000
	}
	if opt.CorpusSize < 100 {
		return nil, fmt.Errorf("face: corpus size %d too small", opt.CorpusSize)
	}
	if opt.LabelNoise < 0 || opt.LabelNoise > 0.4 {
		return nil, fmt.Errorf("face: label noise %v outside [0, 0.4]", opt.LabelNoise)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	n := opt.CorpusSize
	x := stats.NewMatrix(n, image.VectorDim)
	yGender := make([]float64, n)
	yRace := make([]float64, n)
	yAge := make([]float64, n)
	profiles := demo.AllProfiles()
	stock := image.DefaultStockOptions()
	for i := 0; i < n; i++ {
		p := profiles[rng.Intn(len(profiles))]
		f := image.FromProfile(p)
		f.GenderAxis += stock.PersonJitter * rng.NormFloat64()
		f.RaceAxis += stock.PersonJitter * rng.NormFloat64()
		f.AgeYears += stock.AgeJitterYears * rng.NormFloat64()
		for j := range f.Nuisance {
			f.Nuisance[j] = stock.NuisanceStdDev * rng.NormFloat64()
		}
		f.ApplyPresentationBias()
		copy(x.Row(i), f.Vector())
		if p.Gender == demo.GenderFemale {
			yGender[i] = 1
		}
		if p.Race == demo.RaceBlack {
			yRace[i] = 1
		}
		yAge[i] = f.AgeYears
		if opt.LabelNoise > 0 {
			if rng.Float64() < opt.LabelNoise {
				yGender[i] = 1 - yGender[i]
			}
			if rng.Float64() < opt.LabelNoise {
				yRace[i] = 1 - yRace[i]
			}
		}
	}

	names := image.FeatureNames()
	logitOpt := stats.LogitOptions{Ridge: 1.0}
	gender, err := stats.Logit(names, x, yGender, logitOpt)
	if err != nil {
		return nil, fmt.Errorf("face: training gender model: %w", err)
	}
	race, err := stats.Logit(names, x, yRace, logitOpt)
	if err != nil {
		return nil, fmt.Errorf("face: training race model: %w", err)
	}
	age, err := stats.OLS(names, x, yAge)
	if err != nil {
		return nil, fmt.Errorf("face: training age model: %w", err)
	}
	return &Classifier{gender: gender, race: race, age: age}, nil
}

// GenderScore returns P(the pictured person presents female).
func (c *Classifier) GenderScore(f image.Features) float64 {
	return c.gender.Predict(f.Vector())
}

// Gender returns the hard gender label and its score.
func (c *Classifier) Gender(f image.Features) (demo.Gender, float64) {
	s := c.GenderScore(f)
	if s >= 0.5 {
		return demo.GenderFemale, s
	}
	return demo.GenderMale, s
}

// RaceScore returns P(the pictured person presents Black), with white as
// the distractor class per the paper's per-race regression setup.
func (c *Classifier) RaceScore(f image.Features) float64 {
	return c.race.Predict(f.Vector())
}

// Race returns the hard race label and its score.
func (c *Classifier) Race(f image.Features) (demo.Race, float64) {
	s := c.RaceScore(f)
	if s >= 0.5 {
		return demo.RaceBlack, s
	}
	return demo.RaceWhite, s
}

// AgeYears returns the estimated apparent age in years.
func (c *Classifier) AgeYears(f image.Features) float64 {
	v, err := c.age.Predict(append([]float64{1}, f.Vector()...))
	if err != nil {
		// The model and image vector are both fixed-dimension; a mismatch is
		// a programming error, not a data condition.
		panic(err)
	}
	return v
}

// Profile returns the full machine-estimated demographic profile.
func (c *Classifier) Profile(f image.Features) demo.Profile {
	g, _ := c.Gender(f)
	r, _ := c.Race(f)
	return demo.Profile{Gender: g, Race: r, Age: image.ImpliedAgeForYears(c.AgeYears(f))}
}

// SmileWeight exposes the gender model's learned coefficient on the smile
// nuisance axis — the inherited-bias diagnostic the ablation report prints.
func (c *Classifier) SmileWeight() float64 {
	// Coef[0] is the intercept; smile is nuisance index 0, i.e. vector
	// index 3, i.e. coefficient index 4.
	return c.gender.Coef[1+3+image.NuisanceSmile]
}
