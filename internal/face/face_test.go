package face

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

func trainTest(t *testing.T, seed int64) *Classifier {
	t.Helper()
	c, err := Train(TrainOptions{CorpusSize: 3000, Seed: seed, LabelNoise: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(TrainOptions{CorpusSize: 10}); err == nil {
		t.Error("tiny corpus: want error")
	}
	if _, err := Train(TrainOptions{CorpusSize: 500, LabelNoise: 0.9}); err == nil {
		t.Error("huge label noise: want error")
	}
}

func TestClassifierAccuracyOnCleanImages(t *testing.T) {
	c := trainTest(t, 1)
	for _, p := range demo.AllProfiles() {
		f := image.FromProfile(p)
		f.ApplyPresentationBias()
		got := c.Profile(f)
		if got.Gender != p.Gender {
			t.Errorf("%v: gender classified as %v", p, got.Gender)
		}
		if got.Race != p.Race {
			t.Errorf("%v: race classified as %v", p, got.Race)
		}
	}
}

func TestClassifierAccuracyOnStockPhotos(t *testing.T) {
	c := trainTest(t, 2)
	rng := rand.New(rand.NewSource(99))
	cat, err := image.NewStockCatalog(5, image.DefaultStockOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var genderRight, raceRight int
	for _, ph := range cat.Photos {
		got := c.Profile(ph.Features)
		if got.Gender == ph.Label.Gender {
			genderRight++
		}
		if got.Race == ph.Label.Race {
			raceRight++
		}
	}
	n := len(cat.Photos)
	if acc := float64(genderRight) / float64(n); acc < 0.9 {
		t.Errorf("gender accuracy %v on stock photos", acc)
	}
	if acc := float64(raceRight) / float64(n); acc < 0.9 {
		t.Errorf("race accuracy %v on stock photos", acc)
	}
}

func TestAgeEstimateTracksApparentAge(t *testing.T) {
	c := trainTest(t, 3)
	young := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedChild})
	old := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedElderly})
	ay, oy := c.AgeYears(young), c.AgeYears(old)
	if ay >= oy {
		t.Errorf("age estimates not ordered: child %v >= elderly %v", ay, oy)
	}
	if math.Abs(ay-young.AgeYears) > 10 {
		t.Errorf("child age estimate %v too far from %v", ay, young.AgeYears)
	}
	if math.Abs(oy-old.AgeYears) > 12 {
		t.Errorf("elderly age estimate %v too far from %v", oy, old.AgeYears)
	}
}

func TestGenderScoreMonotoneInAxis(t *testing.T) {
	c := trainTest(t, 4)
	base := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	prev := -1.0
	for g := -1.0; g <= 1.0; g += 0.25 {
		f := base
		f.GenderAxis = g
		s := c.GenderScore(f)
		if s < prev {
			t.Errorf("gender score not monotone at axis %v: %v < %v", g, s, prev)
		}
		prev = s
	}
}

func TestInheritedSmileBias(t *testing.T) {
	// The trained gender model must carry a positive weight on the smile
	// axis, inherited from the presentation-biased corpus (§5.4's caveat).
	c := trainTest(t, 5)
	if w := c.SmileWeight(); w <= 0 {
		t.Errorf("smile weight %v, want positive (inherited presentation bias)", w)
	}
	// Behavioural check: adding a smile to an androgynous face raises the
	// female score.
	f := image.Features{HasPerson: true, GenderAxis: 0, RaceAxis: -0.5, AgeYears: 30}
	without := c.GenderScore(f)
	f.Nuisance[image.NuisanceSmile] = 2
	with := c.GenderScore(f)
	if with <= without {
		t.Errorf("smile should raise female score: %v <= %v", with, without)
	}
}

func TestIndependentInstancesDiffer(t *testing.T) {
	// The audit's classifier and the platform's perception model are
	// independently trained; different seeds must give different weights.
	a := trainTest(t, 6)
	b := trainTest(t, 7)
	if a.SmileWeight() == b.SmileWeight() {
		t.Error("independently trained classifiers should not be identical")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := trainTest(t, 8)
	b := trainTest(t, 8)
	if a.SmileWeight() != b.SmileWeight() {
		t.Error("same-seed training should be deterministic")
	}
}
