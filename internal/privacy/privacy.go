// Package privacy is the response-privatization pipeline for the Insights
// API: the layer a real platform puts between its delivery accounting and
// what an advertiser (or auditor) is allowed to read. It composes two
// mechanisms:
//
//   - k-anonymity suppression: breakdown cells describing fewer than K
//     impressions are withheld, with complementary-cell suppression so a
//     withheld cell cannot be reconstructed by subtracting its released
//     siblings from the (released) total, and a minimum-audience gate that
//     withholds the entire breakdown when the ad reached fewer than K users;
//   - seeded differential-privacy noise: every released count is perturbed
//     by a bounded discrete-Laplace (two-sided geometric) draw with
//     parameter epsilon.
//
// Determinism is a design requirement, not an afterthought. The noise
// stream is a pure function (seed, cell key) → draw built on faults.Mix64,
// so privatizing the same report twice — or privatizing the merged
// cross-shard report on a router versus the single-process report on one
// platform — yields byte-identical output. That property is what lets the
// repo's differential digest suites, replay tooling, and adlint's detrand
// analyzer keep policing the serving stack with the privacy layer armed.
// Keying noise by cell content (not draw order) also means repeated queries
// of the same surface return the same noisy value, which closes the classic
// averaging attack against refreshed noise.
//
// The merge-then-privatize rule: in a sharded fleet, per-shard delivery
// tallies are partition slices of one logical report, so suppression and
// noise must be applied AFTER cross-shard summation — a per-shard K would
// over-suppress (every slice is smaller than the whole) and per-shard noise
// would add N draws instead of one. The coordinator owns privatization for
// a fleet; shards behind a router serve raw insights and the coordinator
// refuses to merge responses that arrive pre-privatized.
package privacy

import (
	"fmt"
	"math"
	"strings"
)

// Level selects the privatization regime for an insights surface.
type Level int

const (
	// LevelOff releases delivery reports untouched (the pre-privacy API).
	LevelOff Level = iota
	// LevelKAnon suppresses breakdown cells below the K threshold (with
	// complementary suppression and the minimum-audience gate) but releases
	// exact counts for everything that survives.
	LevelKAnon
	// LevelKAnonDP applies LevelKAnon suppression and then perturbs every
	// released count with seeded discrete-Laplace noise of parameter
	// Epsilon.
	LevelKAnonDP
)

// String names the level the way flags and reports spell it.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelKAnon:
		return "k-anon"
	case LevelKAnonDP:
		return "k-anon+dp"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses a level name as printed by String.
func ParseLevel(s string) (Level, error) {
	switch strings.TrimSpace(s) {
	case "off":
		return LevelOff, nil
	case "k-anon":
		return LevelKAnon, nil
	case "k-anon+dp":
		return LevelKAnonDP, nil
	}
	return 0, fmt.Errorf("privacy: unknown level %q (want off, k-anon, or k-anon+dp)", s)
}

// Config is one privatization policy. The zero value is LevelOff.
type Config struct {
	Level Level
	// K is the minimum released cell size and minimum audience (reach) for
	// any breakdown to be released at all. Ignored at LevelOff; K <= 0
	// makes suppression vacuous.
	K int
	// Epsilon is the per-count differential-privacy parameter at
	// LevelKAnonDP: each released count independently receives
	// discrete-Laplace noise with P(X = x) ∝ exp(-Epsilon·|x|). Smaller
	// epsilon means more noise. Composition across distinct queries is out
	// of scope (as it is on real reporting surfaces).
	Epsilon float64
	// Seed fixes the noise stream. Same (Seed, cell key) → same draw.
	Seed int64
}

// FromFlags derives the policy a CLI requests: k <= 0 and epsilon <= 0 is
// off; epsilon <= 0 is k-anonymity alone; otherwise k-anonymity plus DP
// noise (k may be 0, making the suppression half vacuous).
func FromFlags(k int, epsilon float64, seed int64) (Config, error) {
	if k < 0 {
		return Config{}, fmt.Errorf("privacy: k must be non-negative, got %d", k)
	}
	if epsilon < 0 {
		return Config{}, fmt.Errorf("privacy: epsilon must be non-negative, got %v", epsilon)
	}
	cfg := Config{K: k, Epsilon: epsilon, Seed: seed}
	switch {
	case k == 0 && epsilon == 0:
		cfg.Level = LevelOff
	case epsilon == 0:
		cfg.Level = LevelKAnon
	default:
		cfg.Level = LevelKAnonDP
	}
	return cfg, nil
}

// Validate rejects configs whose fields contradict their level.
func (c Config) Validate() error {
	switch c.Level {
	case LevelOff:
		return nil
	case LevelKAnon:
		if c.K < 0 {
			return fmt.Errorf("privacy: k must be non-negative, got %d", c.K)
		}
		return nil
	case LevelKAnonDP:
		if c.K < 0 {
			return fmt.Errorf("privacy: k must be non-negative, got %d", c.K)
		}
		if c.Epsilon <= 0 || math.IsInf(c.Epsilon, 0) || math.IsNaN(c.Epsilon) {
			return fmt.Errorf("privacy: k-anon+dp needs a positive finite epsilon, got %v", c.Epsilon)
		}
		return nil
	}
	return fmt.Errorf("privacy: unknown level %d", int(c.Level))
}

// Enabled reports whether Apply would change anything.
func (c Config) Enabled() bool { return c.Level != LevelOff }

// Cell is one breakdown cell of a delivery report, identified by its
// canonical key (the caller builds it from the cell's dimension values; the
// marketing layer uses "age=<v>|gender=<v>|region=<v>"). Keys must be
// unique within a report: the key IS the noise-stream coordinate.
type Cell struct {
	Key   string
	Count int
}

// Report is the privacy layer's view of one delivery report: the released
// totals, the hourly series, and the breakdown cells. Scope namespaces the
// noise stream (the marketing layer passes the ad ID) so two ads' identical
// cells draw independent noise.
type Report struct {
	Scope       string
	Impressions int
	Reach       int
	Clicks      int
	Hourly      []int
	Cells       []Cell

	// Privatized marks a report that already passed through Apply; it makes
	// privatization idempotent, so a misconfigured double-application (for
	// example a privatizing shard behind a privatizing router) cannot
	// suppress below K twice or stack two noise draws.
	Privatized bool
	// SuppressedCells counts the breakdown cells Apply withheld.
	SuppressedCells int
}

// clone deep-copies a report so Apply never aliases its input.
func (r *Report) clone() *Report {
	cp := *r
	cp.Hourly = append([]int(nil), r.Hourly...)
	cp.Cells = append([]Cell(nil), r.Cells...)
	return &cp
}

// Apply privatizes one report under the policy. It is a pure function of
// (cfg, report contents): no wall clock, no global RNG, no map iteration —
// cells are processed in sorted key order regardless of input order. The
// input is never mutated; at LevelOff or on an already-privatized report
// the input pointer is returned unchanged (idempotence).
//
// Pipeline order is gate → suppress → noise, all decisions on TRUE counts:
// a cell is released iff its exact count clears K, and only released
// counts are noised. Noise never re-triggers suppression (k-anonymity is a
// property of the underlying population, not of the noisy release).
func Apply(cfg Config, r *Report) *Report {
	if !cfg.Enabled() || r == nil || r.Privatized {
		return r
	}
	out := r.clone()
	out.Privatized = true

	// Minimum-audience gate: a report on fewer than K reached users
	// releases no breakdown at all (the real-platform behaviour that
	// motivates minimum campaign sizes in audit design).
	if out.Reach < cfg.K {
		out.SuppressedCells = len(out.Cells)
		out.Cells = nil
	} else {
		out.Cells, out.SuppressedCells = Suppress(cfg.K, out.Cells)
	}

	if cfg.Level == LevelKAnonDP {
		out.Impressions = NoisyCount(cfg, out.Scope+"|total|impressions", out.Impressions)
		out.Reach = NoisyCount(cfg, out.Scope+"|total|reach", out.Reach)
		out.Clicks = NoisyCount(cfg, out.Scope+"|total|clicks", out.Clicks)
		for i, n := range out.Hourly {
			out.Hourly[i] = NoisyCount(cfg, fmt.Sprintf("%s|hour|%d", out.Scope, i), n)
		}
		for i := range out.Cells {
			c := &out.Cells[i]
			c.Count = NoisyCount(cfg, out.Scope+"|cell|"+c.Key, c.Count)
		}
	}
	return out
}

// Suppress applies k-anonymity to a flat cell table whose exact total is
// released alongside it. Primary suppression withholds every cell with
// Count < k. Complementary suppression closes the subtraction attack: if
// exactly one cell was withheld, its value would equal total − sum(released
// cells), so the smallest released cell (ties broken by key) is withheld
// too — an attacker then recovers only the SUM of the two withheld cells.
// Input order is preserved in the released slice; the input is not mutated.
func Suppress(k int, cells []Cell) (released []Cell, suppressed int) {
	if k <= 0 || len(cells) == 0 {
		return append([]Cell(nil), cells...), 0
	}
	keep := make([]bool, len(cells))
	for i, c := range cells {
		keep[i] = c.Count >= k
		if !keep[i] {
			suppressed++
		}
	}
	if suppressed == 1 && len(cells)-suppressed >= 1 {
		// Complementary cell: the smallest released count, smallest key on
		// ties — a rule both sides of a differential test compute
		// identically from cell content alone.
		comp := -1
		for i, c := range cells {
			if !keep[i] {
				continue
			}
			if comp < 0 || c.Count < cells[comp].Count ||
				(c.Count == cells[comp].Count && c.Key < cells[comp].Key) {
				comp = i
			}
		}
		keep[comp] = false
		suppressed++
	}
	released = make([]Cell, 0, len(cells)-suppressed)
	for i, c := range cells {
		if keep[i] {
			released = append(released, c)
		}
	}
	return released, suppressed
}
