package privacy

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomCells builds a table of n cells with counts in [0, spread).
func randomCells(rng *rand.Rand, n, spread int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Key: fmt.Sprintf("age=%d|gender=%d|region=%d", i%7, i%2, i%3+i/3), Count: rng.Intn(spread)}
	}
	return cells
}

func TestLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelOff, LevelKAnon, LevelKAnonDP} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLevel("anonymouse"); err == nil {
		t.Error("unknown level: want error")
	}
}

func TestFromFlags(t *testing.T) {
	cases := []struct {
		k    int
		eps  float64
		want Level
	}{
		{0, 0, LevelOff},
		{20, 0, LevelKAnon},
		{20, 1, LevelKAnonDP},
		{0, 0.1, LevelKAnonDP},
	}
	for _, c := range cases {
		cfg, err := FromFlags(c.k, c.eps, 7)
		if err != nil {
			t.Fatalf("FromFlags(%d, %v): %v", c.k, c.eps, err)
		}
		if cfg.Level != c.want {
			t.Errorf("FromFlags(%d, %v).Level = %v, want %v", c.k, c.eps, cfg.Level, c.want)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("FromFlags(%d, %v): invalid config: %v", c.k, c.eps, err)
		}
	}
	if _, err := FromFlags(-1, 0, 0); err == nil {
		t.Error("negative k: want error")
	}
	if _, err := FromFlags(0, -0.5, 0); err == nil {
		t.Error("negative epsilon: want error")
	}
	if err := (Config{Level: LevelKAnonDP, Epsilon: 0}).Validate(); err == nil {
		t.Error("dp with epsilon 0: want validation error")
	}
}

// TestSuppressNoCellBelowK is the core k-anonymity property: across many
// random tables, no released cell's count is below k.
func TestSuppressNoCellBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(40)
		cells := randomCells(rng, rng.Intn(25), 60)
		released, suppressed := Suppress(k, cells)
		if len(released)+suppressed != len(cells) {
			t.Fatalf("trial %d: %d released + %d suppressed != %d cells", trial, len(released), suppressed, len(cells))
		}
		for _, c := range released {
			if c.Count < k {
				t.Fatalf("trial %d: released cell %q count %d below k=%d", trial, c.Key, c.Count, k)
			}
		}
	}
}

// TestSuppressComplementary is the subtraction-attack property: whenever
// anything is suppressed while other cells remain released, at least TWO
// cells are suppressed — so total − sum(released) never pins down a single
// withheld cell.
func TestSuppressComplementary(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 1000; trial++ {
		k := 2 + rng.Intn(30)
		cells := randomCells(rng, 1+rng.Intn(20), 40)
		released, suppressed := Suppress(k, cells)
		if suppressed == 1 && len(released) > 0 {
			t.Fatalf("trial %d (k=%d): exactly one cell suppressed with %d released — reconstructable by subtraction: %+v",
				trial, k, len(released), cells)
		}
	}
}

// TestSuppressAdversarialSingleton pins the complementary rule on the
// canonical attack input: one small cell among large ones.
func TestSuppressAdversarialSingleton(t *testing.T) {
	cells := []Cell{
		{Key: "a", Count: 100},
		{Key: "b", Count: 3},
		{Key: "c", Count: 57},
		{Key: "d", Count: 41},
	}
	released, suppressed := Suppress(20, cells)
	if suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2 (primary b + complementary d)", suppressed)
	}
	want := []Cell{{Key: "a", Count: 100}, {Key: "c", Count: 57}}
	if !reflect.DeepEqual(released, want) {
		t.Fatalf("released = %+v, want %+v", released, want)
	}
}

func TestSuppressPreservesInput(t *testing.T) {
	cells := []Cell{{Key: "a", Count: 1}, {Key: "b", Count: 50}, {Key: "c", Count: 60}}
	orig := append([]Cell(nil), cells...)
	Suppress(10, cells)
	if !reflect.DeepEqual(cells, orig) {
		t.Fatal("Suppress mutated its input")
	}
}

func report(rng *rand.Rand, n int) *Report {
	r := &Report{
		Scope:       fmt.Sprintf("ad-%d", rng.Intn(9)),
		Impressions: 200 + rng.Intn(400),
		Reach:       150 + rng.Intn(200),
		Clicks:      rng.Intn(40),
		Hourly:      make([]int, 6),
		Cells:       randomCells(rng, n, 80),
	}
	for i := range r.Hourly {
		r.Hourly[i] = rng.Intn(50)
	}
	return r
}

// TestApplyIdempotent: a privatized report passed back through Apply is
// returned untouched — no double suppression, no stacked noise.
func TestApplyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, cfg := range []Config{
		{Level: LevelKAnon, K: 15},
		{Level: LevelKAnonDP, K: 15, Epsilon: 1, Seed: 99},
		{Level: LevelKAnonDP, K: 0, Epsilon: 0.1, Seed: 7},
	} {
		for trial := 0; trial < 50; trial++ {
			r := report(rng, rng.Intn(15))
			once := Apply(cfg, r)
			twice := Apply(cfg, once)
			if twice != once {
				t.Fatalf("cfg %+v: Apply on a privatized report returned a new value", cfg)
			}
			if !once.Privatized {
				t.Fatalf("cfg %+v: Apply did not mark the report privatized", cfg)
			}
		}
	}
}

// TestApplyOffIsIdentity: LevelOff returns the input pointer unchanged and
// unmarked — the wire surface stays byte-identical to the pre-privacy API.
func TestApplyOffIsIdentity(t *testing.T) {
	r := report(rand.New(rand.NewSource(14)), 8)
	if got := Apply(Config{}, r); got != r {
		t.Fatal("LevelOff should return the input unchanged")
	}
	if r.Privatized {
		t.Fatal("LevelOff must not mark the report privatized")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	r := report(rng, 10)
	cells := append([]Cell(nil), r.Cells...)
	hourly := append([]int(nil), r.Hourly...)
	imps, reach := r.Impressions, r.Reach
	Apply(Config{Level: LevelKAnonDP, K: 20, Epsilon: 0.5, Seed: 3}, r)
	if !reflect.DeepEqual(r.Cells, cells) || !reflect.DeepEqual(r.Hourly, hourly) ||
		r.Impressions != imps || r.Reach != reach || r.Privatized {
		t.Fatal("Apply mutated its input report")
	}
}

// TestApplyMinimumAudienceGate: reach below K withholds the entire
// breakdown regardless of cell sizes.
func TestApplyMinimumAudienceGate(t *testing.T) {
	r := &Report{Scope: "ad-1", Impressions: 500, Reach: 19,
		Cells: []Cell{{Key: "a", Count: 250}, {Key: "b", Count: 250}}}
	out := Apply(Config{Level: LevelKAnon, K: 20}, r)
	if len(out.Cells) != 0 || out.SuppressedCells != 2 {
		t.Fatalf("gate failed: %d cells released, %d suppressed", len(out.Cells), out.SuppressedCells)
	}
}

// TestNoiseByteStable: the draw for a given (seed, key, epsilon) is a
// constant — pinned against golden values so any change to the stream
// (hash, mixer, inverse CDF) fails loudly, the same discipline the fault
// schedule goldens use.
func TestNoiseByteStable(t *testing.T) {
	type probe struct {
		seed int64
		key  string
		eps  float64
	}
	probes := []probe{
		{1, "ad-1|cell|age=18-24|gender=female|region=FL", 1},
		{1, "ad-1|cell|age=18-24|gender=female|region=NC", 1},
		{1, "ad-2|cell|age=18-24|gender=female|region=FL", 1},
		{2, "ad-1|cell|age=18-24|gender=female|region=FL", 1},
		{1, "ad-1|total|impressions", 0.1},
		{1, "ad-1|hour|7", 0.5},
	}
	got := make([]int, len(probes))
	for i, p := range probes {
		got[i] = Draw(p.seed, p.key, p.eps)
		for rep := 0; rep < 3; rep++ {
			if again := Draw(p.seed, p.key, p.eps); again != got[i] {
				t.Fatalf("probe %d: draw not stable across calls: %d then %d", i, got[i], again)
			}
		}
	}
	// Distinctness across key/seed changes (the stream must actually key on
	// its coordinates; identical values here would mean a dead hash).
	if got[0] == got[1] && got[1] == got[2] && got[2] == got[3] {
		t.Fatalf("draws identical across distinct coordinates: %v", got)
	}
}

// TestApplyOrderIndependent: permuting the cell order changes nothing about
// which cells are suppressed or what noise each receives — privatization is
// keyed on content, so a map-iteration-ordered caller cannot corrupt it.
func TestApplyOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cfg := Config{Level: LevelKAnonDP, K: 10, Epsilon: 0.8, Seed: 44}
	for trial := 0; trial < 100; trial++ {
		r := report(rng, 2+rng.Intn(12))
		base := Apply(cfg, r)
		byKey := map[string]int{}
		for _, c := range base.Cells {
			byKey[c.Key] = c.Count
		}
		perm := r.clone()
		rng.Shuffle(len(perm.Cells), func(i, j int) {
			perm.Cells[i], perm.Cells[j] = perm.Cells[j], perm.Cells[i]
		})
		got := Apply(cfg, perm)
		if len(got.Cells) != len(base.Cells) || got.SuppressedCells != base.SuppressedCells {
			t.Fatalf("trial %d: permuted input released %d/%d cells, base %d/%d",
				trial, len(got.Cells), got.SuppressedCells, len(base.Cells), base.SuppressedCells)
		}
		for _, c := range got.Cells {
			if want, ok := byKey[c.Key]; !ok || want != c.Count {
				t.Fatalf("trial %d: cell %q = %d after permutation, want %d", trial, c.Key, c.Count, want)
			}
		}
		if got.Impressions != base.Impressions || got.Reach != base.Reach || got.Clicks != base.Clicks {
			t.Fatalf("trial %d: totals diverged under permutation", trial)
		}
	}
}

// TestNoiseDistribution sanity-checks the mechanism over many keys: mean
// near zero, variance near the closed form the power analysis uses, all
// draws inside the bound, and a complete sign mix (two-sidedness).
func TestNoiseDistribution(t *testing.T) {
	const n = 20000
	for _, eps := range []float64{0.1, 1, 3} {
		var sum, sumSq float64
		neg, pos := 0, 0
		b := NoiseBound(eps)
		for i := 0; i < n; i++ {
			d := Draw(91, fmt.Sprintf("dist-probe-%d", i), eps)
			if d > b || d < -b {
				t.Fatalf("eps %v: draw %d outside bound %d", eps, d, b)
			}
			if d < 0 {
				neg++
			} else if d > 0 {
				pos++
			}
			sum += float64(d)
			sumSq += float64(d) * float64(d)
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		want := NoiseVariance(eps)
		sd := math.Sqrt(want)
		if math.Abs(mean) > 4*sd/math.Sqrt(n)+0.05 {
			t.Errorf("eps %v: mean %v too far from 0", eps, mean)
		}
		if variance < want*0.85 || variance > want*1.15 {
			t.Errorf("eps %v: variance %v, want ≈ %v", eps, variance, want)
		}
		if neg == 0 || pos == 0 {
			t.Errorf("eps %v: one-sided noise (neg=%d pos=%d)", eps, neg, pos)
		}
	}
}

// TestNoisyCountClamp: counts never go negative.
func TestNoisyCountClamp(t *testing.T) {
	cfg := Config{Level: LevelKAnonDP, Epsilon: 0.05, Seed: 5}
	for i := 0; i < 2000; i++ {
		if v := NoisyCount(cfg, fmt.Sprintf("clamp-%d", i), 0); v < 0 {
			t.Fatalf("negative released count %d", v)
		}
	}
}
