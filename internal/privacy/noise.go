// Seeded discrete-Laplace noise: the differential-privacy half of the
// privatization pipeline. Every draw is a pure function of (seed, cell key,
// epsilon), built from the same SplitMix64 schedule primitive
// (faults.Mix64) the fault injector and chaos orchestrator use, so the
// noise stream is byte-stable across runs, processes, and map iteration
// orders — a merged cross-shard report and a single-process report noise
// identically because they name their cells identically.
package privacy

import (
	"math"

	"github.com/adaudit/impliedidentity/internal/faults"
)

// maxNoiseBound caps the truncation half-width so a pathological epsilon
// cannot make a single draw astronomically wide.
const maxNoiseBound = 1 << 20

// NoiseBound returns the truncation half-width B for the bounded mechanism:
// draws are clamped to [-B, B]. B is sized so the clamped tail mass is
// negligible (q^B ≈ e^-40) — the bound exists to keep a released count
// finite and the mechanism auditable, not to shape the distribution.
func NoiseBound(epsilon float64) int {
	if epsilon <= 0 {
		return 0
	}
	b := int(math.Ceil(40 / epsilon))
	if b > maxNoiseBound {
		return maxNoiseBound
	}
	return b
}

// NoiseVariance returns the variance of the (untruncated) discrete-Laplace
// distribution with parameter epsilon: 2q/(1-q)² for q = e^-epsilon. The
// power analysis uses it to size the detectability penalty of a noisy
// reporting surface.
func NoiseVariance(epsilon float64) float64 {
	if epsilon <= 0 {
		return 0
	}
	q := math.Exp(-epsilon)
	return 2 * q / ((1 - q) * (1 - q))
}

// fnv64 hashes a cell key to its noise-stream coordinate (FNV-1a).
func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// unit converts 64 schedule bits to a uniform in [0,1) (top 53 bits, the
// same construction the fault injector uses for its coin).
func unit(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// geometric inverts the Geometric(1-q) CDF at u: the count of failures
// before the first success, floor(ln u / ln q). u = 0 maps to the cap (the
// infinite tail), which the caller's bound clamps away.
func geometric(u, q float64, bound int) int {
	if u <= 0 {
		return bound
	}
	g := int(math.Floor(math.Log(u) / math.Log(q)))
	if g > bound {
		return bound
	}
	return g
}

// Draw returns the noise for one cell: a bounded discrete-Laplace variate
// with parameter epsilon, determined entirely by (seed, key). The variate
// is the difference of two independent Geometric(1-e^-epsilon) draws —
// exactly the two-sided geometric distribution P(X = x) ∝ e^(-epsilon·|x|)
// — truncated to ±NoiseBound(epsilon). The two uniforms come from chained
// Mix64 calls, the same sub-stream derivation the chaos schedule uses.
func Draw(seed int64, key string, epsilon float64) int {
	if epsilon <= 0 {
		return 0
	}
	h := fnv64(key)
	bits := faults.Mix64(seed, h)
	sub := faults.Mix64(int64(bits), h+1)
	q := math.Exp(-epsilon)
	b := NoiseBound(epsilon)
	d := geometric(unit(bits), q, b) - geometric(unit(sub), q, b)
	if d > b {
		return b
	}
	if d < -b {
		return -b
	}
	return d
}

// NoisyCount perturbs a released count with the cell's draw, clamped at
// zero (a reporting surface never shows negative impressions).
func NoisyCount(cfg Config, key string, n int) int {
	v := n + Draw(cfg.Seed, key, cfg.Epsilon)
	if v < 0 {
		return 0
	}
	return v
}
