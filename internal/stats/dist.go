package stats

import (
	"math"
	"sort"
)

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with NormalCDF(x) = p, via the
// Acklam/Wichura-style rational approximation refined with one Newton step.
// Panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile domain (0,1)")
	}
	// Beasley-Springer-Moro style initial estimate.
	var x float64
	if p < 0.02425 || p > 1-0.02425 {
		// Tail region.
		q := p
		sign := -1.0
		if p > 0.5 {
			q = 1 - p
			sign = 1.0
		}
		t := math.Sqrt(-2 * math.Log(q))
		x = sign * (t - (2.515517+0.802853*t+0.010328*t*t)/(1+1.432788*t+0.189269*t*t+0.001308*t*t*t))
	} else {
		q := p - 0.5
		r := q * q
		x = q * (2.50662823884 + r*(-18.61500062529+r*(41.39119773534+r*-25.44106049637))) /
			(1 + r*(-8.47351093090+r*(23.08336743743+r*(-21.06224101826+r*3.13082909833))))
	}
	// Newton refinement: f(x) = CDF(x) - p, f'(x) = pdf(x).
	for i := 0; i < 4; i++ {
		pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		if pdf == 0 {
			break
		}
		step := (NormalCDF(x) - p) / pdf
		x -= step
		if math.Abs(step) < 1e-14 {
			break
		}
	}
	return x
}

// NormalPower returns the power of a two-sided level-alpha z-test when the
// test statistic is normal with unit variance and mean `shift` (the true
// effect divided by its standard error). Both rejection regions are counted;
// the wrong-direction one is negligible for any practically detectable
// effect but included for correctness. Shared by the audit-design power
// analysis and the privacy-sweep detectability model.
func NormalPower(shift, alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: NormalPower alpha domain (0,1)")
	}
	zCrit := NormalQuantile(1 - alpha/2)
	return NormalCDF(shift-zCrit) + NormalCDF(-shift-zCrit)
}

// lgamma returns log Γ(x) for x > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed with the Lentz continued-fraction expansion (Numerical Recipes
// §6.4). It underlies the Student-t CDF used for regression p-values.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	// Use the symmetry relation to keep the continued fraction convergent.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student-t variable with df degrees of
// freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom, the quantity regression tables star (§3.4).
func TTestPValue(t, df float64) float64 {
	if math.IsNaN(t) {
		return math.NaN()
	}
	p := 2 * StudentTCDF(-math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return p
}

// SignificanceStars renders a p-value the way the paper's tables do:
// *** p<0.001, ** p<0.01, * p<0.05, empty otherwise (§3.4).
func SignificanceStars(p float64) string {
	switch {
	case math.IsNaN(p):
		return ""
	case p < 0.001:
		return "***"
	case p < 0.01:
		return "**"
	case p < 0.05:
		return "*"
	}
	return ""
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square variable with k degrees of
// freedom, via the regularized lower incomplete gamma function.
func ChiSquareCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(k/2, x/2)
}

// regIncGammaLower computes P(a, x), the regularized lower incomplete gamma
// function, via series (x < a+1) or continued fraction (otherwise).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		// Series expansion.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
	return 1 - q
}

// BenjaminiHochberg converts a slice of p-values into adjusted q-values
// controlling the false discovery rate. An audit fits many coefficients
// across many models (Table 4 alone stars 21 terms); BH adjustment keeps
// the expected fraction of false "significant skew" claims below the chosen
// level. The output is aligned with the input; NaN inputs yield NaN outputs
// and do not affect the other adjustments.
func BenjaminiHochberg(pvalues []float64) []float64 {
	type idxP struct {
		idx int
		p   float64
	}
	var valid []idxP
	out := make([]float64, len(pvalues))
	for i, p := range pvalues {
		if math.IsNaN(p) {
			out[i] = math.NaN()
			continue
		}
		valid = append(valid, idxP{idx: i, p: p})
	}
	m := len(valid)
	if m == 0 {
		return out
	}
	sort.Slice(valid, func(a, b int) bool { return valid[a].p < valid[b].p })
	// q_(k) = min over j >= k of p_(j)·m/j, capped at 1 (step-up procedure).
	qs := make([]float64, m)
	running := 1.0
	for k := m - 1; k >= 0; k-- {
		q := valid[k].p * float64(m) / float64(k+1)
		if q < running {
			running = q
		}
		qs[k] = running
	}
	for k, v := range valid {
		out[v.idx] = qs[k]
	}
	return out
}
