package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs; 0 with fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// WeightedMean returns Σwᵢxᵢ / Σwᵢ; 0 when weights sum to zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: WeightedMean length mismatch %d != %d", len(xs), len(ws)))
	}
	var num, den float64
	for i, x := range xs {
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// WelchT holds the result of a Welch two-sample t-test.
type WelchT struct {
	T      float64
	DF     float64
	P      float64 // two-sided
	MeanA  float64
	MeanB  float64
	DeltaM float64 // MeanA - MeanB
}

// WelchTTest compares the means of two samples without assuming equal
// variances. Used in the Appendix A analysis to show the ZIP-poverty
// difference between targeted race groups is significant before matching.
func WelchTTest(a, b []float64) WelchT {
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	res := WelchT{MeanA: ma, MeanB: mb, DeltaM: ma - mb}
	if se2 <= 0 || na < 2 || nb < 2 {
		res.T, res.DF, res.P = math.NaN(), math.NaN(), math.NaN()
		return res
	}
	res.T = (ma - mb) / math.Sqrt(se2)
	res.DF = se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	res.P = TTestPValue(res.T, res.DF)
	return res
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples; NaN when either is constant.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d != %d", len(a), len(b)))
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}
