package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.9750021},
		{-1.96, 0.0249979},
		{1, 0.8413447},
		{-3, 0.0013499},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v): want panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 should be 0")
	}
	if RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 should be 1")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got, want := RegIncBeta(2.5, 4, 0.3), 1-RegIncBeta(4, 2.5, 0.7); !almostEqual(got, want, 1e-12) {
		t.Errorf("symmetry: %v vs %v", got, want)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	f := func(seed int64) bool {
		a := 0.5 + float64(seed%7)
		b := 0.5 + float64((seed/7)%5)
		prev := -1.0
		for x := 0.05; x < 1; x += 0.05 {
			v := RegIncBeta(a, b, x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct{ tv, df, want float64 }{
		{0, 5, 0.5},
		{2.015, 5, 0.95},    // t_{0.95,5}
		{1.812, 10, 0.95},   // t_{0.95,10}
		{2.576, 1e6, 0.995}, // large df ≈ normal
		{-2.015, 5, 0.05},
	}
	for _, c := range cases {
		if got := StudentTCDF(c.tv, c.df); !almostEqual(got, c.want, 2e-3) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.tv, c.df, got, c.want)
		}
	}
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-inf) = %v", got)
	}
}

func TestTTestPValueSymmetric(t *testing.T) {
	f := func(raw uint8) bool {
		tv := float64(raw)/16 - 8
		df := 3 + float64(raw%40)
		p1 := TTestPValue(tv, df)
		p2 := TTestPValue(-tv, df)
		return almostEqual(p1, p2, 1e-12) && p1 >= 0 && p1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignificanceStars(t *testing.T) {
	cases := map[float64]string{
		0.0005: "***",
		0.005:  "**",
		0.03:   "*",
		0.2:    "",
		0.05:   "", // boundary: p<0.05 strictly
	}
	for p, want := range cases {
		if got := SignificanceStars(p); got != want {
			t.Errorf("stars(%v) = %q, want %q", p, got, want)
		}
	}
	if got := SignificanceStars(math.NaN()); got != "" {
		t.Errorf("stars(NaN) = %q", got)
	}
}

func TestChiSquareCDF(t *testing.T) {
	// χ²(2) is Exponential(1/2): CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 3, 8} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !almostEqual(got, want, 1e-9) {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// 95th percentile of χ²(1) is 3.841.
	if got := ChiSquareCDF(3.841, 1); !almostEqual(got, 0.95, 1e-3) {
		t.Errorf("ChiSquareCDF(3.841, 1) = %v", got)
	}
	if got := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("negative x: %v", got)
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	// Worked example (m = 5): sorted p = .01, .02, .03, .04, .5.
	ps := []float64{0.04, 0.5, 0.01, 0.03, 0.02}
	qs := BenjaminiHochberg(ps)
	// q for p=.01 is min(.01·5/1, .02·5/2, .03·5/3, .04·5/4, .5·5/5) = .05.
	if !almostEqual(qs[2], 0.05, 1e-12) {
		t.Errorf("q(.01) = %v, want 0.05", qs[2])
	}
	// q for p=.5 is .5 (last rank).
	if !almostEqual(qs[1], 0.5, 1e-12) {
		t.Errorf("q(.5) = %v", qs[1])
	}
	// Monotone in p and never below the raw p.
	for i := range ps {
		if qs[i] < ps[i]-1e-15 {
			t.Errorf("q %v below p %v", qs[i], ps[i])
		}
		if qs[i] > 1 {
			t.Errorf("q %v above 1", qs[i])
		}
	}
	// NaNs pass through without disturbing the rest.
	withNaN := []float64{0.01, math.NaN(), 0.02}
	qn := BenjaminiHochberg(withNaN)
	if !math.IsNaN(qn[1]) {
		t.Error("NaN should stay NaN")
	}
	if qn[0] > qn[2] {
		t.Error("ordering violated around NaN")
	}
	if got := BenjaminiHochberg(nil); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestBenjaminiHochbergProperty(t *testing.T) {
	// Property: q-values are a monotone transform of p-values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := make([]float64, 3+rng.Intn(20))
		for i := range ps {
			ps[i] = rng.Float64()
		}
		qs := BenjaminiHochberg(ps)
		for i := range ps {
			for j := range ps {
				if ps[i] < ps[j] && qs[i] > qs[j]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalPower(t *testing.T) {
	// Zero shift: power equals the test size alpha.
	if got := NormalPower(0, 0.05); math.Abs(got-0.05) > 1e-10 {
		t.Errorf("NormalPower(0, 0.05) = %v, want 0.05", got)
	}
	// Textbook value: shift 2.8 at alpha 0.05 gives ≈ 80% power.
	if got := NormalPower(2.8016, 0.05); math.Abs(got-0.8) > 1e-3 {
		t.Errorf("NormalPower(2.8016, 0.05) = %v, want ≈ 0.80", got)
	}
	// Symmetric in the sign of the shift (two-sided test).
	if a, b := NormalPower(1.7, 0.05), NormalPower(-1.7, 0.05); math.Abs(a-b) > 1e-12 {
		t.Errorf("asymmetric power: %v vs %v", a, b)
	}
	// Monotone in the shift.
	prev := 0.0
	for _, s := range []float64{0.5, 1, 2, 4, 8} {
		p := NormalPower(s, 0.05)
		if p <= prev || p > 1 {
			t.Errorf("power %v at shift %v not increasing in (0,1]", p, s)
		}
		prev = p
	}
	defer func() {
		if recover() == nil {
			t.Error("alpha outside (0,1) should panic")
		}
	}()
	NormalPower(1, 0)
}
