package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// simulateGrouped draws data from y = b0 + b1*x + u_g + eps with u_g ~
// N(0, tau²), eps ~ N(0, sigma²).
func simulateGrouped(rng *rand.Rand, nGroups, perGroup int, b0, b1, tau, sigma float64) (*Matrix, []float64, []string) {
	n := nGroups * perGroup
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	groups := make([]string, n)
	row := 0
	for g := 0; g < nGroups; g++ {
		u := tau * rng.NormFloat64()
		name := fmt.Sprintf("g%02d", g)
		for k := 0; k < perGroup; k++ {
			v := rng.NormFloat64()
			x.Set(row, 0, v)
			y[row] = b0 + b1*v + u + sigma*rng.NormFloat64()
			groups[row] = name
			row++
		}
	}
	return x, y, groups
}

func TestMixedLMRecoversFixedEffects(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y, groups := simulateGrouped(rng, 12, 40, 0.5, 0.14, 0.08, 0.05)
	res, err := MixedLM([]string{"x"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coef[0]-0.5) > 0.08 {
		t.Errorf("intercept = %v, want ≈ 0.5", res.Coef[0])
	}
	if math.Abs(res.Coef[1]-0.14) > 0.02 {
		t.Errorf("slope = %v, want ≈ 0.14", res.Coef[1])
	}
	if p, _ := res.PValueOf("x"); p > 0.001 {
		t.Errorf("strong slope p = %v", p)
	}
}

func TestMixedLMVarianceComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const tau, sigma = 0.1, 0.05
	x, y, groups := simulateGrouped(rng, 40, 30, 0, 0.1, tau, sigma)
	res, err := MixedLM([]string{"x"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ResidualVar-sigma*sigma) > 0.3*sigma*sigma {
		t.Errorf("σ² = %v, want ≈ %v", res.ResidualVar, sigma*sigma)
	}
	if math.Abs(res.GroupVar-tau*tau) > 0.6*tau*tau {
		t.Errorf("τ² = %v, want ≈ %v", res.GroupVar, tau*tau)
	}
}

func TestMixedLMZeroGroupVariance(t *testing.T) {
	// Data with no group effect: REML should choose θ near zero and match
	// plain OLS coefficients closely.
	rng := rand.New(rand.NewSource(23))
	x, y, groups := simulateGrouped(rng, 10, 50, 1, 2, 0, 0.1)
	res, err := MixedLM([]string{"x"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := OLS([]string{"x"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coef[1]-ols.Coef[1]) > 0.01 {
		t.Errorf("slope: mixed %v vs OLS %v", res.Coef[1], ols.Coef[1])
	}
	if res.GroupVar > 0.02 {
		t.Errorf("spurious group variance %v", res.GroupVar)
	}
}

func TestMixedLMShrinksBLUPs(t *testing.T) {
	// BLUPs should be pulled toward zero relative to raw group means of the
	// residuals (shrinkage property), and ordered the same way.
	rng := rand.New(rand.NewSource(24))
	x, y, groups := simulateGrouped(rng, 8, 6, 0, 0, 0.3, 0.3)
	res, err := MixedLM([]string{"x"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	// Raw residual means per group (vs fixed effects only).
	raw := map[string]float64{}
	cnt := map[string]int{}
	for i, g := range groups {
		pred := res.Coef[0] + res.Coef[1]*x.At(i, 0)
		raw[g] += y[i] - pred
		cnt[g]++
	}
	for gi, g := range res.GroupNames {
		rm := raw[g] / float64(cnt[g])
		blup := res.GroupIntercepts[gi]
		if math.Abs(blup) > math.Abs(rm)+1e-9 {
			t.Errorf("group %s: |BLUP| %v exceeds |raw mean| %v", g, blup, rm)
		}
		if rm != 0 && blup*rm < 0 {
			t.Errorf("group %s: BLUP sign flipped (%v vs %v)", g, blup, rm)
		}
	}
}

func TestMixedLMNullEffectCanHaveNegativeAdjR2(t *testing.T) {
	// Table 5's gender models report negative adjusted R²: a fixed effect
	// explaining nothing. Reproduce that behaviour.
	rng := rand.New(rand.NewSource(25))
	n := 44
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	groups := make([]string, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i%2))
		groups[i] = fmt.Sprintf("g%d", i/4)
		y[i] = 0.5 + 0.2*rng.NormFloat64()
	}
	res, err := MixedLM([]string{"dummy"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := res.PValueOf("dummy"); p < 0.01 {
		t.Errorf("null effect p = %v, suspiciously significant", p)
	}
	if res.AdjR2 > 0.2 {
		t.Errorf("null-effect adjusted R² = %v", res.AdjR2)
	}
}

func TestMixedLMErrors(t *testing.T) {
	x := NewMatrix(4, 1)
	y := make([]float64, 4)
	if _, err := MixedLM([]string{"x"}, x, y, []string{"a", "a", "a", "a"}); !errors.Is(err, ErrNeedGroups) {
		t.Errorf("single group: want ErrNeedGroups, got %v", err)
	}
	if _, err := MixedLM([]string{"x", "y"}, x, y, []string{"a", "b", "a", "b"}); err == nil {
		t.Error("name mismatch: want error")
	}
	if _, err := MixedLM([]string{"x"}, x, y[:3], []string{"a", "b", "a", "b"}); err == nil {
		t.Error("length mismatch: want error")
	}
	tiny := NewMatrix(2, 1)
	if _, err := MixedLM([]string{"x"}, tiny, []float64{1, 2}, []string{"a", "b"}); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("n<=p: want ErrTooFewObservations, got %v", err)
	}
}

func TestMixedLMAccessorsAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	x, y, groups := simulateGrouped(rng, 5, 10, 1, 0.5, 0.1, 0.1)
	res, err := MixedLM([]string{"x"}, x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Coefficient("x"); !ok {
		t.Error("Coefficient(x) not found")
	}
	if _, ok := res.Coefficient("nope"); ok {
		t.Error("Coefficient(nope) should be !ok")
	}
	if _, ok := res.PValueOf("nope"); ok {
		t.Error("PValueOf(nope) should be !ok")
	}
	if s := res.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	if len(res.GroupNames) != 5 || len(res.GroupIntercepts) != 5 {
		t.Errorf("group bookkeeping: %d names, %d intercepts", len(res.GroupNames), len(res.GroupIntercepts))
	}
}
