package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI computes a percentile bootstrap confidence interval for a
// statistic of a sample. The audit uses it to put uncertainty bands on
// per-group delivery fractions, which the paper's figures convey through
// per-ad tick marks.
//
// stat receives a resampled copy of the data and must not retain it.
func BootstrapCI(data []float64, stat func([]float64) float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	if len(data) < 2 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs at least 2 observations, got %d", len(data))
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("stats: %d resamples too few", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	rng := rand.New(rand.NewSource(seed))
	estimates := make([]float64, resamples)
	scratch := make([]float64, len(data))
	for b := 0; b < resamples; b++ {
		for i := range scratch {
			scratch[i] = data[rng.Intn(len(data))]
		}
		estimates[b] = stat(scratch)
	}
	sort.Float64s(estimates)
	alpha := (1 - confidence) / 2
	lo = Quantile(estimates, alpha)
	hi = Quantile(estimates, 1-alpha)
	return lo, hi, nil
}

// BootstrapMeanCI is BootstrapCI specialised to the mean.
func BootstrapMeanCI(data []float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	return BootstrapCI(data, Mean, resamples, confidence, seed)
}
