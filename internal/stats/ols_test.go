package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSExactRecovery(t *testing.T) {
	// Noiseless data: OLS must recover the generating coefficients exactly
	// and report R² = 1.
	rng := rand.New(rand.NewSource(1))
	n := 50
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 3 + 2*a - 1.5*b
	}
	res, err := OLS([]string{"a", "b"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1.5}
	for i, w := range want {
		if !almostEqual(res.Coef[i], w, 1e-9) {
			t.Errorf("coef[%d] = %v, want %v", i, res.Coef[i], w)
		}
	}
	if !almostEqual(res.R2, 1, 1e-9) {
		t.Errorf("R² = %v, want 1", res.R2)
	}
}

func TestOLSRecoveryUnderNoiseProperty(t *testing.T) {
	// Property: with plentiful data and modest noise, estimates land within
	// 5 standard errors of truth and p-values for strong effects are tiny.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		x := NewMatrix(n, 2)
		y := make([]float64, n)
		b0, b1, b2 := rng.NormFloat64(), 1+rng.Float64(), -1-rng.Float64()
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			y[i] = b0 + b1*a + b2*b + 0.3*rng.NormFloat64()
		}
		res, err := OLS([]string{"a", "b"}, x, y)
		if err != nil {
			return false
		}
		truth := []float64{b0, b1, b2}
		for i, w := range truth {
			if math.Abs(res.Coef[i]-w) > 5*res.StdErr[i] {
				return false
			}
		}
		return res.PValue[1] < 0.001 && res.PValue[2] < 0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOLSPureNoiseInsignificant(t *testing.T) {
	// A regressor unrelated to y should be non-significant most of the time;
	// check the p-value is not degenerate.
	rng := rand.New(rand.NewSource(42))
	n := 200
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		y[i] = rng.NormFloat64()
	}
	res, err := OLS([]string{"noise"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.PValue[1]; p < 0.01 {
		t.Errorf("pure-noise regressor p = %v, suspiciously significant", p)
	}
	if res.R2 > 0.1 {
		t.Errorf("pure-noise R² = %v", res.R2)
	}
}

func TestOLSScaleEquivariance(t *testing.T) {
	// Property: scaling a regressor by c scales its coefficient by 1/c and
	// leaves t statistics and R² unchanged.
	rng := rand.New(rand.NewSource(5))
	n := 120
	x1 := NewMatrix(n, 1)
	x2 := NewMatrix(n, 1)
	y := make([]float64, n)
	const c = 10.0
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x1.Set(i, 0, v)
		x2.Set(i, 0, c*v)
		y[i] = 1 + 2*v + 0.5*rng.NormFloat64()
	}
	r1, err := OLS([]string{"v"}, x1, y)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OLS([]string{"v"}, x2, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r1.Coef[1], c*r2.Coef[1], 1e-8) {
		t.Errorf("scale equivariance: %v vs %v", r1.Coef[1], c*r2.Coef[1])
	}
	if !almostEqual(r1.TStat[1], r2.TStat[1], 1e-8) {
		t.Errorf("t not invariant: %v vs %v", r1.TStat[1], r2.TStat[1])
	}
	if !almostEqual(r1.R2, r2.R2, 1e-12) {
		t.Errorf("R² not invariant: %v vs %v", r1.R2, r2.R2)
	}
}

func TestOLSResidualsOrthogonalToDesign(t *testing.T) {
	// Property: OLS residuals are orthogonal to every regressor column and
	// sum to zero (with intercept).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		x := NewMatrix(n, 3)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.NormFloat64() * 2
		}
		res, err := OLS([]string{"a", "b", "c"}, x, y)
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range res.Residuals {
			sum += r
		}
		if math.Abs(sum) > 1e-7 {
			return false
		}
		for j := 0; j < 3; j++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += x.At(i, j) * res.Residuals[i]
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOLSErrors(t *testing.T) {
	x := NewMatrix(3, 3)
	if _, err := OLS([]string{"a", "b", "c"}, x, []float64{1, 2, 3}); err == nil {
		t.Error("n <= p: want error")
	}
	if _, err := OLS([]string{"a"}, NewMatrix(5, 2), make([]float64, 5)); err == nil {
		t.Error("name count mismatch: want error")
	}
	if _, err := OLS([]string{"a", "b"}, NewMatrix(5, 2), make([]float64, 4)); err == nil {
		t.Error("y length mismatch: want error")
	}
}

func TestOLSAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		y[i] = 2 + 5*v + 0.1*rng.NormFloat64()
	}
	res, err := OLS([]string{"slope"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := res.Coefficient("slope"); !ok || !almostEqual(c, 5, 0.2) {
		t.Errorf("Coefficient(slope) = %v, %v", c, ok)
	}
	if _, ok := res.Coefficient("missing"); ok {
		t.Error("Coefficient(missing) should report !ok")
	}
	if !res.Significant("slope", 0.001) {
		t.Error("strong slope should be significant")
	}
	pred, err := res.Predict([]float64{1, 0})
	if err != nil || !almostEqual(pred, res.Coef[0], 1e-12) {
		t.Errorf("Predict at x=0: %v, %v", pred, err)
	}
	if _, err := res.Predict([]float64{1}); err == nil {
		t.Error("short predict vector: want error")
	}
	if s := res.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}

func TestOLSNoIntercept(t *testing.T) {
	// Through-origin fit: y = 2x exactly.
	n := 20
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i+1))
		y[i] = 2 * float64(i+1)
	}
	res, err := OLSNoIntercept([]string{"x"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coef) != 1 || !almostEqual(res.Coef[0], 2, 1e-10) {
		t.Errorf("coef = %v", res.Coef)
	}
}

func TestOLSCollinearFallback(t *testing.T) {
	// Perfectly collinear columns: the ridge fallback should still produce a
	// finite fit rather than an error.
	n := 30
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, 2*v) // exact collinearity
		y[i] = v + 0.1*rng.NormFloat64()
	}
	res, err := OLS([]string{"a", "a2"}, x, y)
	if err != nil {
		t.Fatalf("collinear fit: %v", err)
	}
	for _, c := range res.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("non-finite coefficient %v", c)
		}
	}
}

func TestRobustSEMatchesClassicalUnderHomoskedasticity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 2000
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 1 + a - b + rng.NormFloat64()
	}
	res, err := OLS([]string{"a", "b"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := res.RobustSE(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range robust {
		ratio := robust[j] / res.StdErr[j]
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("coef %d: robust/classical SE ratio %v under homoskedasticity", j, ratio)
		}
	}
}

func TestRobustSEGrowsUnderHeteroskedasticity(t *testing.T) {
	// Error variance proportional to x²: classical SEs understate the slope
	// uncertainty; robust SEs must be clearly larger.
	rng := rand.New(rand.NewSource(22))
	n := 3000
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		y[i] = 2*v + 2*math.Abs(v)*rng.NormFloat64()
	}
	res, err := OLS([]string{"v"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := res.RobustSE(x)
	if err != nil {
		t.Fatal(err)
	}
	if robust[1] < 1.2*res.StdErr[1] {
		t.Errorf("slope robust SE %v vs classical %v; expected clear inflation", robust[1], res.StdErr[1])
	}
}

func TestRobustSEValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 50
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		y[i] = rng.NormFloat64()
	}
	res, err := OLS([]string{"v"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.RobustSE(NewMatrix(n, 3)); err == nil {
		t.Error("mismatched design: want error")
	}
}
