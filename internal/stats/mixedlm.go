package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// MixedLMResult holds a fitted random-intercept linear mixed model. Table 5
// fits exactly this shape: delivery fraction regressed on an implied-identity
// indicator, with a separate (random) intercept per job type.
type MixedLMResult struct {
	Names  []string // fixed-effect names, Names[0] == "Intercept"
	Coef   []float64
	StdErr []float64
	TStat  []float64
	PValue []float64

	GroupVar    float64 // τ², variance of the random intercepts
	ResidualVar float64 // σ²
	Theta       float64 // τ²/σ² variance ratio chosen by REML

	GroupNames      []string
	GroupIntercepts []float64 // BLUPs of the random intercepts, aligned with GroupNames

	// AdjR2 is the OLS-style adjusted R² of the fixed-effects part, computed
	// from fixed-effect fitted values. Table 5 reports this quantity; it can
	// be negative when the fixed effect explains essentially nothing (as the
	// paper finds for the gender models IV-VI).
	AdjR2 float64
	R2    float64
	N     int
	DF    int
}

// Coefficient returns the fixed-effect coefficient for the named variable.
func (r *MixedLMResult) Coefficient(name string) (float64, bool) {
	for i, n := range r.Names {
		if n == name {
			return r.Coef[i], true
		}
	}
	return 0, false
}

// PValueOf returns the p-value for the named fixed effect.
func (r *MixedLMResult) PValueOf(name string) (float64, bool) {
	for i, n := range r.Names {
		if n == name {
			return r.PValue[i], true
		}
	}
	return 0, false
}

// String renders the fit in the shape of one Table 5 column.
func (r *MixedLMResult) String() string {
	var b strings.Builder
	for i, n := range r.Names {
		fmt.Fprintf(&b, "%-16s %8.3f%s\n", n, r.Coef[i], SignificanceStars(r.PValue[i]))
	}
	fmt.Fprintf(&b, "%-16s %8.3f\n", "Adj. R²", r.AdjR2)
	fmt.Fprintf(&b, "groups=%d  τ²=%.4g  σ²=%.4g  n=%d\n", len(r.GroupNames), r.GroupVar, r.ResidualVar, r.N)
	return b.String()
}

// ErrNeedGroups is returned when fewer than two groups are supplied.
var ErrNeedGroups = errors.New("stats: mixed model needs at least two groups")

// MixedLM fits y = X·β + u_group + ε with u_group ~ N(0, τ²) i.i.d. per
// group and ε ~ N(0, σ²), by profiled REML over the variance ratio
// θ = τ²/σ². X must not include an intercept column; one is prepended. For a
// single random intercept the per-group covariance V_g = I + θ·11ᵀ has the
// closed-form inverse I − θ/(1+θ·n_g)·11ᵀ, so each REML evaluation is O(n·p²).
func MixedLM(names []string, x *Matrix, y []float64, groups []string) (*MixedLMResult, error) {
	if len(names) != x.Cols {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), x.Cols)
	}
	n := x.Rows
	if len(y) != n || len(groups) != n {
		return nil, fmt.Errorf("stats: rows=%d y=%d groups=%d must match", n, len(y), len(groups))
	}
	// Build the intercept-augmented design and group index.
	p := x.Cols + 1
	design := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		row := design.Row(i)
		row[0] = 1
		copy(row[1:], x.Row(i))
	}
	if n <= p {
		return nil, ErrTooFewObservations
	}
	groupIdx := map[string][]int{}
	for i, g := range groups {
		groupIdx[g] = append(groupIdx[g], i)
	}
	if len(groupIdx) < 2 {
		return nil, ErrNeedGroups
	}
	groupNames := make([]string, 0, len(groupIdx))
	for g := range groupIdx {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)

	// reml evaluates the (negative) restricted log-likelihood at a given θ,
	// returning the GLS pieces so the optimum fit can be reused.
	type fit struct {
		negLL  float64
		beta   []float64
		aInv   *Matrix
		sigma2 float64
	}
	eval := func(theta float64) (fit, error) {
		a := NewMatrix(p, p)     // Σ Xᵀ V⁻¹ X
		b := make([]float64, p)  // Σ Xᵀ V⁻¹ y
		var logDetV float64      // Σ log|V_g|
		xc := make([]float64, p) // per-group column sums of X
		for _, g := range groupNames {
			idx := groupIdx[g]
			ng := float64(len(idx))
			shrink := theta / (1 + theta*ng)
			logDetV += math.Log(1 + theta*ng)
			for j := range xc {
				xc[j] = 0
			}
			var ysum float64
			for _, i := range idx {
				row := design.Row(i)
				yi := y[i]
				ysum += yi
				for j, v := range row {
					xc[j] += v
					b[j] += v * yi
					ar := a.Row(j)
					for k := j; k < p; k++ {
						ar[k] += v * row[k]
					}
				}
			}
			// Subtract the rank-one shrink terms.
			for j := 0; j < p; j++ {
				b[j] -= shrink * xc[j] * ysum
				ar := a.Row(j)
				for k := j; k < p; k++ {
					ar[k] -= shrink * xc[j] * xc[k]
				}
			}
		}
		for j := 0; j < p; j++ {
			for k := j + 1; k < p; k++ {
				a.Set(k, j, a.At(j, k))
			}
		}
		la, err := a.Cholesky()
		if err != nil {
			return fit{}, err
		}
		beta, err := CholSolve(la, b)
		if err != nil {
			return fit{}, err
		}
		// Weighted residual sum of squares: yᵀV⁻¹y − βᵀb.
		var yvy float64
		for _, g := range groupNames {
			idx := groupIdx[g]
			ng := float64(len(idx))
			shrink := theta / (1 + theta*ng)
			var ysum, yss float64
			for _, i := range idx {
				ysum += y[i]
				yss += y[i] * y[i]
			}
			yvy += yss - shrink*ysum*ysum
		}
		rssV := yvy - Dot(beta, b)
		if rssV <= 0 {
			rssV = 1e-12
		}
		df := float64(n - p)
		sigma2 := rssV / df
		var logDetA float64
		for j := 0; j < p; j++ {
			logDetA += 2 * math.Log(la.At(j, j))
		}
		negLL := 0.5 * (logDetV + df*math.Log(sigma2) + logDetA + df)
		aInv, err := a.SymInverse()
		if err != nil {
			return fit{}, err
		}
		return fit{negLL: negLL, beta: beta, aInv: aInv, sigma2: sigma2}, nil
	}

	// Coarse log-spaced grid over θ, then golden-section refinement.
	best := math.Inf(1)
	bestTheta := 0.0
	grid := []float64{0, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 100}
	for _, th := range grid {
		f, err := eval(th)
		if err != nil {
			continue
		}
		if f.negLL < best {
			best = f.negLL
			bestTheta = th
		}
	}
	lo, hi := bestTheta/4, bestTheta*4
	if bestTheta == 0 {
		lo, hi = 0, 1e-3
	}
	const phi = 0.6180339887498949
	a1 := hi - phi*(hi-lo)
	b1 := lo + phi*(hi-lo)
	fa, errA := eval(a1)
	fb, errB := eval(b1)
	for iter := 0; iter < 60 && errA == nil && errB == nil && hi-lo > 1e-9*(1+hi); iter++ {
		if fa.negLL < fb.negLL {
			hi, b1, fb = b1, a1, fa
			a1 = hi - phi*(hi-lo)
			fa, errA = eval(a1)
		} else {
			lo, a1, fa = a1, b1, fb
			b1 = lo + phi*(hi-lo)
			fb, errB = eval(b1)
		}
	}
	theta := bestTheta
	if errA == nil && fa.negLL < best {
		best, theta = fa.negLL, a1
	}
	if errB == nil && fb.negLL < best {
		theta = b1
	}
	final, err := eval(theta)
	if err != nil {
		return nil, err
	}

	res := &MixedLMResult{
		Names:       append([]string{"Intercept"}, names...),
		Coef:        final.beta,
		StdErr:      make([]float64, p),
		TStat:       make([]float64, p),
		PValue:      make([]float64, p),
		Theta:       theta,
		ResidualVar: final.sigma2,
		GroupVar:    theta * final.sigma2,
		GroupNames:  groupNames,
		N:           n,
		DF:          n - p,
	}
	for j := 0; j < p; j++ {
		se := math.Sqrt(final.sigma2 * final.aInv.At(j, j))
		res.StdErr[j] = se
		if se > 0 {
			res.TStat[j] = final.beta[j] / se
			res.PValue[j] = TTestPValue(res.TStat[j], float64(res.DF))
		} else {
			res.TStat[j] = math.NaN()
			res.PValue[j] = math.NaN()
		}
	}

	// BLUPs of the random intercepts: û_g = θ·n_g/(1+θ·n_g) · mean residual.
	res.GroupIntercepts = make([]float64, len(groupNames))
	fitted, _ := design.MulVec(final.beta)
	for gi, g := range groupNames {
		idx := groupIdx[g]
		var rsum float64
		for _, i := range idx {
			rsum += y[i] - fitted[i]
		}
		ng := float64(len(idx))
		res.GroupIntercepts[gi] = theta * ng / (1 + theta*ng) * (rsum / ng)
	}

	// Fixed-effects R² / adjusted R² (Table 5's "Adj. R²" row).
	var rss, tss, ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	for i := range y {
		d := y[i] - fitted[i]
		rss += d * d
		dy := y[i] - ybar
		tss += dy * dy
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(n-p)
	}
	return res, nil
}
