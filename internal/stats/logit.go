package stats

import (
	"errors"
	"fmt"
	"math"
)

// LogitResult holds a fitted logistic regression. The paper uses logistic
// regressions in two roles: to find latent demographic directions in the
// StyleGAN activation space (§5.4, where the fitted coefficient vector *is*
// the direction), and — in our platform substrate — as the estimated-action-
// rate model trained on engagement logs (§2.1).
type LogitResult struct {
	Names      []string
	Coef       []float64 // Coef[0] is the intercept
	Iterations int
	Converged  bool
	LogLik     float64
	N          int
}

// Predict returns P(y=1 | x) under the fitted model. x excludes the
// intercept (one feature per non-intercept name).
func (r *LogitResult) Predict(x []float64) float64 {
	if len(x) != len(r.Coef)-1 {
		panic(fmt.Sprintf("stats: logit predict with %d features, model has %d", len(x), len(r.Coef)-1))
	}
	z := r.Coef[0]
	for i, v := range x {
		z += r.Coef[i+1] * v
	}
	return Sigmoid(z)
}

// Direction returns the non-intercept coefficient vector. In the latent-
// direction technique this is the vector along which activations are
// perturbed to add or remove the modeled attribute.
func (r *LogitResult) Direction() []float64 {
	return append([]float64(nil), r.Coef[1:]...)
}

// Sigmoid is the standard logistic function, clamped to avoid overflow.
func Sigmoid(z float64) float64 {
	switch {
	case z > 35:
		return 1
	case z < -35:
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// LogitOptions configures Logit.
type LogitOptions struct {
	MaxIter int     // default 50
	Tol     float64 // convergence tolerance on max |Δβ|, default 1e-8
	Ridge   float64 // L2 penalty λ (0 disables); stabilises separable data
}

// ErrNoVariation is returned when the response is all-0 or all-1.
var ErrNoVariation = errors.New("stats: logistic response has no variation")

// Logit fits P(y=1|x) = σ(β₀ + β·x) by iteratively reweighted least squares
// (Newton-Raphson on the log-likelihood). y entries must be 0 or 1. names
// labels the columns of x; an intercept is always included.
func Logit(names []string, x *Matrix, y []float64, opt LogitOptions) (*LogitResult, error) {
	if len(names) != x.Cols {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), x.Cols)
	}
	n, p := x.Rows, x.Cols+1
	if len(y) != n {
		return nil, fmt.Errorf("stats: %d responses for %d rows", len(y), n)
	}
	var ones, zeros int
	for _, v := range y {
		switch v {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			return nil, fmt.Errorf("stats: logistic response must be 0/1, got %v", v)
		}
	}
	if ones == 0 || zeros == 0 {
		return nil, ErrNoVariation
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 50
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}

	beta := make([]float64, p)
	beta[0] = math.Log(float64(ones) / float64(zeros)) // start at the base-rate intercept
	mu := make([]float64, n)
	grad := make([]float64, p)
	hess := NewMatrix(p, p)

	res := &LogitResult{
		Names: append([]string{"Intercept"}, names...),
		N:     n,
	}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		res.Iterations = iter
		// Gradient and Hessian of the penalized log-likelihood.
		for j := range grad {
			grad[j] = 0
		}
		for i := range hess.Data {
			hess.Data[i] = 0
		}
		for i := 0; i < n; i++ {
			row := x.Row(i)
			z := beta[0]
			for j, v := range row {
				z += beta[j+1] * v
			}
			m := Sigmoid(z)
			mu[i] = m
			w := m * (1 - m)
			if w < 1e-10 {
				w = 1e-10
			}
			r := y[i] - m
			grad[0] += r
			hr0 := hess.Row(0)
			hr0[0] += w
			for a, va := range row {
				grad[a+1] += r * va
				hr0[a+1] += w * va
				ha := hess.Row(a + 1)
				for b := a; b < len(row); b++ {
					ha[b+1] += w * va * row[b]
				}
			}
		}
		// Mirror and apply ridge (intercept unpenalized).
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				hess.Set(b, a, hess.At(a, b))
			}
		}
		if opt.Ridge > 0 {
			for j := 1; j < p; j++ {
				grad[j] -= opt.Ridge * beta[j]
				hess.Set(j, j, hess.At(j, j)+opt.Ridge)
			}
		}
		step, err := hess.SymSolve(grad)
		if err != nil {
			return nil, fmt.Errorf("stats: logit Newton step: %w", err)
		}
		var maxStep float64
		for j := range beta {
			// Damp very large steps to keep separable problems stable.
			if step[j] > 10 {
				step[j] = 10
			} else if step[j] < -10 {
				step[j] = -10
			}
			beta[j] += step[j]
			if a := math.Abs(step[j]); a > maxStep {
				maxStep = a
			}
		}
		if maxStep < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Coef = beta
	// Final log-likelihood.
	var ll float64
	for i := 0; i < n; i++ {
		row := x.Row(i)
		z := beta[0]
		for j, v := range row {
			z += beta[j+1] * v
		}
		m := Sigmoid(z)
		if m < 1e-12 {
			m = 1e-12
		} else if m > 1-1e-12 {
			m = 1 - 1e-12
		}
		if y[i] == 1 {
			ll += math.Log(m)
		} else {
			ll += math.Log(1 - m)
		}
	}
	res.LogLik = ll
	return res, nil
}

// Inference computes Wald standard errors, z statistics, and two-sided
// p-values for a fitted logistic regression, from the inverse observed
// information (Hessian of the negative log-likelihood) at the optimum. x
// must be the regressor matrix (without intercept) the model was fitted on.
// With Ridge > 0 the fit is penalized and these are approximate.
type LogitInference struct {
	StdErr []float64
	ZStat  []float64
	PValue []float64
}

// Inference computes Wald inference for the fitted model.
func (r *LogitResult) Inference(x *Matrix) (*LogitInference, error) {
	p := len(r.Coef)
	if x.Rows != r.N || x.Cols+1 != p {
		return nil, fmt.Errorf("stats: design %dx%d does not match fitted model (n=%d, p=%d)", x.Rows, x.Cols, r.N, p)
	}
	info := NewMatrix(p, p)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		z := r.Coef[0]
		for j, v := range row {
			z += r.Coef[j+1] * v
		}
		m := Sigmoid(z)
		w := m * (1 - m)
		info.Set(0, 0, info.At(0, 0)+w)
		ir0 := info.Row(0)
		for a, va := range row {
			ir0[a+1] += w * va
			ia := info.Row(a + 1)
			for b := a; b < len(row); b++ {
				ia[b+1] += w * va * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			info.Set(b, a, info.At(a, b))
		}
	}
	cov, err := info.SymInverse()
	if err != nil {
		return nil, fmt.Errorf("stats: inverting information matrix: %w", err)
	}
	out := &LogitInference{
		StdErr: make([]float64, p),
		ZStat:  make([]float64, p),
		PValue: make([]float64, p),
	}
	for j := 0; j < p; j++ {
		se := math.Sqrt(cov.At(j, j))
		out.StdErr[j] = se
		if se > 0 {
			out.ZStat[j] = r.Coef[j] / se
			out.PValue[j] = 2 * NormalCDF(-math.Abs(out.ZStat[j]))
		} else {
			out.ZStat[j] = math.NaN()
			out.PValue[j] = math.NaN()
		}
	}
	return out, nil
}

// TwoProportionZ holds a two-proportion z-test: are two ads' delivery
// fractions (e.g. %Black with a white vs a Black face) different beyond
// binomial noise? This is the per-pair significance check behind contrasts
// like Figure 1.
type TwoProportionZ struct {
	P1, P2 float64
	Z      float64
	P      float64 // two-sided
}

// TwoProportionZTest compares successes1/n1 against successes2/n2 under the
// pooled-variance normal approximation.
func TwoProportionZTest(successes1, n1, successes2, n2 int) (TwoProportionZ, error) {
	if n1 <= 0 || n2 <= 0 {
		return TwoProportionZ{}, fmt.Errorf("stats: sample sizes must be positive (%d, %d)", n1, n2)
	}
	if successes1 < 0 || successes1 > n1 || successes2 < 0 || successes2 > n2 {
		return TwoProportionZ{}, fmt.Errorf("stats: successes out of range")
	}
	p1 := float64(successes1) / float64(n1)
	p2 := float64(successes2) / float64(n2)
	pooled := float64(successes1+successes2) / float64(n1+n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(n1) + 1/float64(n2)))
	res := TwoProportionZ{P1: p1, P2: p2}
	if se == 0 {
		res.Z, res.P = math.NaN(), math.NaN()
		return res, nil
	}
	res.Z = (p1 - p2) / se
	res.P = 2 * NormalCDF(-math.Abs(res.Z))
	return res, nil
}
