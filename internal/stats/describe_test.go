package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	if got := StdDev(xs); !almostEqual(got*got, 32.0/7, 1e-9) {
		t.Errorf("StdDev² = %v", got*got)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 10}, []float64{9, 1}); !almostEqual(got, 1.9, 1e-12) {
		t.Errorf("WeightedMean = %v", got)
	}
	if got := WeightedMean([]float64{1, 2}, []float64{0, 0}); got != 0 {
		t.Errorf("zero weights: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch: want panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty: want NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(xs, math.Min(q, 1))
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchTTest(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = 1 + rng.NormFloat64()
	}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("clear difference, p = %v", res.P)
	}
	if res.DeltaM > -0.5 {
		t.Errorf("DeltaM = %v, want ≈ -1", res.DeltaM)
	}
	// Identical samples: no significance.
	same := WelchTTest(a, a)
	if !almostEqual(same.T, 0, 1e-9) {
		t.Errorf("self-test T = %v", same.T)
	}
	// Degenerate sizes yield NaN, not panic.
	deg := WelchTTest([]float64{1}, []float64{2})
	if !math.IsNaN(deg.P) {
		t.Errorf("degenerate p = %v, want NaN", deg.P)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(a, []float64{5, 5, 5, 5})) {
		t.Error("constant series: want NaN")
	}
}

func TestBootstrapMeanCICovers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	data := make([]float64, 200)
	for i := range data {
		data[i] = 5 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapMeanCI(data, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if lo > 5 || hi < 5 {
		t.Errorf("95%% CI [%v, %v] misses the true mean 5", lo, hi)
	}
	// Interval width should be roughly 2·1.96·σ/√n ≈ 0.28.
	if w := hi - lo; w < 0.1 || w > 0.6 {
		t.Errorf("CI width %v implausible", w)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	if _, _, err := BootstrapMeanCI([]float64{1}, 100, 0.95, 1); err == nil {
		t.Error("single observation: want error")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 5, 0.95, 1); err == nil {
		t.Error("too few resamples: want error")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 100, 1.5, 1); err == nil {
		t.Error("bad confidence: want error")
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1, _ := BootstrapMeanCI(data, 200, 0.9, 9)
	lo2, hi2, _ := BootstrapMeanCI(data, 200, 0.9, 9)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("same-seed bootstrap should be deterministic")
	}
}
