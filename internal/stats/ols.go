package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// OLSResult holds a fitted ordinary-least-squares model in the shape the
// paper's regression tables report (§3.4): one coefficient per named
// explanatory variable with its standard error, t statistic, and two-sided
// p-value, plus R² and adjusted R².
type OLSResult struct {
	Names     []string  // column names, Names[0] == "Intercept" when fitted with intercept
	Coef      []float64 // estimated coefficients
	StdErr    []float64
	TStat     []float64
	PValue    []float64
	R2        float64
	AdjR2     float64
	N         int     // observations
	DF        int     // residual degrees of freedom
	Sigma2    float64 // residual variance estimate
	Residuals []float64
}

// Coefficient returns the coefficient for the named variable.
func (r *OLSResult) Coefficient(name string) (float64, bool) {
	for i, n := range r.Names {
		if n == name {
			return r.Coef[i], true
		}
	}
	return 0, false
}

// PValueOf returns the p-value for the named variable.
func (r *OLSResult) PValueOf(name string) (float64, bool) {
	for i, n := range r.Names {
		if n == name {
			return r.PValue[i], true
		}
	}
	return 0, false
}

// Significant reports whether the named variable's coefficient is
// statistically significant at the given level (e.g. 0.05).
func (r *OLSResult) Significant(name string, level float64) bool {
	p, ok := r.PValueOf(name)
	return ok && p < level
}

// Predict evaluates the fitted model at x, which must have one entry per
// name (including the leading 1 for the intercept if fitted that way).
func (r *OLSResult) Predict(x []float64) (float64, error) {
	if len(x) != len(r.Coef) {
		return 0, fmt.Errorf("stats: predict with %d features, model has %d", len(x), len(r.Coef))
	}
	return Dot(x, r.Coef), nil
}

// String renders the fit as a compact table resembling the paper's Table 4.
func (r *OLSResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %10s\n", "term", "coef", "stderr", "t", "p")
	for i, n := range r.Names {
		fmt.Fprintf(&b, "%-14s %10.4f %10.4f %8.2f %10.2g%s\n",
			n, r.Coef[i], r.StdErr[i], r.TStat[i], r.PValue[i], SignificanceStars(r.PValue[i]))
	}
	fmt.Fprintf(&b, "R² = %.3f  adj. R² = %.3f  n = %d\n", r.R2, r.AdjR2, r.N)
	return b.String()
}

// ErrTooFewObservations is returned when n ≤ p, leaving no residual degrees
// of freedom.
var ErrTooFewObservations = errors.New("stats: too few observations for the number of regressors")

// OLS fits y = X·β + ε by ordinary least squares. X must not include an
// intercept column; one is prepended automatically and reported under the
// name "Intercept", matching the presentation in the paper's tables. names
// labels the columns of X.
func OLS(names []string, x *Matrix, y []float64) (*OLSResult, error) {
	if len(names) != x.Cols {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), x.Cols)
	}
	design := NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		row := design.Row(i)
		row[0] = 1
		copy(row[1:], x.Row(i))
	}
	allNames := append([]string{"Intercept"}, names...)
	return olsDesign(allNames, design, y)
}

// OLSNoIntercept fits y = X·β with the design used exactly as given.
func OLSNoIntercept(names []string, x *Matrix, y []float64) (*OLSResult, error) {
	if len(names) != x.Cols {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), x.Cols)
	}
	return olsDesign(append([]string(nil), names...), x, y)
}

func olsDesign(names []string, x *Matrix, y []float64) (*OLSResult, error) {
	n, p := x.Rows, x.Cols
	if len(y) != n {
		return nil, fmt.Errorf("stats: %d responses for %d rows", len(y), n)
	}
	if n <= p {
		return nil, ErrTooFewObservations
	}
	xtx := x.XtX()
	xty, err := x.XtY(y)
	if err != nil {
		return nil, err
	}
	xtxInv, err := xtx.SymInverse()
	if err != nil {
		// Ridge fallback for near-singular designs, mirrored from SymSolve.
		r := xtx.Clone()
		eps := 1e-8 * (1 + r.maxDiag())
		for i := 0; i < p; i++ {
			r.Set(i, i, r.At(i, i)+eps)
		}
		if xtxInv, err = r.SymInverse(); err != nil {
			return nil, err
		}
	}
	beta, err := xtxInv.MulVec(xty)
	if err != nil {
		return nil, err
	}

	fitted, err := x.MulVec(beta)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, n)
	var rss, tss, ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	for i := range y {
		resid[i] = y[i] - fitted[i]
		rss += resid[i] * resid[i]
		d := y[i] - ybar
		tss += d * d
	}
	df := n - p
	sigma2 := rss / float64(df)

	res := &OLSResult{
		Names:     names,
		Coef:      beta,
		StdErr:    make([]float64, p),
		TStat:     make([]float64, p),
		PValue:    make([]float64, p),
		N:         n,
		DF:        df,
		Sigma2:    sigma2,
		Residuals: resid,
	}
	for j := 0; j < p; j++ {
		se := math.Sqrt(sigma2 * xtxInv.At(j, j))
		res.StdErr[j] = se
		if se > 0 {
			res.TStat[j] = beta[j] / se
			res.PValue[j] = TTestPValue(res.TStat[j], float64(df))
		} else {
			res.TStat[j] = math.NaN()
			res.PValue[j] = math.NaN()
		}
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(df)
	} else {
		res.R2 = 0
		res.AdjR2 = 0
	}
	return res, nil
}

// RobustSE computes HC1 heteroskedasticity-robust standard errors for a
// fitted OLS model (White's sandwich estimator with the n/(n-p) small-sample
// correction). Delivery fractions have binomial variance that shrinks with
// an ad's impression count, so the homoskedastic SEs the tables report are
// approximate; robust SEs let the analysis check that significance
// conclusions survive.
//
// x must be the same regressor matrix (without intercept) the model was
// fitted on.
func (r *OLSResult) RobustSE(x *Matrix) ([]float64, error) {
	n, p := x.Rows, x.Cols+1
	if n != r.N || p != len(r.Coef) {
		return nil, fmt.Errorf("stats: design %dx%d does not match fitted model (n=%d, p=%d)", n, x.Cols, r.N, len(r.Coef))
	}
	design := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		row := design.Row(i)
		row[0] = 1
		copy(row[1:], x.Row(i))
	}
	xtxInv, err := design.XtX().SymInverse()
	if err != nil {
		return nil, err
	}
	// Meat: Σ eᵢ² xᵢxᵢᵀ.
	meat := NewMatrix(p, p)
	for i := 0; i < n; i++ {
		e2 := r.Residuals[i] * r.Residuals[i]
		row := design.Row(i)
		for a := 0; a < p; a++ {
			ma := meat.Row(a)
			va := row[a] * e2
			for b := a; b < p; b++ {
				ma[b] += va * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			meat.Set(b, a, meat.At(a, b))
		}
	}
	inner, err := xtxInv.Mul(meat)
	if err != nil {
		return nil, err
	}
	sandwich, err := inner.Mul(xtxInv)
	if err != nil {
		return nil, err
	}
	correction := float64(n) / float64(n-p)
	out := make([]float64, p)
	for j := 0; j < p; j++ {
		out[j] = math.Sqrt(correction * sandwich.At(j, j))
	}
	return out, nil
}
