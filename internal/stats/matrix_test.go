package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	if _, err := MatrixFromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("dimension mismatch: want error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(3+rng.Intn(4), 2+rng.Intn(5))
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return tt.Rows == m.Rows && tt.Cols == m.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXtXMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(20, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	fast := m.XtX()
	slow, err := m.T().Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Data {
		if !almostEqual(fast.Data[i], slow.Data[i], 1e-10) {
			t.Fatalf("XtX mismatch at %d: %v vs %v", i, fast.Data[i], slow.Data[i])
		}
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	// Property: for random SPD m = AᵀA + I and random b, SymSolve returns x
	// with m·x ≈ b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewMatrix(n+3, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		m := a.XtX()
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := m.SymSolve(b)
		if err != nil {
			return false
		}
		back, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := m.Cholesky(); err == nil {
		t.Error("indefinite matrix: want error")
	}
	if _, err := NewMatrix(2, 3).Cholesky(); err == nil {
		t.Error("non-square: want error")
	}
}

func TestSymInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(10, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	m := a.XtX()
	for i := 0; i < 4; i++ {
		m.Set(i, i, m.At(i, i)+0.5)
	}
	inv, err := m.SymInverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := m.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Errorf("m·m⁻¹ (%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got, err := m.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
