package stats

import (
	"reflect"
	"testing"
)

func paperEncoder() *DummyEncoder {
	// The Table 4 encoding: race (ref white), gender (ref male), implied age
	// (ref adult).
	e := &DummyEncoder{}
	e.AddCategorical("race", "white", []string{"Black"})
	e.AddCategorical("gender", "male", []string{"Female"})
	e.AddCategorical("age", "adult", []string{"Child", "Teen", "Middle-aged", "Elderly"})
	return e
}

func TestDummyEncoderColumnNames(t *testing.T) {
	e := paperEncoder()
	want := []string{"Black", "Female", "Child", "Teen", "Middle-aged", "Elderly"}
	if got := e.ColumnNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("ColumnNames = %v", got)
	}
}

func TestDummyEncodeReferenceIsAllZero(t *testing.T) {
	e := paperEncoder()
	row, err := e.Encode(map[string]string{"race": "white", "gender": "male", "age": "adult"})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range row {
		if v != 0 {
			t.Errorf("reference row[%d] = %v", i, v)
		}
	}
}

func TestDummyEncodeLevels(t *testing.T) {
	e := paperEncoder()
	row, err := e.Encode(map[string]string{"race": "Black", "gender": "Female", "age": "Elderly"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, 0, 0, 1}
	if !reflect.DeepEqual(row, want) {
		t.Errorf("row = %v, want %v", row, want)
	}
}

func TestDummyEncodeErrors(t *testing.T) {
	e := paperEncoder()
	if _, err := e.Encode(map[string]string{"race": "Black", "gender": "Female"}); err == nil {
		t.Error("missing variable: want error")
	}
	if _, err := e.Encode(map[string]string{"race": "green", "gender": "male", "age": "adult"}); err == nil {
		t.Error("unknown level: want error")
	}
	if _, err := e.EncodeAll(nil); err == nil {
		t.Error("empty observations: want error")
	}
}

func TestEncodeAllShape(t *testing.T) {
	e := paperEncoder()
	obs := []map[string]string{
		{"race": "white", "gender": "male", "age": "adult"},
		{"race": "Black", "gender": "Female", "age": "Child"},
	}
	m, err := e.EncodeAll(obs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 6 {
		t.Errorf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 1 || m.At(1, 2) != 1 {
		t.Errorf("second row = %v", m.Row(1))
	}
}

func TestLevelsOf(t *testing.T) {
	obs := []map[string]string{
		{"job": "lumber"}, {"job": "janitor"}, {"job": "lumber"}, {"other": "x"},
	}
	got := LevelsOf(obs, "job")
	want := []string{"janitor", "lumber"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LevelsOf = %v", got)
	}
}

func TestDummyRegressionIntegration(t *testing.T) {
	// End-to-end: encode a categorical design and verify OLS reads group
	// means through the dummy coding. y = 1 (ref), 3 (level L).
	e := &DummyEncoder{}
	e.AddCategorical("g", "ref", []string{"L"})
	var obs []map[string]string
	var y []float64
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			obs = append(obs, map[string]string{"g": "ref"})
			y = append(y, 1)
		} else {
			obs = append(obs, map[string]string{"g": "L"})
			y = append(y, 3)
		}
	}
	x, err := e.EncodeAll(obs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OLS(e.ColumnNames(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Coef[0], 1, 1e-9) {
		t.Errorf("intercept = %v, want 1 (reference mean)", res.Coef[0])
	}
	if c, _ := res.Coefficient("L"); !almostEqual(c, 2, 1e-9) {
		t.Errorf("L coefficient = %v, want 2 (difference from reference)", c)
	}
}
