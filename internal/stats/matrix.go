// Package stats implements the statistical machinery the paper's analysis
// relies on: dense linear algebra, the Student-t and normal distributions,
// ordinary least squares with standard errors and p-values (Tables 4 and A1),
// logistic regression (used both to find latent directions in §5.4 and to
// train the platform's estimated-action-rate model), and a random-intercept
// linear mixed model (Table 5). Only the standard library is used.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("stats: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m × v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d × %d-vector", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// XtX computes Xᵀ·X, the Gram matrix (Cols×Cols, symmetric).
func (m *Matrix) XtX() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.Cols; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			orow := out.Row(a)
			for b := a; b < m.Cols; b++ {
				orow[b] += ra * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < m.Cols; a++ {
		for b := a + 1; b < m.Cols; b++ {
			out.Set(b, a, out.At(a, b))
		}
	}
	return out
}

// XtY computes Xᵀ·y for a response vector y of length Rows.
func (m *Matrix) XtY(y []float64) ([]float64, error) {
	if len(y) != m.Rows {
		return nil, fmt.Errorf("stats: response length %d != rows %d", len(y), m.Rows)
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := m.Row(i)
		for j, rv := range row {
			out[j] += rv * yi
		}
	}
	return out, nil
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// singular or not positive definite — in regression terms, when the design
// matrix is rank deficient (perfectly collinear columns).
var ErrNotPositiveDefinite = errors.New("stats: matrix not positive definite (collinear design?)")

// Cholesky computes the lower-triangular L with L·Lᵀ = m for a symmetric
// positive-definite m. Only the lower triangle of m is read.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: Cholesky of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = m.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		lj[j] = math.Sqrt(d)
		inv := 1 / lj[j]
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s * inv
		}
	}
	return l, nil
}

// CholSolve solves m·x = b given the Cholesky factor l of m (forward then
// back substitution).
func CholSolve(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("stats: rhs length %d != %d", len(b), n)
	}
	// Forward: L·z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * z[k]
		}
		z[i] = s / li[i]
	}
	// Back: Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SymSolve solves m·x = b for symmetric positive-definite m. If m is not
// positive definite it retries once with a small ridge (m + εI), which is the
// standard remedy for near-collinear regression designs; if that also fails
// the error is returned.
func (m *Matrix) SymSolve(b []float64) ([]float64, error) {
	l, err := m.Cholesky()
	if err != nil {
		r := m.Clone()
		eps := 1e-8 * (1 + r.maxDiag())
		for i := 0; i < r.Rows; i++ {
			r.Set(i, i, r.At(i, i)+eps)
		}
		if l, err = r.Cholesky(); err != nil {
			return nil, err
		}
	}
	return CholSolve(l, b)
}

// SymInverse inverts a symmetric positive-definite matrix via its Cholesky
// factor (solving against unit vectors).
func (m *Matrix) SymInverse() (*Matrix, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := CholSolve(l, e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

func (m *Matrix) maxDiag() float64 {
	var mx float64
	for i := 0; i < m.Rows && i < m.Cols; i++ {
		if v := math.Abs(m.At(i, i)); v > mx {
			mx = v
		}
	}
	return mx
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}
