package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogitRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4000
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	b0, b1, b2 := -0.5, 1.2, -0.8
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		p := Sigmoid(b0 + b1*a + b2*b)
		if rng.Float64() < p {
			y[i] = 1
		}
	}
	res, err := Logit([]string{"a", "b"}, x, y, LogitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	truth := []float64{b0, b1, b2}
	for i, w := range truth {
		if math.Abs(res.Coef[i]-w) > 0.15 {
			t.Errorf("coef[%d] = %v, want ≈ %v", i, res.Coef[i], w)
		}
	}
}

func TestLogitPredictMatchesBaseRate(t *testing.T) {
	// With no informative features, the intercept-only prediction should be
	// close to the empirical base rate.
	rng := rand.New(rand.NewSource(12))
	n := 1000
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		if rng.Float64() < 0.3 {
			y[i] = 1
		}
	}
	res, err := Logit([]string{"noise"}, x, y, LogitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rate := Mean(y)
	if p := res.Predict([]float64{0}); math.Abs(p-rate) > 0.05 {
		t.Errorf("base-rate prediction %v vs empirical %v", p, rate)
	}
}

func TestLogitNoVariation(t *testing.T) {
	x := NewMatrix(10, 1)
	y := make([]float64, 10) // all zeros
	if _, err := Logit([]string{"a"}, x, y, LogitOptions{}); !errors.Is(err, ErrNoVariation) {
		t.Errorf("want ErrNoVariation, got %v", err)
	}
	for i := range y {
		y[i] = 1
	}
	if _, err := Logit([]string{"a"}, x, y, LogitOptions{}); !errors.Is(err, ErrNoVariation) {
		t.Errorf("want ErrNoVariation, got %v", err)
	}
}

func TestLogitRejectsNonBinary(t *testing.T) {
	x := NewMatrix(3, 1)
	if _, err := Logit([]string{"a"}, x, []float64{0, 1, 0.5}, LogitOptions{}); err == nil {
		t.Error("non-binary response: want error")
	}
}

func TestLogitSeparableDataWithRidge(t *testing.T) {
	// Perfectly separable data diverges under plain Newton; ridge keeps it
	// finite. The latent-direction technique relies on this (§5.4: labels
	// from a deterministic classifier are often separable in activation
	// space).
	n := 100
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) - float64(n)/2
		x.Set(i, 0, v)
		if v > 0 {
			y[i] = 1
		}
	}
	res, err := Logit([]string{"v"}, x, y, LogitOptions{Ridge: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("non-finite coefficient %v", c)
		}
	}
	if res.Coef[1] <= 0 {
		t.Errorf("direction coefficient should be positive, got %v", res.Coef[1])
	}
}

func TestLogitDirectionSignProperty(t *testing.T) {
	// Property: the fitted direction has positive inner product with the
	// generating direction (for any random direction).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 4
		truth := make([]float64, dim)
		for j := range truth {
			truth[j] = rng.NormFloat64()
		}
		n := 800
		x := NewMatrix(n, dim)
		y := make([]float64, n)
		ones := 0
		for i := 0; i < n; i++ {
			var z float64
			for j := 0; j < dim; j++ {
				v := rng.NormFloat64()
				x.Set(i, j, v)
				z += truth[j] * v
			}
			if rng.Float64() < Sigmoid(z) {
				y[i] = 1
				ones++
			}
		}
		if ones == 0 || ones == n {
			return true // degenerate draw; skip
		}
		res, err := Logit(make([]string, dim), x, y, LogitOptions{Ridge: 0.1})
		if err != nil {
			return false
		}
		return Dot(res.Direction(), truth) > 0
	}
	names := func(k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = "x"
		}
		return out
	}
	_ = names
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLogitErrors(t *testing.T) {
	if _, err := Logit([]string{"a", "b"}, NewMatrix(5, 1), make([]float64, 5), LogitOptions{}); err == nil {
		t.Error("name mismatch: want error")
	}
	if _, err := Logit([]string{"a"}, NewMatrix(5, 1), make([]float64, 3), LogitOptions{}); err == nil {
		t.Error("y length mismatch: want error")
	}
}

func TestSigmoidClamps(t *testing.T) {
	if Sigmoid(100) != 1 || Sigmoid(-100) != 0 {
		t.Error("extreme values should clamp")
	}
	if !almostEqual(Sigmoid(0), 0.5, 1e-15) {
		t.Error("Sigmoid(0) != 0.5")
	}
}

func TestLogitInference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 4000
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		if rng.Float64() < Sigmoid(0.8*v) {
			y[i] = 1
		}
	}
	res, err := Logit([]string{"v"}, x, y, LogitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := res.Inference(x)
	if err != nil {
		t.Fatal(err)
	}
	// The strong slope should be clearly significant with sensible SEs.
	if inf.PValue[1] > 1e-6 {
		t.Errorf("slope p = %v", inf.PValue[1])
	}
	// The estimate should sit within 4 SEs of truth.
	if d := res.Coef[1] - 0.8; d > 4*inf.StdErr[1] || d < -4*inf.StdErr[1] {
		t.Errorf("slope %v ± %v vs truth 0.8", res.Coef[1], inf.StdErr[1])
	}
	if _, err := res.Inference(NewMatrix(n, 3)); err == nil {
		t.Error("mismatched design: want error")
	}
}

func TestTwoProportionZTest(t *testing.T) {
	// Clear difference: 560/1000 vs 290/1000.
	res, err := TwoProportionZTest(560, 1000, 290, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-10 {
		t.Errorf("clear difference p = %v", res.P)
	}
	if res.P1 != 0.56 || res.P2 != 0.29 {
		t.Errorf("proportions %v, %v", res.P1, res.P2)
	}
	// No difference: p should be large.
	same, err := TwoProportionZTest(300, 1000, 310, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if same.P < 0.1 {
		t.Errorf("near-identical proportions p = %v", same.P)
	}
	// Degenerate pooled variance (all successes) yields NaN, not panic.
	deg, err := TwoProportionZTest(10, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(deg.P) {
		t.Errorf("degenerate p = %v, want NaN", deg.P)
	}
	if _, err := TwoProportionZTest(1, 0, 1, 2); err == nil {
		t.Error("zero n: want error")
	}
	if _, err := TwoProportionZTest(5, 2, 1, 2); err == nil {
		t.Error("successes > n: want error")
	}
}
