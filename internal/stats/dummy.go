package stats

import (
	"fmt"
	"sort"
)

// DummyEncoder builds regression design matrices from categorical variables
// using dummy (reference-level) encoding: a categorical with N levels becomes
// N−1 binary columns, with the reference level represented by all-zeros and
// absorbed into the intercept. This is the encoding the paper uses
// (footnote 6): in Table 4a the intercept is "white adult male" because
// white, male, and adult are the reference levels.
type DummyEncoder struct {
	vars []dummyVar
}

type dummyVar struct {
	name      string
	reference string
	levels    []string // non-reference levels, in declaration order
}

// AddCategorical declares a categorical variable with an explicit reference
// level. levels must not contain the reference. Column names are the bare
// level names, matching the paper's table rows ("Black", "Female", "Child").
func (e *DummyEncoder) AddCategorical(name, reference string, levels []string) {
	e.vars = append(e.vars, dummyVar{name: name, reference: reference, levels: append([]string(nil), levels...)})
}

// ColumnNames returns the names of the encoded columns in order.
func (e *DummyEncoder) ColumnNames() []string {
	var out []string
	for _, v := range e.vars {
		out = append(out, v.levels...)
	}
	return out
}

// Encode converts one observation — a map from variable name to level — into
// a design-matrix row. Unknown levels are an error; the reference level
// encodes to all zeros for its variable.
func (e *DummyEncoder) Encode(obs map[string]string) ([]float64, error) {
	row := make([]float64, 0, len(e.ColumnNames()))
	for _, v := range e.vars {
		level, ok := obs[v.name]
		if !ok {
			return nil, fmt.Errorf("stats: observation missing variable %q", v.name)
		}
		found := level == v.reference
		for _, l := range v.levels {
			if l == level {
				row = append(row, 1)
				found = true
			} else {
				row = append(row, 0)
			}
		}
		if !found {
			return nil, fmt.Errorf("stats: variable %q has unknown level %q", v.name, level)
		}
	}
	return row, nil
}

// EncodeAll converts a slice of observations into a design matrix.
func (e *DummyEncoder) EncodeAll(obs []map[string]string) (*Matrix, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("stats: no observations")
	}
	rows := make([][]float64, len(obs))
	for i, o := range obs {
		r, err := e.Encode(o)
		if err != nil {
			return nil, fmt.Errorf("observation %d: %w", i, err)
		}
		rows[i] = r
	}
	return MatrixFromRows(rows)
}

// LevelsOf returns the sorted distinct values of key across observations,
// convenient for building encoders from data.
func LevelsOf(obs []map[string]string, key string) []string {
	set := map[string]bool{}
	for _, o := range obs {
		if v, ok := o[key]; ok {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
