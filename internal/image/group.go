package image

import (
	"fmt"
	"math/rand"
)

// GroupPhoto composes several headshots into one creative — the "images
// with a diverse group of faces" case the paper lists as future work (§7).
//
// The composite's person axes are the members' means: this models how a
// face-attribute pipeline that averages per-face scores perceives a group
// shot. A two-person image of one white and one Black person therefore sits
// near the middle of the race axis, and the E14 extension experiment checks
// whether that translates into more balanced delivery than either
// single-person image produces. Apparent age is likewise the mean, and the
// nuisance bank is re-rolled (a group composition is a different photo).
func GroupPhoto(faces []Features, rng *rand.Rand) (Features, error) {
	if len(faces) == 0 {
		return Features{}, fmt.Errorf("image: group photo needs at least one face")
	}
	job := faces[0].Job
	out := Features{HasPerson: true, Job: job}
	for i := range faces {
		f := &faces[i]
		if !f.HasPerson {
			return Features{}, fmt.Errorf("image: group member %d has no person", i)
		}
		if f.Job != job {
			return Features{}, fmt.Errorf("image: group members advertise different jobs (%q vs %q)", f.Job, job)
		}
		out.GenderAxis += f.GenderAxis
		out.RaceAxis += f.RaceAxis
		out.AgeYears += f.AgeYears
	}
	n := float64(len(faces))
	out.GenderAxis /= n
	out.RaceAxis /= n
	out.AgeYears /= n
	for i := range out.Nuisance {
		out.Nuisance[i] = 0.5 * rng.NormFloat64()
	}
	out.ApplyPresentationBias()
	return out, nil
}
