package image

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/adaudit/impliedidentity/internal/demo"
)

func TestGroupPhotoAveragesPersonAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	white := FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	black := FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedElderly})
	g, err := GroupPhoto([]Features{white, black}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasPerson {
		t.Error("group photo should contain people")
	}
	if want := (white.RaceAxis + black.RaceAxis) / 2; math.Abs(g.RaceAxis-want) > 1e-12 {
		t.Errorf("race axis %v, want %v", g.RaceAxis, want)
	}
	if want := (white.AgeYears + black.AgeYears) / 2; math.Abs(g.AgeYears-want) > 1e-12 {
		t.Errorf("age %v, want %v", g.AgeYears, want)
	}
}

func TestGroupPhotoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GroupPhoto(nil, rng); err == nil {
		t.Error("empty group: want error")
	}
	face := FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	if _, err := GroupPhoto([]Features{face, {}}, rng); err == nil {
		t.Error("member without a person: want error")
	}
	a := face
	a.Job = "lumber"
	b := face
	b.Job = "nurse"
	if _, err := GroupPhoto([]Features{a, b}, rng); err == nil {
		t.Error("mixed jobs: want error")
	}
}

func TestGroupPhotoSingleMemberProperty(t *testing.T) {
	// Property: a one-person "group" keeps that person's axes exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := demo.AllProfiles()[int(uint64(seed)%20)]
		face := FromProfile(p)
		face.GenderAxis += 0.1 * rng.NormFloat64()
		g, err := GroupPhoto([]Features{face}, rng)
		if err != nil {
			return false
		}
		return g.GenderAxis-face.GenderAxis < 1e-12 && face.GenderAxis-g.GenderAxis < 1e-12 &&
			g.RaceAxis == face.RaceAxis && g.AgeYears == face.AgeYears
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroupPhotoBoundedAxesProperty(t *testing.T) {
	// Property: group axes stay within the members' min/max (convexity of
	// the mean).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		faces := make([]Features, n)
		minR, maxR := math.Inf(1), math.Inf(-1)
		for i := range faces {
			p := demo.AllProfiles()[rng.Intn(20)]
			faces[i] = FromProfile(p)
			if faces[i].RaceAxis < minR {
				minR = faces[i].RaceAxis
			}
			if faces[i].RaceAxis > maxR {
				maxR = faces[i].RaceAxis
			}
		}
		g, err := GroupPhoto(faces, rng)
		if err != nil {
			return false
		}
		return g.RaceAxis >= minR-1e-12 && g.RaceAxis <= maxR+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
