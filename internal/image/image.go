// Package image models ad creative images in feature space. The study never
// needs raw pixels: every consumer of an image — the Deepface-style
// classifier (§5.4), the platform's content-understanding model that feeds
// delivery optimization (§2.1), and the human annotators who labelled the
// stock photos (§3.1) — reads a finite set of perceptual attributes. We make
// that attribute vector the image representation itself: three "person" axes
// (presented gender, presented race, apparent age) plus a bank of nuisance
// axes (smile, clothing, lighting, background, composition, pose) that real
// photographs vary on and that synthetically controlled images hold fixed.
//
// The key property the paper exploits is exactly reproducible here: stock
// photos of the same demographic differ substantially in nuisance axes,
// while StyleGAN-generated variants of one "person" differ only along the
// person axes (§5.4-§5.5).
package image

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// NumNuisance is the number of nuisance axes carried by every image.
const NumNuisance = 8

// Names of the nuisance axes, for diagnostics and ablation reports.
var NuisanceNames = [NumNuisance]string{
	"smile", "clothing-brightness", "lighting-warmth", "background-complexity",
	"head-pose", "expression-intensity", "image-sharpness", "color-saturation",
}

// Indexes into the nuisance bank that other packages reference by meaning.
const (
	NuisanceSmile = 0
)

// Features is one ad image. GenderAxis runs from -1 (masculine presentation)
// to +1 (feminine presentation); RaceAxis runs from -1 (white presentation)
// to +1 (Black presentation). AgeYears is the apparent age of the person
// pictured. HasPerson is false for background-only images (the §6 job
// backgrounds before a face is composited on).
type Features struct {
	HasPerson  bool
	GenderAxis float64
	RaceAxis   float64
	AgeYears   float64
	Nuisance   [NumNuisance]float64
	// Job is the advertised job type for §6 composites ("lumber",
	// "janitor", …); empty for plain headshots.
	Job string
}

// FromProfile returns the noiseless feature-space location of a demographic
// profile: axis saturation ±0.9 and the group's representative age.
func FromProfile(p demo.Profile) Features {
	f := Features{HasPerson: true, AgeYears: p.Age.RepresentativeYears()}
	if p.Gender == demo.GenderFemale {
		f.GenderAxis = 0.9
	} else {
		f.GenderAxis = -0.9
	}
	if p.Race == demo.RaceBlack {
		f.RaceAxis = 0.9
	} else {
		f.RaceAxis = -0.9
	}
	return f
}

// ImpliedProfile reads the demographic profile a human annotator would
// assign to the image (§3.1 labels stock photos manually). It is the
// noise-free inverse of FromProfile and intentionally has no error model —
// classifier bias lives in package face, not here.
func (f Features) ImpliedProfile() demo.Profile {
	p := demo.Profile{}
	if f.GenderAxis >= 0 {
		p.Gender = demo.GenderFemale
	} else {
		p.Gender = demo.GenderMale
	}
	if f.RaceAxis >= 0 {
		p.Race = demo.RaceBlack
	} else {
		p.Race = demo.RaceWhite
	}
	p.Age = ImpliedAgeForYears(f.AgeYears)
	return p
}

// ImpliedAgeForYears maps an apparent age in years to the implied age group.
func ImpliedAgeForYears(years float64) demo.ImpliedAge {
	switch {
	case years < 13:
		return demo.ImpliedChild
	case years < 20:
		return demo.ImpliedTeen
	case years < 40:
		return demo.ImpliedAdult
	case years < 62:
		return demo.ImpliedMiddleAged
	default:
		return demo.ImpliedElderly
	}
}

// Vector flattens the image into the fixed-order float vector consumed by
// classifiers: [gender, race, age/50, nuisance...]. Age is scaled so all
// entries have comparable magnitude.
func (f Features) Vector() []float64 {
	out := make([]float64, 3+NumNuisance)
	out[0] = f.GenderAxis
	out[1] = f.RaceAxis
	out[2] = f.AgeYears / 50
	copy(out[3:], f.Nuisance[:])
	return out
}

// VectorDim is the length of Vector().
const VectorDim = 3 + NumNuisance

// FeatureNames labels the entries of Vector().
func FeatureNames() []string {
	out := []string{"gender-axis", "race-axis", "age-scaled"}
	return append(out, NuisanceNames[:]...)
}

// NuisanceDistance returns the Euclidean distance between two images in
// nuisance space only — the quantity that is large between stock photos and
// near zero between StyleGAN variants of one person.
func NuisanceDistance(a, b Features) float64 {
	var s float64
	for i := range a.Nuisance {
		d := a.Nuisance[i] - b.Nuisance[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// genderSmileCoupling reproduces the presentation bias the paper calls out
// (§5.4): images presenting as more feminine also tend to show a more
// pronounced smile, both in training corpora and therefore in anything a
// model learns from them. Stock photos exhibit it; the GAN's latent space
// inherits it.
const genderSmileCoupling = 0.35

// ApplyPresentationBias couples the smile nuisance axis to the gender axis.
// It is called by both the stock sampler and the GAN synthesizer so the bias
// is a property of the image *distribution*, not of any single generator.
func (f *Features) ApplyPresentationBias() {
	f.Nuisance[NuisanceSmile] += genderSmileCoupling * f.GenderAxis
}

// Stock photo sampling ---------------------------------------------------

// StockOptions configures stock-photo sampling.
type StockOptions struct {
	// NuisanceStdDev is the standard deviation of each nuisance axis across
	// stock photos — the photo-to-photo variation in composition, clothing,
	// lighting, etc. that §5.4 sets out to remove.
	NuisanceStdDev float64
	// PersonJitter is demographic-presentation noise: two photos of
	// different people from the same group don't sit at the exact same spot
	// on the person axes.
	PersonJitter float64
	// AgeJitterYears spreads apparent age within the implied group.
	AgeJitterYears float64
}

// DefaultStockOptions matches the variance contrast the paper describes.
func DefaultStockOptions() StockOptions {
	return StockOptions{NuisanceStdDev: 0.8, PersonJitter: 0.15, AgeJitterYears: 3}
}

// StockPhoto is one licensed stock image with its manual annotation.
type StockPhoto struct {
	ID       string
	Label    demo.Profile // the manual annotation (§3.1)
	Features Features
}

// StockCatalog is the balanced 100-image set: five distinct people for each
// of the 20 demographic combinations (§3.1).
type StockCatalog struct {
	Photos []StockPhoto
}

// NewStockCatalog samples a balanced catalog: perPerson photos for each of
// the 20 profiles. The paper uses perPerson = 5 (100 images total).
func NewStockCatalog(perPerson int, opt StockOptions, rng *rand.Rand) (*StockCatalog, error) {
	if perPerson <= 0 {
		return nil, fmt.Errorf("image: perPerson must be positive, got %d", perPerson)
	}
	cat := &StockCatalog{}
	for _, p := range demo.AllProfiles() {
		for k := 0; k < perPerson; k++ {
			f := FromProfile(p)
			f.GenderAxis += opt.PersonJitter * rng.NormFloat64()
			f.RaceAxis += opt.PersonJitter * rng.NormFloat64()
			f.AgeYears += opt.AgeJitterYears * rng.NormFloat64()
			clampAxes(&f, p)
			for i := range f.Nuisance {
				f.Nuisance[i] = opt.NuisanceStdDev * rng.NormFloat64()
			}
			f.ApplyPresentationBias()
			cat.Photos = append(cat.Photos, StockPhoto{
				ID:       fmt.Sprintf("stock-%s-%d", compactProfile(p), k+1),
				Label:    p,
				Features: f,
			})
		}
	}
	return cat, nil
}

// clampAxes keeps the jittered presentation on the labelled side of each
// axis and the apparent age inside the labelled group, so the manual
// annotation remains correct (annotators labelled what they saw).
func clampAxes(f *Features, p demo.Profile) {
	if p.Gender == demo.GenderFemale && f.GenderAxis < 0.3 {
		f.GenderAxis = 0.3
	} else if p.Gender == demo.GenderMale && f.GenderAxis > -0.3 {
		f.GenderAxis = -0.3
	}
	if p.Race == demo.RaceBlack && f.RaceAxis < 0.3 {
		f.RaceAxis = 0.3
	} else if p.Race == demo.RaceWhite && f.RaceAxis > -0.3 {
		f.RaceAxis = -0.3
	}
	if ImpliedAgeForYears(f.AgeYears) != p.Age {
		f.AgeYears = p.Age.RepresentativeYears()
	}
}

func compactProfile(p demo.Profile) string {
	return fmt.Sprintf("%c%c-%s", p.Race.String()[0], p.Gender.String()[0], p.Age)
}

// Job-background compositing (§6) -----------------------------------------

// JobTypes lists the 11 job categories from Ali et al. that §6 re-advertises
// with composited faces.
func JobTypes() []string {
	return []string{
		"ai-engineer", "doctor", "janitor", "lawyer", "lumber", "nurse",
		"preschool-teacher", "restaurant-server", "secretary",
		"supermarket-clerk", "taxi-driver",
	}
}

// CompositeOnJobBackground superimposes a face image onto a job-specific
// stock background (§6: "We super-impose on top of these images the faces
// generated using StyleGAN 2"). The person axes are preserved; the
// background contributes its own nuisance signature and tags the image with
// the job type the delivery model will read.
func CompositeOnJobBackground(face Features, job string, rng *rand.Rand) (Features, error) {
	if !face.HasPerson {
		return Features{}, fmt.Errorf("image: composite requires a face image")
	}
	known := false
	for _, j := range JobTypes() {
		if j == job {
			known = true
			break
		}
	}
	if !known {
		return Features{}, fmt.Errorf("image: unknown job type %q", job)
	}
	out := face
	out.Job = job
	// The background dominates composition/lighting nuisance axes.
	for i := 2; i < NumNuisance; i++ {
		out.Nuisance[i] = 0.5 * rng.NormFloat64()
	}
	return out, nil
}
