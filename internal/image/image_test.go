package image

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/adaudit/impliedidentity/internal/demo"
)

func TestFromProfileImpliedRoundTrip(t *testing.T) {
	for _, p := range demo.AllProfiles() {
		f := FromProfile(p)
		if !f.HasPerson {
			t.Errorf("%v: HasPerson false", p)
		}
		if got := f.ImpliedProfile(); got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestImpliedAgeForYearsBoundaries(t *testing.T) {
	cases := map[float64]demo.ImpliedAge{
		5:  demo.ImpliedChild,
		12: demo.ImpliedChild,
		13: demo.ImpliedTeen,
		19: demo.ImpliedTeen,
		20: demo.ImpliedAdult,
		39: demo.ImpliedAdult,
		40: demo.ImpliedMiddleAged,
		61: demo.ImpliedMiddleAged,
		62: demo.ImpliedElderly,
		90: demo.ImpliedElderly,
	}
	for years, want := range cases {
		if got := ImpliedAgeForYears(years); got != want {
			t.Errorf("ImpliedAgeForYears(%v) = %v, want %v", years, got, want)
		}
	}
}

func TestRepresentativeYearsRoundTrip(t *testing.T) {
	// Property: each implied group's representative age maps back to itself.
	for _, a := range demo.AllImpliedAges() {
		if got := ImpliedAgeForYears(a.RepresentativeYears()); got != a {
			t.Errorf("%v -> %v years -> %v", a, a.RepresentativeYears(), got)
		}
	}
}

func TestVectorShapeAndNames(t *testing.T) {
	f := FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	v := f.Vector()
	if len(v) != VectorDim {
		t.Fatalf("Vector length %d != VectorDim %d", len(v), VectorDim)
	}
	if len(FeatureNames()) != VectorDim {
		t.Fatalf("FeatureNames length %d", len(FeatureNames()))
	}
	if v[0] != f.GenderAxis || v[1] != f.RaceAxis {
		t.Error("vector order wrong")
	}
}

func TestNewStockCatalogBalancedAndLabelled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat, err := NewStockCatalog(5, DefaultStockOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Photos) != 100 {
		t.Fatalf("catalog size %d, want 100", len(cat.Photos))
	}
	counts := map[demo.Profile]int{}
	ids := map[string]bool{}
	for _, ph := range cat.Photos {
		counts[ph.Label]++
		if ids[ph.ID] {
			t.Errorf("duplicate photo ID %s", ph.ID)
		}
		ids[ph.ID] = true
		// Annotation must agree with what the image shows.
		if got := ph.Features.ImpliedProfile(); got != ph.Label {
			t.Errorf("photo %s: label %v but image implies %v", ph.ID, ph.Label, got)
		}
	}
	for p, n := range counts {
		if n != 5 {
			t.Errorf("profile %v: %d photos, want 5", p, n)
		}
	}
}

func TestNewStockCatalogErrors(t *testing.T) {
	if _, err := NewStockCatalog(0, DefaultStockOptions(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("perPerson 0: want error")
	}
}

func TestStockNuisanceVarianceHigh(t *testing.T) {
	// Stock photos of the same profile must differ substantially in
	// nuisance space — the contrast the synthetic pipeline removes.
	rng := rand.New(rand.NewSource(2))
	cat, err := NewStockCatalog(5, DefaultStockOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	byProfile := map[demo.Profile][]Features{}
	for _, ph := range cat.Photos {
		byProfile[ph.Label] = append(byProfile[ph.Label], ph.Features)
	}
	var sum float64
	var n int
	for _, fs := range byProfile {
		for i := 0; i < len(fs); i++ {
			for j := i + 1; j < len(fs); j++ {
				sum += NuisanceDistance(fs[i], fs[j])
				n++
			}
		}
	}
	if mean := sum / float64(n); mean < 1.0 {
		t.Errorf("mean within-profile nuisance distance %v, want >= 1 for stock photos", mean)
	}
}

func TestPresentationBiasCouplesSmileToGender(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cat, err := NewStockCatalog(10, DefaultStockOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var fSmile, mSmile float64
	var fN, mN int
	for _, ph := range cat.Photos {
		if ph.Label.Gender == demo.GenderFemale {
			fSmile += ph.Features.Nuisance[NuisanceSmile]
			fN++
		} else {
			mSmile += ph.Features.Nuisance[NuisanceSmile]
			mN++
		}
	}
	if fSmile/float64(fN) <= mSmile/float64(mN) {
		t.Errorf("female-presenting images should smile more on average: %v vs %v",
			fSmile/float64(fN), mSmile/float64(mN))
	}
}

func TestNuisanceDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Features
		for i := range a.Nuisance {
			a.Nuisance[i] = rng.NormFloat64()
			b.Nuisance[i] = rng.NormFloat64()
		}
		d := NuisanceDistance(a, b)
		// Symmetry, non-negativity, identity.
		return d >= 0 && NuisanceDistance(b, a) == d && NuisanceDistance(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeOnJobBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	face := FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	out, err := CompositeOnJobBackground(face, "lumber", rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Job != "lumber" {
		t.Errorf("Job = %q", out.Job)
	}
	// Person axes survive compositing.
	if out.GenderAxis != face.GenderAxis || out.RaceAxis != face.RaceAxis || out.AgeYears != face.AgeYears {
		t.Error("compositing must not alter the person axes")
	}

	if _, err := CompositeOnJobBackground(face, "astronaut", rng); err == nil {
		t.Error("unknown job: want error")
	}
	if _, err := CompositeOnJobBackground(Features{}, "lumber", rng); err == nil {
		t.Error("no person: want error")
	}
}

func TestJobTypesMatchPaper(t *testing.T) {
	jobs := JobTypes()
	if len(jobs) != 11 {
		t.Fatalf("JobTypes = %d, want 11 (Ali et al. categories)", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j] {
			t.Errorf("duplicate job %q", j)
		}
		seen[j] = true
	}
	for _, want := range []string{"lumber", "janitor", "supermarket-clerk"} {
		if !seen[want] {
			t.Errorf("missing paper job %q", want)
		}
	}
}
