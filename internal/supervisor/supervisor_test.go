package supervisor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// fakeClock drives the health model and supervisor without real time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) { f.Advance(d) }

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestHealthScoring(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewFleetHealth(1, Thresholds{SuspectAfter: 2, DownAfter: 4}, reg, newFakeClock())

	if got := h.Observe(0, false); got != Healthy {
		t.Fatalf("1 failure: %v, want healthy", got)
	}
	if got := h.Observe(0, false); got != Suspect {
		t.Fatalf("2 failures: %v, want suspect", got)
	}
	// An HTTP answer — any answer — resets the streak entirely.
	if got := h.Observe(0, true); got != Healthy {
		t.Fatalf("answer after suspect: %v, want healthy", got)
	}
	for i := 0; i < 3; i++ {
		h.Observe(0, false)
	}
	if got := h.State(0); got != Suspect {
		t.Fatalf("3 failures: %v, want suspect", got)
	}
	if got := h.Observe(0, false); got != Down {
		t.Fatalf("4 failures: %v, want down", got)
	}
	if h.DownSince(0).IsZero() {
		t.Fatalf("down shard has no downSince")
	}
	// Observations cannot promote out of down — readmission goes through
	// the rejoin gate only.
	if got := h.Observe(0, true); got != Down {
		t.Fatalf("answer while down: %v, want down (rejoin gate only)", got)
	}
	if !h.MarkRecovering(0) {
		t.Fatalf("MarkRecovering from down refused")
	}
	if h.MarkRecovering(0) {
		t.Fatalf("MarkRecovering from recovering accepted")
	}
	if got := h.Observe(0, true); got != Recovering {
		t.Fatalf("answer while recovering: %v, want recovering", got)
	}
	h.MarkHealthy(0)
	if got := h.State(0); got != Healthy {
		t.Fatalf("after MarkHealthy: %v", got)
	}
	if !h.DownSince(0).IsZero() {
		t.Fatalf("downSince survived readmission")
	}
}

// The structural no-flap property: a shard answering every request — even if
// every answer is an injected 5xx — never leaves healthy, because Observe
// scores liveness, not success. Satellite check for the fault-injection
// wiring.
func TestHealthNeverFlapsOnErrorAnswers(t *testing.T) {
	h := NewFleetHealth(1, Thresholds{}, nil, newFakeClock())
	for i := 0; i < 1000; i++ {
		// alive=true models any HTTP status arriving, 500s included.
		if got := h.Observe(0, true); got != Healthy {
			t.Fatalf("iteration %d: %v, want healthy", i, got)
		}
	}
	// Even interleaved transport failures below the threshold never reach
	// suspect when answers keep arriving.
	for i := 0; i < 100; i++ {
		h.Observe(0, false)
		if got := h.Observe(0, true); got != Healthy {
			t.Fatalf("interleaved iteration %d: %v, want healthy", i, got)
		}
	}
}

func TestHealthMTTR(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	h := NewFleetHealth(1, Thresholds{}, reg, clock)
	h.MarkDown(0)
	clock.Advance(90 * time.Second)
	h.MarkRecovering(0)
	// A failed recovery demotes without resetting the outage start.
	h.MarkDown(0)
	clock.Advance(30 * time.Second)
	h.MarkRecovering(0)
	h.MarkHealthy(0)
	hist := reg.Histogram(MetricMTTR)
	if hist.Count() != 1 {
		t.Fatalf("MTTR observations: %d, want 1", hist.Count())
	}
	if got, want := hist.Max(), 2*time.Minute; got != want {
		t.Fatalf("MTTR %v, want %v (demotion must keep the original outage start)", got, want)
	}
}

// fakeCluster scripts per-shard probe outcomes and records supervisor calls.
type fakeCluster struct {
	mu          sync.Mutex
	health      *FleetHealth
	alive       []bool
	quarantined []bool
	rejoinErr   []error
	rejoins     []int
}

func newFakeCluster(n int, clock obs.Clock) *fakeCluster {
	f := &fakeCluster{
		health:      NewFleetHealth(n, Thresholds{SuspectAfter: 1, DownAfter: 2}, nil, clock),
		alive:       make([]bool, n),
		quarantined: make([]bool, n),
		rejoinErr:   make([]error, n),
	}
	for i := range f.alive {
		f.alive[i] = true
	}
	return f
}

func (f *fakeCluster) Shards() int          { return len(f.alive) }
func (f *fakeCluster) Health() *FleetHealth { return f.health }

func (f *fakeCluster) ProbeShard(_ context.Context, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.alive[shard] {
		return nil
	}
	return fmt.Errorf("connection refused")
}

func (f *fakeCluster) Quarantine(shard int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	was := !f.quarantined[shard]
	f.quarantined[shard] = true
	f.health.MarkDown(shard)
	return was
}

func (f *fakeCluster) TryRejoin(_ context.Context, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejoins = append(f.rejoins, shard)
	if err := f.rejoinErr[shard]; err != nil {
		return err
	}
	f.quarantined[shard] = false
	f.health.MarkHealthy(shard)
	return nil
}

func (f *fakeCluster) setAlive(shard int, alive bool) {
	f.mu.Lock()
	f.alive[shard] = alive
	f.mu.Unlock()
}

// fakeRelauncher records relaunches and can bring the shard back.
type fakeRelauncher struct {
	mu      sync.Mutex
	cluster *fakeCluster
	calls   []int
	revive  bool
}

func (f *fakeRelauncher) Relaunch(shard int) error {
	f.mu.Lock()
	f.calls = append(f.calls, shard)
	revive := f.revive
	f.mu.Unlock()
	if revive {
		f.cluster.setAlive(shard, true)
	}
	return nil
}

// A dead shard is scored down, quarantined, relaunched after the grace
// period, and rejoined once it answers again — the full lifecycle, driven
// step by step on a fake clock.
func TestSupervisorLifecycle(t *testing.T) {
	clock := newFakeClock()
	cluster := newFakeCluster(2, clock)
	rel := &fakeRelauncher{cluster: cluster, revive: true}
	reg := obs.NewRegistry()
	sup := New(cluster, rel, Config{
		ProbeInterval:   time.Second,
		RelaunchAfter:   3 * time.Second,
		RelaunchBackoff: 5 * time.Second,
		Clock:           clock,
	}, reg)
	ctx := context.Background()

	// Healthy fleet: steps change nothing.
	sup.Step(ctx)
	if got := cluster.health.States(); got[0] != Healthy || got[1] != Healthy {
		t.Fatalf("healthy fleet scored %v", got)
	}

	// Shard 1 dies. DownAfter=2: two failed passes score it down and
	// quarantine it.
	cluster.setAlive(1, false)
	sup.Step(ctx)
	clock.Advance(time.Second)
	sup.Step(ctx)
	if got := cluster.health.State(1); got != Down {
		t.Fatalf("after 2 failed probes: %v, want down", got)
	}
	if !cluster.quarantined[1] {
		t.Fatalf("down shard not quarantined")
	}
	if len(rel.calls) != 0 {
		t.Fatalf("relaunched before the grace period: %v", rel.calls)
	}

	// Within the grace period: probed, not relaunched (a pause/partition
	// could clear on its own).
	clock.Advance(time.Second)
	sup.Step(ctx)
	if len(rel.calls) != 0 {
		t.Fatalf("relaunched %v inside grace period", rel.calls)
	}

	// Past the grace period: relaunch fires, the shard answers again, the
	// next pass marks it recovering and rejoins it.
	clock.Advance(3 * time.Second)
	sup.Step(ctx)
	if len(rel.calls) != 1 || rel.calls[0] != 1 {
		t.Fatalf("relaunch calls %v, want [1]", rel.calls)
	}
	sup.Step(ctx)
	if got := cluster.health.State(1); got != Healthy {
		t.Fatalf("after relaunch + rejoin: %v, want healthy", got)
	}
	if cluster.quarantined[1] {
		t.Fatalf("rejoined shard still quarantined")
	}
	if len(cluster.rejoins) == 0 {
		t.Fatalf("no rejoin attempted")
	}
	if reg.Counter(MetricRelaunches).Value() != 1 {
		t.Fatalf("relaunch counter %d", reg.Counter(MetricRelaunches).Value())
	}
}

// Relaunches are rate-limited per shard, and a busy fleet (ErrBusy) is not a
// rejoin failure.
func TestSupervisorRelaunchBackoffAndBusy(t *testing.T) {
	clock := newFakeClock()
	cluster := newFakeCluster(1, clock)
	rel := &fakeRelauncher{cluster: cluster} // revive=false: stays dead
	reg := obs.NewRegistry()
	sup := New(cluster, rel, Config{
		ProbeInterval:   time.Second,
		RelaunchAfter:   time.Second,
		RelaunchBackoff: 10 * time.Second,
		Clock:           clock,
	}, reg)
	ctx := context.Background()

	cluster.setAlive(0, false)
	for i := 0; i < 8; i++ {
		sup.Step(ctx)
		clock.Advance(time.Second)
	}
	if len(rel.calls) != 1 {
		t.Fatalf("relaunches within backoff window: %v, want exactly 1", rel.calls)
	}
	clock.Advance(10 * time.Second)
	sup.Step(ctx)
	if len(rel.calls) != 2 {
		t.Fatalf("relaunches after backoff: %v, want 2", rel.calls)
	}

	// Busy rejoin: shard answers, fleet mutex held — not a failure.
	cluster.setAlive(0, true)
	cluster.rejoinErr[0] = ErrBusy
	sup.Step(ctx) // marks recovering, rejoin -> busy
	if got := cluster.health.State(0); got != Recovering {
		t.Fatalf("busy rejoin left state %v, want recovering", got)
	}
	if reg.Counter(MetricRejoinFailures).Value() != 0 {
		t.Fatalf("ErrBusy counted as rejoin failure")
	}
	cluster.rejoinErr[0] = errors.New("digest mismatch")
	sup.Step(ctx)
	if reg.Counter(MetricRejoinFailures).Value() != 1 {
		t.Fatalf("real rejoin failure not counted")
	}
	// And a recovering shard that dies again goes back to down.
	cluster.setAlive(0, false)
	sup.Step(ctx)
	if got := cluster.health.State(0); got != Down {
		t.Fatalf("recovering shard that died again: %v, want down", got)
	}
}

// The background loop runs on the injected clock and stops cleanly.
func TestSupervisorStartStop(t *testing.T) {
	clock := newFakeClock()
	cluster := newFakeCluster(1, clock)
	sup := New(cluster, nil, Config{ProbeInterval: time.Millisecond, Clock: clock}, nil)
	sup.Start(context.Background())
	defer sup.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.health.State(0) == Healthy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sup.Stop()
	sup.Stop() // idempotent
}
