// Package supervisor is the fleet self-healing layer over the multi-process
// serving tier: a per-shard health state machine fed by liveness probes and
// live RPC outcomes, a probe loop that quarantines shards scored down and
// relaunches (or re-attaches) them, and the rejoin hand-off back into the
// coordinator's CRUD fan-out and delivery pool.
//
// The state machine is deliberately conservative about what counts as
// failure: ANY HTTP answer — including injected 5xx, shed 429s, and terminal
// validation errors — proves the process is alive and resets the failure
// streak. Only transport-level silence (connection refused, timeout, dropped
// mid-body) advances a shard toward down, so a fleet under heavy fault
// injection at the network layer never flaps; see Observe.
//
// States and transitions:
//
//	healthy ──failures──▶ suspect ──failures──▶ down
//	   ▲                     │ success            │ probe answers
//	   │                     ▼                    ▼
//	   └──────rejoin────── recovering ◀───────────┘
//	                         │ probe fails again
//	                         ▼
//	                        down
//
// Readmission is never automatic: a recovering shard must replay the
// mutation journal gap and pass the cross-shard digest gate (the
// coordinator's TryRejoin) before MarkHealthy moves it back, which is also
// where MTTR is measured — down-detection to verified readmission.
package supervisor

import (
	"fmt"
	"sync"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// State is one shard's position in the health machine.
type State int32

// The health states, in escalation order.
const (
	// Healthy shards take CRUD fan-out and delivery traffic.
	Healthy State = iota
	// Suspect shards have a short transport-failure streak; they still take
	// traffic (the streak either clears or escalates within a few probes).
	Suspect
	// Down shards are quarantined: excluded from fan-out, their CRUD writes
	// queue in the mutation journal, and the supervisor works on bringing
	// them back.
	Down
	// Recovering shards answer probes again but have not yet replayed the
	// journal gap and passed the digest gate; they stay quarantined until
	// rejoin completes.
	Recovering
)

// String names the state for topology output and logs.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Thresholds tune the failure scoring.
type Thresholds struct {
	// SuspectAfter is the consecutive transport-failure count that moves a
	// healthy shard to suspect. Default 2.
	SuspectAfter int
	// DownAfter is the consecutive transport-failure count that moves a
	// shard to down (and quarantine). Default 4. Each count is one failed
	// probe or one failed fan-out call, both of which already sit behind the
	// client's own retry loop, so a single streak unit means several wire
	// failures in a row.
	DownAfter int
}

func (t Thresholds) withDefaults() Thresholds {
	if t.SuspectAfter <= 0 {
		t.SuspectAfter = 2
	}
	if t.DownAfter <= t.SuspectAfter {
		t.DownAfter = t.SuspectAfter + 2
	}
	return t
}

// FleetHealth scores every shard of one fleet. It is shared between the
// coordinator (which feeds RPC outcomes and gates admission) and the
// supervisor loop (which feeds probe outcomes and drives recovery).
type FleetHealth struct {
	th    Thresholds
	reg   *obs.Registry
	clock obs.Clock

	mu     sync.Mutex
	shards []shardHealth
}

// shardHealth is one shard's score.
type shardHealth struct {
	state     State
	fails     int
	downSince time.Time
}

// NewFleetHealth builds the health model for n shards, all healthy. Registry
// and clock may be nil (private registry, system clock).
func NewFleetHealth(n int, th Thresholds, reg *obs.Registry, clock obs.Clock) *FleetHealth {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if clock == nil {
		clock = obs.SystemClock
	}
	h := &FleetHealth{th: th.withDefaults(), reg: reg, clock: clock, shards: make([]shardHealth, n)}
	for i := range h.shards {
		h.setGaugeLocked(i, Healthy)
	}
	return h
}

// Shards reports the fleet size.
func (h *FleetHealth) Shards() int { return len(h.shards) }

// setGaugeLocked publishes a shard's state as a numeric gauge.
func (h *FleetHealth) setGaugeLocked(shard int, s State) {
	h.reg.Gauge(MetricShardState + "|" + shardLabel(shard)).Set(int64(s))
}

func shardLabel(shard int) string { return fmt.Sprintf("shard%d", shard) }

// transitionLocked moves a shard and publishes the gauge + transition count.
func (h *FleetHealth) transitionLocked(shard int, to State) {
	from := h.shards[shard].state
	if from == to {
		return
	}
	h.shards[shard].state = to
	h.setGaugeLocked(shard, to)
	h.reg.Counter(MetricTransitions + "|" + to.String()).Inc()
}

// Observe feeds one interaction outcome — a probe or a live fan-out RPC —
// into the score. alive means the shard gave ANY HTTP answer (2xx, terminal
// 4xx, even an injected 5xx): the process is up, the streak resets. Only
// transport silence counts against the shard. Observe never promotes out of
// Down/Recovering (readmission goes through the rejoin gate), and returns
// the resulting state.
func (h *FleetHealth) Observe(shard int, alive bool) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := &h.shards[shard]
	switch sh.state {
	case Down, Recovering:
		// Scored out already; recovery is the supervisor's job.
		return sh.state
	}
	if alive {
		sh.fails = 0
		h.transitionLocked(shard, Healthy)
		return Healthy
	}
	sh.fails++
	switch {
	case sh.fails >= h.th.DownAfter:
		sh.downSince = h.clock.Now()
		h.transitionLocked(shard, Down)
	case sh.fails >= h.th.SuspectAfter:
		h.transitionLocked(shard, Suspect)
	}
	return sh.state
}

// State reads one shard's state.
func (h *FleetHealth) State(shard int) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shards[shard].state
}

// States snapshots every shard's state in shard order.
func (h *FleetHealth) States() []State {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]State, len(h.shards))
	for i := range h.shards {
		out[i] = h.shards[i].state
	}
	return out
}

// DownSince reports when the shard was scored down (zero if it never was, or
// has been readmitted since).
func (h *FleetHealth) DownSince(shard int) time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shards[shard].downSince
}

// MarkDown forces a shard down — the coordinator quarantining a shard whose
// fan-out failures crossed the threshold, or the supervisor demoting a
// recovering shard whose probe failed again. The original downSince is kept
// on a Recovering→Down demotion so MTTR stays honest.
func (h *FleetHealth) MarkDown(shard int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := &h.shards[shard]
	if sh.state != Down {
		if sh.downSince.IsZero() || sh.state == Healthy || sh.state == Suspect {
			sh.downSince = h.clock.Now()
		}
		sh.fails = 0
		h.transitionLocked(shard, Down)
	}
}

// MarkRecovering moves a down shard to recovering (its probe answered).
// Reports whether the transition happened.
func (h *FleetHealth) MarkRecovering(shard int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shards[shard].state != Down {
		return false
	}
	h.transitionLocked(shard, Recovering)
	return true
}

// MarkHealthy readmits a shard after a completed rejoin, observing MTTR
// (down-detection to verified readmission) when the shard had been down.
func (h *FleetHealth) MarkHealthy(shard int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := &h.shards[shard]
	if !sh.downSince.IsZero() {
		h.reg.Histogram(MetricMTTR).Observe(h.clock.Now().Sub(sh.downSince))
		sh.downSince = time.Time{}
	}
	sh.fails = 0
	h.transitionLocked(shard, Healthy)
}
