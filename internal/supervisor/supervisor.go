//adlint:deterministic
package supervisor

import (
	"context"
	"errors"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// ErrBusy is returned by a Cluster's TryRejoin when the fleet mutex is held
// (a delivery day in flight): the supervisor simply retries on a later pass,
// and the delivery path runs its own inline rejoin between day attempts.
var ErrBusy = errors.New("supervisor: fleet busy, rejoin deferred")

// Cluster is the supervisor's view of the coordinator. The supervisor owns
// WHEN to probe, quarantine, relaunch, and rejoin; the cluster owns HOW —
// the journal replay, the digest gate, and admission into the fan-out pool.
// (The interface points this way so the coordinator can import the health
// model without a package cycle.)
type Cluster interface {
	// Shards reports the fleet size.
	Shards() int
	// Health exposes the shared per-shard health model.
	Health() *FleetHealth
	// ProbeShard performs one liveness probe (GET /healthz) against a shard,
	// through the same transport the fan-out uses, so a network partition is
	// observed by probes exactly as by live traffic.
	ProbeShard(ctx context.Context, shard int) error
	// Quarantine excludes a shard from fan-out and starts journaling its
	// CRUD gap. Reports whether the shard was newly quarantined.
	Quarantine(shard int) bool
	// TryRejoin replays the journal gap onto a recovering shard, runs the
	// cross-shard digest gate, and readmits it. Returns ErrBusy (retry
	// later) when a delivery day holds the fleet mutex.
	TryRejoin(ctx context.Context, shard int) error
}

// Relauncher restarts a shard's process. Implementations are process-level
// (exec) or test fakes; nil means the supervisor only re-attaches to shards
// that come back on their own (an external process manager restarts them).
type Relauncher interface {
	Relaunch(shard int) error
}

// Config tunes the supervisor loop.
type Config struct {
	// ProbeInterval is the pause between passes over the fleet. Default
	// 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one liveness probe. Default 2s.
	ProbeTimeout time.Duration
	// RelaunchAfter is how long a down shard may stay unreachable before the
	// supervisor forces a process relaunch (a dead process never answers; a
	// paused or partitioned one may come back on its own — SIGKILLing it
	// would turn a transient fault into a full restart). Default 3s.
	RelaunchAfter time.Duration
	// RelaunchBackoff is the minimum spacing between relaunch attempts for
	// one shard. Default 5s.
	RelaunchBackoff time.Duration
	// Clock injects time; nil is the system clock. The loop never reads the
	// wall clock directly, so tests drive it deterministically.
	Clock obs.Clock
	// Logf, when non-nil, receives supervision events worth an operator's
	// attention: quarantines, relaunches, and rejoin failures (which are
	// otherwise visible only as counters — a fleet stuck in recovering is
	// undiagnosable without the rejoin error text).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RelaunchAfter <= 0 {
		c.RelaunchAfter = 3 * time.Second
	}
	if c.RelaunchBackoff <= 0 {
		c.RelaunchBackoff = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.SystemClock
	}
	return c
}

// Supervisor drives failure detection and recovery for one fleet.
type Supervisor struct {
	cfg     Config
	cluster Cluster
	rel     Relauncher
	reg     *obs.Registry
	clock   obs.Clock

	lastRelaunch []time.Time
	stop         chan struct{}
	done         chan struct{}
}

// New builds a supervisor over the cluster. rel may be nil (re-attach only);
// reg may be nil (the health model's registry is NOT implied — pass the same
// one for a single /metrics surface).
func New(cluster Cluster, rel Relauncher, cfg Config, reg *obs.Registry) *Supervisor {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Supervisor{
		cfg:          cfg,
		cluster:      cluster,
		rel:          rel,
		reg:          reg,
		clock:        cfg.Clock,
		lastRelaunch: make([]time.Time, cluster.Shards()),
	}
}

// logf forwards to the configured event log, if any.
func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Start launches the probe loop in its own goroutine. Stop ends it.
func (s *Supervisor) Start(ctx context.Context) {
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			s.Step(ctx)
			s.clock.Sleep(s.cfg.ProbeInterval)
		}
	}()
}

// Stop ends the probe loop and waits for the in-flight pass to finish.
func (s *Supervisor) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// Step runs one supervision pass over every shard: probe, score, quarantine,
// relaunch, rejoin. Exported so tests (and deterministic harnesses) can
// drive the loop without real time.
func (s *Supervisor) Step(ctx context.Context) {
	h := s.cluster.Health()
	for i := 0; i < s.cluster.Shards(); i++ {
		switch h.State(i) {
		case Healthy, Suspect:
			alive := s.probe(ctx, i)
			if h.Observe(i, alive) == Down {
				if s.cluster.Quarantine(i) {
					s.logf("supervisor: shard %d unreachable, quarantined", i)
				}
			}
		case Down:
			// The RPC path may have scored the shard down before anyone
			// quarantined it; make the quarantine effective first.
			s.cluster.Quarantine(i)
			if s.probe(ctx, i) {
				if h.MarkRecovering(i) {
					s.rejoin(ctx, i)
				}
				continue
			}
			s.maybeRelaunch(i, h)
		case Recovering:
			if !s.probe(ctx, i) {
				// Came up, went away again (e.g. killed mid-recovery).
				h.MarkDown(i)
				continue
			}
			s.rejoin(ctx, i)
		}
	}
}

// probe sends one liveness probe, reporting alive (any HTTP answer counts;
// see FleetHealth.Observe for the scoring rationale — /healthz can only
// answer 200, so here any error means transport silence).
func (s *Supervisor) probe(ctx context.Context, shard int) bool {
	s.reg.Counter(MetricProbes).Inc()
	pctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	if err := s.cluster.ProbeShard(pctx, shard); err != nil {
		s.reg.Counter(MetricProbeFailures).Inc()
		return false
	}
	return true
}

// maybeRelaunch forces a process restart for a shard that has been
// unreachable past the grace period, rate-limited per shard.
func (s *Supervisor) maybeRelaunch(shard int, h *FleetHealth) {
	if s.rel == nil {
		return
	}
	now := s.clock.Now()
	if since := h.DownSince(shard); since.IsZero() || now.Sub(since) < s.cfg.RelaunchAfter {
		return
	}
	if last := s.lastRelaunch[shard]; !last.IsZero() && now.Sub(last) < s.cfg.RelaunchBackoff {
		return
	}
	s.lastRelaunch[shard] = now
	s.reg.Counter(MetricRelaunches).Inc()
	s.logf("supervisor: relaunching shard %d (down %s)", shard, now.Sub(h.DownSince(shard)).Round(time.Millisecond))
	if err := s.rel.Relaunch(shard); err != nil {
		s.reg.Counter(MetricRelaunchFailures).Inc()
		s.logf("supervisor: relaunch shard %d failed: %v", shard, err)
	}
}

// rejoin drives one readmission attempt; the cluster does the journal replay
// and digest gate and marks the shard healthy itself on success.
func (s *Supervisor) rejoin(ctx context.Context, shard int) {
	err := s.cluster.TryRejoin(ctx, shard)
	switch {
	case err == nil:
		s.reg.Counter(MetricRejoins).Inc()
		s.logf("supervisor: shard %d rejoined", shard)
	case errors.Is(err, ErrBusy):
		// A delivery day holds the fleet; its own retry loop rejoins
		// recovering shards inline, or the next pass will.
	default:
		s.reg.Counter(MetricRejoinFailures).Inc()
		s.logf("supervisor: rejoin shard %d failed: %v", shard, err)
	}
}
