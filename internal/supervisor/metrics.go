package supervisor

// Supervisor metric names. Per-shard series use the registry's "name|label"
// convention with the static shardN label set.
const (
	// MetricShardState is the numeric health state per shard
	// (0 healthy, 1 suspect, 2 down, 3 recovering), labeled per shard.
	MetricShardState = "supervisor.shard.state"
	// MetricTransitions counts state transitions, labeled by target state.
	MetricTransitions = "supervisor.transitions"
	// MetricMTTR is the down-detection→verified-readmission latency.
	MetricMTTR = "supervisor.mttr"
	// MetricProbes counts liveness probes sent.
	MetricProbes = "supervisor.probes"
	// MetricProbeFailures counts probes with no HTTP answer.
	MetricProbeFailures = "supervisor.probe_failures"
	// MetricRelaunches counts shard process relaunches initiated.
	MetricRelaunches = "supervisor.relaunches"
	// MetricRelaunchFailures counts relaunches that could not start.
	MetricRelaunchFailures = "supervisor.relaunch_failures"
	// MetricRejoins counts completed rejoins (journal replay + digest gate).
	MetricRejoins = "supervisor.rejoins"
	// MetricRejoinFailures counts rejoin attempts that failed the replay or
	// the digest gate.
	MetricRejoinFailures = "supervisor.rejoin_failures"
)
