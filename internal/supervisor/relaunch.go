package supervisor

// Real-process shard management: spawn, signal, and relaunch adplatform
// children by shard index. The shard INDEX is the stable identity — a
// resurrected shard reuses its index, address, and WAL directory, because
// the shard count and order are part of the delivery day's determinism
// contract (position mod N over the sorted user list). We resurrect, never
// renumber.

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ProcessRelauncher launches and relaunches real shard child processes. It
// doubles as the chaos orchestrator's process-level target: Signal exposes
// SIGKILL/SIGSTOP/SIGCONT on the current child of a shard.
type ProcessRelauncher struct {
	mu    sync.Mutex
	argv  [][]string // per-shard command line
	logs  []string   // per-shard log path (appended across relaunches)
	procs []*exec.Cmd
	waits []chan struct{} // closed when the current child is reaped
}

// NewProcessRelauncher prepares a relauncher for len(argv) shards. argv[i]
// is shard i's full command line; logs[i] (optional, may be nil or empty)
// receives its combined output, appended across restarts.
func NewProcessRelauncher(argv [][]string, logs []string) (*ProcessRelauncher, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("supervisor: no shard command lines")
	}
	for i, a := range argv {
		if len(a) == 0 {
			return nil, fmt.Errorf("supervisor: empty command line for shard %d", i)
		}
	}
	if logs == nil {
		logs = make([]string, len(argv))
	}
	if len(logs) != len(argv) {
		return nil, fmt.Errorf("supervisor: %d log paths for %d shards", len(logs), len(argv))
	}
	return &ProcessRelauncher{
		argv:  argv,
		logs:  logs,
		procs: make([]*exec.Cmd, len(argv)),
		waits: make([]chan struct{}, len(argv)),
	}, nil
}

// Start spawns shard i's child (initial launch).
func (r *ProcessRelauncher) Start(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.startLocked(shard)
}

func (r *ProcessRelauncher) startLocked(shard int) error {
	if r.procs[shard] != nil {
		return fmt.Errorf("supervisor: shard %d already has a child", shard)
	}
	argv := r.argv[shard]
	cmd := exec.Command(argv[0], argv[1:]...)
	if path := r.logs[shard]; path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("supervisor: shard %d log: %w", shard, err)
		}
		cmd.Stdout, cmd.Stderr = f, f
		defer f.Close() //adlint:allow walerr (log handle is duplicated into the child by Start; this close only drops the parent's fd)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("supervisor: starting shard %d: %w", shard, err)
	}
	done := make(chan struct{})
	// Reap the child whenever it exits — killed by chaos, by Relaunch, or on
	// its own — so no zombie holds the pid table (the exit status itself is
	// uninteresting: the health model judges the shard by its socket).
	go func() { _ = cmd.Wait(); close(done) }()
	r.procs[shard], r.waits[shard] = cmd, done
	return nil
}

// Relaunch hard-kills shard i's current child (if any) and starts a fresh
// one with the identical command line: same index, same address, same WAL
// directory, so the new process recovers the durable state and rejoins as
// the same shard.
func (r *ProcessRelauncher) Relaunch(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.killLocked(shard); err != nil {
		return err
	}
	return r.startLocked(shard)
}

// killLocked SIGKILLs the current child and waits for the reaper, freeing
// the shard's listen address before a relaunch. SIGKILL also fells a
// SIGSTOPped child, which is exactly the supervisor's case: a paused shard
// that never resumed is indistinguishable from a dead one and gets replaced.
func (r *ProcessRelauncher) killLocked(shard int) error {
	cmd := r.procs[shard]
	if cmd == nil {
		return nil
	}
	// Deliberate real-process kill: this is the supervisor replacing a shard
	// child it owns, not chaos — the WAL holds every acked mutation, so the
	// kill can cost wall time but never state.
	_ = cmd.Process.Kill()
	select {
	case <-r.waits[shard]:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("supervisor: shard %d child (pid %d) did not exit after SIGKILL", shard, cmd.Process.Pid)
	}
	r.procs[shard], r.waits[shard] = nil, nil
	return nil
}

// Signal delivers sig to shard i's current child (the chaos orchestrator's
// kill/pause/resume lever). Signaling a shard with no child is an error.
func (r *ProcessRelauncher) Signal(shard int, sig os.Signal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cmd := r.procs[shard]
	if cmd == nil {
		return fmt.Errorf("supervisor: shard %d has no child to signal", shard)
	}
	if err := cmd.Process.Signal(sig); err != nil {
		return fmt.Errorf("supervisor: signaling shard %d: %w", shard, err)
	}
	return nil
}

// Pid reports shard i's current child pid (0 if none) — for logs and tests.
func (r *ProcessRelauncher) Pid(shard int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.procs[shard] == nil {
		return 0
	}
	return r.procs[shard].Process.Pid
}

// StopAll SIGKILLs every child and reaps them — shutdown/cleanup path.
func (r *ProcessRelauncher) StopAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.procs {
		_ = r.killLocked(i)
	}
}

// SIGSTOP and SIGCONT re-exported for chaos callers without a syscall import.
var (
	SigStop os.Signal = syscall.SIGSTOP
	SigCont os.Signal = syscall.SIGCONT
	SigKill os.Signal = syscall.SIGKILL
)
