package core

import (
	"fmt"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Table 4's dummy encoding (§3.4, footnote 6): race reference = white,
// gender reference = male, implied-age reference = adult. The intercept is
// then the predicted delivery for an image of a white adult man.
func table4Encoder() *stats.DummyEncoder {
	e := &stats.DummyEncoder{}
	e.AddCategorical("race", "white", []string{"Black"})
	e.AddCategorical("gender", "male", []string{"Female"})
	e.AddCategorical("age", "adult", []string{"Child", "Teen", "Middle-aged", "Elderly"})
	return e
}

func table4Observation(d *Delivery) map[string]string {
	obs := map[string]string{"race": "white", "gender": "male", "age": "adult"}
	if d.Profile.Race == demo.RaceBlack {
		obs["race"] = "Black"
	}
	if d.Profile.Gender == demo.GenderFemale {
		obs["gender"] = "Female"
	}
	switch d.Profile.Age {
	case demo.ImpliedChild:
		obs["age"] = "Child"
	case demo.ImpliedTeen:
		obs["age"] = "Teen"
	case demo.ImpliedMiddleAged:
		obs["age"] = "Middle-aged"
	case demo.ImpliedElderly:
		obs["age"] = "Elderly"
	}
	return obs
}

// AgeTarget selects which elderly-delivery model a Table 4 variant fits:
// % Age 65+ for the all-ages campaign (Table 4a), % Age 35+ for the
// age-capped campaigns (Tables 4b and 4c).
type AgeTarget int

// Age targets.
const (
	AgeTarget65Plus AgeTarget = iota
	AgeTarget35Plus
)

// String names the dependent variable.
func (a AgeTarget) String() string {
	if a == AgeTarget35Plus {
		return "% Age 35+"
	}
	return "% Age 65+"
}

// Table4 is one full regression table: three OLS models over the same
// implied-identity dummies with different delivery targets.
type Table4 struct {
	Black  *stats.OLSResult // target: fraction of actual audience that is Black
	Female *stats.OLSResult // target: fraction female
	Age    *stats.OLSResult // target: fraction in the older group
	Target AgeTarget
}

// RegressTable4 fits the three Table 4 models on per-ad deliveries.
func RegressTable4(ds []Delivery, target AgeTarget) (*Table4, error) {
	if len(ds) < 10 {
		return nil, fmt.Errorf("core: %d deliveries too few for Table 4 regression", len(ds))
	}
	enc := table4Encoder()
	obs := make([]map[string]string, len(ds))
	for i := range ds {
		obs[i] = table4Observation(&ds[i])
	}
	x, err := enc.EncodeAll(obs)
	if err != nil {
		return nil, err
	}
	names := enc.ColumnNames()
	yBlack := make([]float64, len(ds))
	yFemale := make([]float64, len(ds))
	yAge := make([]float64, len(ds))
	for i := range ds {
		yBlack[i] = ds[i].FracBlack
		yFemale[i] = ds[i].FracFemale
		if target == AgeTarget35Plus {
			yAge[i] = ds[i].FracAge35Plus
		} else {
			yAge[i] = ds[i].FracAge65Plus
		}
	}
	t := &Table4{Target: target}
	if t.Black, err = stats.OLS(names, x, yBlack); err != nil {
		return nil, fmt.Errorf("core: %%Black model: %w", err)
	}
	if t.Female, err = stats.OLS(names, x, yFemale); err != nil {
		return nil, fmt.Errorf("core: %%Female model: %w", err)
	}
	if t.Age, err = stats.OLS(names, x, yAge); err != nil {
		return nil, fmt.Errorf("core: %%Age model: %w", err)
	}
	return t, nil
}

// Table5 is the §6 mixed-effects analysis: six random-intercept models
// (grouped by job type) quantifying congruent race and gender skews in the
// employment ads.
type Table5 struct {
	// Dependent variable: fraction Black; independent: implied-Black dummy.
	RaceImpliedFemale *stats.MixedLMResult // model I: only implied-female ads
	RaceImpliedMale   *stats.MixedLMResult // model II: only implied-male ads
	RaceOverall       *stats.MixedLMResult // model III: all ads
	// Dependent variable: fraction female; independent: implied-female dummy.
	GenderImpliedBlack *stats.MixedLMResult // model IV
	GenderImpliedWhite *stats.MixedLMResult // model V
	GenderOverall      *stats.MixedLMResult // model VI
}

// RegressTable5 fits the six Table 5 models on employment-ad deliveries.
// Every delivery must carry a Job.
func RegressTable5(ds []Delivery) (*Table5, error) {
	for i := range ds {
		if ds[i].Job == "" {
			return nil, fmt.Errorf("core: delivery %s has no job type", ds[i].Key)
		}
	}
	fit := func(keep func(*Delivery) bool, dep func(*Delivery) float64, indep func(*Delivery) float64, name string) (*stats.MixedLMResult, error) {
		x := [][]float64{}
		var y []float64
		var groups []string
		for i := range ds {
			d := &ds[i]
			if !keep(d) {
				continue
			}
			x = append(x, []float64{indep(d)})
			y = append(y, dep(d))
			groups = append(groups, d.Job)
		}
		if len(y) < 6 {
			return nil, fmt.Errorf("core: model %q: only %d ads", name, len(y))
		}
		m, err := stats.MatrixFromRows(x)
		if err != nil {
			return nil, err
		}
		res, err := stats.MixedLM([]string{name}, m, y, groups)
		if err != nil {
			return nil, fmt.Errorf("core: model %q: %w", name, err)
		}
		return res, nil
	}

	isFemale := func(d *Delivery) bool { return d.Profile.Gender == demo.GenderFemale }
	isMale := func(d *Delivery) bool { return d.Profile.Gender == demo.GenderMale }
	isBlack := func(d *Delivery) bool { return d.Profile.Race == demo.RaceBlack }
	isWhite := func(d *Delivery) bool { return d.Profile.Race == demo.RaceWhite }
	all := func(*Delivery) bool { return true }
	depBlack := func(d *Delivery) float64 { return d.FracBlack }
	depFemale := func(d *Delivery) float64 { return d.FracFemale }
	indepBlack := func(d *Delivery) float64 {
		if isBlack(d) {
			return 1
		}
		return 0
	}
	indepFemale := func(d *Delivery) float64 {
		if isFemale(d) {
			return 1
		}
		return 0
	}

	var t Table5
	var err error
	if t.RaceImpliedFemale, err = fit(isFemale, depBlack, indepBlack, "Implied: Black"); err != nil {
		return nil, err
	}
	if t.RaceImpliedMale, err = fit(isMale, depBlack, indepBlack, "Implied: Black"); err != nil {
		return nil, err
	}
	if t.RaceOverall, err = fit(all, depBlack, indepBlack, "Implied: Black"); err != nil {
		return nil, err
	}
	if t.GenderImpliedBlack, err = fit(isBlack, depFemale, indepFemale, "Implied: female"); err != nil {
		return nil, err
	}
	if t.GenderImpliedWhite, err = fit(isWhite, depFemale, indepFemale, "Implied: female"); err != nil {
		return nil, err
	}
	if t.GenderOverall, err = fit(all, depFemale, indepFemale, "Implied: female"); err != nil {
		return nil, err
	}
	return &t, nil
}

// TableA1 is the Appendix A regression: %Black on implied identity, fitted
// on the poverty-controlled campaign's surviving ads. The implied-age
// encoding drops Child (the paper's surviving 24-ad subset had no child
// images after balancing; we mirror the reported row set: Black, Female,
// Teen, Middle-aged, Elderly).
func TableA1(ds []Delivery) (*stats.OLSResult, error) {
	if len(ds) < 10 {
		return nil, fmt.Errorf("core: %d deliveries too few for Table A1", len(ds))
	}
	enc := &stats.DummyEncoder{}
	enc.AddCategorical("race", "white", []string{"Black"})
	enc.AddCategorical("gender", "male", []string{"Female"})
	enc.AddCategorical("age", "adult", []string{"Teen", "Middle-aged", "Elderly"})
	obs := make([]map[string]string, 0, len(ds))
	y := make([]float64, 0, len(ds))
	for i := range ds {
		d := &ds[i]
		if d.Profile.Age == demo.ImpliedChild {
			continue // mirrored exclusion, see above
		}
		o := table4Observation(d)
		obs = append(obs, o)
		y = append(y, d.FracBlack)
	}
	x, err := enc.EncodeAll(obs)
	if err != nil {
		return nil, err
	}
	return stats.OLS(enc.ColumnNames(), x, y)
}

// FDRSignificant returns the names of the non-intercept terms (qualified by
// model, e.g. "%Black:Black") whose coefficients survive a Benjamini-
// Hochberg false-discovery-rate adjustment at the given level across all 18
// tests the table performs. The paper stars raw p-values; with 21 starred
// cells across Table 4, FDR control is the conservative check that the
// headline skews are not multiplicity artifacts.
func (t *Table4) FDRSignificant(level float64) []string {
	models := []struct {
		label string
		fit   *stats.OLSResult
	}{
		{"%Black", t.Black},
		{"%Female", t.Female},
		{t.Target.String(), t.Age},
	}
	var labels []string
	var ps []float64
	for _, m := range models {
		for i, name := range m.fit.Names {
			if name == "Intercept" {
				continue
			}
			labels = append(labels, m.label+":"+name)
			ps = append(ps, m.fit.PValue[i])
		}
	}
	qs := stats.BenjaminiHochberg(ps)
	var out []string
	for i, q := range qs {
		if q < level {
			out = append(out, labels[i])
		}
	}
	return out
}
