package core

import "testing"

func TestRunDeterminismAcrossLabs(t *testing.T) {
	// Two identical labs in the same process must deliver identically.
	coef := func() float64 {
		l, err := NewLab(LabConfig{Seed: 400, Scale: ScaleTest})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		res, err := l.RunStockExperiment(StockExperimentOptions{Seed: 401, PerPerson: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := res.Table4.Black.Coefficient("Black")
		return c
	}
	a, b := coef(), coef()
	if a != b {
		t.Errorf("same-seed labs delivered differently: %v vs %v", a, b)
	}
}
