package core

import (
	"math"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/marketing"
)

func row(age, gender, region string, n int) marketing.BreakdownRow {
	return marketing.BreakdownRow{Age: age, Gender: gender, Region: region, Impressions: n}
}

func insights(rows ...marketing.BreakdownRow) *marketing.InsightsResponse {
	ins := &marketing.InsightsResponse{Breakdown: rows}
	for _, r := range rows {
		ins.Impressions += r.Impressions
	}
	ins.Reach = ins.Impressions // 1 impression per user in fixtures
	return ins
}

func adultSpec(key string) AdSpec {
	return AdSpec{
		Key:     key,
		Profile: demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
	}
}

func TestMeasureAdRunRaceInference(t *testing.T) {
	// Primary copy: FL deliveries are white voters, NC deliveries Black.
	// Reversed copy: the opposite. Construct a case with known truth:
	// primary 30 NC + 10 FL, reversed 20 FL + 40 NC
	// → Black = 30 (primary NC) + 20 (reversed FL) = 50 of 100 countable.
	run := &AdRun{Spec: adultSpec("x")}
	run.Primary = insights(
		row("25-34", "male", "NC", 30),
		row("25-34", "male", "FL", 10),
	)
	run.Reversed = insights(
		row("25-34", "male", "FL", 20),
		row("25-34", "male", "NC", 40),
	)
	d, err := MeasureAdRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if d.Impressions != 100 {
		t.Errorf("impressions = %d", d.Impressions)
	}
	if math.Abs(d.FracBlack-0.5) > 1e-12 {
		t.Errorf("FracBlack = %v, want 0.5", d.FracBlack)
	}
}

func TestMeasureAdRunExcludesOutOfState(t *testing.T) {
	run := &AdRun{Spec: adultSpec("x")}
	run.Primary = insights(
		row("25-34", "female", "NC", 50),
		row("25-34", "female", "other", 50),
	)
	d, err := MeasureAdRun(run)
	if err != nil {
		t.Fatal(err)
	}
	// All countable impressions are NC (Black) in the primary copy.
	if d.FracBlack != 1 {
		t.Errorf("FracBlack = %v, want 1 (out-of-state excluded)", d.FracBlack)
	}
	if d.OutOfState != 0.5 {
		t.Errorf("OutOfState = %v", d.OutOfState)
	}
	if d.FracFemale != 1 {
		t.Errorf("FracFemale = %v", d.FracFemale)
	}
}

func TestMeasureAdRunAgeComposition(t *testing.T) {
	run := &AdRun{Spec: adultSpec("x")}
	run.Primary = insights(
		row("18-24", "male", "FL", 25),
		row("35-44", "female", "FL", 25),
		row("55-64", "male", "FL", 25),
		row("65+", "female", "FL", 25),
	)
	d, err := MeasureAdRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if d.FracAge35Plus != 0.75 || d.FracAge45Plus != 0.5 || d.FracAge65Plus != 0.25 {
		t.Errorf("age fracs: 35+=%v 45+=%v 65+=%v", d.FracAge35Plus, d.FracAge45Plus, d.FracAge65Plus)
	}
	if d.FracMen55Plus != 0.25 || d.FracWomen55Plus != 0.25 {
		t.Errorf("55+ by gender: men=%v women=%v", d.FracMen55Plus, d.FracWomen55Plus)
	}
	wantAvg := (21.0 + 39.5 + 59.5 + 70.0) / 4
	if math.Abs(d.AvgAge-wantAvg) > 1e-9 {
		t.Errorf("AvgAge = %v, want %v", d.AvgAge, wantAvg)
	}
}

func TestMeasureAdRunErrors(t *testing.T) {
	both := &AdRun{Spec: adultSpec("x")}
	if _, err := MeasureAdRun(both); err == nil {
		t.Error("both copies nil: want error")
	}
	zero := &AdRun{Spec: adultSpec("x"), Primary: insights()}
	if _, err := MeasureAdRun(zero); err == nil {
		t.Error("zero impressions: want error")
	}
	bad := &AdRun{Spec: adultSpec("x"), Primary: insights(row("12-17", "male", "FL", 5))}
	if _, err := MeasureAdRun(bad); err == nil {
		t.Error("bad age label: want error")
	}
}

func TestMeasureCampaignSkipsRejected(t *testing.T) {
	run := &CampaignRun{Config: CampaignConfig{Name: "t"}}
	ok := AdRun{Spec: adultSpec("ok"), PrimaryStatus: "COMPLETED", ReversedStatus: "COMPLETED"}
	ok.Primary = insights(row("25-34", "male", "FL", 10))
	ok.Reversed = insights(row("25-34", "male", "NC", 10))
	rejected := AdRun{Spec: adultSpec("rej"), PrimaryStatus: "REJECTED", ReversedStatus: "COMPLETED"}
	run.Ads = []AdRun{ok, rejected}
	ds, err := MeasureCampaign(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Key != "ok" {
		t.Errorf("deliveries: %+v", ds)
	}
	allRejected := &CampaignRun{Config: CampaignConfig{Name: "t"}, Ads: []AdRun{rejected}}
	if _, err := MeasureCampaign(allRejected); err == nil {
		t.Error("all rejected: want error")
	}
}

// syntheticDeliveries builds a delivery set with planted structure:
// FracBlack = base + raceEffect·Black, FracFemale = base + childEffect·Child.
func syntheticDeliveries(raceEffect, childEffect float64) []Delivery {
	var out []Delivery
	i := 0
	for _, p := range demo.AllProfiles() {
		for k := 0; k < 3; k++ {
			d := Delivery{
				Key:           "d",
				Profile:       p,
				Impressions:   100,
				FracBlack:     0.5,
				FracFemale:    0.5,
				FracAge65Plus: 0.3,
				FracAge35Plus: 0.6,
			}
			if p.Race == demo.RaceBlack {
				d.FracBlack += raceEffect
			}
			if p.Age == demo.ImpliedChild {
				d.FracFemale += childEffect
			}
			// Deterministic jitter so OLS has residual variance.
			jit := float64((i*37)%11-5) / 1000
			d.FracBlack += jit
			d.FracFemale -= jit
			i++
			out = append(out, d)
		}
	}
	return out
}

func TestRegressTable4RecoversPlantedEffects(t *testing.T) {
	ds := syntheticDeliveries(0.2, 0.1)
	t4, err := RegressTable4(ds, AgeTarget65Plus)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := t4.Black.Coefficient("Black"); math.Abs(c-0.2) > 0.01 {
		t.Errorf("Black coefficient %v, want ≈ 0.2", c)
	}
	if !t4.Black.Significant("Black", 0.001) {
		t.Error("planted race effect should be highly significant")
	}
	if c, _ := t4.Female.Coefficient("Child"); math.Abs(c-0.1) > 0.01 {
		t.Errorf("Child coefficient %v, want ≈ 0.1", c)
	}
	if t4.Female.Significant("Female", 0.01) {
		t.Error("no planted gender effect; Female should not be significant")
	}
	if t4.Target != AgeTarget65Plus || t4.Target.String() != "% Age 65+" {
		t.Errorf("age target: %v", t4.Target)
	}
	if _, err := RegressTable4(ds[:5], AgeTarget65Plus); err == nil {
		t.Error("too few deliveries: want error")
	}
}

func TestTable3Aggregation(t *testing.T) {
	ds := syntheticDeliveries(0.2, 0.1)
	rows := Table3(ds)
	if len(rows) != 9 {
		t.Fatalf("Table3 rows = %d, want 9 (2 race + 2 gender + 5 age)", len(rows))
	}
	var blackRow, whiteRow *Table3Row
	for i := range rows {
		switch rows[i].Group {
		case "race:black":
			blackRow = &rows[i]
		case "race:white":
			whiteRow = &rows[i]
		}
	}
	if blackRow == nil || whiteRow == nil {
		t.Fatal("missing race rows")
	}
	if blackRow.Ads != 30 || whiteRow.Ads != 30 {
		t.Errorf("ads per race: %d, %d", blackRow.Ads, whiteRow.Ads)
	}
	if diff := blackRow.FracBlack - whiteRow.FracBlack; math.Abs(diff-0.2) > 0.01 {
		t.Errorf("race rows differ by %v, want 0.2", diff)
	}
}

func TestGroupMeanWeightsByImpressions(t *testing.T) {
	ds := []Delivery{
		{Impressions: 100, FracBlack: 0.2},
		{Impressions: 300, FracBlack: 0.6},
	}
	mean, ads := GroupMean(ds, func(*Delivery) bool { return true }, func(d *Delivery) float64 { return d.FracBlack })
	if ads != 2 {
		t.Errorf("ads = %d", ads)
	}
	if math.Abs(mean-0.5) > 1e-12 {
		t.Errorf("weighted mean = %v, want 0.5", mean)
	}
	if m, n := GroupMean(ds, func(*Delivery) bool { return false }, func(d *Delivery) float64 { return 1 }); m != 0 || n != 0 {
		t.Errorf("empty group: %v, %d", m, n)
	}
}

func TestRegressTable5PlantedCongruentSkew(t *testing.T) {
	// Build employment deliveries: per-job base rates plus a +0.10 Black
	// lift for Black-image ads, no gender effect.
	var ds []Delivery
	jobs := []string{"lumber", "janitor", "nurse", "doctor", "secretary", "taxi-driver"}
	for ji, job := range jobs {
		base := 0.3 + 0.05*float64(ji)
		for gi, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for ri, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				d := Delivery{
					Key:         job,
					Job:         job,
					Profile:     demo.Profile{Gender: g, Race: r, Age: demo.ImpliedAdult},
					Impressions: 100,
					FracBlack:   base + float64((ji+gi+ri)%5-2)*0.004,
					FracFemale:  0.5 + float64((ji*3+gi+ri)%7-3)*0.004,
				}
				if r == demo.RaceBlack {
					d.FracBlack += 0.10
				}
				ds = append(ds, d)
			}
		}
	}
	t5, err := RegressTable5(ds)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := t5.RaceOverall.Coefficient("Implied: Black"); math.Abs(c-0.10) > 0.02 {
		t.Errorf("overall race coefficient %v, want ≈ 0.10", c)
	}
	if p, _ := t5.RaceOverall.PValueOf("Implied: Black"); p > 0.001 {
		t.Errorf("planted congruent skew p = %v", p)
	}
	if p, _ := t5.GenderOverall.PValueOf("Implied: female"); p < 0.05 {
		t.Errorf("no planted gender skew, but p = %v", p)
	}
	// Missing job annotation is an error.
	bad := append([]Delivery(nil), ds...)
	bad[0].Job = ""
	if _, err := RegressTable5(bad); err == nil {
		t.Error("missing job: want error")
	}
}

func TestTableA1DropsChildImages(t *testing.T) {
	ds := syntheticDeliveries(0.15, 0)
	res, err := TableA1(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Names {
		if n == "Child" {
			t.Error("Table A1 should not include a Child term")
		}
	}
	if c, _ := res.Coefficient("Black"); math.Abs(c-0.15) > 0.02 {
		t.Errorf("Black coefficient %v", c)
	}
	if _, err := TableA1(ds[:4]); err == nil {
		t.Error("too few: want error")
	}
}

func TestFigure4Shape(t *testing.T) {
	// Plant the paper's signature: teen female images deliver heavily to
	// men 55+.
	var ds []Delivery
	for _, p := range demo.AllProfiles() {
		d := Delivery{Profile: p, Impressions: 100, FracMen55Plus: 0.2, FracWomen55Plus: 0.25}
		if p.Gender == demo.GenderFemale && p.Age == demo.ImpliedTeen {
			d.FracMen55Plus = 0.5
		}
		ds = append(ds, d)
	}
	pts := Figure4(ds)
	if len(pts) != 5 {
		t.Fatalf("Figure4 points = %d", len(pts))
	}
	var teen *Fig4Point
	for i := range pts {
		if pts[i].ImpliedAge == "teen" {
			teen = &pts[i]
		}
	}
	if teen == nil {
		t.Fatal("no teen point")
	}
	if teen.FemImgMen55 <= teen.MaleImgMen55 {
		t.Errorf("teen: female-image men55 %v <= male-image %v", teen.FemImgMen55, teen.MaleImgMen55)
	}
}

func TestCongruentRaceShare(t *testing.T) {
	pts := []Fig7RacePoint{
		{BlackImage: 0.6, WhiteImage: 0.4},
		{BlackImage: 0.5, WhiteImage: 0.45},
		{BlackImage: 0.3, WhiteImage: 0.5},
		{BlackImage: 0.7, WhiteImage: 0.2},
	}
	if got := CongruentRaceShare(pts); got != 0.75 {
		t.Errorf("CongruentRaceShare = %v", got)
	}
	if !math.IsNaN(CongruentRaceShare(nil)) {
		t.Error("empty: want NaN")
	}
}

func TestCampaignConfigDefaults(t *testing.T) {
	cfg := CampaignConfig{Name: "x"}
	cfg.setDefaults()
	if cfg.Objective != "TRAFFIC" || cfg.Special != "NONE" || cfg.BudgetCents != 200 {
		t.Errorf("defaults: %+v", cfg)
	}
	if !strings.HasPrefix(cfg.LinkURL, "https://") {
		t.Errorf("link URL: %q", cfg.LinkURL)
	}
}

func TestShapeChecksOnFixtures(t *testing.T) {
	// A planted-effect delivery set should pass the stock checks it covers.
	ds := syntheticDeliveries(0.2, 0.1)
	for i := range ds {
		// Make elderly images deliver oldest and teen-women reach old men.
		if ds[i].Profile.Age == demo.ImpliedElderly {
			ds[i].FracAge65Plus += 0.1
		}
		if ds[i].Profile.Age == demo.ImpliedTeen && ds[i].Profile.Gender == demo.GenderFemale {
			ds[i].FracMen55Plus = 0.4
		} else {
			ds[i].FracMen55Plus = 0.2
		}
		ds[i].OutOfState = 0.004
	}
	t4, err := RegressTable4(ds, AgeTarget65Plus)
	if err != nil {
		t.Fatal(err)
	}
	stock := &StockResult{Deliveries: ds, Table4: t4}
	checks := ShapeChecks(stock, nil, nil, nil, nil, nil)
	if len(checks) != 7 {
		t.Fatalf("checks = %d, want 7 stock checks", len(checks))
	}
	byID := map[string]Check{}
	for _, c := range checks {
		byID[c.ID] = c
	}
	for _, id := range []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7"} {
		if !byID[id].Pass {
			t.Errorf("check %s failed on planted fixtures: %s", id, byID[id].Detail)
		}
	}
	// Nil inputs mean no checks at all, and AllPass rejects the empty set.
	if got := ShapeChecks(nil, nil, nil, nil, nil, nil); len(got) != 0 {
		t.Errorf("nil inputs produced %d checks", len(got))
	}
	if AllPass(nil) {
		t.Error("AllPass(empty) should be false")
	}
	if !AllPass(checks) {
		t.Error("planted fixtures should pass all checks")
	}
}

func TestCampaignRunTotals(t *testing.T) {
	run := &CampaignRun{Config: CampaignConfig{Name: "totals"}}
	a := AdRun{Spec: adultSpec("a")}
	a.Primary = insights(row("25-34", "male", "FL", 10))
	a.Primary.Clicks = 2
	a.Primary.SpendCents = 150
	a.Reversed = insights(row("25-34", "male", "NC", 20))
	a.Reversed.SpendCents = 50
	b := AdRun{Spec: adultSpec("b"), PrimaryStatus: "REJECTED"}
	b.Reversed = insights(row("65+", "female", "NC", 5))
	run.Ads = []AdRun{a, b}

	if got := run.AdCount(); got != 4 {
		t.Errorf("AdCount = %d, want 4", got)
	}
	if got := run.TotalImpressions(); got != 35 {
		t.Errorf("TotalImpressions = %d, want 35", got)
	}
	if got := run.TotalReach(); got != 35 {
		t.Errorf("TotalReach = %d, want 35", got)
	}
	if got := run.TotalSpendCents(); got != 200 {
		t.Errorf("TotalSpendCents = %v, want 200", got)
	}
	if !run.Ads[1].Rejected() {
		t.Error("ad with a rejected copy should report Rejected")
	}
	if run.Ads[0].Rejected() {
		t.Error("fully delivered ad should not report Rejected")
	}
}

func TestTable4FDRSignificant(t *testing.T) {
	ds := syntheticDeliveries(0.2, 0.1)
	t4, err := RegressTable4(ds, AgeTarget65Plus)
	if err != nil {
		t.Fatal(err)
	}
	surviving := t4.FDRSignificant(0.05)
	foundRace := false
	for _, s := range surviving {
		if s == "%Black:Black" {
			foundRace = true
		}
	}
	if !foundRace {
		t.Errorf("planted race effect should survive FDR; got %v", surviving)
	}
	// The age model has no planted effects: nothing from it should survive
	// a strict level.
	for _, s := range t4.FDRSignificant(1e-6) {
		if s != "%Black:Black" && s != "%Female:Child" {
			t.Errorf("unexpected survivor at strict level: %s", s)
		}
	}
}
