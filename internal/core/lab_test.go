package core

import (
	"math"
	"net/http"
	"sync"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// noAffinityBehavior returns a behaviour config with every demographic
// affinity switched off.
func noAffinityBehavior() population.BehaviorConfig {
	cfg := population.DefaultBehaviorConfig()
	cfg.AffinityScale = 0
	return cfg
}

var (
	labOnce sync.Once
	testLab *Lab
)

// sharedLab builds one ScaleTest lab for all integration tests.
func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		l, err := NewLab(LabConfig{Seed: 1, Scale: ScaleTest})
		if err != nil {
			panic(err)
		}
		testLab = l
	})
	return testLab
}

func TestLabServesMarketingAPI(t *testing.T) {
	l := sharedLab(t)
	resp, err := http.Get(l.URL() + "/v1/insights?ad_id=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestLabClose(t *testing.T) {
	l, err := NewLab(LabConfig{Seed: 99, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(l.URL() + "/v1/insights?ad_id=x"); err == nil {
		t.Error("server should be down after Close")
	}
}

func TestScaleStrings(t *testing.T) {
	if ScaleTest.String() != "test" || ScaleBench.String() != "bench" || ScaleFull.String() != "full" {
		t.Error("scale names")
	}
	if ScaleFull.PerCell() <= ScaleTest.PerCell() {
		t.Error("full scale should use larger cells")
	}
}

func TestBalancedSamplesAndTable1(t *testing.T) {
	l := sharedLab(t)
	fl, nc := l.BalancedSamples(50, 7)
	if err := voter.VerifyBalance(fl); err != nil {
		t.Fatal(err)
	}
	if err := voter.VerifyBalance(nc); err != nil {
		t.Fatal(err)
	}
	rows := Table1(fl, nc)
	if len(rows) != 6 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != 4*r.GroupSize {
			t.Errorf("%s: total %d != 4×%d", r.Age, r.Total, r.GroupSize)
		}
	}
}

func TestBuildSplitAudiences(t *testing.T) {
	l := sharedLab(t)
	fl, nc := l.BalancedSamples(40, 8)
	auds, err := l.BuildSplitAudiences("test-split", fl, nc)
	if err != nil {
		t.Fatal(err)
	}
	if auds.PrimaryID == "" || auds.ReversedID == "" || auds.PrimaryID == auds.ReversedID {
		t.Errorf("audiences: %+v", auds)
	}
	if _, err := l.BuildSplitAudiences("bad", nil, nc); err == nil {
		t.Error("empty FL sample: want error")
	}
}

func TestRunPairedCampaignValidation(t *testing.T) {
	l := sharedLab(t)
	fl, nc := l.BalancedSamples(40, 9)
	auds, err := l.BuildSplitAudiences("val-split", fl, nc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.RunPairedCampaign(CampaignConfig{Name: "empty"}, nil, auds); err == nil {
		t.Error("no specs: want error")
	}
}

// stockResultOnce shares the expensive stock experiment across the
// shape-assertion tests below.
var (
	stockOnce sync.Once
	stockRes  *StockResult
	stockErr  error
)

func stockResult(t *testing.T) *StockResult {
	t.Helper()
	l := sharedLab(t)
	stockOnce.Do(func() {
		stockRes, stockErr = l.RunStockExperiment(StockExperimentOptions{Seed: 2})
	})
	if stockErr != nil {
		t.Fatal(stockErr)
	}
	return stockRes
}

func TestStockExperimentStructure(t *testing.T) {
	res := stockResult(t)
	if res.Run.AdCount() != 200 {
		t.Errorf("ad count %d, want 200 (100 images × 2 copies)", res.Run.AdCount())
	}
	if len(res.Deliveries) != 100 {
		t.Errorf("deliveries %d, want 100", len(res.Deliveries))
	}
	if res.Run.TotalImpressions() < 5000 {
		t.Errorf("total impressions %d suspiciously low", res.Run.TotalImpressions())
	}
	if res.Run.TotalSpendCents() < 0.5*float64(200*200) {
		t.Errorf("spend %.0f¢ below half the committed budget", res.Run.TotalSpendCents())
	}
	for i := range res.Deliveries {
		d := &res.Deliveries[i]
		if d.Impressions <= 0 || d.FracBlack < 0 || d.FracBlack > 1 {
			t.Fatalf("delivery %s: %+v", d.Key, d)
		}
	}
}

func TestStockExperimentPaperShapes(t *testing.T) {
	// The DESIGN.md success criteria for Table 3 / Table 4a shapes.
	res := stockResult(t)
	t4 := res.Table4

	// (1) %Black: the implied-race term dominates, strongly significant,
	// positive, with a majority-Black intercept.
	black, _ := t4.Black.Coefficient("Black")
	if black < 0.05 {
		t.Errorf("Black coefficient %v, want clearly positive (paper: +0.18)", black)
	}
	if !t4.Black.Significant("Black", 0.001) {
		t.Error("Black coefficient should be significant at 0.001")
	}
	if ic := t4.Black.Coef[0]; ic < 0.40 || ic > 0.75 {
		t.Errorf("%%Black intercept %v, paper reports 0.57", ic)
	}
	if t4.Black.R2 < 0.4 {
		t.Errorf("%%Black R² = %v, paper reports 0.62", t4.Black.R2)
	}
	// The race term must dominate every other coefficient in magnitude.
	for _, name := range []string{"Child", "Teen", "Middle-aged", "Elderly"} {
		if c, _ := t4.Black.Coefficient(name); math.Abs(c) >= black {
			t.Errorf("|%s| = %v exceeds the Black effect %v", name, c, black)
		}
	}

	// (2) %Female: images of children deliver to women.
	child, _ := t4.Female.Coefficient("Child")
	if child < 0.02 {
		t.Errorf("Child coefficient %v in %%Female, want positive (paper: +0.09)", child)
	}
	if !t4.Female.Significant("Child", 0.01) {
		t.Error("Child should be significant in the percent-female model")
	}

	// (3) %65+: images of elderly people deliver to the oldest users.
	elderly, _ := t4.Age.Coefficient("Elderly")
	if elderly < 0.01 {
		t.Errorf("Elderly coefficient %v in %%65+, want positive (paper: +0.118)", elderly)
	}
	if !t4.Age.Significant("Elderly", 0.05) {
		t.Error("Elderly should be significant in the 65+ model")
	}
}

func TestStockTable3Aggregates(t *testing.T) {
	res := stockResult(t)
	byGroup := map[string]Table3Row{}
	for _, r := range res.Table3 {
		byGroup[r.Group] = r
	}
	// Black images deliver more to Black users than white images (73.8% vs
	// 56.3% in the paper).
	if byGroup["race:black"].FracBlack <= byGroup["race:white"].FracBlack+0.03 {
		t.Errorf("race rows: black-image %.3f vs white-image %.3f",
			byGroup["race:black"].FracBlack, byGroup["race:white"].FracBlack)
	}
	// Child images deliver more to women than any other age group (59.4%
	// vs ≤52.4%).
	child := byGroup["age:child"].FracFemale
	for _, g := range []string{"age:teen", "age:adult", "age:middle-aged", "age:elderly"} {
		if child <= byGroup[g].FracFemale {
			t.Errorf("child images %%female %.3f not above %s %.3f", child, g, byGroup[g].FracFemale)
		}
	}
	// Elderly images deliver oldest (80.5% 45+ in the paper, top of the
	// range).
	if byGroup["age:elderly"].FracAge45 <= byGroup["age:adult"].FracAge45 {
		t.Errorf("elderly images 45+ %.3f not above adult %.3f",
			byGroup["age:elderly"].FracAge45, byGroup["age:adult"].FracAge45)
	}
}

func TestStockFigure3And4Signatures(t *testing.T) {
	res := stockResult(t)
	ds := res.Deliveries
	// Figure 3C: images of teen women deliver to fewer women than images
	// of middle-aged-or-older women.
	teenF, _ := GroupMean(ds,
		func(d *Delivery) bool {
			return d.Profile.Gender == demo.GenderFemale && d.Profile.Age == demo.ImpliedTeen
		},
		func(d *Delivery) float64 { return d.FracFemale })
	olderF, _ := GroupMean(ds,
		func(d *Delivery) bool {
			return d.Profile.Gender == demo.GenderFemale && d.Profile.Age >= demo.ImpliedMiddleAged
		},
		func(d *Delivery) float64 { return d.FracFemale })
	if teenF >= olderF {
		t.Errorf("teen-woman images %%female %.3f not below older-woman images %.3f", teenF, olderF)
	}
	// Figure 4A: among teen images, female-presenting ones reach more men
	// 55+ than male-presenting ones.
	pts := Figure4(ds)
	for _, p := range pts {
		if p.ImpliedAge == "teen" && p.FemImgMen55 <= p.MaleImgMen55 {
			t.Errorf("teen: fem-image men55 %.3f <= male-image %.3f", p.FemImgMen55, p.MaleImgMen55)
		}
	}
	// The out-of-state leakage must be under 1% on average (§3.3).
	leak, _ := GroupMean(ds, func(*Delivery) bool { return true }, func(d *Delivery) float64 { return d.OutOfState })
	if leak > 0.012 {
		t.Errorf("mean out-of-state leakage %.4f, want < ~0.01", leak)
	}
}

func TestAgeCappedStockExperiment(t *testing.T) {
	// Campaign 2 (§5.3): capping the audience age at 45 must not remove
	// the race effect (the paper finds it *stronger*).
	l := sharedLab(t)
	res, err := l.RunStockExperiment(StockExperimentOptions{Seed: 3, AgeMax: 45, BudgetCents: 350})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table4.Target != AgeTarget35Plus {
		t.Errorf("age target %v, want 35+", res.Table4.Target)
	}
	if c, _ := res.Table4.Black.Coefficient("Black"); c < 0.05 {
		t.Errorf("age-capped Black coefficient %v", c)
	}
	// No delivery above the age cap.
	for i := range res.Deliveries {
		if res.Deliveries[i].FracAge45Plus > 0.35 {
			t.Errorf("ad %s: %.3f of delivery is 45+, audience capped at 45",
				res.Deliveries[i].Key, res.Deliveries[i].FracAge45Plus)
		}
	}
}

func TestValidateRaceInference(t *testing.T) {
	l := sharedLab(t)
	res, err := l.ValidateRaceInference(2, 70)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ads != 40 {
		t.Errorf("ads = %d, want 40", res.Ads)
	}
	if res.MeanAbsError > 0.05 {
		t.Errorf("mean inference error %.4f, want < 0.05", res.MeanAbsError)
	}
	if res.MeanOutOfState > 0.015 {
		t.Errorf("leakage %.4f", res.MeanOutOfState)
	}
}

func TestSummarizeCampaign(t *testing.T) {
	res := stockResult(t)
	row := SummarizeCampaign(res.Run, "Stock", "§5.2")
	if row.Ads != 200 || row.AgeLimit || row.Images != "Stock" {
		t.Errorf("row: %+v", row)
	}
	if row.SpendDollars <= 0 || row.Impressions <= 0 || row.Reach <= 0 {
		t.Errorf("row totals: %+v", row)
	}
	if row.Reach > row.Impressions {
		t.Errorf("reach %d > impressions %d", row.Reach, row.Impressions)
	}
}

func TestLabConfigPropagation(t *testing.T) {
	// The Behavior override flows into the platform: a zero-affinity world
	// must show no substantive race effect (coefficient near zero; with our
	// tiny standard errors even noise can reach nominal significance, so
	// the check is on magnitude).
	cfg := LabConfig{Seed: 55, Scale: ScaleTest}
	cfg.Behavior = noAffinityBehavior()
	l, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.RunStockExperiment(StockExperimentOptions{Seed: 56, PerPerson: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := res.Table4.Black.Coefficient("Black"); c > 0.06 || c < -0.06 {
		t.Errorf("zero-affinity world shows race coefficient %v, want ≈ 0", c)
	}

	// GreedyPacing flows into the platform: greedy spend buys far fewer
	// impressions for the same budget than the paced run above.
	greedyCfg := LabConfig{Seed: 55, Scale: ScaleTest, GreedyPacing: true}
	greedyCfg.Behavior = noAffinityBehavior()
	lg, err := NewLab(greedyCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	greedy, err := lg.RunStockExperiment(StockExperimentOptions{Seed: 56, PerPerson: 2})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Run.TotalImpressions()*2 >= res.Run.TotalImpressions() {
		t.Errorf("greedy run bought %d impressions vs paced %d; pacing flag not propagating",
			greedy.Run.TotalImpressions(), res.Run.TotalImpressions())
	}
}
