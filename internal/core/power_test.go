package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAuditPowerMonotonicity(t *testing.T) {
	base := PowerOptions{Delta: 0.1, BaseRate: 0.5, ImpressionsPerAd: 180, Pairs: 10}
	p0, err := AuditPower(base)
	if err != nil {
		t.Fatal(err)
	}
	morePairs := base
	morePairs.Pairs = 40
	p1, err := AuditPower(morePairs)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Errorf("more pairs should raise power: %v <= %v", p1, p0)
	}
	biggerDelta := base
	biggerDelta.Delta = 0.2
	p2, err := AuditPower(biggerDelta)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p0 {
		t.Errorf("bigger effect should raise power: %v <= %v", p2, p0)
	}
}

func TestAuditPowerPaperDesign(t *testing.T) {
	// The paper's design — 50 pairs, ~180 impressions each — is massively
	// powered for its headline 18-point race effect.
	p, err := AuditPower(PowerOptions{Delta: 0.18, BaseRate: 0.65, ImpressionsPerAd: 180, Pairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Errorf("paper design power %v, want ≈ 1", p)
	}
	// A two-ad pilot at the same budget is underpowered for small effects.
	pilot, err := AuditPower(PowerOptions{Delta: 0.03, BaseRate: 0.5, ImpressionsPerAd: 180, Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pilot > 0.3 {
		t.Errorf("pilot power %v, should be low", pilot)
	}
}

func TestAuditPowerBounds(t *testing.T) {
	f := func(raw uint8) bool {
		o := PowerOptions{
			Delta:            0.01 + float64(raw%20)/25,
			BaseRate:         0.3 + float64(raw%5)/10,
			ImpressionsPerAd: 20 + int(raw)*3,
			Pairs:            1 + int(raw%30),
		}
		p, err := AuditPower(o)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuditPowerValidation(t *testing.T) {
	bad := []PowerOptions{
		{Delta: 0, BaseRate: 0.5, ImpressionsPerAd: 10, Pairs: 1},
		{Delta: 0.1, BaseRate: 1.2, ImpressionsPerAd: 10, Pairs: 1},
		{Delta: 0.1, BaseRate: 0.5, ImpressionsPerAd: 0, Pairs: 1},
		{Delta: 0.1, BaseRate: 0.5, ImpressionsPerAd: 10, Pairs: 0},
	}
	for i, o := range bad {
		if _, err := AuditPower(o); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestMinimumPairs(t *testing.T) {
	o := PowerOptions{Delta: 0.05, BaseRate: 0.5, ImpressionsPerAd: 180}
	k, err := MinimumPairs(o, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 {
		t.Fatalf("suspiciously few pairs: %d", k)
	}
	// Exactly k pairs reaches the target; k-1 does not.
	o.Pairs = k
	pk, _ := AuditPower(o)
	if pk < 0.95 {
		t.Errorf("power at k=%d is %v", k, pk)
	}
	o.Pairs = k - 1
	if pkm, _ := AuditPower(o); pkm >= 0.95 {
		t.Errorf("power at k-1=%d already %v", k-1, pkm)
	}
	if _, err := MinimumPairs(o, 1.5); err == nil {
		t.Error("bad target power: want error")
	}
	tiny := PowerOptions{Delta: 1e-6, BaseRate: 0.5, ImpressionsPerAd: 1}
	if _, err := MinimumPairs(tiny, 0.999); err == nil {
		t.Error("unreachable power: want error")
	}
}

func TestSimulatedPowerMatchesAnalytic(t *testing.T) {
	o := PowerOptions{Delta: 0.1, BaseRate: 0.5, ImpressionsPerAd: 100, Pairs: 5}
	analytic, err := AuditPower(o)
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := SimulatedPower(o, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simulated-analytic) > 0.08 {
		t.Errorf("simulated %v vs analytic %v", simulated, analytic)
	}
	if _, err := SimulatedPower(o, 10, 1); err == nil {
		t.Error("too few trials: want error")
	}
	big := o
	big.Delta = 0.3
	big.BaseRate = 0.9 // p1 = 1.05: infeasible
	if _, err := SimulatedPower(big, 200, 1); err == nil {
		t.Error("delta too large for base rate: want error")
	}
}
