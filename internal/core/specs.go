package core

import (
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/face"
	"github.com/adaudit/impliedidentity/internal/gan"
	"github.com/adaudit/impliedidentity/internal/image"
)

// StockSpecs builds the §5.2 ad set: one ad per stock photo, balanced over
// the 20 demographic combinations (perPerson photos each; the paper used 5,
// i.e. 100 images).
func StockSpecs(perPerson int, seed int64) ([]AdSpec, error) {
	rng := rand.New(rand.NewSource(seed))
	cat, err := image.NewStockCatalog(perPerson, image.DefaultStockOptions(), rng)
	if err != nil {
		return nil, err
	}
	specs := make([]AdSpec, len(cat.Photos))
	for i, ph := range cat.Photos {
		specs[i] = AdSpec{Key: ph.ID, Profile: ph.Label, Image: ph.Features}
	}
	return specs, nil
}

// SyntheticPipeline bundles the §5.4 artifacts: the generative network, the
// audit's classifier, and the discovered latent directions.
type SyntheticPipeline struct {
	Net        *gan.Network
	Classifier *face.Classifier
	Directions gan.DirectionSet
	Samples    []*gan.Face // the random faces used for discovery
}

// NewSyntheticPipeline trains the classifier, samples faces, and fits the
// latent directions (the paper samples 50,000; tests use fewer).
func NewSyntheticPipeline(samples int, seed int64) (*SyntheticPipeline, error) {
	net, err := gan.New(gan.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	clf, err := face.Train(face.TrainOptions{CorpusSize: 4000, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 2))
	ds, faces, err := gan.DiscoverDirections(net, clf, samples, rng, gan.SGDOptions{Seed: seed + 3})
	if err != nil {
		return nil, err
	}
	return &SyntheticPipeline{Net: net, Classifier: clf, Directions: ds, Samples: faces}, nil
}

// SyntheticSpecs builds the §5.5 ad set: sources × 20 variants of the same
// synthetic person (the paper used 5 sources, 100 images).
func (sp *SyntheticPipeline) SyntheticSpecs(sources int) ([]AdSpec, error) {
	if sources <= 0 || sources > len(sp.Samples) {
		return nil, fmt.Errorf("core: %d sources requested, %d samples available", sources, len(sp.Samples))
	}
	var specs []AdSpec
	for s := 0; s < sources; s++ {
		variants, err := gan.VariantGrid(sp.Net, sp.Classifier, sp.Directions, sp.Samples[s])
		if err != nil {
			return nil, fmt.Errorf("core: source %d: %w", s, err)
		}
		for _, v := range variants {
			specs = append(specs, AdSpec{
				Key:     fmt.Sprintf("syn-%d-%s-%s-%s", s+1, v.Target.Race, v.Target.Gender, v.Target.Age),
				Profile: v.Target,
				Image:   v.Image,
			})
		}
	}
	return specs, nil
}

// EmploymentSpecs builds the §6 ad set: every job type × the four adult
// identity configurations (male/female × white/Black), each a synthetic
// adult face composited onto the job background. 11 jobs × 4 = 44 specs;
// with the two audience copies this is the 88-ad Campaign 4.
func (sp *SyntheticPipeline) EmploymentSpecs(seed int64) ([]AdSpec, error) {
	rng := rand.New(rand.NewSource(seed))
	if len(sp.Samples) == 0 {
		return nil, fmt.Errorf("core: pipeline has no sample faces")
	}
	source := sp.Samples[0]
	faces := map[demo.Profile]image.Features{}
	for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
		for _, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
			p := demo.Profile{Gender: g, Race: r, Age: demo.ImpliedAdult}
			_, img, err := gan.TuneToProfile(sp.Net, sp.Classifier, sp.Directions, source.Activations, p)
			if err != nil {
				return nil, fmt.Errorf("core: tuning face for %v: %w", p, err)
			}
			faces[p] = img
		}
	}
	var specs []AdSpec
	for _, job := range image.JobTypes() {
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				p := demo.Profile{Gender: g, Race: r, Age: demo.ImpliedAdult}
				composite, err := image.CompositeOnJobBackground(faces[p], job, rng)
				if err != nil {
					return nil, err
				}
				specs = append(specs, AdSpec{
					Key:     fmt.Sprintf("job-%s-%s-%s", job, r, g),
					Profile: p,
					Image:   composite,
				})
			}
		}
	}
	return specs, nil
}
