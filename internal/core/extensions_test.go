package core

import (
	"testing"
)

func TestObjectiveComparison(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunObjectiveComparison(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) != 3 {
		t.Fatalf("gaps = %d", len(res.Gaps))
	}
	byObj := map[string]ObjectiveGap{}
	for _, g := range res.Gaps {
		byObj[g.Objective] = g
		if g.Impressions == 0 {
			t.Fatalf("%s delivered nothing", g.Objective)
		}
	}
	aw, tr, cv := byObj["AWARENESS"], byObj["TRAFFIC"], byObj["CONVERSIONS"]
	// Awareness ignores the action-rate model: its skew must be small and
	// clearly below the optimized objectives'.
	if aw.RaceGap > 0.08 || aw.RaceGap < -0.08 {
		t.Errorf("awareness race gap %.3f, want near zero", aw.RaceGap)
	}
	if tr.RaceGap < aw.RaceGap+0.05 {
		t.Errorf("traffic gap %.3f not clearly above awareness %.3f", tr.RaceGap, aw.RaceGap)
	}
	if cv.RaceGap < aw.RaceGap+0.05 {
		t.Errorf("conversions gap %.3f not clearly above awareness %.3f", cv.RaceGap, aw.RaceGap)
	}
	if cv.Impressions == 0 || tr.Impressions == 0 {
		t.Error("optimized objectives delivered nothing")
	}
}

func TestGroupPhotoExperiment(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunGroupPhotoExperiment(1600)
	if err != nil {
		t.Fatal(err)
	}
	below, above := res.Spread()
	// The diverse pair must land strictly between the single-person
	// extremes.
	if below <= 0 {
		t.Errorf("pair (%.3f) not above white-only (%.3f)", res.DiversePair.FracBlack, res.WhiteOnly.FracBlack)
	}
	if above <= 0 {
		t.Errorf("pair (%.3f) not below Black-only (%.3f)", res.DiversePair.FracBlack, res.BlackOnly.FracBlack)
	}
}

func TestLookalikeExperiment(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunLookalikeExperiment(1200, 1500, 1700)
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedSize == 0 {
		t.Fatal("seed matched no accounts")
	}
	if res.Expansion.Size == 0 || res.BaselineRandom.Size == 0 {
		t.Fatalf("empty audiences: expansion %d baseline %d", res.Expansion.Size, res.BaselineRandom.Size)
	}
	// The "color-blind" expansion must be substantially more Black than the
	// random baseline — the ref [58] finding, via ZIP segregation.
	if res.Lift() < 10 {
		t.Errorf("lookalike lift %.1f points over baseline (%.3f vs %.3f), want >= 10",
			res.Lift(), res.Expansion.FracBlack, res.BaselineRandom.FracBlack)
	}
	// Input validation.
	if _, err := l.RunLookalikeExperiment(0, 10, 1); err == nil {
		t.Error("zero seed: want error")
	}
}

func TestFeedbackLoop(t *testing.T) {
	// A fresh lab: the feedback loop mutates the platform's model.
	l, err := NewLab(LabConfig{Seed: 77, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.RunFeedbackLoop(3, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for _, r := range res.Rounds {
		// The congruent skew survives every retraining round.
		if r.BlackCoef < 0.03 {
			t.Errorf("round %d: Black coefficient %v collapsed under retraining", r.Round, r.BlackCoef)
		}
	}
	// The served buffer actually accumulated before each retrain.
	if res.Rounds[1].ServedLog == 0 {
		t.Error("no served impressions logged")
	}
	if _, err := l.RunFeedbackLoop(0, 1); err == nil {
		t.Error("zero rounds: want error")
	}
}
