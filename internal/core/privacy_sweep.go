package core

import (
	"context"
	"fmt"
	"math"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Skew-detectability sweep: how much of the paper's measurable delivery skew
// survives when the insights surface privatizes? Real platforms gate
// reporting behind minimum-audience thresholds and noise — the regime prior
// audit work had to work around — so the sweep re-reads ONE delivered
// campaign at every (k, epsilon) level and re-runs the race and gender
// group contrasts on the privatized reports. Privatization is
// response-time, so delivery runs once and the grid costs only insights
// reads; the measured attenuation is then compared with the analytic power
// model in PrivateAuditPower.

// PrivacySweepSchema tags BENCH_privacy_v1.json so later PRs can extend the
// layout while still parsing old trajectory points.
const PrivacySweepSchema = "adaudit/bench-privacy/v1"

// PrivacySweepOptions configures the grid.
type PrivacySweepOptions struct {
	// Ks is the k-anonymity grid; default {0, 20, 100}.
	Ks []int
	// Epsilons is the DP noise grid; 0 means no noise (epsilon = ∞).
	// Default {0, 1, 0.1}.
	Epsilons []float64
	// Seed fixes the sweep's noise streams.
	Seed int64
	// Alpha is the detection threshold for the Welch tests; default 0.05.
	Alpha float64
	// TargetPower sizes the minimum-campaign answer; default 0.8.
	TargetPower float64
}

func (o *PrivacySweepOptions) setDefaults() {
	if len(o.Ks) == 0 {
		o.Ks = []int{0, 20, 100}
	}
	if len(o.Epsilons) == 0 {
		o.Epsilons = []float64{0, 1, 0.1}
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.TargetPower == 0 {
		o.TargetPower = 0.8
	}
}

// PrivacySweepCell is the sweep outcome at one privacy level.
type PrivacySweepCell struct {
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"` // 0 = no noise
	Level   string  `json:"level"`

	// MeasurableAds kept a readable breakdown; SuppressedAds lost theirs
	// entirely (minimum-audience gate or total cell suppression);
	// SuppressedCellsTotal sums withheld cells across all reads.
	MeasurableAds        int `json:"measurable_ads"`
	SuppressedAds        int `json:"suppressed_ads"`
	SuppressedCellsTotal int `json:"suppressed_cells_total"`

	// Race contrast: mean FracBlack of Black-image ads minus white-image
	// ads, Welch t-tested across ads. Measured=false means too few
	// measurable ads to test (statistics are zeroed, not NaN).
	RaceMeasured bool    `json:"race_measured"`
	RaceGap      float64 `json:"race_gap"`
	RaceT        float64 `json:"race_t"`
	RaceP        float64 `json:"race_p"`
	RaceDetected bool    `json:"race_detected"`

	// Gender contrast: mean FracFemale of female-image vs male-image ads.
	GenderMeasured bool    `json:"gender_measured"`
	GenderGap      float64 `json:"gender_gap"`
	GenderT        float64 `json:"gender_t"`
	GenderP        float64 `json:"gender_p"`
	GenderDetected bool    `json:"gender_detected"`

	// AnalyticPower is PrivateAuditPower at this level for the baseline
	// effect size and the campaign's actual per-ad impressions;
	// MinImpressionsPerAd is the smallest per-ad impression count that
	// reaches the target power (0 when unreachable below the search cap).
	AnalyticPower       float64 `json:"analytic_power"`
	MinImpressionsPerAd int     `json:"min_impressions_per_ad"`
}

// PrivacySweepResult is the full grid plus the unprivatized baseline the
// power model anchors on.
type PrivacySweepResult struct {
	Schema      string  `json:"schema"`
	Name        string  `json:"name"`
	Scale       string  `json:"scale"`
	Seed        int64   `json:"seed"`
	Alpha       float64 `json:"alpha"`
	TargetPower float64 `json:"target_power"`

	// Baseline (privacy off) anchors: the measured effect sizes and the
	// campaign geometry the analytic model scales from.
	BaselineRaceGap   float64 `json:"baseline_race_gap"`
	BaselineGenderGap float64 `json:"baseline_gender_gap"`
	BaselineBaseRate  float64 `json:"baseline_base_rate"`
	ImpressionsPerAd  int     `json:"impressions_per_ad"`
	PairsPerGroup     int     `json:"pairs_per_group"`

	Cells []PrivacySweepCell `json:"cells"`
}

// zeroNaN keeps the result JSON-encodable: encoding/json rejects NaN.
func zeroNaN(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// levelMeasurement is one privacy level's re-read of the campaign.
type levelMeasurement struct {
	deliveries      []Delivery
	suppressedAds   int
	suppressedCells int
}

// measureUnderPrivacy switches the lab's live server to cfg and re-reads
// every delivered ad's insights. Ads whose privatized report has no usable
// breakdown (the minimum-audience gate, or every cell suppressed) count as
// suppressed rather than failing the sweep.
func measureUnderPrivacy(l *Lab, run *CampaignRun, cfg privacy.Config) (*levelMeasurement, error) {
	l.SetPrivacy(cfg)
	ctx := context.Background()
	m := &levelMeasurement{}
	for i := range run.Ads {
		src := &run.Ads[i]
		if src.Rejected() {
			continue
		}
		ar := AdRun{
			Spec:           src.Spec,
			PrimaryID:      src.PrimaryID,
			ReversedID:     src.ReversedID,
			PrimaryStatus:  src.PrimaryStatus,
			ReversedStatus: src.ReversedStatus,
		}
		for _, side := range []struct {
			id   string
			dest **marketing.InsightsResponse
		}{
			{src.PrimaryID, &ar.Primary},
			{src.ReversedID, &ar.Reversed},
		} {
			if side.id == "" {
				continue
			}
			resp, err := l.Client.Insights(ctx, side.id)
			if err != nil {
				return nil, fmt.Errorf("core: privacy sweep insights for %s: %w", side.id, err)
			}
			if resp.Privacy != nil {
				m.suppressedCells += resp.Privacy.SuppressedCells
			}
			*side.dest = resp
		}
		d, err := MeasureAdRun(&ar)
		if err != nil {
			// Zero readable impressions: the whole breakdown was withheld.
			m.suppressedAds++
			continue
		}
		m.deliveries = append(m.deliveries, d)
	}
	return m, nil
}

// groupContrast Welch-tests a per-ad metric between two implied-identity
// groups and reports the gap (mean A − mean B).
func groupContrast(ds []Delivery, inA func(*Delivery) bool, metric func(*Delivery) float64) (gap, t, p float64, measured bool) {
	var a, b []float64
	for i := range ds {
		d := &ds[i]
		if inA(d) {
			a = append(a, metric(d))
		} else {
			b = append(b, metric(d))
		}
	}
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, 0, false
	}
	w := stats.WelchTTest(a, b)
	if math.IsNaN(w.P) {
		return zeroNaN(w.DeltaM), 0, 0, false
	}
	return w.DeltaM, w.T, w.P, true
}

// RunPrivacySweep re-reads one delivered campaign at every grid level and
// assembles the detectability record. The lab's privacy policy is restored
// to off before returning.
func RunPrivacySweep(l *Lab, run *CampaignRun, opt PrivacySweepOptions) (*PrivacySweepResult, error) {
	opt.setDefaults()
	defer l.SetPrivacy(privacy.Config{})

	// Baseline: privacy off, the paper's own measurement.
	base, err := measureUnderPrivacy(l, run, privacy.Config{})
	if err != nil {
		return nil, err
	}
	if len(base.deliveries) == 0 {
		return nil, fmt.Errorf("core: privacy sweep: no measurable ads at baseline")
	}
	isBlackImage := func(d *Delivery) bool { return d.Profile.Race == demo.RaceBlack }
	isFemaleImage := func(d *Delivery) bool { return d.Profile.Gender == demo.GenderFemale }
	fracBlack := func(d *Delivery) float64 { return d.FracBlack }
	fracFemale := func(d *Delivery) float64 { return d.FracFemale }

	res := &PrivacySweepResult{
		Schema:      PrivacySweepSchema,
		Name:        "privacy-detectability",
		Scale:       l.Config.Scale.String(),
		Seed:        opt.Seed,
		Alpha:       opt.Alpha,
		TargetPower: opt.TargetPower,
	}
	raceGap, _, _, _ := groupContrast(base.deliveries, isBlackImage, fracBlack)
	genderGap, _, _, _ := groupContrast(base.deliveries, isFemaleImage, fracFemale)
	res.BaselineRaceGap = zeroNaN(math.Abs(raceGap))
	res.BaselineGenderGap = zeroNaN(math.Abs(genderGap))

	var impsTotal, countA int
	var rateSum float64
	for i := range base.deliveries {
		d := &base.deliveries[i]
		impsTotal += d.Impressions
		rateSum += d.FracBlack
		if isBlackImage(d) {
			countA++
		}
	}
	res.ImpressionsPerAd = impsTotal / len(base.deliveries)
	res.PairsPerGroup = countA
	if n := len(base.deliveries) - countA; n < res.PairsPerGroup {
		res.PairsPerGroup = n
	}
	res.BaselineBaseRate = rateSum / float64(len(base.deliveries))

	for _, k := range opt.Ks {
		for _, eps := range opt.Epsilons {
			cfg, err := privacy.FromFlags(k, eps, opt.Seed)
			if err != nil {
				return nil, err
			}
			m := base
			if cfg.Enabled() {
				if m, err = measureUnderPrivacy(l, run, cfg); err != nil {
					return nil, err
				}
			}
			cell := PrivacySweepCell{
				K:                    k,
				Epsilon:              eps,
				Level:                cfg.Level.String(),
				MeasurableAds:        len(m.deliveries),
				SuppressedAds:        m.suppressedAds,
				SuppressedCellsTotal: m.suppressedCells,
			}
			gap, t, p, ok := groupContrast(m.deliveries, isBlackImage, fracBlack)
			cell.RaceMeasured = ok
			cell.RaceGap, cell.RaceT, cell.RaceP = zeroNaN(gap), zeroNaN(t), zeroNaN(p)
			cell.RaceDetected = ok && p < opt.Alpha
			gap, t, p, ok = groupContrast(m.deliveries, isFemaleImage, fracFemale)
			cell.GenderMeasured = ok
			cell.GenderGap, cell.GenderT, cell.GenderP = zeroNaN(gap), zeroNaN(t), zeroNaN(p)
			cell.GenderDetected = ok && p < opt.Alpha

			cell.AnalyticPower, cell.MinImpressionsPerAd = analyticCell(res, k, eps, opt)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// analyticCell evaluates the closed-form power model at one grid level,
// anchored on the baseline effect size and campaign geometry. Unmeasurable
// or degenerate anchors yield (0, 0) rather than an error: the sweep is a
// record, and a zero row is itself the finding.
func analyticCell(res *PrivacySweepResult, k int, eps float64, opt PrivacySweepOptions) (power float64, minImps int) {
	delta := res.BaselineRaceGap
	if delta <= 0 || delta >= 1 || res.PairsPerGroup < 1 || res.ImpressionsPerAd < 1 {
		return 0, 0
	}
	baseRate := res.BaselineBaseRate
	if baseRate < 0.02 {
		baseRate = 0.02
	}
	if baseRate > 0.98 {
		baseRate = 0.98
	}
	po := PrivacyPowerOptions{
		PowerOptions: PowerOptions{
			Delta:            delta,
			BaseRate:         baseRate,
			ImpressionsPerAd: res.ImpressionsPerAd,
			Pairs:            res.PairsPerGroup,
			Alpha:            opt.Alpha,
		},
		K:       k,
		Epsilon: eps,
	}
	p, err := PrivateAuditPower(po)
	if err != nil {
		return 0, 0
	}
	m, err := MinimumImpressionsForPower(po, opt.TargetPower)
	if err != nil {
		m = 0
	}
	return zeroNaN(p), m
}
