package core

import (
	"fmt"
	"math"

	"github.com/adaudit/impliedidentity/internal/stats"
)

// Power analysis for audit design: how many ad pairs and how many
// impressions per ad does an auditor need to detect a delivery skew of a
// given size? The paper sized its campaigns by experience ($2–3.50 per ad,
// 200 ads); this tool makes the trade-off explicit for anyone adapting the
// methodology.
//
// Model: each ad variant yields a delivery fraction measured from m
// countable impressions, so one variant's fraction has variance ≈
// p(1-p)/m. An audit runs k independent image pairs and compares the two
// group means, whose difference Δ has standard error
// sqrt(2·p(1-p)/(m·k)). Power is for the two-sided level-α z-test.

// PowerOptions describes one audit design.
type PowerOptions struct {
	// Delta is the true difference in the delivery fraction between the two
	// variants (e.g. 0.18 for the paper's Table 4a race effect).
	Delta float64
	// BaseRate is the underlying delivery fraction around which the
	// variance is computed (0.5 is the conservative maximum).
	BaseRate float64
	// ImpressionsPerAd is the countable impressions each ad accrues (the
	// paper's ads averaged ≈ 180).
	ImpressionsPerAd int
	// Pairs is the number of image pairs in the campaign (the paper used
	// 50 per race side).
	Pairs int
	// Alpha is the two-sided test level; default 0.05.
	Alpha float64
}

func (o *PowerOptions) validate() error {
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: power delta %v outside (0,1)", o.Delta)
	}
	if o.BaseRate <= 0 || o.BaseRate >= 1 {
		return fmt.Errorf("core: base rate %v outside (0,1)", o.BaseRate)
	}
	if o.ImpressionsPerAd <= 0 || o.Pairs <= 0 {
		return fmt.Errorf("core: impressions (%d) and pairs (%d) must be positive", o.ImpressionsPerAd, o.Pairs)
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		return fmt.Errorf("core: alpha %v outside [0,1)", o.Alpha)
	}
	return nil
}

// AuditPower returns the probability that the audit detects the skew at the
// given level.
func AuditPower(o PowerOptions) (float64, error) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if err := o.validate(); err != nil {
		return 0, err
	}
	se := math.Sqrt(2 * o.BaseRate * (1 - o.BaseRate) / (float64(o.ImpressionsPerAd) * float64(o.Pairs)))
	zCrit := stats.NormalQuantile(1 - o.Alpha/2)
	shift := o.Delta / se
	// Two-sided power; the wrong-direction rejection region is negligible
	// for any practically detectable Δ but included for correctness.
	return stats.NormalCDF(shift-zCrit) + stats.NormalCDF(-shift-zCrit), nil
}

// MinimumPairs returns the smallest number of image pairs achieving the
// target power for the design, or an error if no count up to 1e6 does.
func MinimumPairs(o PowerOptions, targetPower float64) (int, error) {
	if targetPower <= 0 || targetPower >= 1 {
		return 0, fmt.Errorf("core: target power %v outside (0,1)", targetPower)
	}
	lo, hi := 1, 1
	for {
		o.Pairs = hi
		p, err := AuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			break
		}
		hi *= 2
		if hi > 1_000_000 {
			return 0, fmt.Errorf("core: target power %v unreachable below 1e6 pairs", targetPower)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		o.Pairs = mid
		p, err := AuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// SimulatedPower estimates the same detection probability by Monte Carlo on
// the lab's actual delivery engine: it runs trials small campaigns with one
// image pair each... — that would cost a full campaign per trial, so instead
// it resamples binomial draws under the analytic model, serving as an
// internal consistency check on AuditPower.
func SimulatedPower(o PowerOptions, trials int, seed int64) (float64, error) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if err := o.validate(); err != nil {
		return 0, err
	}
	if trials < 100 {
		return 0, fmt.Errorf("core: %d trials too few", trials)
	}
	rng := newSeededRand(seed)
	p1 := o.BaseRate + o.Delta/2
	p2 := o.BaseRate - o.Delta/2
	if p1 >= 1 || p2 <= 0 {
		return 0, fmt.Errorf("core: delta %v too large for base rate %v", o.Delta, o.BaseRate)
	}
	detected := 0
	m := o.ImpressionsPerAd
	for t := 0; t < trials; t++ {
		var s1, s2, n1, n2 int
		for k := 0; k < o.Pairs; k++ {
			for i := 0; i < m; i++ {
				if rng.Float64() < p1 {
					s1++
				}
				if rng.Float64() < p2 {
					s2++
				}
			}
			n1 += m
			n2 += m
		}
		z, err := stats.TwoProportionZTest(s1, n1, s2, n2)
		if err != nil {
			return 0, err
		}
		if !math.IsNaN(z.P) && z.P < o.Alpha {
			detected++
		}
	}
	return float64(detected) / float64(trials), nil
}
