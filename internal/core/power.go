package core

import (
	"fmt"
	"math"

	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Power analysis for audit design: how many ad pairs and how many
// impressions per ad does an auditor need to detect a delivery skew of a
// given size? The paper sized its campaigns by experience ($2–3.50 per ad,
// 200 ads); this tool makes the trade-off explicit for anyone adapting the
// methodology.
//
// Model: each ad variant yields a delivery fraction measured from m
// countable impressions, so one variant's fraction has variance ≈
// p(1-p)/m. An audit runs k independent image pairs and compares the two
// group means, whose difference Δ has standard error
// sqrt(2·p(1-p)/(m·k)). Power is for the two-sided level-α z-test.

// PowerOptions describes one audit design.
type PowerOptions struct {
	// Delta is the true difference in the delivery fraction between the two
	// variants (e.g. 0.18 for the paper's Table 4a race effect).
	Delta float64
	// BaseRate is the underlying delivery fraction around which the
	// variance is computed (0.5 is the conservative maximum).
	BaseRate float64
	// ImpressionsPerAd is the countable impressions each ad accrues (the
	// paper's ads averaged ≈ 180).
	ImpressionsPerAd int
	// Pairs is the number of image pairs in the campaign (the paper used
	// 50 per race side).
	Pairs int
	// Alpha is the two-sided test level; default 0.05.
	Alpha float64
}

func (o *PowerOptions) validate() error {
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: power delta %v outside (0,1)", o.Delta)
	}
	if o.BaseRate <= 0 || o.BaseRate >= 1 {
		return fmt.Errorf("core: base rate %v outside (0,1)", o.BaseRate)
	}
	if o.ImpressionsPerAd <= 0 || o.Pairs <= 0 {
		return fmt.Errorf("core: impressions (%d) and pairs (%d) must be positive", o.ImpressionsPerAd, o.Pairs)
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		return fmt.Errorf("core: alpha %v outside [0,1)", o.Alpha)
	}
	return nil
}

// AuditPower returns the probability that the audit detects the skew at the
// given level.
func AuditPower(o PowerOptions) (float64, error) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if err := o.validate(); err != nil {
		return 0, err
	}
	se := math.Sqrt(2 * o.BaseRate * (1 - o.BaseRate) / (float64(o.ImpressionsPerAd) * float64(o.Pairs)))
	return stats.NormalPower(o.Delta/se, o.Alpha), nil
}

// PrivacyPowerOptions extends the audit design with the reporting surface's
// privacy policy: the k-anonymity threshold and DP noise parameter of the
// insights API the auditor must read skew through.
type PrivacyPowerOptions struct {
	PowerOptions
	// K is the insights k-anonymity threshold (0 = no suppression).
	K int
	// Epsilon is the insights DP noise parameter (0 = no noise).
	Epsilon float64
	// Cells is the number of breakdown cells the measurement sums over
	// (each released cell carries one independent noise draw). Default 24 —
	// the 6 age buckets × 2 genders × 2 regions surface the audit reads.
	Cells int
	// MinCellShare is the expected share of an ad's impressions in its
	// smallest group-defining cell; suppression erases the measurement
	// unless ImpressionsPerAd × MinCellShare ≥ K. Default 0.05.
	MinCellShare float64
}

func (o *PrivacyPowerOptions) fillDefaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Cells == 0 {
		o.Cells = 24
	}
	if o.MinCellShare == 0 {
		o.MinCellShare = 0.05
	}
}

// PrivateAuditPower returns the detection probability of the audit when the
// insights surface privatizes. Two mechanisms attenuate power:
//
//   - suppression is a cliff: if the smallest group-defining cell falls
//     below K (ImpressionsPerAd × MinCellShare < K), the cells the fraction
//     is computed from are withheld and the skew is unmeasurable — power 0;
//   - noise is a tax: each of the C released cells carries an independent
//     discrete-Laplace draw of variance σ², and by the delta method the
//     measured fraction gains variance σ²·C·p(1-p)/m² on top of the binomial
//     p(1-p)/m.
//
// The test is the same two-group mean comparison as AuditPower; with k
// pairs the difference's SE² is 2·v/pairs for per-ad variance v.
func PrivateAuditPower(o PrivacyPowerOptions) (float64, error) {
	o.fillDefaults()
	if err := o.validate(); err != nil {
		return 0, err
	}
	if o.K < 0 {
		return 0, fmt.Errorf("core: privacy k %d negative", o.K)
	}
	if o.Epsilon < 0 {
		return 0, fmt.Errorf("core: privacy epsilon %v negative", o.Epsilon)
	}
	if o.MinCellShare <= 0 || o.MinCellShare > 1 {
		return 0, fmt.Errorf("core: min cell share %v outside (0,1]", o.MinCellShare)
	}
	m := float64(o.ImpressionsPerAd)
	if o.K > 0 && m*o.MinCellShare < float64(o.K) {
		// Below the suppression cliff: the breakdown cells are withheld and
		// no amount of statistical care recovers the fraction.
		return 0, nil
	}
	p := o.BaseRate
	v := p * (1 - p) / m
	if o.Epsilon > 0 {
		sigma2 := privacy.NoiseVariance(o.Epsilon)
		v += sigma2 * float64(o.Cells) * p * (1 - p) / (m * m)
	}
	se := math.Sqrt(2 * v / float64(o.Pairs))
	return stats.NormalPower(o.Delta/se, o.Alpha), nil
}

// MinimumImpressionsForPower returns the smallest per-ad impression count at
// which the privatized audit reaches the target power — the privacy layer's
// answer to "how big must each campaign be". Power is monotone in m: the
// suppression cliff is passed once, and both variance terms shrink with m.
func MinimumImpressionsForPower(o PrivacyPowerOptions, targetPower float64) (int, error) {
	if targetPower <= 0 || targetPower >= 1 {
		return 0, fmt.Errorf("core: target power %v outside (0,1)", targetPower)
	}
	o.fillDefaults()
	const capM = 1 << 30
	lo := 1
	if o.K > 0 {
		lo = int(math.Ceil(float64(o.K) / o.MinCellShare))
	}
	hi := lo
	for {
		o.ImpressionsPerAd = hi
		p, err := PrivateAuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			break
		}
		hi *= 2
		if hi > capM {
			return 0, fmt.Errorf("core: target power %v unreachable below %d impressions per ad", targetPower, capM)
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		o.ImpressionsPerAd = mid
		p, err := PrivateAuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MinimumPairs returns the smallest number of image pairs achieving the
// target power for the design, or an error if no count up to 1e6 does.
func MinimumPairs(o PowerOptions, targetPower float64) (int, error) {
	if targetPower <= 0 || targetPower >= 1 {
		return 0, fmt.Errorf("core: target power %v outside (0,1)", targetPower)
	}
	lo, hi := 1, 1
	for {
		o.Pairs = hi
		p, err := AuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			break
		}
		hi *= 2
		if hi > 1_000_000 {
			return 0, fmt.Errorf("core: target power %v unreachable below 1e6 pairs", targetPower)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		o.Pairs = mid
		p, err := AuditPower(o)
		if err != nil {
			return 0, err
		}
		if p >= targetPower {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// SimulatedPower estimates the same detection probability by Monte Carlo on
// the lab's actual delivery engine: it runs trials small campaigns with one
// image pair each... — that would cost a full campaign per trial, so instead
// it resamples binomial draws under the analytic model, serving as an
// internal consistency check on AuditPower.
func SimulatedPower(o PowerOptions, trials int, seed int64) (float64, error) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if err := o.validate(); err != nil {
		return 0, err
	}
	if trials < 100 {
		return 0, fmt.Errorf("core: %d trials too few", trials)
	}
	rng := newSeededRand(seed)
	p1 := o.BaseRate + o.Delta/2
	p2 := o.BaseRate - o.Delta/2
	if p1 >= 1 || p2 <= 0 {
		return 0, fmt.Errorf("core: delta %v too large for base rate %v", o.Delta, o.BaseRate)
	}
	detected := 0
	m := o.ImpressionsPerAd
	for t := 0; t < trials; t++ {
		var s1, s2, n1, n2 int
		for k := 0; k < o.Pairs; k++ {
			for i := 0; i < m; i++ {
				if rng.Float64() < p1 {
					s1++
				}
				if rng.Float64() < p2 {
					s2++
				}
			}
			n1 += m
			n2 += m
		}
		z, err := stats.TwoProportionZTest(s1, n1, s2, n2)
		if err != nil {
			return 0, err
		}
		if !math.IsNaN(z.P) && z.P < o.Alpha {
			detected++
		}
	}
	return float64(detected) / float64(trials), nil
}
