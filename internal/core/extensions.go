package core

import (
	"context"
	"fmt"

	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// This file implements the extension experiments E13-E15 — questions the
// paper raises (objectives in §2.1, group photos in §7's future work,
// lookalike/special audiences via ref [58]) but does not run.

// ObjectiveGap is the measured race skew for one delivery objective.
type ObjectiveGap struct {
	Objective string
	// RaceGap is FracBlack(Black image) - FracBlack(white image) for an
	// otherwise-identical ad pair.
	RaceGap float64
	// Impressions is the pair's total delivery, for context (Awareness
	// reaches more users per dollar).
	Impressions int
}

// ObjectiveComparisonResult is the E13 outcome.
type ObjectiveComparisonResult struct {
	Gaps []ObjectiveGap // ordered: AWARENESS, TRAFFIC, CONVERSIONS
}

// RunObjectiveComparison (E13) runs the same white/Black adult-image ad pair
// under each delivery objective. The paper ran everything under Traffic
// (§3.2); this measures how the skew depends on how hard the objective
// optimizes: Awareness ignores the action-rate model entirely, so its skew
// should collapse, while Conversions concentrates delivery hardest.
func (l *Lab) RunObjectiveComparison(seed int64) (*ObjectiveComparisonResult, error) {
	// One balanced 20-image stock set (one photo per demographic
	// combination) per objective, for statistical power.
	specs, err := StockSpecs(1, seed)
	if err != nil {
		return nil, err
	}
	res := &ObjectiveComparisonResult{}
	for i, objective := range []string{"AWARENESS", "TRAFFIC", "CONVERSIONS"} {
		auds, err := l.DefaultSplitAudiences("objective-"+objective, seed+int64(i))
		if err != nil {
			return nil, err
		}
		run, err := l.RunPairedCampaign(CampaignConfig{
			Name:        "E13 " + objective,
			Objective:   objective,
			BudgetCents: 300,
			Seed:        seed + 10 + int64(i),
		}, specs, auds)
		if err != nil {
			return nil, err
		}
		ds, err := MeasureCampaign(run)
		if err != nil {
			return nil, err
		}
		gap := ObjectiveGap{Objective: objective}
		blackMean, _ := GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Race == demo.RaceBlack },
			func(d *Delivery) float64 { return d.FracBlack })
		whiteMean, _ := GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Race == demo.RaceWhite },
			func(d *Delivery) float64 { return d.FracBlack })
		gap.RaceGap = blackMean - whiteMean
		for j := range ds {
			gap.Impressions += ds[j].Impressions
		}
		res.Gaps = append(res.Gaps, gap)
	}
	return res, nil
}

// GroupPhotoResult is the E14 outcome: delivery of single-person images vs
// a two-person diverse group photo.
type GroupPhotoResult struct {
	WhiteOnly   Delivery // single white adult man
	BlackOnly   Delivery // single Black adult man
	DiversePair Delivery // both people in one image
}

// Spread returns how far each ad's Black-delivery fraction sits from the
// diverse pair's — the quantity E14 expects to be one-sided (the group photo
// lands between the single-person extremes).
func (r *GroupPhotoResult) Spread() (belowPair, abovePair float64) {
	return r.DiversePair.FracBlack - r.WhiteOnly.FracBlack,
		r.BlackOnly.FracBlack - r.DiversePair.FracBlack
}

// RunGroupPhotoExperiment (E14) tests the paper's future-work case: an ad
// image containing a diverse group of faces. Expectation under the
// averaging-perception model: the group photo's delivery sits between the
// two single-person extremes.
func (l *Lab) RunGroupPhotoExperiment(seed int64) (*GroupPhotoResult, error) {
	rng := rand.New(rand.NewSource(seed))
	white := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	black := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	white.ApplyPresentationBias()
	black.ApplyPresentationBias()
	pair, err := image.GroupPhoto([]image.Features{white, black}, rng)
	if err != nil {
		return nil, err
	}
	specs := []AdSpec{
		{Key: "single-white", Profile: white.ImpliedProfile(), Image: white},
		{Key: "single-black", Profile: black.ImpliedProfile(), Image: black},
		{Key: "diverse-pair", Profile: pair.ImpliedProfile(), Image: pair},
	}
	auds, err := l.DefaultSplitAudiences("group-photo", seed+1)
	if err != nil {
		return nil, err
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "E14 group photos",
		BudgetCents: 800,
		Seed:        seed + 2,
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	res := &GroupPhotoResult{}
	for i := range ds {
		switch ds[i].Key {
		case "single-white":
			res.WhiteOnly = ds[i]
		case "single-black":
			res.BlackOnly = ds[i]
		case "diverse-pair":
			res.DiversePair = ds[i]
		}
	}
	if res.WhiteOnly.Impressions == 0 || res.BlackOnly.Impressions == 0 || res.DiversePair.Impressions == 0 {
		return nil, fmt.Errorf("core: group-photo experiment produced an empty delivery")
	}
	return res, nil
}

// LookalikeResult is the E15 outcome.
type LookalikeResult struct {
	SeedSize       int
	SeedFracBlack  float64
	Expansion      platform.AudienceComposition
	BaselineRandom platform.AudienceComposition // random same-size audience
}

// RunLookalikeExperiment (E15) reproduces the setting of "Algorithms that
// Don't See Color" (the paper's ref [58]): seed a lookalike audience with
// Black voters only, let the platform expand it using exclusively
// non-demographic account features, and compare the expansion's racial
// makeup with a random audience of the same size. Residential segregation
// makes ZIP a race proxy, so the "color-blind" expansion reproduces the
// seed's makeup — composition is read through the simulator oracle, as the
// reference work read it through voter-list ground truth.
func (l *Lab) RunLookalikeExperiment(seedCount, expandCount int, seed int64) (*LookalikeResult, error) {
	if seedCount <= 0 || expandCount <= 0 {
		return nil, fmt.Errorf("core: seed and expansion sizes must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	// Seed list: Black voters from both states.
	var hashes []string
	take := func(records []voter.Record) {
		var black []voter.Record
		for i := range records {
			if records[i].Race == demo.RaceBlack {
				black = append(black, records[i])
			}
		}
		for _, j := range rng.Perm(len(black)) {
			if len(hashes) >= seedCount {
				return
			}
			r := &black[j]
			hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
		}
	}
	take(l.FL.Records)
	take(l.NC.Records)
	seedResp, err := l.Client.CreateAudience(context.Background(), "lookalike-seed", hashes)
	if err != nil {
		return nil, err
	}
	res := &LookalikeResult{SeedSize: seedResp.MatchedSize, SeedFracBlack: 1}

	// The expansion and composition reads go through the platform handle:
	// lookalike construction is a platform-side product feature, and the
	// composition is an oracle read (not advertiser-visible).
	expansion, err := l.Platform.CreateLookalikeAudience("lookalike-expansion", seedResp.ID, expandCount)
	if err != nil {
		return nil, err
	}
	if res.Expansion, err = l.Platform.CompositionOf(expansion.ID); err != nil {
		return nil, err
	}

	// Random baseline of the same size, from a mixed voter sample.
	var baseHashes []string
	all := append(append([]voter.Record(nil), l.FL.Records...), l.NC.Records...)
	for _, j := range rng.Perm(len(all)) {
		if len(baseHashes) >= expandCount*2 {
			break
		}
		r := &all[j]
		baseHashes = append(baseHashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	baseResp, err := l.Client.CreateAudience(context.Background(), "lookalike-baseline", baseHashes)
	if err != nil {
		return nil, err
	}
	if res.BaselineRandom, err = l.Platform.CompositionOf(baseResp.ID); err != nil {
		return nil, err
	}
	return res, nil
}

// Lift returns how much more Black the expansion is than the random
// baseline, in percentage points.
func (r *LookalikeResult) Lift() float64 {
	return 100 * (r.Expansion.FracBlack - r.BaselineRandom.FracBlack)
}

// FeedbackRound is one round of the E16 feedback-loop experiment.
type FeedbackRound struct {
	Round     int
	BlackCoef float64 // Table 4 race coefficient measured this round
	ServedLog int     // impressions accumulated before retraining
}

// FeedbackLoopResult is the E16 outcome.
type FeedbackLoopResult struct {
	Rounds []FeedbackRound
}

// RunFeedbackLoop (E16) measures how delivery skew evolves when the platform
// periodically retrains its action-rate model on the impressions it served —
// the engagement feedback loop §2.2 and §8 discuss. Each round runs a small
// balanced stock campaign, records the Table 4 race coefficient, then has
// the platform retrain on a fresh background log plus the served buffer
// (which the previous model's choices selection-biased).
func (l *Lab) RunFeedbackLoop(rounds int, seed int64) (*FeedbackLoopResult, error) {
	if rounds < 1 || rounds > 20 {
		return nil, fmt.Errorf("core: feedback rounds %d outside [1, 20]", rounds)
	}
	res := &FeedbackLoopResult{}
	for r := 0; r < rounds; r++ {
		stock, err := l.RunStockExperiment(StockExperimentOptions{
			PerPerson: 2,
			Seed:      seed + int64(100*r),
		})
		if err != nil {
			return nil, fmt.Errorf("core: feedback round %d: %w", r, err)
		}
		coef, _ := stock.Table4.Black.Coefficient("Black")
		res.Rounds = append(res.Rounds, FeedbackRound{
			Round:     r,
			BlackCoef: coef,
			ServedLog: l.Platform.ServedLogSize(),
		})
		if r < rounds-1 {
			if err := l.Platform.Retrain(trainingForRetrain(l, seed+int64(r))); err != nil {
				return nil, fmt.Errorf("core: retraining after round %d: %w", r, err)
			}
		}
	}
	return res, nil
}

// trainingForRetrain builds the retraining configuration at the lab's scale.
func trainingForRetrain(l *Lab, seed int64) platform.TrainingConfig {
	return platform.TrainingConfig{Seed: seed + 7777}
}
