package core

import (
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

func impliedAges() []demo.ImpliedAge { return demo.AllImpliedAges() }

// newSeededRand returns a deterministic RNG.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// nuisanceDistance measures how far an ad spec's image sits from a source
// image in nuisance space.
func nuisanceDistance(source image.Features, spec AdSpec) float64 {
	return image.NuisanceDistance(source, spec.Image)
}

// Fig4Point is one x-position of Figure 4: the fraction of men (or women)
// aged 55+ in the actual audience, by the implied age and gender of the
// image.
type Fig4Point struct {
	ImpliedAge   string
	MaleImgMen55 float64 // panel A, blue line
	FemImgMen55  float64 // panel A, orange line
	MaleImgWom55 float64 // panel B, blue line
	FemImgWom55  float64 // panel B, orange line
}

// Figure4 computes the Figure 4 series from stock deliveries.
func Figure4(ds []Delivery) []Fig4Point {
	var out []Fig4Point
	for _, a := range impliedAges() {
		p := Fig4Point{ImpliedAge: a.String()}
		p.MaleImgMen55, _ = GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Age == a && d.Profile.Gender.String() == "male" },
			func(d *Delivery) float64 { return d.FracMen55Plus })
		p.FemImgMen55, _ = GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Age == a && d.Profile.Gender.String() == "female" },
			func(d *Delivery) float64 { return d.FracMen55Plus })
		p.MaleImgWom55, _ = GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Age == a && d.Profile.Gender.String() == "male" },
			func(d *Delivery) float64 { return d.FracWomen55Plus })
		p.FemImgWom55, _ = GroupMean(ds,
			func(d *Delivery) bool { return d.Profile.Age == a && d.Profile.Gender.String() == "female" },
			func(d *Delivery) float64 { return d.FracWomen55Plus })
		out = append(out, p)
	}
	return out
}

// CongruentRaceShare returns the fraction of Figure 7A pairs below the x=y
// line (congruent skew: the Black-face version delivers more to Black
// users).
func CongruentRaceShare(points []Fig7RacePoint) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	var congruent int
	for _, p := range points {
		if p.BlackImage > p.WhiteImage {
			congruent++
		}
	}
	return float64(congruent) / float64(len(points))
}
