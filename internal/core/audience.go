package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// SplitAudiences holds the two Custom Audiences of the Figure 2 methodology.
// Primary targets white Florida voters plus Black North Carolina voters;
// Reversed targets the opposite assignment. Every ad runs in two copies, one
// per audience, and the analysis aggregates both so location-specific
// confounders cancel (§3.3).
type SplitAudiences struct {
	PrimaryID  string // FL white + NC Black
	ReversedID string // FL Black + NC white
	// Sample sizes per audience side, for Table 1 style reporting.
	PerState int
}

// hashRecords converts voter records to the PII hashes an advertiser
// uploads.
func hashRecords(records []voter.Record) []string {
	out := make([]string, len(records))
	for i := range records {
		r := &records[i]
		out[i] = population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP)
	}
	return out
}

// filterRace returns the subset of records with the given race.
func filterRace(records []voter.Record, race demo.Race) []voter.Record {
	var out []voter.Record
	for i := range records {
		if records[i].Race == race {
			out = append(out, records[i])
		}
	}
	return out
}

// BalancedSamples draws one stratified, Table 1-balanced sample from each
// state's registry.
func (l *Lab) BalancedSamples(perCell int, seed int64) (fl, nc []voter.Record) {
	rng := rand.New(rand.NewSource(seed))
	fl = voter.StratifiedSample(l.FL.Records, perCell, rng)
	nc = voter.StratifiedSample(l.NC.Records, perCell, rng)
	return fl, nc
}

// BuildSplitAudiences constructs and uploads the paired race-split Custom
// Audiences from balanced per-state samples (Figure 2). The stratified
// samples guarantee that within each audience the age and gender cells stay
// balanced and that the two race sides are the same size.
func (l *Lab) BuildSplitAudiences(name string, flSample, ncSample []voter.Record) (SplitAudiences, error) {
	if len(flSample) == 0 || len(ncSample) == 0 {
		return SplitAudiences{}, fmt.Errorf("core: empty state samples")
	}
	flWhite := filterRace(flSample, demo.RaceWhite)
	flBlack := filterRace(flSample, demo.RaceBlack)
	ncWhite := filterRace(ncSample, demo.RaceWhite)
	ncBlack := filterRace(ncSample, demo.RaceBlack)
	if len(flWhite) == 0 || len(flBlack) == 0 || len(ncWhite) == 0 || len(ncBlack) == 0 {
		return SplitAudiences{}, fmt.Errorf("core: a race side is empty (fl %d/%d, nc %d/%d)",
			len(flWhite), len(flBlack), len(ncWhite), len(ncBlack))
	}

	primary, err := l.Client.CreateAudience(context.Background(), name+"/FLwhite+NCblack",
		append(hashRecords(flWhite), hashRecords(ncBlack)...))
	if err != nil {
		return SplitAudiences{}, fmt.Errorf("core: uploading primary audience: %w", err)
	}
	reversed, err := l.Client.CreateAudience(context.Background(), name+"/FLblack+NCwhite",
		append(hashRecords(flBlack), hashRecords(ncWhite)...))
	if err != nil {
		return SplitAudiences{}, fmt.Errorf("core: uploading reversed audience: %w", err)
	}
	if primary.MatchedSize == 0 || reversed.MatchedSize == 0 {
		return SplitAudiences{}, fmt.Errorf("core: audience matched no users (primary %d, reversed %d)",
			primary.MatchedSize, reversed.MatchedSize)
	}
	return SplitAudiences{
		PrimaryID:  primary.ID,
		ReversedID: reversed.ID,
		PerState:   len(flSample),
	}, nil
}

// DefaultSplitAudiences builds the standard audiences at the lab's scale.
func (l *Lab) DefaultSplitAudiences(name string, seed int64) (SplitAudiences, error) {
	fl, nc := l.BalancedSamples(l.Config.Scale.PerCell(), seed)
	return l.BuildSplitAudiences(name, fl, nc)
}

// Table1 reports the stratified sample the way the paper's Table 1 does,
// combining both states (group size is per race×gender cell across both
// states; total is the full audience per age range).
func Table1(flSample, ncSample []voter.Record) []voter.Table1Row {
	combined := append(append([]voter.Record(nil), flSample...), ncSample...)
	return voter.Table1(combined)
}
