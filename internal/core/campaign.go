package core

import (
	"context"
	"fmt"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/marketing"
)

// AdSpec is one ad in a controlled campaign: an image plus its implied
// identity annotation. Everything else about the ad is held constant across
// the campaign (§3.2).
type AdSpec struct {
	Key     string       // stable identifier, e.g. "stock-bm-adult-3"
	Profile demo.Profile // implied identity of the pictured person
	Image   image.Features
}

// CampaignConfig configures one controlled campaign.
type CampaignConfig struct {
	Name        string
	Objective   string // marketing-API objective; default TRAFFIC
	Special     string // special ad category; default NONE
	BudgetCents int    // per-ad daily budget; the paper used $2.00-$3.50
	AgeMax      int    // 0 = no age limit; Campaign 2/3 used 45/44
	AccountAge  int    // ad-account creation year (Table 2 note)
	Seed        int64  // delivery seed
	Headline    string
	Body        string
	LinkURL     string
}

func (c *CampaignConfig) setDefaults() {
	if c.Objective == "" {
		c.Objective = "TRAFFIC"
	}
	if c.Special == "" {
		c.Special = "NONE"
	}
	if c.BudgetCents == 0 {
		c.BudgetCents = 200
	}
	if c.AccountAge == 0 {
		c.AccountAge = 2019
	}
	if c.Headline == "" {
		c.Headline = "Considering a career in project management?"
	}
	if c.LinkURL == "" {
		c.LinkURL = "https://example.edu/project-management-career-guide"
	}
}

// AdRun is the outcome for one AdSpec: the two copies (primary and reversed
// audiences) with their review status and, when delivered, insights.
type AdRun struct {
	Spec           AdSpec
	PrimaryID      string
	ReversedID     string
	PrimaryStatus  string
	ReversedStatus string
	Primary        *marketing.InsightsResponse // nil if rejected
	Reversed       *marketing.InsightsResponse // nil if rejected
}

// Rejected reports whether either copy failed review — the Appendix A
// analysis drops such ads from both campaigns.
func (r *AdRun) Rejected() bool {
	return r.PrimaryStatus == "REJECTED" || r.ReversedStatus == "REJECTED"
}

// CampaignRun is a completed controlled campaign.
type CampaignRun struct {
	Config CampaignConfig
	Ads    []AdRun
}

// TotalImpressions sums impressions over all delivered copies.
func (c *CampaignRun) TotalImpressions() int {
	var n int
	for i := range c.Ads {
		if c.Ads[i].Primary != nil {
			n += c.Ads[i].Primary.Impressions
		}
		if c.Ads[i].Reversed != nil {
			n += c.Ads[i].Reversed.Impressions
		}
	}
	return n
}

// TotalReach sums reach over all delivered copies (an upper bound on unique
// users, as the platform reports reach per ad).
func (c *CampaignRun) TotalReach() int {
	var n int
	for i := range c.Ads {
		if c.Ads[i].Primary != nil {
			n += c.Ads[i].Primary.Reach
		}
		if c.Ads[i].Reversed != nil {
			n += c.Ads[i].Reversed.Reach
		}
	}
	return n
}

// TotalSpendCents sums spend over all delivered copies.
func (c *CampaignRun) TotalSpendCents() float64 {
	var s float64
	for i := range c.Ads {
		if c.Ads[i].Primary != nil {
			s += c.Ads[i].Primary.SpendCents
		}
		if c.Ads[i].Reversed != nil {
			s += c.Ads[i].Reversed.SpendCents
		}
	}
	return s
}

// AdCount returns the number of platform ads created (two per spec).
func (c *CampaignRun) AdCount() int { return 2 * len(c.Ads) }

// RunPairedCampaign executes the full §3.2 protocol: for every spec it
// creates two ads identical except for the target audience (primary and
// reversed race-split copies), launches all copies at the same time with
// the same budget, lets them deliver for one simulated day, and collects
// insights. Rejected copies are carried through with nil insights.
func (l *Lab) RunPairedCampaign(cfg CampaignConfig, specs []AdSpec, auds SplitAudiences) (*CampaignRun, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: campaign %q has no ads", cfg.Name)
	}
	cfg.setDefaults()
	cmp, err := l.Client.CreateCampaign(context.Background(), marketing.CreateCampaignRequest{
		Name:              cfg.Name,
		Objective:         cfg.Objective,
		SpecialAdCategory: cfg.Special,
		AccountAge:        cfg.AccountAge,
	})
	if err != nil {
		return nil, fmt.Errorf("core: creating campaign %q: %w", cfg.Name, err)
	}

	run := &CampaignRun{Config: cfg, Ads: make([]AdRun, len(specs))}
	var activeIDs []string
	for i, spec := range specs {
		run.Ads[i].Spec = spec
		for _, side := range []struct {
			audienceID string
			id         *string
			status     *string
		}{
			{auds.PrimaryID, &run.Ads[i].PrimaryID, &run.Ads[i].PrimaryStatus},
			{auds.ReversedID, &run.Ads[i].ReversedID, &run.Ads[i].ReversedStatus},
		} {
			ad, err := l.Client.CreateAd(context.Background(), marketing.CreateAdRequest{
				CampaignID: cmp.ID,
				Creative: marketing.WireCreative{
					Image:    marketing.WireImageFrom(spec.Image),
					Headline: cfg.Headline,
					Body:     cfg.Body,
					LinkURL:  cfg.LinkURL,
				},
				Targeting: marketing.WireTargeting{
					CustomAudienceIDs: []string{side.audienceID},
					AgeMax:            cfg.AgeMax,
				},
				DailyBudgetCents: cfg.BudgetCents,
			})
			if err != nil {
				return nil, fmt.Errorf("core: creating ad %s: %w", spec.Key, err)
			}
			*side.id = ad.ID
			*side.status = ad.Status
			if ad.Status == "ACTIVE" {
				activeIDs = append(activeIDs, ad.ID)
			}
		}
	}
	if len(activeIDs) == 0 {
		return nil, fmt.Errorf("core: campaign %q: every ad was rejected", cfg.Name)
	}
	if err := l.Client.Deliver(context.Background(), activeIDs, cfg.Seed); err != nil {
		return nil, fmt.Errorf("core: delivering campaign %q: %w", cfg.Name, err)
	}
	for i := range run.Ads {
		ar := &run.Ads[i]
		if ar.PrimaryStatus == "ACTIVE" {
			if ar.Primary, err = l.Client.Insights(context.Background(), ar.PrimaryID); err != nil {
				return nil, err
			}
			ar.PrimaryStatus = "COMPLETED"
		}
		if ar.ReversedStatus == "ACTIVE" {
			if ar.Reversed, err = l.Client.Insights(context.Background(), ar.ReversedID); err != nil {
				return nil, err
			}
			ar.ReversedStatus = "COMPLETED"
		}
	}
	return run, nil
}
