package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"github.com/adaudit/impliedidentity/internal/privacy"
)

func TestPrivateAuditPowerReducesToPlain(t *testing.T) {
	base := PowerOptions{Delta: 0.18, BaseRate: 0.65, ImpressionsPerAd: 180, Pairs: 50}
	plain, err := AuditPower(base)
	if err != nil {
		t.Fatal(err)
	}
	private, err := PrivateAuditPower(PrivacyPowerOptions{PowerOptions: base})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-private) > 1e-12 {
		t.Errorf("no privacy: private power %v != plain %v", private, plain)
	}
}

func TestPrivateAuditPowerSuppressionCliff(t *testing.T) {
	o := PrivacyPowerOptions{
		PowerOptions: PowerOptions{Delta: 0.18, BaseRate: 0.65, ImpressionsPerAd: 180, Pairs: 50},
		K:            100, // 180 × 0.05 = 9 < 100: cells withheld
	}
	p, err := PrivateAuditPower(o)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("below the suppression cliff power should be exactly 0, got %v", p)
	}
	// Above the cliff the same k is harmless: suppression is a threshold,
	// not a tax.
	o.ImpressionsPerAd = 100_000
	p, err = PrivateAuditPower(o)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Errorf("far above the cliff power should be ≈1, got %v", p)
	}
}

func TestPrivateAuditPowerNoiseIsATax(t *testing.T) {
	base := PrivacyPowerOptions{
		PowerOptions: PowerOptions{Delta: 0.1, BaseRate: 0.55, ImpressionsPerAd: 180, Pairs: 10},
	}
	clean, err := PrivateAuditPower(base)
	if err != nil {
		t.Fatal(err)
	}
	prev := clean
	for _, eps := range []float64{3, 1, 0.3, 0.1} {
		o := base
		o.Epsilon = eps
		p, err := PrivateAuditPower(o)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("eps=%v: power %v should be below %v (noise grows as eps shrinks)", eps, p, prev)
		}
		prev = p
	}
	if _, err := PrivateAuditPower(PrivacyPowerOptions{PowerOptions: base.PowerOptions, K: -1}); err == nil {
		t.Error("negative k: want error")
	}
	if _, err := PrivateAuditPower(PrivacyPowerOptions{PowerOptions: base.PowerOptions, Epsilon: -1}); err == nil {
		t.Error("negative epsilon: want error")
	}
}

func TestMinimumImpressionsForPower(t *testing.T) {
	o := PrivacyPowerOptions{
		PowerOptions: PowerOptions{Delta: 0.1, BaseRate: 0.55, Pairs: 25},
		K:            20,
		Epsilon:      1,
	}
	m, err := MinimumImpressionsForPower(o, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// The answer must clear the suppression cliff (K / MinCellShare = 400).
	if m < 400 {
		t.Errorf("minimum impressions %d below the suppression floor 400", m)
	}
	o.ImpressionsPerAd = m
	pAt, err := PrivateAuditPower(o)
	if err != nil {
		t.Fatal(err)
	}
	if pAt < 0.8 {
		t.Errorf("power at the returned minimum %d is %v, want ≥ 0.8", m, pAt)
	}
	if m > 400 {
		o.ImpressionsPerAd = m - 1
		pBelow, err := PrivateAuditPower(o)
		if err != nil {
			t.Fatal(err)
		}
		if pBelow >= 0.8 {
			t.Errorf("power already %v at %d impressions", pBelow, m-1)
		}
	}
	// Stricter noise demands a bigger campaign. Compare at K=0 so the
	// suppression floor (which both levels clear) doesn't mask the noise
	// term the way it does above.
	loose := PrivacyPowerOptions{
		PowerOptions: PowerOptions{Delta: 0.05, BaseRate: 0.55, Pairs: 5},
		Epsilon:      1,
	}
	ml, err := MinimumImpressionsForPower(loose, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	strict := loose
	strict.Epsilon = 0.1
	ms, err := MinimumImpressionsForPower(strict, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= ml {
		t.Errorf("eps=0.1 minimum %d should exceed eps=1 minimum %d", ms, ml)
	}
	if _, err := MinimumImpressionsForPower(o, 1.5); err == nil {
		t.Error("bad target power: want error")
	}
}

// TestRunPrivacySweep delivers one small stock campaign and sweeps the full
// grid over it: the off cell must reproduce the raw measurement, stricter
// levels must only lose information, the record must round-trip through
// JSON, and the lab must come back with privacy off.
func TestRunPrivacySweep(t *testing.T) {
	l := sharedLab(t)
	stock, err := l.RunStockExperiment(StockExperimentOptions{Seed: 4400, PerPerson: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPrivacySweep(l, stock.Run, PrivacySweepOptions{Seed: 4401})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 3×3 grid", len(res.Cells))
	}
	off := res.Cells[0]
	if off.Level != "off" || off.K != 0 || off.Epsilon != 0 {
		t.Fatalf("first cell should be privacy off, got %+v", off)
	}
	if off.SuppressedAds != 0 || off.SuppressedCellsTotal != 0 {
		t.Errorf("off cell should suppress nothing: %+v", off)
	}
	if off.MeasurableAds == 0 {
		t.Fatal("off cell measured no ads")
	}
	if math.Abs(math.Abs(off.RaceGap)-res.BaselineRaceGap) > 1e-12 {
		t.Errorf("off-cell race gap %v inconsistent with baseline %v", off.RaceGap, res.BaselineRaceGap)
	}
	for _, c := range res.Cells {
		if c.MeasurableAds+c.SuppressedAds > off.MeasurableAds {
			t.Errorf("cell k=%d eps=%v accounts for more ads than exist: %+v", c.K, c.Epsilon, c)
		}
		if c.K >= 100 && c.SuppressedCellsTotal == 0 && c.MeasurableAds == off.MeasurableAds {
			t.Errorf("k=%d suppressed nothing at test scale: %+v", c.K, c)
		}
		if c.AnalyticPower < 0 || c.AnalyticPower > 1 {
			t.Errorf("analytic power %v outside [0,1]", c.AnalyticPower)
		}
	}

	// The record must be JSON-encodable (no NaN leaks from empty contrasts).
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("sweep record not encodable: %v", err)
	}

	// Determinism: the same sweep again yields the same bytes.
	res2, err := RunPrivacySweep(l, stock.Run, PrivacySweepOptions{Seed: 4401})
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("sweep is not deterministic for a fixed seed")
	}

	// The sweep must leave the live server unprivatized.
	ad := firstDeliveredAdID(t, stock.Run)
	resp, err := l.Client.Insights(context.Background(), ad)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Privacy != nil {
		t.Error("lab privacy not restored to off after sweep")
	}
}

func firstDeliveredAdID(t *testing.T, run *CampaignRun) string {
	t.Helper()
	for i := range run.Ads {
		if !run.Ads[i].Rejected() && run.Ads[i].PrimaryID != "" {
			return run.Ads[i].PrimaryID
		}
	}
	t.Fatal("no delivered ads in campaign")
	return ""
}

// The suppression-aware measurement must treat a fully-withheld breakdown as
// an unmeasurable ad, not an error: crank k beyond any cell's size.
func TestMeasureUnderPrivacyTotalSuppression(t *testing.T) {
	l := sharedLab(t)
	stock, err := l.RunStockExperiment(StockExperimentOptions{Seed: 4500, PerPerson: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := privacy.Config{Level: privacy.LevelKAnon, K: 1 << 20}
	m, err := measureUnderPrivacy(l, stock.Run, cfg)
	l.SetPrivacy(privacy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.deliveries) != 0 {
		t.Errorf("k=2^20 should suppress every ad, measured %d", len(m.deliveries))
	}
	if m.suppressedAds == 0 {
		t.Error("expected suppressed ads to be counted")
	}
}
