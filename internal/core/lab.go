// Package core implements the paper's contribution: the audit methodology.
// It builds balanced target audiences from voter records (Table 1, §3.2),
// implements the region-split race measurement with reversed copies
// (Figure 2, §3.3), runs controlled ad campaigns where only the image
// varies, computes delivery measurements, and drives the regression analyses
// behind Tables 4, 5, and A1.
//
// Everything the auditor does goes through the marketing API over HTTP —
// the same visibility boundary the paper's authors had. The one exception
// is the simulator-only race oracle used by the methodology-validation
// experiment (E11), which is read directly from the platform object and is
// explicitly not part of the advertiser surface.
package core

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// Scale selects a simulation size preset.
type Scale int

// Scale presets. ScaleTest keeps unit tests fast; ScaleBench sizes the
// benchmark harness; ScaleFull is the CLI default and approaches the
// paper's audience sizes within laptop memory limits.
const (
	ScaleTest Scale = iota
	ScaleBench
	ScaleFull
)

// String names the preset.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleBench:
		return "bench"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// LabConfig configures the simulated world and the audit's vantage point.
type LabConfig struct {
	Seed  int64
	Scale Scale
	// Behavior overrides the ground-truth engagement model (ablation A2).
	// Zero value means DefaultBehaviorConfig.
	Behavior population.BehaviorConfig
	// UseEAR false disables delivery optimization (ablation A1).
	DisableEAR bool
	// GreedyPacing disables budget pacing (ablation A5).
	GreedyPacing bool
	// TravelProb overrides the out-of-region probability (ablation A3:
	// state-level ≈ 0.004 vs DMA-level ≈ 0.12).
	TravelProb float64
	// FLActivityBoost injects a location confounder (ablation A4).
	FLActivityBoost float64
	// Privacy arms the marketing API's insights privatization (k-anonymity
	// and seeded DP noise) from the first request. The zero value serves raw
	// reports; SetPrivacy switches levels on the live server later, which
	// the skew-detectability sweep uses to re-read one delivered campaign
	// under several policies.
	Privacy privacy.Config
}

// votersPerState returns the registry size for the preset.
func (s Scale) votersPerState() int {
	switch s {
	case ScaleBench:
		return 40000
	case ScaleFull:
		return 120000
	default:
		return 20000
	}
}

// trainingRows returns the engagement-log size for the preset.
func (s Scale) trainingRows() int {
	switch s {
	case ScaleBench:
		return 30000
	case ScaleFull:
		return 60000
	default:
		return 20000
	}
}

// PerCell returns the default stratified-sample cap per cell for audience
// construction at this scale.
func (s Scale) PerCell() int {
	switch s {
	case ScaleBench:
		return 400
	case ScaleFull:
		return 1200
	default:
		return 250
	}
}

// Lab is a fully assembled audit environment: synthetic voter registries, a
// user population, a trained platform behind a live HTTP marketing API, and
// the client the audit code uses.
type Lab struct {
	Config LabConfig
	FL, NC *voter.Registry
	Pop    *population.Population
	Client *marketing.Client

	// Platform is the simulator handle. Audit code must not use it except
	// for oracle reads in validation experiments; everything else goes
	// through Client.
	Platform *platform.Platform

	server     *marketing.Server
	httpServer *http.Server
	listener   net.Listener
}

// NewLab builds the world: registries for FL and NC, the population, the
// platform (training its vision and eAR models), and an HTTP server bound
// to a loopback port with a client pointed at it.
func NewLab(cfg LabConfig) (*Lab, error) {
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, cfg.Seed+1)
	flCfg.NumVoters = cfg.Scale.votersPerState()
	ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, cfg.Seed+2)
	ncCfg.NumVoters = cfg.Scale.votersPerState()
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return nil, fmt.Errorf("core: generating FL registry: %w", err)
	}
	nc, err := voter.Generate(ncCfg)
	if err != nil {
		return nil, fmt.Errorf("core: generating NC registry: %w", err)
	}

	popCfg := population.Config{
		Seed:            cfg.Seed + 3,
		TravelProb:      cfg.TravelProb,
		FLActivityBoost: cfg.FLActivityBoost,
	}
	pop, err := population.Build(popCfg, fl, nc)
	if err != nil {
		return nil, fmt.Errorf("core: building population: %w", err)
	}

	behaveCfg := cfg.Behavior
	if behaveCfg == (population.BehaviorConfig{}) {
		behaveCfg = population.DefaultBehaviorConfig()
	}
	behave, err := population.NewBehavior(behaveCfg)
	if err != nil {
		return nil, fmt.Errorf("core: behaviour model: %w", err)
	}

	platCfg := platform.DefaultConfig(cfg.Seed + 4)
	platCfg.Training.LogRows = cfg.Scale.trainingRows()
	platCfg.UseEAR = !cfg.DisableEAR
	platCfg.GreedyPacing = cfg.GreedyPacing
	platCfg.ReviewRejectProb = 0.0 // experiments set review strictness explicitly
	plat, err := platform.New(platCfg, pop, behave)
	if err != nil {
		return nil, fmt.Errorf("core: building platform: %w", err)
	}

	srv, err := marketing.NewServer(plat, marketing.WithPrivacy(cfg.Privacy))
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: binding marketing API: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else would
		// surface as client errors in the audit calls.
		_ = httpSrv.Serve(ln)
	}()
	client, err := marketing.NewClient("http://" + ln.Addr().String())
	if err != nil {
		_ = httpSrv.Close()
		return nil, err
	}
	return &Lab{
		Config:     cfg,
		FL:         fl,
		NC:         nc,
		Pop:        pop,
		Client:     client,
		Platform:   plat,
		server:     srv,
		httpServer: httpSrv,
		listener:   ln,
	}, nil
}

// SetPrivacy switches the live marketing API's insights privatization
// policy. Privatization is response-time and stateless, so delivered
// campaigns can be re-read under a new policy without re-running delivery —
// the skew-detectability sweep delivers once and measures at every level.
func (l *Lab) SetPrivacy(cfg privacy.Config) {
	l.server.SetPrivacy(cfg)
}

// Close shuts down the marketing API server.
func (l *Lab) Close() error {
	if l.httpServer == nil {
		return nil
	}
	err := l.httpServer.Close()
	l.httpServer = nil
	return err
}

// URL returns the marketing API base URL (useful for external tooling).
func (l *Lab) URL() string {
	return "http://" + l.listener.Addr().String()
}
