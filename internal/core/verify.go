package core

import (
	"fmt"
	"math"
)

// Check is one automated shape-agreement check against a published finding.
type Check struct {
	ID          string
	Description string
	Pass        bool
	Detail      string
}

// check builds a Check with a formatted detail line.
func check(id, desc string, pass bool, format string, args ...any) Check {
	return Check{ID: id, Description: desc, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// ShapeChecks evaluates the DESIGN.md success criteria programmatically: for
// each headline finding in the paper, does the reproduction show the same
// direction, dominance, and significance pattern? Inputs may be nil; checks
// that lack their input are skipped.
func ShapeChecks(stock *StockResult, capped *StockResult, syn *SyntheticResult, emp *EmploymentResult, pov *PovertyResult, val *ValidationResult) []Check {
	var out []Check
	if stock != nil {
		t4 := stock.Table4
		black, _ := t4.Black.Coefficient("Black")
		out = append(out, check("S1",
			"images of Black people deliver substantially more to Black users (Table 4a Black ***)",
			black > 0.05 && t4.Black.Significant("Black", 0.001),
			"coef %+0.4f (paper +0.1812***)", black))
		dominant := true
		for _, name := range []string{"Female", "Child", "Teen", "Middle-aged", "Elderly"} {
			if c, _ := t4.Black.Coefficient(name); math.Abs(c) >= black {
				dominant = false
			}
		}
		out = append(out, check("S2",
			"implied race dominates every other term in the %Black model",
			dominant, "Black %+0.4f vs others", black))
		intercept := t4.Black.Coef[0]
		out = append(out, check("S3",
			"balanced audiences deliver majority-Black at equal budgets (intercept > 0.4)",
			intercept > 0.4, "intercept %0.4f (paper 0.5697)", intercept))
		child, _ := t4.Female.Coefficient("Child")
		out = append(out, check("S4",
			"images of children deliver to women (Table 4a Child *** in %Female)",
			child > 0.02 && t4.Female.Significant("Child", 0.01),
			"coef %+0.4f (paper +0.0924***)", child))
		elderly, _ := t4.Age.Coefficient("Elderly")
		out = append(out, check("S5",
			"images of elderly people deliver to the oldest users (Table 4a Elderly in %65+)",
			elderly > 0.01 && t4.Age.Significant("Elderly", 0.05),
			"coef %+0.4f (paper +0.1180***)", elderly))
		// Figure 4A: teen-woman images spike among men 55+.
		pts := Figure4(stock.Deliveries)
		teenSpike := false
		for _, p := range pts {
			if p.ImpliedAge == "teen" && p.FemImgMen55 > p.MaleImgMen55 {
				teenSpike = true
			}
		}
		out = append(out, check("S6",
			"teen-woman images reach disproportionately many men 55+ (Figure 4A)",
			teenSpike, "see Figure 4 series"))
		leak, _ := GroupMean(stock.Deliveries, func(*Delivery) bool { return true },
			func(d *Delivery) float64 { return d.OutOfState })
		out = append(out, check("S7",
			"out-of-target-state delivery below ~1% (§3.3)",
			leak < 0.015, "leakage %.2f%% (paper <1%%)", 100*leak))
	}
	if capped != nil {
		black, _ := capped.Table4.Black.Coefficient("Black")
		out = append(out, check("S8",
			"the race effect survives capping the audience age at 45 (Table 4b)",
			black > 0.05 && capped.Table4.Black.Significant("Black", 0.001),
			"coef %+0.4f (paper +0.2534***)", black))
	}
	if syn != nil {
		black, _ := syn.Table4.Black.Coefficient("Black")
		out = append(out, check("S9",
			"synthetic faces reproduce the race effect — it is the demographics, not the photo (Table 4c)",
			black > 0.05 && syn.Table4.Black.Significant("Black", 0.001),
			"coef %+0.4f (paper +0.2344***)", black))
		agree := 0
		for _, c := range syn.Sweep {
			if c.Classified.Gender == c.Target.Gender && c.Classified.Race == c.Target.Race {
				agree++
			}
		}
		out = append(out, check("S10",
			"latent-direction edits hit their demographic targets (Figure 6)",
			agree >= len(syn.Sweep)*4/5, "%d/%d variants classified as requested", agree, len(syn.Sweep)))
	}
	if emp != nil {
		c, _ := emp.Table5.RaceOverall.Coefficient("Implied: Black")
		p, _ := emp.Table5.RaceOverall.PValueOf("Implied: Black")
		out = append(out, check("S11",
			"employment ads show a congruent race skew (Table 5 model III positive ***)",
			c > 0 && p < 0.05, "coef %+0.4f p=%.2g (paper +0.105***)", c, p))
		cg, _ := emp.Table5.GenderOverall.Coefficient("Implied: female")
		out = append(out, check("S12",
			"no systematic gender skew in employment ads (Table 5 models IV-VI)",
			math.Abs(cg) < 0.06 && math.Abs(cg) < math.Abs(c)/2,
			"gender coef %+0.4f vs race %+0.4f (paper +0.002 ns)", cg, c))
		share := CongruentRaceShare(emp.RacePanel)
		out = append(out, check("S13",
			"the vast majority of job pairs skew congruently on race (Figure 7A)",
			share >= 0.6, "%.0f%% congruent", 100*share))
	}
	if pov != nil {
		c, _ := pov.TableA1.Coefficient("Black")
		out = append(out, check("S14",
			"the race effect survives poverty matching (Table A1 Black **)",
			c > 0.02 && pov.TableA1.Significant("Black", 0.05),
			"coef %+0.4f (paper +0.0849**)", c))
		out = append(out, check("S15",
			"poverty matching removes the economic confound (Welch p large after)",
			pov.PostTest.P > 0.05 || math.Abs(pov.PostTest.DeltaM) < 0.005,
			"post-matching Δ=%.4f p=%.2g", pov.PostTest.DeltaM, pov.PostTest.P))
	}
	if val != nil {
		out = append(out, check("S16",
			"the Figure 2 race inference matches the oracle truth",
			val.MeanAbsError < 0.05, "mean abs error %.4f over %d ads", val.MeanAbsError, val.Ads))
	}
	return out
}

// AllPass reports whether every check passed.
func AllPass(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return len(checks) > 0
}
