package core

import (
	"math"
	"sync"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// Test-scale pipeline options: the technique is invariant to sample counts.
const testDiscoverySamples = 1500

var (
	pipeOnce sync.Once
	pipe     *SyntheticPipeline
	pipeErr  error
)

func sharedPipeline(t *testing.T) *SyntheticPipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = NewSyntheticPipeline(testDiscoverySamples, 500)
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestSyntheticPipelineSpecs(t *testing.T) {
	sp := sharedPipeline(t)
	specs, err := sp.SyntheticSpecs(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 40 {
		t.Fatalf("specs = %d, want 40 (2 sources × 20 variants)", len(specs))
	}
	// The classifier must agree with the requested profile on gender and
	// race for the large majority of variants (§4.2: images are tuned until
	// the classifier reads the hint).
	agree := 0
	for _, s := range specs {
		got := sp.Classifier.Profile(s.Image)
		if got.Gender == s.Profile.Gender && got.Race == s.Profile.Race {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(specs)); frac < 0.85 {
		t.Errorf("classifier agrees with target on %.0f%% of variants", 100*frac)
	}
	if _, err := sp.SyntheticSpecs(0); err == nil {
		t.Error("zero sources: want error")
	}
	if _, err := sp.SyntheticSpecs(1 << 30); err == nil {
		t.Error("too many sources: want error")
	}
}

func TestEmploymentSpecsShape(t *testing.T) {
	sp := sharedPipeline(t)
	specs, err := sp.EmploymentSpecs(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 44 {
		t.Fatalf("specs = %d, want 44 (11 jobs × 4 identities)", len(specs))
	}
	jobs := map[string]int{}
	for _, s := range specs {
		if s.Image.Job == "" {
			t.Fatalf("spec %s missing job", s.Key)
		}
		jobs[s.Image.Job]++
		if s.Profile.Age != demo.ImpliedAdult {
			t.Errorf("spec %s: employment faces are adult, got %v", s.Key, s.Profile.Age)
		}
	}
	for j, n := range jobs {
		if n != 4 {
			t.Errorf("job %s has %d identity configurations, want 4", j, n)
		}
	}
}

func TestSyntheticExperimentMatchesStockShape(t *testing.T) {
	// §5.5's headline: the race effect persists with synthetic faces,
	// demonstrating that delivery reacts to demographics, not photo
	// composition.
	l := sharedLab(t)
	res, err := l.RunSyntheticExperiment(SyntheticExperimentOptions{
		Sources:          3,
		DiscoverySamples: testDiscoverySamples,
		Seed:             600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 60 {
		t.Errorf("deliveries %d, want 60", len(res.Deliveries))
	}
	if c, _ := res.Table4.Black.Coefficient("Black"); c < 0.05 {
		t.Errorf("synthetic Black coefficient %v, want clearly positive (paper: +0.23)", c)
	}
	if !res.Table4.Black.Significant("Black", 0.001) {
		t.Error("synthetic Black coefficient should be significant")
	}
	// Sweep (Figure 6): 20 variants, classified mostly as requested.
	if len(res.Sweep) != 20 {
		t.Fatalf("sweep cells = %d", len(res.Sweep))
	}
	agree := 0
	for _, c := range res.Sweep {
		if c.Classified.Gender == c.Target.Gender && c.Classified.Race == c.Target.Race {
			agree++
		}
	}
	if agree < 16 {
		t.Errorf("sweep classification agreement %d/20", agree)
	}
}

func TestEmploymentExperimentTable5AndFigure7(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunEmploymentExperiment(EmploymentExperimentOptions{
		Pipeline: sharedPipeline(t),
		Seed:     700,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.AdCount() != 88 {
		t.Errorf("ad count %d, want 88 (Campaign 4)", res.Run.AdCount())
	}
	// Table 5 model III: significant positive congruent race skew.
	c, _ := res.Table5.RaceOverall.Coefficient("Implied: Black")
	p, _ := res.Table5.RaceOverall.PValueOf("Implied: Black")
	if c <= 0 || p >= 0.05 {
		t.Errorf("race model III: coef %v p %v, want positive significant (paper: +0.105***)", c, p)
	}
	// Models IV-VI: no meaningful gender skew (paper's finding). Our
	// standard errors are far smaller than the paper's, so tiny
	// coefficients can reach nominal significance; the substantive check
	// is that any gender effect is small in magnitude and dwarfed by the
	// race effect.
	cg, _ := res.Table5.GenderOverall.Coefficient("Implied: female")
	if cg > 0.06 || cg < -0.06 {
		t.Errorf("gender model VI coefficient %v; the paper finds no systematic gender skew", cg)
	}
	if cg > c/2 || cg < -c/2 {
		t.Errorf("gender effect %v not dwarfed by race effect %v", cg, c)
	}
	// Figure 7A: a majority of job pairs skew congruently.
	if len(res.RacePanel) != 22 {
		t.Errorf("race panel points = %d, want 22 (11 jobs × 2 genders)", len(res.RacePanel))
	}
	if share := CongruentRaceShare(res.RacePanel); share < 0.6 {
		t.Errorf("congruent race share %.2f, want a clear majority (paper: 'vast majority')", share)
	}
	// Job base rates dominate: lumber delivers less female than nurse
	// regardless of the face.
	lumberF, _ := GroupMean(res.Deliveries,
		func(d *Delivery) bool { return d.Job == "lumber" },
		func(d *Delivery) float64 { return d.FracFemale })
	nurseF, _ := GroupMean(res.Deliveries,
		func(d *Delivery) bool { return d.Job == "nurse" },
		func(d *Delivery) float64 { return d.FracFemale })
	if lumberF >= nurseF {
		t.Errorf("lumber %%female %.3f not below nurse %.3f", lumberF, nurseF)
	}
}

func TestFigure1Contrast(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunFigure1(sharedPipeline(t), 800)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: white-man lumber ad → 56% white; Black-man ad → 29% white.
	if res.WhiteImageFracWhite <= res.BlackImageFracWhite {
		t.Errorf("white-image ad %.3f white delivery not above Black-image ad %.3f",
			res.WhiteImageFracWhite, res.BlackImageFracWhite)
	}
}

func TestPovertyExperiment(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RunPovertyExperiment(PovertyExperimentOptions{PerPerson: 5, Seed: 900})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-matching: Black-targeted voters live in poorer ZIPs, significantly.
	if res.PreMedianBlack <= res.PreMedianWhite {
		t.Errorf("pre-matching medians: black %.3f <= white %.3f", res.PreMedianBlack, res.PreMedianWhite)
	}
	if res.PreTest.P > 0.01 {
		t.Errorf("pre-matching poverty gap p = %v, should be clearly significant", res.PreTest.P)
	}
	// Post-matching: gap gone; audience shrank (paper: 1.73M from 2.87M).
	if res.PostTest.P < 0.05 && math.Abs(res.PostTest.DeltaM) > 0.005 {
		t.Errorf("post-matching gap persists: Δ=%v p=%v", res.PostTest.DeltaM, res.PostTest.P)
	}
	if res.AudienceAfter >= res.AudienceBefore {
		t.Errorf("audience %d -> %d should shrink", res.AudienceBefore, res.AudienceAfter)
	}
	// Hostile review rejected a large minority of ads (paper: 44/100).
	if res.RejectedSpecs < 20 || res.RejectedSpecs > 80 {
		t.Errorf("rejected %d of 100 specs, want roughly 44", res.RejectedSpecs)
	}
	if res.SurvivingSpecs+res.RejectedSpecs != 100 {
		t.Errorf("specs don't add up: %d + %d", res.SurvivingSpecs, res.RejectedSpecs)
	}
	// Table A1: race effect survives the poverty control.
	if c, _ := res.TableA1.Coefficient("Black"); c < 0.02 {
		t.Errorf("poverty-controlled Black coefficient %v, want positive (paper: +0.085)", c)
	}
	if !res.TableA1.Significant("Black", 0.05) {
		t.Error("poverty-controlled Black coefficient should remain significant")
	}
}

func TestAblationNoEARKillsRaceEffect(t *testing.T) {
	// A1: with the eAR term disabled the auction is content-blind and the
	// Table 4 race coefficient collapses toward zero.
	l, err := NewLab(LabConfig{Seed: 11, Scale: ScaleTest, DisableEAR: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.RunStockExperiment(StockExperimentOptions{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// With constant eAR the delivery mix is exchangeable across ads: the
	// implied-race term must lose its significance and the model its
	// explanatory power (versus p < 0.001 and R² ≈ 0.8 with eAR on).
	if p, _ := res.Table4.Black.PValueOf("Black"); p < 0.01 {
		t.Errorf("content-blind Black term p = %v, want non-significant", p)
	}
	if res.Table4.Black.R2 > 0.3 {
		t.Errorf("content-blind %%Black R² = %v, want near zero", res.Table4.Black.R2)
	}
}

func TestAblationReversedCopiesCancelConfounder(t *testing.T) {
	// A4: boost Florida activity 50%. The aggregated two-copy estimate
	// stays near truth; a single-copy estimate is badly biased.
	l, err := NewLab(LabConfig{Seed: 13, Scale: ScaleTest, FLActivityBoost: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.ValidateRaceInference(2, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsError > 0.06 {
		t.Errorf("aggregated estimate error %.4f under FL confounder, want small", res.MeanAbsError)
	}
}
