package core

import (
	"fmt"
	"math"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/stats"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// StockExperimentOptions configures the §5.2/§5.3 stock-photo campaigns.
type StockExperimentOptions struct {
	PerPerson   int // photos per demographic combination (paper: 5)
	BudgetCents int // per-ad daily budget (paper: 200 all-ages, 350 age-capped)
	AgeMax      int // 0 = all ages (Campaign 1); 45 = Campaign 2
	Seed        int64
}

// StockResult is the outcome of a stock campaign: per-ad deliveries plus the
// Table 3 aggregates and the Table 4 regression fits.
type StockResult struct {
	Run        *CampaignRun
	Deliveries []Delivery
	Table3     []Table3Row
	Table4     *Table4
}

// RunStockExperiment runs Campaign 1 (AgeMax == 0) or Campaign 2
// (AgeMax == 45): the balanced stock catalog against the paired race-split
// audiences, all ads launched together.
func (l *Lab) RunStockExperiment(opt StockExperimentOptions) (*StockResult, error) {
	if opt.PerPerson == 0 {
		opt.PerPerson = 5
	}
	if opt.BudgetCents == 0 {
		opt.BudgetCents = 200
	}
	specs, err := StockSpecs(opt.PerPerson, opt.Seed+10)
	if err != nil {
		return nil, err
	}
	auds, err := l.DefaultSplitAudiences(fmt.Sprintf("stock-agemax%d", opt.AgeMax), opt.Seed+11)
	if err != nil {
		return nil, err
	}
	name := "Campaign 1 (stock, all ages)"
	if opt.AgeMax > 0 {
		name = fmt.Sprintf("Campaign 2 (stock, age<=%d)", opt.AgeMax)
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        name,
		BudgetCents: opt.BudgetCents,
		AgeMax:      opt.AgeMax,
		Seed:        opt.Seed + 12,
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	target := AgeTarget65Plus
	if opt.AgeMax > 0 {
		target = AgeTarget35Plus
	}
	t4, err := RegressTable4(ds, target)
	if err != nil {
		return nil, err
	}
	return &StockResult{Run: run, Deliveries: ds, Table3: Table3(ds), Table4: t4}, nil
}

// SyntheticExperimentOptions configures the §5.5 StyleGAN campaign.
type SyntheticExperimentOptions struct {
	Sources          int // distinct synthetic people (paper: 5)
	DiscoverySamples int // faces sampled for direction fitting (paper: 50,000)
	BudgetCents      int
	AgeMax           int // paper: 44
	Seed             int64
}

// SweepCell records how one tuned variant of a source person came out: the
// requested profile, what the classifier says about the produced image, and
// how far the image moved in nuisance space from the source (Figure 6's
// qualitative claim, quantified).
type SweepCell struct {
	Target           demo.Profile
	Classified       demo.Profile
	NuisanceDistance float64
}

// SyntheticResult is the outcome of Campaign 3 plus the Figure 6 sweep.
type SyntheticResult struct {
	Pipeline   *SyntheticPipeline
	Run        *CampaignRun
	Deliveries []Delivery
	Table4     *Table4
	Sweep      []SweepCell // variants of source 0
}

// RunSyntheticExperiment builds the synthetic pipeline, generates the
// variant grid, and runs Campaign 3.
func (l *Lab) RunSyntheticExperiment(opt SyntheticExperimentOptions) (*SyntheticResult, error) {
	if opt.Sources == 0 {
		opt.Sources = 5
	}
	if opt.DiscoverySamples == 0 {
		opt.DiscoverySamples = 20000
	}
	if opt.BudgetCents == 0 {
		opt.BudgetCents = 200
	}
	if opt.AgeMax == 0 {
		opt.AgeMax = 44
	}
	sp, err := NewSyntheticPipeline(opt.DiscoverySamples, opt.Seed+20)
	if err != nil {
		return nil, err
	}
	specs, err := sp.SyntheticSpecs(opt.Sources)
	if err != nil {
		return nil, err
	}
	auds, err := l.DefaultSplitAudiences("synthetic", opt.Seed+21)
	if err != nil {
		return nil, err
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "Campaign 3 (synthetic)",
		BudgetCents: opt.BudgetCents,
		AgeMax:      opt.AgeMax,
		Seed:        opt.Seed + 22,
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	t4, err := RegressTable4(ds, AgeTarget35Plus)
	if err != nil {
		return nil, err
	}

	// Figure 6 sweep over source 0's variants.
	var sweep []SweepCell
	source := sp.Samples[0].Image
	for _, spec := range specs[:20] {
		sweep = append(sweep, SweepCell{
			Target:           spec.Profile,
			Classified:       sp.Classifier.Profile(spec.Image),
			NuisanceDistance: nuisanceDistance(source, spec),
		})
	}
	return &SyntheticResult{Pipeline: sp, Run: run, Deliveries: ds, Table4: t4, Sweep: sweep}, nil
}

// EmploymentExperimentOptions configures the §6 real-world campaign.
type EmploymentExperimentOptions struct {
	DiscoverySamples int
	BudgetCents      int // paper: ≈ 246¢/ad ($216.71 over 88 ads)
	Seed             int64
	// Pipeline reuses an existing synthetic pipeline (e.g. from the
	// synthetic experiment) instead of training a fresh one.
	Pipeline *SyntheticPipeline
}

// Fig7RacePoint is one tick of Figure 7A: the same job advertised with a
// Black-presenting vs white-presenting face of the same gender.
type Fig7RacePoint struct {
	Job           string
	ImpliedGender demo.Gender
	BlackImage    float64 // fraction Black delivery with the Black face
	WhiteImage    float64 // fraction Black delivery with the white face
}

// Fig7GenderPoint is one tick of Figure 7B.
type Fig7GenderPoint struct {
	Job         string
	ImpliedRace demo.Race
	FemaleImage float64 // fraction female delivery with the female face
	MaleImage   float64 // fraction female delivery with the male face
}

// EmploymentResult is the outcome of Campaign 4.
type EmploymentResult struct {
	Run         *CampaignRun
	Deliveries  []Delivery
	Table5      *Table5
	RacePanel   []Fig7RacePoint
	GenderPanel []Fig7GenderPoint
}

// RunEmploymentExperiment runs the §6 campaign: 11 jobs × 4 implied
// identities, flagged as employment ads (special category), measured along
// both race and gender.
func (l *Lab) RunEmploymentExperiment(opt EmploymentExperimentOptions) (*EmploymentResult, error) {
	if opt.DiscoverySamples == 0 {
		opt.DiscoverySamples = 20000
	}
	if opt.BudgetCents == 0 {
		opt.BudgetCents = 246
	}
	sp := opt.Pipeline
	if sp == nil {
		var err error
		if sp, err = NewSyntheticPipeline(opt.DiscoverySamples, opt.Seed+30); err != nil {
			return nil, err
		}
	}
	specs, err := sp.EmploymentSpecs(opt.Seed + 31)
	if err != nil {
		return nil, err
	}
	auds, err := l.DefaultSplitAudiences("employment", opt.Seed+32)
	if err != nil {
		return nil, err
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "Campaign 4 (real-world employment)",
		Special:     "EMPLOYMENT",
		BudgetCents: opt.BudgetCents,
		AccountAge:  2007,
		Seed:        opt.Seed + 33,
		Headline:    "Now hiring — apply today",
		LinkURL:     "https://example-jobs.test/listings",
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	t5, err := RegressTable5(ds)
	if err != nil {
		return nil, err
	}
	res := &EmploymentResult{Run: run, Deliveries: ds, Table5: t5}

	// Figure 7 pairings.
	byKey := map[string]*Delivery{}
	for i := range ds {
		byKey[ds[i].Key] = &ds[i]
	}
	for _, job := range jobsOf(ds) {
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			b := byKey[fmt.Sprintf("job-%s-black-%s", job, g)]
			w := byKey[fmt.Sprintf("job-%s-white-%s", job, g)]
			if b != nil && w != nil {
				res.RacePanel = append(res.RacePanel, Fig7RacePoint{
					Job: job, ImpliedGender: g,
					BlackImage: b.FracBlack, WhiteImage: w.FracBlack,
				})
			}
		}
		for _, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
			f := byKey[fmt.Sprintf("job-%s-%s-female", job, r)]
			m := byKey[fmt.Sprintf("job-%s-%s-male", job, r)]
			if f != nil && m != nil {
				res.GenderPanel = append(res.GenderPanel, Fig7GenderPoint{
					Job: job, ImpliedRace: r,
					FemaleImage: f.FracFemale, MaleImage: m.FracFemale,
				})
			}
		}
	}
	return res, nil
}

func jobsOf(ds []Delivery) []string {
	seen := map[string]bool{}
	var out []string
	for i := range ds {
		if j := ds[i].Job; j != "" && !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// Figure1Result is the E8 headline contrast: the same lumber job ad with a
// white vs a Black adult man pictured, with a two-proportion z-test on the
// gap (the per-pair significance question Figure 1 raises implicitly).
type Figure1Result struct {
	WhiteImageFracWhite float64
	BlackImageFracWhite float64
	WhiteImageCountable int
	BlackImageCountable int
	Test                stats.TwoProportionZ
}

// RunFigure1 runs the two-ad contrast from the paper's Figure 1.
func (l *Lab) RunFigure1(pipeline *SyntheticPipeline, seed int64) (*Figure1Result, error) {
	specs, err := pipeline.EmploymentSpecs(seed + 40)
	if err != nil {
		return nil, err
	}
	var pair []AdSpec
	for _, s := range specs {
		if s.Key == "job-lumber-white-male" || s.Key == "job-lumber-black-male" {
			pair = append(pair, s)
		}
	}
	if len(pair) != 2 {
		return nil, fmt.Errorf("core: figure 1 pair not found in employment specs")
	}
	auds, err := l.DefaultSplitAudiences("figure1", seed+41)
	if err != nil {
		return nil, err
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "Figure 1 job-ad pair",
		Special:     "EMPLOYMENT",
		BudgetCents: 246,
		Seed:        seed + 42,
	}, pair, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{}
	var whiteSuccess, blackSuccess int
	for i := range ds {
		countable := int(float64(ds[i].Impressions)*(1-ds[i].OutOfState) + 0.5)
		whites := int(float64(countable)*(1-ds[i].FracBlack) + 0.5)
		switch ds[i].Profile.Race {
		case demo.RaceWhite:
			res.WhiteImageFracWhite = 1 - ds[i].FracBlack
			res.WhiteImageCountable = countable
			whiteSuccess = whites
		case demo.RaceBlack:
			res.BlackImageFracWhite = 1 - ds[i].FracBlack
			res.BlackImageCountable = countable
			blackSuccess = whites
		}
	}
	if res.WhiteImageCountable > 0 && res.BlackImageCountable > 0 {
		test, err := stats.TwoProportionZTest(whiteSuccess, res.WhiteImageCountable, blackSuccess, res.BlackImageCountable)
		if err != nil {
			return nil, err
		}
		res.Test = test
	}
	return res, nil
}

// PovertyExperimentOptions configures the Appendix A replication.
type PovertyExperimentOptions struct {
	PerPerson   int
	BudgetCents int
	Seed        int64
	// ReviewRejectProb is the elevated rejection rate that reproduces the
	// mass rejections the authors hit (44 of 100 ads stayed rejected after
	// appeal). Default 0.44.
	ReviewRejectProb float64
}

// PovertyResult is the Appendix A outcome.
type PovertyResult struct {
	// Poverty gap before matching (medians, §A: 12% vs 16%), and the Welch
	// test before and after.
	PreMedianWhite, PreMedianBlack float64
	PreTest, PostTest              stats.WelchT
	AudienceBefore, AudienceAfter  int

	RejectedSpecs  int
	SurvivingSpecs int
	Deliveries     []Delivery
	TableA1        *stats.OLSResult
}

// RunPovertyExperiment reproduces Appendix A: subsample the audiences so
// ZIP-level poverty is identically distributed across race×gender cells,
// re-run the stock ads under a hostile review environment, drop rejected
// ads, and fit the Table A1 regression on the survivors.
func (l *Lab) RunPovertyExperiment(opt PovertyExperimentOptions) (*PovertyResult, error) {
	if opt.PerPerson == 0 {
		opt.PerPerson = 5
	}
	if opt.BudgetCents == 0 {
		opt.BudgetCents = 200
	}
	if opt.ReviewRejectProb == 0 {
		opt.ReviewRejectProb = 0.44
	}
	res := &PovertyResult{}

	flSample, ncSample := l.BalancedSamples(l.Config.Scale.PerCell(), opt.Seed+50)
	res.AudienceBefore = len(flSample) + len(ncSample)
	res.PreMedianWhite, res.PreMedianBlack = voter.PovertyStats(l.FL, flSample)
	res.PreTest = povertyWelch(l, flSample, ncSample)

	rng := newSeededRand(opt.Seed + 51)
	flMatched := voter.MatchPoverty(l.FL, flSample, 10, rng)
	ncMatched := voter.MatchPoverty(l.NC, ncSample, 10, rng)
	res.AudienceAfter = len(flMatched) + len(ncMatched)
	res.PostTest = povertyWelch(l, flMatched, ncMatched)

	auds, err := l.BuildSplitAudiences("poverty-matched", flMatched, ncMatched)
	if err != nil {
		return nil, err
	}
	specs, err := StockSpecs(opt.PerPerson, opt.Seed+52)
	if err != nil {
		return nil, err
	}

	// Hostile review environment. ReviewRejectProb is the target fraction
	// of *specs* that stay rejected (a spec is dropped when either copy is
	// rejected, as the paper dropped ads "rejected from either campaign"),
	// so the per-copy probability is 1-√(1-p).
	perCopy := 1 - math.Sqrt(1-opt.ReviewRejectProb)
	if err := l.Platform.SetReviewRejectProb(perCopy); err != nil {
		return nil, err
	}
	defer func() {
		// Review strictness is experiment-local state on the shared lab.
		_ = l.Platform.SetReviewRejectProb(0)
	}()
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "Appendix A (poverty-controlled)",
		BudgetCents: opt.BudgetCents,
		Seed:        opt.Seed + 53,
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	for i := range run.Ads {
		if run.Ads[i].Rejected() {
			res.RejectedSpecs++
		}
	}
	res.SurvivingSpecs = len(run.Ads) - res.RejectedSpecs
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	res.Deliveries = ds
	if res.TableA1, err = TableA1(ds); err != nil {
		return nil, err
	}
	return res, nil
}

func povertyWelch(l *Lab, flSample, ncSample []voter.Record) stats.WelchT {
	var white, black []float64
	add := func(reg *voter.Registry, sample []voter.Record) {
		for i := range sample {
			r := &sample[i]
			p, ok := reg.ZIPPoverty[r.ZIP]
			if !ok {
				continue
			}
			switch r.Race {
			case demo.RaceWhite:
				white = append(white, p)
			case demo.RaceBlack:
				black = append(black, p)
			}
		}
	}
	add(l.FL, flSample)
	add(l.NC, ncSample)
	return stats.WelchTTest(white, black)
}

// ValidationResult is E11: how well the Figure 2 inference recovers the true
// racial makeup of the actual audience, measured against the simulator's
// race oracle.
type ValidationResult struct {
	Ads            int
	MeanAbsError   float64 // |inferred - true| averaged over ads
	MaxAbsError    float64
	MeanOutOfState float64
}

// ValidateRaceInference runs a small stock campaign and compares the
// API-inferred %Black per ad with the oracle truth.
func (l *Lab) ValidateRaceInference(perPerson int, seed int64) (*ValidationResult, error) {
	specs, err := StockSpecs(perPerson, seed+60)
	if err != nil {
		return nil, err
	}
	auds, err := l.DefaultSplitAudiences("validation", seed+61)
	if err != nil {
		return nil, err
	}
	run, err := l.RunPairedCampaign(CampaignConfig{
		Name:        "E11 methodology validation",
		BudgetCents: 200,
		Seed:        seed + 62,
	}, specs, auds)
	if err != nil {
		return nil, err
	}
	ds, err := MeasureCampaign(run)
	if err != nil {
		return nil, err
	}
	byKey := map[string]*AdRun{}
	for i := range run.Ads {
		byKey[run.Ads[i].Spec.Key] = &run.Ads[i]
	}
	res := &ValidationResult{}
	for i := range ds {
		d := &ds[i]
		ar := byKey[d.Key]
		var black, countable int
		for _, id := range []string{ar.PrimaryID, ar.ReversedID} {
			st, err := l.Platform.Insights(id)
			if err != nil {
				return nil, err
			}
			black += st.RaceOracle[demo.RaceBlack]
			countable += st.RaceOracle[demo.RaceBlack] + st.RaceOracle[demo.RaceWhite]
		}
		if countable == 0 {
			continue
		}
		truth := float64(black) / float64(countable)
		e := math.Abs(d.FracBlack - truth)
		res.Ads++
		res.MeanAbsError += e
		if e > res.MaxAbsError {
			res.MaxAbsError = e
		}
		res.MeanOutOfState += d.OutOfState
	}
	if res.Ads == 0 {
		return nil, fmt.Errorf("core: validation produced no measurable ads")
	}
	res.MeanAbsError /= float64(res.Ads)
	res.MeanOutOfState /= float64(res.Ads)
	return res, nil
}

// Table2Row summarizes one campaign the way the paper's Table 2 does.
type Table2Row struct {
	Campaign     string
	Ads          int
	AgeLimit     bool
	Images       string
	Reach        int
	Impressions  int
	SpendDollars float64
	Section      string
}

// SummarizeCampaign builds a Table 2 row from a campaign run.
func SummarizeCampaign(run *CampaignRun, images, section string) Table2Row {
	return Table2Row{
		Campaign:     run.Config.Name,
		Ads:          run.AdCount(),
		AgeLimit:     run.Config.AgeMax > 0,
		Images:       images,
		Reach:        run.TotalReach(),
		Impressions:  run.TotalImpressions(),
		SpendDollars: run.TotalSpendCents() / 100,
		Section:      section,
	}
}
