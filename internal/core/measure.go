package core

import (
	"fmt"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/marketing"
)

// Delivery is the measured actual-audience composition for one ad (both
// copies aggregated), the unit of analysis for every table and figure.
type Delivery struct {
	Key     string
	Profile demo.Profile
	Job     string

	Impressions int
	Reach       int
	Clicks      int
	SpendCents  float64

	// FracBlack is inferred with the Figure 2 region-split method: primary
	// copy NC impressions and reversed copy FL impressions count as Black;
	// out-of-target-state impressions are discarded (§5.2 discards 0.8%).
	FracBlack float64
	// FracFemale is read directly from the gender breakdown.
	FracFemale float64
	// Age composition of the actual audience.
	FracAge35Plus float64
	FracAge45Plus float64
	FracAge65Plus float64
	AvgAge        float64
	// FracMen55Plus and FracWomen55Plus drive Figure 4.
	FracMen55Plus   float64
	FracWomen55Plus float64
	// OutOfState is the fraction of impressions outside FL and NC — the
	// leakage §3.3 reports as <1% for state-level splits.
	OutOfState float64
}

// MeasureAdRun computes the Delivery for one AdSpec from its two copies. It
// returns an error if neither copy delivered.
func MeasureAdRun(run *AdRun) (Delivery, error) {
	d := Delivery{Key: run.Spec.Key, Profile: run.Spec.Profile, Job: run.Spec.Image.Job}
	if run.Primary == nil && run.Reversed == nil {
		return d, fmt.Errorf("core: ad %s: both copies rejected", run.Spec.Key)
	}

	var (
		blackImps, raceCountable int
		femaleImps               int
		age35, age45, age65      int
		men55, women55           int
		outOfState, total        int
		ageWeight                float64
	)
	account := func(ins *marketing.InsightsResponse, blackState demo.State) error {
		if ins == nil {
			return nil
		}
		d.Reach += ins.Reach
		d.Clicks += ins.Clicks
		d.SpendCents += ins.SpendCents
		for _, row := range ins.Breakdown {
			bucket, err := demo.ParseAgeBucket(row.Age)
			if err != nil {
				return fmt.Errorf("core: ad %s: %w", run.Spec.Key, err)
			}
			gender, err := demo.ParseGender(row.Gender)
			if err != nil {
				return fmt.Errorf("core: ad %s: %w", run.Spec.Key, err)
			}
			region, err := demo.ParseState(row.Region)
			if err != nil {
				return fmt.Errorf("core: ad %s: %w", run.Spec.Key, err)
			}
			n := row.Impressions
			total += n
			if gender == demo.GenderFemale {
				femaleImps += n
			}
			if bucket >= demo.Age35to44 {
				age35 += n
			}
			if bucket >= demo.Age45to54 {
				age45 += n
			}
			if bucket >= demo.Age65Plus {
				age65 += n
			}
			if bucket >= demo.Age55to64 {
				if gender == demo.GenderMale {
					men55 += n
				} else if gender == demo.GenderFemale {
					women55 += n
				}
			}
			ageWeight += bucket.Mid() * float64(n)
			switch region {
			case demo.StateOther:
				outOfState += n
			case blackState:
				blackImps += n
				raceCountable += n
			default:
				raceCountable += n
			}
		}
		return nil
	}
	// Primary copy: white voters are in FL, so NC deliveries are Black.
	if err := account(run.Primary, demo.StateNC); err != nil {
		return d, err
	}
	// Reversed copy: Black voters are in FL.
	if err := account(run.Reversed, demo.StateFL); err != nil {
		return d, err
	}
	if total == 0 {
		return d, fmt.Errorf("core: ad %s: zero impressions", run.Spec.Key)
	}
	d.Impressions = total
	ft := float64(total)
	d.FracFemale = float64(femaleImps) / ft
	d.FracAge35Plus = float64(age35) / ft
	d.FracAge45Plus = float64(age45) / ft
	d.FracAge65Plus = float64(age65) / ft
	d.FracMen55Plus = float64(men55) / ft
	d.FracWomen55Plus = float64(women55) / ft
	d.AvgAge = ageWeight / ft
	d.OutOfState = float64(outOfState) / ft
	if raceCountable > 0 {
		d.FracBlack = float64(blackImps) / float64(raceCountable)
	}
	return d, nil
}

// MeasureCampaign measures every non-rejected ad in a campaign.
func MeasureCampaign(run *CampaignRun) ([]Delivery, error) {
	out := make([]Delivery, 0, len(run.Ads))
	for i := range run.Ads {
		if run.Ads[i].Rejected() {
			continue
		}
		d, err := MeasureAdRun(&run.Ads[i])
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: campaign %q: no measurable ads", run.Config.Name)
	}
	return out, nil
}

// Table3Row is one aggregate row of Table 3: the actual-audience makeup for
// ads whose images share one implied attribute.
type Table3Row struct {
	Group       string
	Ads         int
	Impressions int
	FracBlack   float64
	FracFemale  float64
	FracAge45   float64
}

// Table3 aggregates deliveries the way the paper's Table 3 does: by implied
// race, implied gender, and implied age, impression-weighted.
func Table3(ds []Delivery) []Table3Row {
	agg := func(group string, keep func(*Delivery) bool) Table3Row {
		row := Table3Row{Group: group}
		var wBlack, wFemale, w45, w float64
		for i := range ds {
			d := &ds[i]
			if !keep(d) {
				continue
			}
			row.Ads++
			row.Impressions += d.Impressions
			fw := float64(d.Impressions)
			w += fw
			wBlack += d.FracBlack * fw
			wFemale += d.FracFemale * fw
			w45 += d.FracAge45Plus * fw
		}
		if w > 0 {
			row.FracBlack = wBlack / w
			row.FracFemale = wFemale / w
			row.FracAge45 = w45 / w
		}
		return row
	}
	var rows []Table3Row
	for _, r := range []demo.Race{demo.RaceBlack, demo.RaceWhite} {
		r := r
		rows = append(rows, agg("race:"+r.String(), func(d *Delivery) bool { return d.Profile.Race == r }))
	}
	for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
		g := g
		rows = append(rows, agg("gender:"+g.String(), func(d *Delivery) bool { return d.Profile.Gender == g }))
	}
	for _, a := range demo.AllImpliedAges() {
		a := a
		rows = append(rows, agg("age:"+a.String(), func(d *Delivery) bool { return d.Profile.Age == a }))
	}
	return rows
}

// GroupMean returns the impression-weighted mean of a metric over the
// deliveries selected by keep. It returns the number of ads matched.
func GroupMean(ds []Delivery, keep func(*Delivery) bool, metric func(*Delivery) float64) (mean float64, ads int) {
	var num, den float64
	for i := range ds {
		d := &ds[i]
		if !keep(d) {
			continue
		}
		ads++
		w := float64(d.Impressions)
		num += metric(d) * w
		den += w
	}
	if den == 0 {
		return 0, ads
	}
	return num / den, ads
}
