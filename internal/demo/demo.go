// Package demo defines the shared demographic vocabulary used throughout the
// reproduction: the gender and race categories carried by voter records and
// reported by the simulated platform, the age buckets Facebook uses in its
// marketing-tool breakdowns, and the coarser "implied" age groups the paper
// assigns to people pictured in ad images (child, teen, adult, middle-aged,
// elderly).
//
// The paper (§4.2) is explicit that these are the categories available in the
// underlying data sources — self-reported voter registration fields and the
// platform's reporting API — not claims about identity. We inherit the same
// limitation: Gender is {Male, Female, Unknown} and Race is restricted to the
// two groups the study measures ({White, Black}, with Other for everyone
// else in the synthetic population).
package demo

import (
	"fmt"
	"strings"
)

// Gender is a self-reported gender as it appears in FL/NC voter files and in
// the platform's delivery breakdowns.
type Gender uint8

// Gender values. GenderUnknown covers voters who did not report a gender and
// platform users reported under "other".
const (
	GenderUnknown Gender = iota
	GenderMale
	GenderFemale
)

// String returns the lowercase name used in reports and wire formats.
func (g Gender) String() string {
	switch g {
	case GenderMale:
		return "male"
	case GenderFemale:
		return "female"
	default:
		return "unknown"
	}
}

// ParseGender converts a string (case-insensitive; accepts the single-letter
// codes used by voter extracts) into a Gender.
func ParseGender(s string) (Gender, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "m", "male":
		return GenderMale, nil
	case "f", "female":
		return GenderFemale, nil
	case "u", "unknown", "other", "":
		return GenderUnknown, nil
	}
	return GenderUnknown, fmt.Errorf("demo: unknown gender %q", s)
}

// Race is a self-reported race as it appears in voter files. The study
// measures delivery along a White/Black axis (§3.3); all other census
// categories collapse into RaceOther for the purposes of the audit.
type Race uint8

// Race values.
const (
	RaceOther Race = iota
	RaceWhite
	RaceBlack
)

// String returns the lowercase name used in reports and wire formats.
func (r Race) String() string {
	switch r {
	case RaceWhite:
		return "white"
	case RaceBlack:
		return "black"
	default:
		return "other"
	}
}

// ParseRace converts a string (case-insensitive; accepts the voter-extract
// codes "W", "B") into a Race.
func ParseRace(s string) (Race, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "w", "white", "white, not hispanic":
		return RaceWhite, nil
	case "b", "black", "black, not hispanic":
		return RaceBlack, nil
	case "o", "other", "":
		return RaceOther, nil
	}
	return RaceOther, fmt.Errorf("demo: unknown race %q", s)
}

// AgeBucket is one of the six age ranges Facebook uses when reporting
// delivery breakdowns (§3.2, footnote 3). The paper's target audiences are
// stratified within these buckets (Table 1).
type AgeBucket uint8

// Age buckets in ascending order.
const (
	Age18to24 AgeBucket = iota
	Age25to34
	Age35to44
	Age45to54
	Age55to64
	Age65Plus
	NumAgeBuckets = 6
)

// ageBucketBounds holds the [lo, hi] inclusive year bounds per bucket. The
// 65+ bucket is capped at 95 for sampling purposes.
var ageBucketBounds = [NumAgeBuckets][2]int{
	{18, 24}, {25, 34}, {35, 44}, {45, 54}, {55, 64}, {65, 95},
}

// String returns the label used in reports ("18-24" … "65+").
func (b AgeBucket) String() string {
	switch b {
	case Age18to24:
		return "18-24"
	case Age25to34:
		return "25-34"
	case Age35to44:
		return "35-44"
	case Age45to54:
		return "45-54"
	case Age55to64:
		return "55-64"
	case Age65Plus:
		return "65+"
	}
	return fmt.Sprintf("AgeBucket(%d)", uint8(b))
}

// Bounds returns the inclusive [lo, hi] ages covered by the bucket.
func (b AgeBucket) Bounds() (lo, hi int) {
	if int(b) >= NumAgeBuckets {
		return 0, 0
	}
	return ageBucketBounds[b][0], ageBucketBounds[b][1]
}

// Mid returns the midpoint age of the bucket, used when estimating the
// average age of an actual audience from a bucketed breakdown (Figure 3B/3D).
// For 65+ the paper-style convention of 70 is used rather than the sampling
// cap, matching how a mean is typically imputed from an open-ended bucket.
func (b AgeBucket) Mid() float64 {
	if b == Age65Plus {
		return 70
	}
	lo, hi := b.Bounds()
	return float64(lo+hi) / 2
}

// BucketForAge maps an age in years to its reporting bucket. Ages below 18
// are reported as 18-24: the platform does not serve the audit's ads to
// minors (targeting is voter-derived), so this case only arises from
// adversarial inputs.
func BucketForAge(age int) AgeBucket {
	switch {
	case age < 25:
		return Age18to24
	case age < 35:
		return Age25to34
	case age < 45:
		return Age35to44
	case age < 55:
		return Age45to54
	case age < 65:
		return Age55to64
	default:
		return Age65Plus
	}
}

// AllAgeBuckets lists the buckets in ascending order.
func AllAgeBuckets() []AgeBucket {
	return []AgeBucket{Age18to24, Age25to34, Age35to44, Age45to54, Age55to64, Age65Plus}
}

// ParseAgeBucket converts a report label ("18-24", "65+") into an AgeBucket.
func ParseAgeBucket(s string) (AgeBucket, error) {
	for _, b := range AllAgeBuckets() {
		if b.String() == strings.TrimSpace(s) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("demo: unknown age bucket %q", s)
}

// ImpliedAge is the coarse age group implied by the person pictured in an ad
// image (§3.1): child, teenager, adult, middle-aged, elderly. This is an
// attribute of the *image*, distinct from the AgeBucket of a platform user.
type ImpliedAge uint8

// Implied age groups in ascending order.
const (
	ImpliedChild ImpliedAge = iota
	ImpliedTeen
	ImpliedAdult
	ImpliedMiddleAged
	ImpliedElderly
	NumImpliedAges = 5
)

// String returns the label used in figures and regression tables.
func (a ImpliedAge) String() string {
	switch a {
	case ImpliedChild:
		return "child"
	case ImpliedTeen:
		return "teen"
	case ImpliedAdult:
		return "adult"
	case ImpliedMiddleAged:
		return "middle-aged"
	case ImpliedElderly:
		return "elderly"
	}
	return fmt.Sprintf("ImpliedAge(%d)", uint8(a))
}

// RepresentativeYears returns a nominal age in years at the centre of the
// implied group, used when synthesizing image features along the age axis.
func (a ImpliedAge) RepresentativeYears() float64 {
	switch a {
	case ImpliedChild:
		return 8
	case ImpliedTeen:
		return 16
	case ImpliedAdult:
		return 30
	case ImpliedMiddleAged:
		return 50
	default:
		return 72
	}
}

// AllImpliedAges lists the implied age groups in ascending order.
func AllImpliedAges() []ImpliedAge {
	return []ImpliedAge{ImpliedChild, ImpliedTeen, ImpliedAdult, ImpliedMiddleAged, ImpliedElderly}
}

// ParseImpliedAge converts a label into an ImpliedAge. It accepts both
// "middle-aged" and the "middle-age" spelling Table 3 uses, and "old" as a
// synonym for elderly (Figure 3's x-axis label).
func ParseImpliedAge(s string) (ImpliedAge, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "child":
		return ImpliedChild, nil
	case "teen", "teenager":
		return ImpliedTeen, nil
	case "adult":
		return ImpliedAdult, nil
	case "middle-aged", "middle-age", "middleaged":
		return ImpliedMiddleAged, nil
	case "elderly", "old":
		return ImpliedElderly, nil
	}
	return 0, fmt.Errorf("demo: unknown implied age %q", s)
}

// State identifies one of the two voter-record states the methodology uses as
// physically distant race-measurement locations (§3.3), plus an Other bucket
// for impressions delivered while a user travels.
type State uint8

// States. The paper uses Florida and North Carolina because both publish
// voter extracts with self-reported race and are non-adjacent.
const (
	StateOther State = iota
	StateFL
	StateNC
)

// String returns the two-letter postal code, or "other".
func (s State) String() string {
	switch s {
	case StateFL:
		return "FL"
	case StateNC:
		return "NC"
	default:
		return "other"
	}
}

// ParseState converts a postal code into a State.
func ParseState(v string) (State, error) {
	switch strings.ToUpper(strings.TrimSpace(v)) {
	case "FL":
		return StateFL, nil
	case "NC":
		return StateNC, nil
	case "OTHER", "":
		return StateOther, nil
	}
	return StateOther, fmt.Errorf("demo: unknown state %q", v)
}

// Profile bundles the three demographic axes the study manipulates and
// measures. It describes either a person pictured in an ad image (with
// ImpliedAge granularity) or, via User-side types, a platform user.
type Profile struct {
	Gender Gender
	Race   Race
	Age    ImpliedAge
}

// String formats the profile as e.g. "black female adult".
func (p Profile) String() string {
	return p.Race.String() + " " + p.Gender.String() + " " + p.Age.String()
}

// AllProfiles enumerates the 2 genders × 2 races × 5 implied ages = 20
// combinations used to balance the stock-image catalog (§3.1).
func AllProfiles() []Profile {
	out := make([]Profile, 0, 20)
	for _, r := range []Race{RaceWhite, RaceBlack} {
		for _, g := range []Gender{GenderMale, GenderFemale} {
			for _, a := range AllImpliedAges() {
				out = append(out, Profile{Gender: g, Race: r, Age: a})
			}
		}
	}
	return out
}
