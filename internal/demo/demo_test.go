package demo

import (
	"testing"
	"testing/quick"
)

func TestGenderRoundTrip(t *testing.T) {
	for _, g := range []Gender{GenderUnknown, GenderMale, GenderFemale} {
		got, err := ParseGender(g.String())
		if err != nil {
			t.Fatalf("ParseGender(%q): %v", g.String(), err)
		}
		if got != g {
			t.Errorf("round trip %v -> %q -> %v", g, g.String(), got)
		}
	}
}

func TestParseGenderCodes(t *testing.T) {
	cases := map[string]Gender{"M": GenderMale, "f": GenderFemale, "U": GenderUnknown, "": GenderUnknown, " Male ": GenderMale}
	for in, want := range cases {
		got, err := ParseGender(in)
		if err != nil {
			t.Fatalf("ParseGender(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseGender(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseGender("x"); err == nil {
		t.Error("ParseGender(x): want error")
	}
}

func TestRaceRoundTrip(t *testing.T) {
	for _, r := range []Race{RaceOther, RaceWhite, RaceBlack} {
		got, err := ParseRace(r.String())
		if err != nil {
			t.Fatalf("ParseRace(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), got)
		}
	}
	if _, err := ParseRace("martian"); err == nil {
		t.Error("ParseRace(martian): want error")
	}
}

func TestParseRaceVoterCodes(t *testing.T) {
	// The voter extracts use census labels; the parser must accept them.
	if r, err := ParseRace("White, Not Hispanic"); err != nil || r != RaceWhite {
		t.Errorf("census white label: got %v, %v", r, err)
	}
	if r, err := ParseRace("Black, Not Hispanic"); err != nil || r != RaceBlack {
		t.Errorf("census black label: got %v, %v", r, err)
	}
}

func TestBucketForAgeMatchesBounds(t *testing.T) {
	for _, b := range AllAgeBuckets() {
		lo, hi := b.Bounds()
		for _, age := range []int{lo, (lo + hi) / 2, hi} {
			if got := BucketForAge(age); got != b {
				t.Errorf("BucketForAge(%d) = %v, want %v", age, got, b)
			}
		}
	}
}

func TestBucketForAgeProperty(t *testing.T) {
	// Property: buckets are monotone in age and cover [18, 120].
	f := func(raw uint8) bool {
		age := 18 + int(raw)%103
		b := BucketForAge(age)
		lo, hi := b.Bounds()
		if b == Age65Plus {
			return age >= lo
		}
		return age >= lo && age <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAgeBucketRoundTrip(t *testing.T) {
	for _, b := range AllAgeBuckets() {
		got, err := ParseAgeBucket(b.String())
		if err != nil || got != b {
			t.Errorf("round trip %v: got %v, %v", b, got, err)
		}
	}
	if _, err := ParseAgeBucket("12-17"); err == nil {
		t.Error("ParseAgeBucket(12-17): want error")
	}
}

func TestAgeBucketMidInsideBounds(t *testing.T) {
	for _, b := range AllAgeBuckets() {
		lo, hi := b.Bounds()
		mid := b.Mid()
		if mid < float64(lo) || mid > float64(hi) {
			t.Errorf("%v: mid %v outside [%d,%d]", b, mid, lo, hi)
		}
	}
}

func TestImpliedAgeRoundTrip(t *testing.T) {
	for _, a := range AllImpliedAges() {
		got, err := ParseImpliedAge(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: got %v, %v", a, got, err)
		}
	}
	// Aliases used in the paper's tables and figures.
	if a, err := ParseImpliedAge("middle-age"); err != nil || a != ImpliedMiddleAged {
		t.Errorf("middle-age alias: %v, %v", a, err)
	}
	if a, err := ParseImpliedAge("old"); err != nil || a != ImpliedElderly {
		t.Errorf("old alias: %v, %v", a, err)
	}
}

func TestImpliedAgeYearsMonotone(t *testing.T) {
	ages := AllImpliedAges()
	for i := 1; i < len(ages); i++ {
		if ages[i].RepresentativeYears() <= ages[i-1].RepresentativeYears() {
			t.Errorf("representative years not monotone at %v", ages[i])
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	for _, s := range []State{StateFL, StateNC, StateOther} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseState("CA"); err == nil {
		t.Error("ParseState(CA): want error — only FL/NC are study states")
	}
}

func TestAllProfilesBalanced(t *testing.T) {
	ps := AllProfiles()
	if len(ps) != 20 {
		t.Fatalf("AllProfiles: got %d, want 20 (5 ages × 2 genders × 2 races)", len(ps))
	}
	seen := map[Profile]bool{}
	counts := map[Race]int{}
	for _, p := range ps {
		if seen[p] {
			t.Errorf("duplicate profile %v", p)
		}
		seen[p] = true
		counts[p.Race]++
		if p.Gender == GenderUnknown || p.Race == RaceOther {
			t.Errorf("profile %v has unknown axis", p)
		}
	}
	if counts[RaceWhite] != counts[RaceBlack] {
		t.Errorf("race imbalance: %v", counts)
	}
}
