package faults

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func newBackend(t *testing.T) (*httptest.Server, string, *int) {
	t.Helper()
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatalf("parse backend url: %v", err)
	}
	return srv, u.Host, &hits
}

// A partitioned host errors without touching the wire — for EVERY path,
// /healthz included: a partition must fail probes, or the supervisor would
// score a cut-off shard healthy.
func TestGatePartitionBlocksAllPaths(t *testing.T) {
	srv, host, hits := newBackend(t)
	gate := NewGate()
	client := &http.Client{Transport: NewTransport(nil, nil, gate)}

	gate.SetPartition(host, true)
	for _, path := range []string{"/v1/ads", "/healthz", "/metrics"} {
		resp, err := client.Get(srv.URL + path)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("partitioned GET %s succeeded", path)
		}
		var pe *partitionError
		if !errors.As(err, &pe) {
			t.Fatalf("partitioned GET %s: %v, want partitionError", path, err)
		}
	}
	if *hits != 0 {
		t.Fatalf("partitioned requests reached the backend %d times", *hits)
	}

	gate.SetPartition(host, false)
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("after lifting partition: %v", err)
	}
	resp.Body.Close()
	if *hits != 1 {
		t.Fatalf("lifted partition: %d backend hits, want 1", *hits)
	}
}

func TestGateSlowDelays(t *testing.T) {
	srv, host, _ := newBackend(t)
	gate := NewGate()
	client := &http.Client{Transport: NewTransport(nil, nil, gate)}
	gate.SetSlow(host, 30*time.Millisecond)
	start := time.Now()
	resp, err := client.Get(srv.URL + "/v1/ads")
	if err != nil {
		t.Fatalf("slow GET: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slowed request took %v, want >= 30ms", d)
	}
	gate.SetSlow(host, 0)
}

// The injector schedule applies client-side: rejections are synthesized
// (with the API error envelope and Retry-After on 429s) without a round
// trip, and exempt paths skip the schedule.
func TestTransportInjectsRejections(t *testing.T) {
	srv, _, hits := newBackend(t)
	inj, err := New(Config{Seed: 5, Rate: 1, Kinds: []Kind{KindReject429}, RetryAfter: 3 * time.Second}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	client := &http.Client{Transport: NewTransport(nil, inj, nil)}

	resp, err := client.Get(srv.URL + "/v1/ads")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want 3", got)
	}
	if *hits != 0 {
		t.Fatalf("rejected request reached the backend")
	}

	// Exempt paths skip the schedule even at rate 1.
	resp2, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("exempt GET: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || *hits != 1 {
		t.Fatalf("exempt path disturbed: status %d, hits %d", resp2.StatusCode, *hits)
	}
}

// A client-side drop executes the request for real — the backend's side
// effect happens — then reports a transport error.
func TestTransportDropExecutesThenFails(t *testing.T) {
	srv, _, hits := newBackend(t)
	inj, err := New(Config{Seed: 5, Rate: 1, Kinds: []Kind{KindDrop}}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	client := &http.Client{Transport: NewTransport(nil, inj, nil)}
	_, err = client.Get(srv.URL + "/v1/ads")
	if err == nil {
		t.Fatalf("dropped request returned a response")
	}
	if !strings.Contains(err.Error(), "injected connection drop") {
		t.Fatalf("drop error: %v", err)
	}
	if *hits != 1 {
		t.Fatalf("dropped request backend hits %d, want 1 (executed then discarded)", *hits)
	}
}

// Mix64 is the shared seeded-schedule primitive: pure and seed-sensitive.
func TestMix64(t *testing.T) {
	if Mix64(1, 2) != Mix64(1, 2) {
		t.Fatalf("Mix64 not pure")
	}
	if Mix64(1, 2) == Mix64(2, 2) || Mix64(1, 2) == Mix64(1, 3) {
		t.Fatalf("Mix64 insensitive to seed or slot")
	}
}
