package faults

// Client-side fault injection: an http.RoundTripper that disturbs the
// router→shard RPC path without touching the backends, plus a runtime Gate
// for per-host partitions and slowdowns (the chaos orchestrator's
// network-layer levers).
//
// The Transport reuses the Injector's seeded (seed, slot)→Decision schedule
// but applies it on the CLIENT side of the wire, so network chaos is
// injectable into a fleet without real process kills: latency and rejections
// are synthesized before the request leaves, and a "drop" executes the
// request for real, then discards the answer — the backend's side effect
// happened, the caller cannot know, exactly the adversarial case for
// idempotent retries.
//
// Exempt paths (by default /metrics and /healthz) skip the seeded schedule
// but NOT the gate: an injected fault is a flaky network, which probes
// should see through, while a partition cuts the host off entirely — probes
// must fail too, or the supervisor would score a partitioned shard healthy.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Gate is a runtime-switchable per-host network disturbance shared by a
// Transport across requests: full partition (every request errors without
// touching the wire) or added latency. Hosts are "host:port" as in the
// request URL.
type Gate struct {
	mu      sync.Mutex
	blocked map[string]bool
	slow    map[string]time.Duration
}

// NewGate builds an open gate (no hosts disturbed).
func NewGate() *Gate {
	return &Gate{blocked: map[string]bool{}, slow: map[string]time.Duration{}}
}

// SetPartition cuts a host off (or restores it).
func (g *Gate) SetPartition(host string, on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if on {
		g.blocked[host] = true
	} else {
		delete(g.blocked, host)
	}
}

// SetSlow adds per-request latency toward a host (0 restores full speed).
func (g *Gate) SetSlow(host string, d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d <= 0 {
		delete(g.slow, host)
	} else {
		g.slow[host] = d
	}
}

// disturb reads the host's current treatment.
func (g *Gate) disturb(host string) (blocked bool, delay time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.blocked[host], g.slow[host]
}

// ErrPartitioned is the transport-level error for a gated-off host. It
// carries no HTTP status, so health scoring counts it as silence — a
// partitioned shard scores toward down exactly like a dead one.
type partitionError struct{ host string }

func (e *partitionError) Error() string {
	return fmt.Sprintf("faults: injected network partition to %s", e.host)
}

// Transport injects faults on the client side of every round trip. Base may
// be nil (http.DefaultTransport); inj and gate are each optional.
type Transport struct {
	base http.RoundTripper
	inj  *Injector
	gate *Gate
}

// NewTransport builds the fault-injecting round tripper.
func NewTransport(base http.RoundTripper, inj *Injector, gate *Gate) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, inj: inj, gate: gate}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.gate != nil {
		blocked, delay := t.gate.disturb(req.URL.Host)
		if blocked {
			return nil, &partitionError{host: req.URL.Host}
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	if t.inj == nil || t.inj.cfg.Rate == 0 || t.inj.exempt(req.URL.Path) {
		return t.base.RoundTrip(req)
	}
	d := t.inj.next()
	if d.Kind == "" {
		return t.base.RoundTrip(req)
	}
	t.inj.reg.Counter(MetricInjected).Inc()
	t.inj.reg.Counter(MetricInjected + "|" + string(d.Kind)).Inc()
	switch d.Kind {
	case KindLatency:
		time.Sleep(d.Latency)
		return t.base.RoundTrip(req)
	case KindSlow:
		// Client-side "slow" is indistinguishable from a dripped body:
		// the answer arrives late but whole.
		time.Sleep(time.Duration(t.inj.cfg.DripChunks) * t.inj.cfg.DripDelay)
		return t.base.RoundTrip(req)
	case KindReject429:
		return synthesizeReject(req, d.Status, int(t.inj.cfg.RetryAfter/time.Second)), nil
	case KindReject5xx:
		return synthesizeReject(req, d.Status, -1), nil
	case KindDrop:
		// Execute for real, discard the answer: the backend applied the
		// request, the caller sees only a cut connection.
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort connection reuse
			_ = resp.Body.Close()          //adlint:allow walerr (response is discarded wholesale; the injected drop error below is the point)
		}
		return nil, fmt.Errorf("faults: injected connection drop to %s", req.URL.Host)
	}
	return t.base.RoundTrip(req)
}

// synthesizeReject fabricates a rejection response without a round trip, in
// the marketing API's JSON error envelope. retryAfter < 0 omits the header.
func synthesizeReject(req *http.Request, status, retryAfter int) *http.Response {
	body := fmt.Sprintf(`{"error":"faults: injected %d"}`, status)
	resp := &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
	if retryAfter >= 0 {
		resp.Header.Set("Retry-After", strconv.Itoa(retryAfter))
	}
	return resp
}
