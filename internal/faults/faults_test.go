package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

func TestScheduleReproducible(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.2}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	var faulted int
	for i := uint64(0); i < n; i++ {
		da, db := a.ScheduleAt(i), b.ScheduleAt(i)
		if da != db {
			t.Fatalf("slot %d diverged: %+v vs %+v", i, da, db)
		}
		if da.Kind != "" {
			faulted++
		}
	}
	// At rate 0.2 the faulted share must be near 20%.
	if faulted < n*15/100 || faulted > n*25/100 {
		t.Errorf("faulted %d of %d slots at rate 0.2", faulted, n)
	}
	// A different seed draws a different schedule.
	c, err := New(Config{Seed: 43, Rate: 0.2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := uint64(0); i < n; i++ {
		if a.ScheduleAt(i) == c.ScheduleAt(i) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced the identical schedule")
	}
}

func TestScheduleCoversAllKinds(t *testing.T) {
	inj, err := New(Config{Seed: 7, Rate: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Kind]bool{}
	for i := uint64(0); i < 200; i++ {
		d := inj.ScheduleAt(i)
		if d.Kind == "" {
			t.Fatalf("rate 1 produced a clean slot at %d", i)
		}
		seen[d.Kind] = true
		switch d.Kind {
		case KindReject429:
			if d.Status != http.StatusTooManyRequests {
				t.Errorf("429 kind with status %d", d.Status)
			}
		case KindReject5xx:
			if d.Status < 500 || d.Status > 599 {
				t.Errorf("5xx kind with status %d", d.Status)
			}
		case KindLatency:
			if d.Latency < 0 || d.Latency > 3*time.Millisecond {
				t.Errorf("latency %v outside default bound", d.Latency)
			}
		}
	}
	for _, k := range AllKinds() {
		if !seen[k] {
			t.Errorf("kind %s never drawn in 200 slots at rate 1", k)
		}
	}
}

func TestParseKinds(t *testing.T) {
	for _, s := range []string{"", "all"} {
		kinds, err := ParseKinds(s)
		if err != nil || len(kinds) != len(AllKinds()) {
			t.Errorf("ParseKinds(%q) = %v, %v", s, kinds, err)
		}
	}
	kinds, err := ParseKinds("latency, drop")
	if err != nil || len(kinds) != 2 || kinds[0] != KindLatency || kinds[1] != KindDrop {
		t.Errorf("ParseKinds list = %v, %v", kinds, err)
	}
	if _, err := ParseKinds("gremlins"); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rate: -0.1}, nil); err == nil {
		t.Error("negative rate: want error")
	}
	if _, err := New(Config{Rate: 1.5}, nil); err == nil {
		t.Error("rate above 1: want error")
	}
}

// okHandler is a plain JSON endpoint for middleware tests.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true,"padding":"0123456789012345678901234567890123456789"}`)
	})
}

func TestMiddlewareRejectionFaults(t *testing.T) {
	reg := obs.NewRegistry()
	inj, err := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindReject429}, RetryAfter: 2 * time.Second}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want \"2\"", got)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || !strings.Contains(env.Error, "injected") {
		t.Errorf("error envelope: %+v, %v", env, err)
	}
	if got := reg.Counter(MetricInjected).Value(); got != 1 {
		t.Errorf("faults.injected = %d, want 1", got)
	}
	if got := reg.Counter(MetricInjected + "|429").Value(); got != 1 {
		t.Errorf("per-kind counter = %d, want 1", got)
	}
}

func TestMiddlewareDropTruncatesAfterHandlerRan(t *testing.T) {
	var handlerRuns int
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerRuns++
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true,"padding":"0123456789012345678901234567890123456789"}`)
	})
	inj, err := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindDrop}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(handler))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/thing")
	if err == nil {
		// The connection may deliver headers before dying; the body read
		// must then fail short of Content-Length.
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr == nil && len(body) >= 60 {
			t.Fatalf("dropped response arrived complete: %d bytes", len(body))
		}
	}
	if handlerRuns != 1 {
		t.Fatalf("handler ran %d times, want 1 (side effect must happen before the drop)", handlerRuns)
	}
}

func TestMiddlewareSlowDripCompletes(t *testing.T) {
	inj, err := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindSlow}, DripDelay: 200 * time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"ok":true`) {
		t.Errorf("dripped body corrupted: %q", body)
	}
}

func TestMiddlewareExemptPathsAndZeroRate(t *testing.T) {
	inj, err := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindReject5xx}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s faulted (status %d) despite exemption", path, resp.StatusCode)
		}
	}
	// Zero rate passes everything through clean.
	clean, err := New(Config{Seed: 1, Rate: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(clean.Middleware(okHandler()))
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("zero-rate injector faulted: status %d", resp.StatusCode)
	}
}
