// Package faults is a deterministic fault injector for the serving stack.
// It wraps an http.Handler and disturbs a seeded fraction of requests with
// the failure modes a long-running audit collection loop meets in the wild:
// injected latency, 429/5xx rejections (with Retry-After), connections
// dropped mid-response, and slow-dripped bodies.
//
// Determinism is the point: every arriving request consumes the next slot of
// a fault schedule that is a pure function of (seed, slot index), so two
// chaos runs with the same seed draw the identical schedule. Under
// concurrency the mapping of requests to slots follows arrival order, but
// the schedule itself — which slots fault, and how — is exactly
// reproducible, which is what makes a chaos soak a regression test instead
// of a dice roll.
//
// The injector deliberately distinguishes pre-handler faults (latency, 429,
// 5xx: the request never reaches the application) from post-handler faults
// (drop, slow: the application state HAS changed and only the response is
// damaged). The post-handler drop is the adversarial case for clients: a
// retried POST whose first attempt was dropped after execution double-creates
// unless the server deduplicates by idempotency key.
package faults

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// Kind names one injectable failure mode.
type Kind string

// The failure modes.
const (
	// KindLatency delays the request before the handler runs.
	KindLatency Kind = "latency"
	// KindReject429 rejects the request with 429 and a Retry-After header
	// before the handler runs (rate limiting / load shedding by the remote).
	KindReject429 Kind = "429"
	// KindReject5xx rejects the request with 500, 502, or 503 before the
	// handler runs (platform-side failure).
	KindReject5xx Kind = "5xx"
	// KindDrop runs the handler, then truncates the response mid-body and
	// aborts the connection: the side effect happened, the client cannot
	// know. This is the fault that flushes out missing idempotency keys.
	KindDrop Kind = "drop"
	// KindSlow runs the handler, then drips the response out in small
	// delayed chunks. The request succeeds — eventually.
	KindSlow Kind = "slow"
)

// AllKinds lists every failure mode in schedule order.
func AllKinds() []Kind {
	return []Kind{KindLatency, KindReject429, KindReject5xx, KindDrop, KindSlow}
}

// ParseKinds parses a comma-separated kind list ("latency,drop"). The empty
// string and "all" select every kind.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	known := map[Kind]bool{}
	for _, k := range AllKinds() {
		known[k] = true
	}
	var kinds []Kind
	for _, part := range strings.Split(s, ",") {
		k := Kind(strings.TrimSpace(part))
		if !known[k] {
			return nil, fmt.Errorf("faults: unknown fault kind %q (known: latency, 429, 5xx, drop, slow)", part)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Config parameterizes an injector.
type Config struct {
	// Seed drives the fault schedule. Same seed, same schedule.
	Seed int64
	// Rate is the per-request fault probability in [0,1]. Zero disables
	// injection entirely.
	Rate float64
	// Kinds are the eligible failure modes; empty means all of them.
	Kinds []Kind
	// MaxLatency bounds injected latency (default 3ms — enough to reorder
	// concurrent requests without slowing a soak to a crawl).
	MaxLatency time.Duration
	// RetryAfter is the value of the Retry-After header on injected 429s,
	// in whole seconds (the header's unit). Zero sends "Retry-After: 0",
	// which well-behaved clients treat as "retry at your own backoff".
	RetryAfter time.Duration
	// DripChunks and DripDelay shape slow responses: the body goes out in
	// DripChunks pieces with DripDelay between them (defaults 4 × 1ms).
	DripChunks int
	DripDelay  time.Duration
	// ExemptPaths lists path prefixes never faulted. Defaults to the
	// operational endpoints ("/metrics", "/healthz") so chaos does not
	// blind the observer.
	ExemptPaths []string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 3 * time.Millisecond
	}
	if c.DripChunks <= 0 {
		c.DripChunks = 4
	}
	if c.DripDelay <= 0 {
		c.DripDelay = time.Millisecond
	}
	if c.ExemptPaths == nil {
		c.ExemptPaths = []string{"/metrics", "/healthz"}
	}
	return c
}

// Metric names recorded by the injector.
const (
	// MetricInjected counts injected faults; per-kind counts append
	// "|" + kind.
	MetricInjected = "faults.injected"
)

// Decision is one slot of the fault schedule: what (if anything) happens to
// the request that draws it.
type Decision struct {
	// Kind is the injected failure mode; empty means the request passes
	// clean.
	Kind Kind
	// Status is the injected status code for rejection kinds (429, 500,
	// 502, 503).
	Status int
	// Latency is the injected delay for KindLatency.
	Latency time.Duration
}

// Injector hands out fault decisions and wraps handlers.
type Injector struct {
	cfg Config
	reg *obs.Registry
	seq atomic.Uint64
}

// New builds an injector. Registry may be nil; counters then go to a private
// registry (Metrics exposes whichever is in use).
func New(cfg Config, reg *obs.Registry) (*Injector, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("faults: rate %v outside [0,1]", cfg.Rate)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Injector{cfg: cfg.withDefaults(), reg: reg}, nil
}

// Metrics returns the registry the injector counts into.
func (inj *Injector) Metrics() *obs.Registry { return inj.reg }

// splitmix64 is the SplitMix64 finalizer: a statistically strong 64-bit
// mixer, used here to turn (seed, slot) into schedule bits with no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 maps (seed, slot) to schedule bits — the stateless seeded-schedule
// idiom every deterministic disturbance in this repo shares (the fault
// schedule here, the chaos action schedule in internal/chaos, the per-shard
// RNG streams in the delivery engine).
func Mix64(seed int64, slot uint64) uint64 {
	return splitmix64(uint64(seed) ^ splitmix64(slot))
}

// ScheduleAt returns slot i of the fault schedule: a pure function of the
// injector's seed and configuration, independent of any requests already
// served. Reproducibility tests and replay tooling read the schedule
// directly through this method.
func (inj *Injector) ScheduleAt(i uint64) Decision {
	bits := splitmix64(uint64(inj.cfg.Seed) ^ splitmix64(i))
	// Top 53 bits → uniform float in [0,1) for the fault coin.
	coin := float64(bits>>11) / (1 << 53)
	if coin >= inj.cfg.Rate {
		return Decision{}
	}
	// Independent bits for the kind and the kind-specific parameters.
	sub := splitmix64(bits)
	kind := inj.cfg.Kinds[int(sub%uint64(len(inj.cfg.Kinds)))]
	d := Decision{Kind: kind}
	switch kind {
	case KindReject429:
		d.Status = http.StatusTooManyRequests
	case KindReject5xx:
		statuses := []int{http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable}
		d.Status = statuses[int((sub>>8)%uint64(len(statuses)))]
	case KindLatency:
		frac := float64((sub>>8)&0xffff) / 0xffff
		d.Latency = time.Duration(frac * float64(inj.cfg.MaxLatency))
	}
	return d
}

// next consumes the next schedule slot.
func (inj *Injector) next() Decision {
	return inj.ScheduleAt(inj.seq.Add(1) - 1)
}

// exempt reports whether a path is never faulted.
func (inj *Injector) exempt(path string) bool {
	for _, p := range inj.cfg.ExemptPaths {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Middleware wraps next with fault injection. Rejection faults answer with
// the marketing API's JSON error envelope so clients exercise their normal
// error decoding.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if inj.cfg.Rate == 0 {
		return next
	}
	injected := inj.reg.Counter(MetricInjected)
	perKind := map[Kind]*obs.Counter{}
	for _, k := range AllKinds() {
		perKind[k] = inj.reg.Counter(MetricInjected + "|" + string(k))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inj.exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		d := inj.next()
		if d.Kind == "" {
			next.ServeHTTP(w, r)
			return
		}
		injected.Inc()
		perKind[d.Kind].Inc()
		switch d.Kind {
		case KindLatency:
			time.Sleep(d.Latency)
			next.ServeHTTP(w, r)
		case KindReject429:
			w.Header().Set("Retry-After", strconv.Itoa(int(inj.cfg.RetryAfter/time.Second)))
			writeInjectedError(w, d.Status)
		case KindReject5xx:
			writeInjectedError(w, d.Status)
		case KindDrop:
			inj.drop(w, r, next)
		case KindSlow:
			inj.drip(w, r, next)
		}
	})
}

// writeInjectedError emits the API error envelope for an injected rejection.
func writeInjectedError(w http.ResponseWriter, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":"faults: injected %d"}`, status)
}

// drop executes the handler fully (its side effects are real), then writes
// only half the response and aborts the connection. The declared
// Content-Length covers the full body, so the client observes a truncated
// read, not a short-but-valid response.
func (inj *Injector) drop(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := newBufferedResponse()
	next.ServeHTTP(rec, r)
	copyHeader(w.Header(), rec.header)
	w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
	w.WriteHeader(rec.status)
	if n := len(rec.body) / 2; n > 0 {
		_, _ = w.Write(rec.body[:n])
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// drip executes the handler, then releases the buffered body in delayed
// chunks. The response completes; it is just slow.
func (inj *Injector) drip(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := newBufferedResponse()
	next.ServeHTTP(rec, r)
	copyHeader(w.Header(), rec.header)
	w.WriteHeader(rec.status)
	body := rec.body
	chunk := (len(body) + inj.cfg.DripChunks - 1) / inj.cfg.DripChunks
	if chunk == 0 {
		chunk = 1
	}
	for len(body) > 0 {
		n := chunk
		if n > len(body) {
			n = len(body)
		}
		if _, err := w.Write(body[:n]); err != nil {
			return
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		body = body[n:]
		if len(body) > 0 {
			time.Sleep(inj.cfg.DripDelay)
		}
	}
}

// bufferedResponse captures a downstream handler's full response so the
// injector can damage or pace its delivery.
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: http.Header{}, status: http.StatusOK}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) { b.status = code }

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
