// Package chaos is a deterministic chaos orchestrator for the multi-process
// serving tier: it disturbs real shard child processes — kill, SIGSTOP
// pauses, slowed and partitioned links — on a schedule that is a pure
// function of (seed, tick), the same stateless seeded-schedule idiom
// internal/faults uses for request-level disturbance (faults.Mix64).
//
// Determinism is what turns a chaos soak into a regression test: two runs
// with the same seed kill the same shards at the same ticks, so "the healed
// fleet's day digests are byte-identical to an undisturbed fleet's" is an
// assertable property, not a dice roll. The schedule deliberately has no
// clock and no RNG state — At(tick) can be replayed, inspected, or diffed
// without running anything.
//
// The orchestrator drives a Target — the seam between the schedule and the
// world. cmd/adchaos implements it with real process signals
// (supervisor.ProcessRelauncher) and a client-side faults.Gate; tests
// implement it with a fake.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/obs"
)

// Action names one chaos disturbance.
type Action string

// The disturbances.
const (
	// ActKill SIGKILLs the shard process. Recovery is the full resurrection
	// path: supervisor relaunch, WAL recovery, journal catch-up, digest-gated
	// rejoin.
	ActKill Action = "kill"
	// ActPause SIGSTOPs the shard for a window, then SIGCONTs it. The
	// process is alive but silent — indistinguishable from a network hang,
	// and the case that separates "no answer" from "error answer" scoring.
	ActPause Action = "pause"
	// ActSlow delays every RPC to the shard for a window (client-side).
	ActSlow Action = "slow"
	// ActPartition blocks every RPC to the shard for a window, health
	// probes included: the process runs, the coordinator cannot tell.
	ActPartition Action = "partition"
)

// AllActions lists every disturbance in schedule order.
func AllActions() []Action {
	return []Action{ActKill, ActPause, ActSlow, ActPartition}
}

// ParseActions parses a comma-separated action list ("kill,pause"). The
// empty string and "all" select every action.
func ParseActions(s string) ([]Action, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllActions(), nil
	}
	known := map[Action]bool{}
	for _, a := range AllActions() {
		known[a] = true
	}
	var out []Action
	for _, part := range strings.Split(s, ",") {
		a := Action(strings.TrimSpace(part))
		if !known[a] {
			return nil, fmt.Errorf("chaos: unknown action %q (known: kill, pause, slow, partition)", part)
		}
		out = append(out, a)
	}
	return out, nil
}

// Config parameterizes a chaos schedule.
type Config struct {
	// Seed drives the schedule. Same seed, same disturbances.
	Seed int64
	// Shards is the fleet width disturbances are drawn over.
	Shards int
	// Rate is the disturbance probability per eligible tick, in [0,1].
	Rate float64
	// Actions are the eligible disturbances; empty means all of them.
	Actions []Action
	// MinGap spaces eligible ticks: only every MinGap-th tick can disturb,
	// so the fleet gets healing room between injuries and "every shard down
	// at once" stays rare rather than routine. 0 defaults to 4.
	MinGap int
	// PauseTicks, SlowTicks, PartitionTicks are the windowed actions'
	// durations in ticks (defaults 2, 3, 3).
	PauseTicks     int
	SlowTicks      int
	PartitionTicks int
}

func (c Config) withDefaults() Config {
	if len(c.Actions) == 0 {
		c.Actions = AllActions()
	}
	if c.MinGap <= 0 {
		c.MinGap = 4
	}
	if c.PauseTicks <= 0 {
		c.PauseTicks = 2
	}
	if c.SlowTicks <= 0 {
		c.SlowTicks = 3
	}
	if c.PartitionTicks <= 0 {
		c.PartitionTicks = 3
	}
	return c
}

// Event is one scheduled disturbance.
type Event struct {
	Tick   int    `json:"tick"`
	Shard  int    `json:"shard"`
	Action Action `json:"action"`
	// Ticks is the window length for pause/slow/partition; 0 for kill.
	Ticks int `json:"ticks,omitempty"`
}

// Schedule maps ticks to disturbances, purely.
type Schedule struct {
	cfg Config
}

// NewSchedule builds a schedule.
func NewSchedule(cfg Config) (*Schedule, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("chaos: shards %d < 1", cfg.Shards)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("chaos: rate %v outside [0,1]", cfg.Rate)
	}
	return &Schedule{cfg: cfg.withDefaults()}, nil
}

// At returns the disturbance at a tick, or nil for a calm tick — a pure
// function of (seed, tick): no state, no clock, no RNG cursor.
func (s *Schedule) At(tick int) *Event {
	if tick < 0 || tick%s.cfg.MinGap != 0 {
		return nil
	}
	bits := faults.Mix64(s.cfg.Seed, uint64(tick))
	// Top 53 bits → uniform float in [0,1) for the disturbance coin.
	coin := float64(bits>>11) / (1 << 53)
	if coin >= s.cfg.Rate {
		return nil
	}
	// Independent bits for the action and the victim.
	sub := faults.Mix64(int64(bits), uint64(tick)+1)
	e := &Event{
		Tick:   tick,
		Shard:  int((sub >> 16) % uint64(s.cfg.Shards)),
		Action: s.cfg.Actions[int(sub%uint64(len(s.cfg.Actions)))],
	}
	switch e.Action {
	case ActPause:
		e.Ticks = s.cfg.PauseTicks
	case ActSlow:
		e.Ticks = s.cfg.SlowTicks
	case ActPartition:
		e.Ticks = s.cfg.PartitionTicks
	}
	return e
}

// Target is the seam the orchestrator disturbs through. Implementations:
// real process signals plus a client-side gate (cmd/adchaos), or a fake
// (tests). Implementations should treat disturbing an already-dead shard as
// a no-op — the schedule is blind to the supervisor's relaunch timing by
// design.
type Target interface {
	// Kill terminates the shard process (SIGKILL: no goodbye, no flush).
	Kill(shard int) error
	// Pause stops the shard process (SIGSTOP); Resume continues it.
	Pause(shard int) error
	Resume(shard int) error
	// SetSlow turns client-side slowness toward the shard on or off.
	SetSlow(shard int, on bool)
	// SetPartition blocks (or unblocks) every client call to the shard.
	SetPartition(shard int, on bool)
}

// Orchestrator walks the schedule tick by tick against a target, opening
// and closing disturbance windows. Time is injected: the tick cadence comes
// from the caller's clock, and all internal bookkeeping is in ticks.
type Orchestrator struct {
	sched  *Schedule
	target Target
	clock  obs.Clock

	// Window expiry ticks, 0 = no open window. Pause windows track the
	// process; slow/partition windows track the link (they survive a kill —
	// the gate is client-side and doesn't care which process answers).
	pauseUntil []int
	slowUntil  []int
	partUntil  []int

	events []Event
}

// NewOrchestrator builds an orchestrator over a schedule and target. Clock
// may be nil for the system clock (tests inject one).
func NewOrchestrator(sched *Schedule, target Target, clock obs.Clock) *Orchestrator {
	if clock == nil {
		clock = obs.SystemClock
	}
	n := sched.cfg.Shards
	return &Orchestrator{
		sched:      sched,
		target:     target,
		clock:      clock,
		pauseUntil: make([]int, n),
		slowUntil:  make([]int, n),
		partUntil:  make([]int, n),
	}
}

// Step advances the orchestrator to a tick: expires windows that end at or
// before it, then applies the scheduled disturbance (if any), returning the
// applied event.
func (o *Orchestrator) Step(tick int) (*Event, error) {
	for shard := range o.pauseUntil {
		if o.pauseUntil[shard] != 0 && tick >= o.pauseUntil[shard] {
			o.pauseUntil[shard] = 0
			if err := o.target.Resume(shard); err != nil {
				return nil, fmt.Errorf("chaos: resume shard %d at tick %d: %w", shard, tick, err)
			}
		}
		if o.slowUntil[shard] != 0 && tick >= o.slowUntil[shard] {
			o.slowUntil[shard] = 0
			o.target.SetSlow(shard, false)
		}
		if o.partUntil[shard] != 0 && tick >= o.partUntil[shard] {
			o.partUntil[shard] = 0
			o.target.SetPartition(shard, false)
		}
	}
	e := o.sched.At(tick)
	if e == nil {
		return nil, nil
	}
	switch e.Action {
	case ActKill:
		// A kill fells a paused process too (SIGKILL is unmaskable), and the
		// relaunched process starts running: the pause window dies with its
		// process.
		o.pauseUntil[e.Shard] = 0
		if err := o.target.Kill(e.Shard); err != nil {
			return nil, fmt.Errorf("chaos: kill shard %d at tick %d: %w", e.Shard, tick, err)
		}
	case ActPause:
		if o.pauseUntil[e.Shard] == 0 {
			if err := o.target.Pause(e.Shard); err != nil {
				return nil, fmt.Errorf("chaos: pause shard %d at tick %d: %w", e.Shard, tick, err)
			}
		}
		o.pauseUntil[e.Shard] = tick + e.Ticks
	case ActSlow:
		if o.slowUntil[e.Shard] == 0 {
			o.target.SetSlow(e.Shard, true)
		}
		o.slowUntil[e.Shard] = tick + e.Ticks
	case ActPartition:
		if o.partUntil[e.Shard] == 0 {
			o.target.SetPartition(e.Shard, true)
		}
		o.partUntil[e.Shard] = tick + e.Ticks
	}
	o.events = append(o.events, *e)
	return e, nil
}

// Run walks ticks [0, ticks) with the given cadence, then quiesces. The
// returned events are the disturbances actually applied.
func (o *Orchestrator) Run(ticks int, tickLen time.Duration) ([]Event, error) {
	for tick := 0; tick < ticks; tick++ {
		if _, err := o.Step(tick); err != nil {
			return o.events, err
		}
		o.clock.Sleep(tickLen)
	}
	return o.events, o.Quiesce()
}

// Quiesce closes every open window — resumes paused shards, lifts slowness
// and partitions — so the fleet's healing can complete undisturbed.
func (o *Orchestrator) Quiesce() error {
	for shard := range o.pauseUntil {
		if o.pauseUntil[shard] != 0 {
			o.pauseUntil[shard] = 0
			if err := o.target.Resume(shard); err != nil {
				return fmt.Errorf("chaos: quiesce resume shard %d: %w", shard, err)
			}
		}
		if o.slowUntil[shard] != 0 {
			o.slowUntil[shard] = 0
			o.target.SetSlow(shard, false)
		}
		if o.partUntil[shard] != 0 {
			o.partUntil[shard] = 0
			o.target.SetPartition(shard, false)
		}
	}
	return nil
}

// Events returns the disturbances applied so far.
func (o *Orchestrator) Events() []Event {
	return append([]Event(nil), o.events...)
}
