package chaos

import (
	"reflect"
	"testing"
	"time"
)

func sched(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	s, err := NewSchedule(cfg)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	return s
}

func collect(s *Schedule, ticks int) []Event {
	var out []Event
	for tick := 0; tick < ticks; tick++ {
		if e := s.At(tick); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// The schedule is a pure function of (seed, tick): same seed, same events,
// in any query order; different seeds, different schedules.
func TestSchedulePure(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 3, Rate: 0.7, MinGap: 2}
	a := collect(sched(t, cfg), 400)
	b := collect(sched(t, cfg), 400)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatalf("rate 0.7 over 400 ticks produced no events")
	}
	// Querying backwards must agree with querying forwards.
	s := sched(t, cfg)
	for tick := 399; tick >= 0; tick-- {
		e := s.At(tick)
		_ = e
	}
	if !reflect.DeepEqual(collect(s, 400), a) {
		t.Fatalf("schedule has hidden state")
	}
	cfg.Seed = 43
	if reflect.DeepEqual(collect(sched(t, cfg), 400), a) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestScheduleBounds(t *testing.T) {
	s := sched(t, Config{Seed: 7, Shards: 2, Rate: 1, MinGap: 3})
	events := collect(s, 300)
	if len(events) != 100 {
		t.Fatalf("rate 1 with MinGap 3 over 300 ticks: got %d events, want 100", len(events))
	}
	seenAction := map[Action]bool{}
	seenShard := map[int]bool{}
	for _, e := range events {
		if e.Tick%3 != 0 {
			t.Fatalf("event at tick %d violates MinGap 3", e.Tick)
		}
		if e.Shard < 0 || e.Shard >= 2 {
			t.Fatalf("event shard %d out of range", e.Shard)
		}
		if e.Action == ActKill && e.Ticks != 0 {
			t.Fatalf("kill event has a window: %+v", e)
		}
		if e.Action != ActKill && e.Ticks <= 0 {
			t.Fatalf("windowed event has no window: %+v", e)
		}
		seenAction[e.Action] = true
		seenShard[e.Shard] = true
	}
	if len(seenAction) != len(AllActions()) {
		t.Fatalf("100 rate-1 events drew only %v of %v", seenAction, AllActions())
	}
	if len(seenShard) != 2 {
		t.Fatalf("events never hit both shards: %v", seenShard)
	}
}

func TestScheduleRateZeroIsCalm(t *testing.T) {
	if events := collect(sched(t, Config{Seed: 7, Shards: 2, Rate: 0}), 1000); len(events) != 0 {
		t.Fatalf("rate 0 produced events: %+v", events)
	}
}

func TestParseActions(t *testing.T) {
	got, err := ParseActions(" kill , pause ")
	if err != nil {
		t.Fatalf("ParseActions: %v", err)
	}
	if !reflect.DeepEqual(got, []Action{ActKill, ActPause}) {
		t.Fatalf("got %v", got)
	}
	if all, _ := ParseActions("all"); !reflect.DeepEqual(all, AllActions()) {
		t.Fatalf("all: got %v", all)
	}
	if _, err := ParseActions("explode"); err == nil {
		t.Fatalf("unknown action parsed")
	}
}

// fakeTarget records the orchestrator's calls and exposes current state.
type fakeTarget struct {
	kills   []int
	paused  map[int]bool
	slow    map[int]bool
	blocked map[int]bool
	calls   []string
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{paused: map[int]bool{}, slow: map[int]bool{}, blocked: map[int]bool{}}
}

func (f *fakeTarget) Kill(shard int) error {
	f.kills = append(f.kills, shard)
	f.paused[shard] = false
	f.calls = append(f.calls, "kill")
	return nil
}
func (f *fakeTarget) Pause(shard int) error {
	f.paused[shard] = true
	f.calls = append(f.calls, "pause")
	return nil
}
func (f *fakeTarget) Resume(shard int) error {
	f.paused[shard] = false
	f.calls = append(f.calls, "resume")
	return nil
}
func (f *fakeTarget) SetSlow(shard int, on bool)      { f.slow[shard] = on }
func (f *fakeTarget) SetPartition(shard int, on bool) { f.blocked[shard] = on }

// fakeClock makes Run's cadence free.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time        { return f.now }
func (f *fakeClock) Sleep(d time.Duration) { f.now = f.now.Add(d) }

// Windows open at the scheduled tick and close exactly when they expire,
// and Quiesce closes everything still open.
func TestOrchestratorWindows(t *testing.T) {
	// MinGap 1 and rate 1 disturb every tick: plenty of windows to check.
	s := sched(t, Config{Seed: 11, Shards: 2, Rate: 1, MinGap: 1, PauseTicks: 2, SlowTicks: 3, PartitionTicks: 3})
	target := newFakeTarget()
	o := NewOrchestrator(s, target, &fakeClock{})

	open := map[string]int{} // "action/shard" -> expiry
	for tick := 0; tick < 50; tick++ {
		// Model expiry the way Step promises: windows close at or before
		// this tick, then the new event applies.
		for key, until := range open {
			if tick >= until {
				delete(open, key)
			}
		}
		e, err := o.Step(tick)
		if err != nil {
			t.Fatalf("Step(%d): %v", tick, err)
		}
		if e == nil {
			t.Fatalf("rate 1 MinGap 1 gave a calm tick %d", tick)
		}
		switch e.Action {
		case ActKill:
			delete(open, "pause/"+itoa(e.Shard))
		case ActPause:
			open["pause/"+itoa(e.Shard)] = tick + e.Ticks
		case ActSlow:
			open["slow/"+itoa(e.Shard)] = tick + e.Ticks
		case ActPartition:
			open["part/"+itoa(e.Shard)] = tick + e.Ticks
		}
		for shard := 0; shard < 2; shard++ {
			if want, got := open["pause/"+itoa(shard)] != 0, target.paused[shard]; want != got {
				t.Fatalf("tick %d shard %d paused=%v want %v", tick, shard, got, want)
			}
			if want, got := open["slow/"+itoa(shard)] != 0, target.slow[shard]; want != got {
				t.Fatalf("tick %d shard %d slow=%v want %v", tick, shard, got, want)
			}
			if want, got := open["part/"+itoa(shard)] != 0, target.blocked[shard]; want != got {
				t.Fatalf("tick %d shard %d blocked=%v want %v", tick, shard, got, want)
			}
		}
	}
	if err := o.Quiesce(); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	for shard := 0; shard < 2; shard++ {
		if target.paused[shard] || target.slow[shard] || target.blocked[shard] {
			t.Fatalf("shard %d still disturbed after Quiesce", shard)
		}
	}
	if len(target.kills) == 0 {
		t.Fatalf("50 rate-1 ticks never killed")
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// Run applies the same events Step-by-Step application would, and sleeps
// once per tick on the injected clock.
func TestOrchestratorRunDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Shards: 3, Rate: 0.5, MinGap: 2}
	clock := &fakeClock{}
	a, err := NewOrchestrator(sched(t, cfg), newFakeTarget(), clock).Run(120, time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := NewOrchestrator(sched(t, cfg), newFakeTarget(), &fakeClock{}).Run(120, time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with the same seed diverged")
	}
	want := (time.Time{}).Add(120 * time.Second)
	if !clock.now.Equal(want) {
		t.Fatalf("Run slept to %v, want %v", clock.now, want)
	}
}
