package coordinator

// The mutation journal and the rejoin protocol: how the fleet keeps
// accepting CRUD writes while a shard is down, and how a resurrected shard
// catches up and earns its way back into the fan-out.
//
// While every shard is admitted, mutations fan out everywhere and the
// journal is empty. When a shard is quarantined, each mutation still
// executes on the admitted shards, and its RESULT — the request plus the
// fleet-agreed response and the post-apply census — is appended to a bounded
// journal keyed by the fan-out idempotency key. The journal is a queue, not
// an evicting ring: entries a down shard still needs are never discarded, so
// when the journal fills, new mutations are refused with a typed error the
// router maps to 503 + Retry-After (the client's idempotent retry composes
// with it). Rejoin replays the gap in order onto the recovered shard — with
// an applied-probe per entry, because the shard may have executed the
// in-flight mutation just before dying and its idempotency cache did not
// survive the restart — then passes the cross-shard state-digest gate before
// the shard is readmitted.

import (
	"context"
	"errors"
	"fmt"

	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/supervisor"
)

// Typed fleet-degradation errors. The router maps each onto 503 +
// Retry-After: the condition is real but expected to clear — callers retry.
var (
	// ErrShardDown marks an operation that cannot be served while a shard is
	// quarantined (delivery days, partitioned insights, an empty read pool).
	ErrShardDown = errors.New("coordinator: shard quarantined")
	// ErrJournalFull marks a mutation refused because the catch-up journal
	// is at capacity: accepting it would either lose it (eviction) or grow
	// without bound.
	ErrJournalFull = errors.New("coordinator: mutation journal full")
	// ErrDayExhausted marks a delivery day abandoned after the configured
	// attempt budget.
	ErrDayExhausted = errors.New("coordinator: delivery day attempts exhausted")
)

// Journal entry kinds — one per replicated CRUD mutation.
const (
	entryAudience = "audience"
	entryCampaign = "campaign"
	entryAd       = "ad"
	entryAppeal   = "appeal"
)

// journalEntry is one missed mutation: the request, the idempotency key the
// admitted shards executed under (replay forwards the same key), the
// fleet-agreed outcome (replay asserts the resurrected shard reproduces it),
// and the post-apply replicated census (the applied-probe: a shard whose
// snapshot census already reached these counts executed this entry before it
// died).
type journalEntry struct {
	seq  uint64
	key  string
	kind string

	// Request payload; only the kind's fields are set.
	audienceName   string
	audienceHashes []string
	campaignReq    marketing.CreateCampaignRequest
	adReq          marketing.CreateAdRequest
	appealAdID     string

	// Fleet-agreed outcome.
	wantID      string
	wantStatus  string
	wantMatched int

	// Replicated census after this entry applied.
	postAudiences, postCampaigns, postAds int

	// pending holds the quarantined shard indexes that still need this
	// entry; the entry is pruned once empty.
	pending map[int]bool
}

// mutationJournal is the bounded catch-up queue. All structural mutation
// happens under the coordinator's fleet mutex (appends ride CRUD fan-outs,
// drains ride rejoins — both serialized); the journal adds no lock of its
// own beyond that contract.
type mutationJournal struct {
	cap     int
	entries []*journalEntry
	byKey   map[string]*journalEntry
	seq     uint64

	// Fleet census model, valid only while the journal is non-empty: the
	// replicated object counts after the newest entry, used to stamp each
	// entry's post-apply census without an RPC per append.
	counts      platform.Inventory
	countsValid bool
}

func newMutationJournal(capacity int) *mutationJournal {
	return &mutationJournal{cap: capacity, byKey: map[string]*journalEntry{}}
}

func (j *mutationJournal) full() bool { return len(j.entries) >= j.cap }

func (j *mutationJournal) depth() int { return len(j.entries) }

// bump advances the census model for one mutation kind.
func (inv *mutationJournal) bumpCounts(kind string) {
	switch kind {
	case entryAudience:
		inv.counts.Audiences++
	case entryCampaign:
		inv.counts.Campaigns++
	case entryAd:
		inv.counts.Ads++
	}
}

// dropShard removes a rejoined shard from every pending set and prunes
// fully-drained entries; an emptied journal invalidates the census model
// (the next quarantine window re-fetches it).
func (j *mutationJournal) dropShard(shard int) {
	kept := j.entries[:0]
	for _, e := range j.entries {
		delete(e.pending, shard)
		if len(e.pending) == 0 {
			delete(j.byKey, e.key)
			continue
		}
		kept = append(kept, e)
	}
	j.entries = kept
	if len(j.entries) == 0 {
		j.countsValid = false
	}
}

// mutationSpec parameterizes one replicated CRUD fan-out for runMutation.
type mutationSpec[T any] struct {
	// op labels metrics and errors ("create ad").
	op string
	// inboundKey is the caller's idempotency key ("" mints a fleet key).
	inboundKey string
	// call executes the mutation on one shard (the idempotency key is
	// already on the context).
	call func(ctx context.Context, sc *shardConn) (T, error)
	// same reports cross-shard response agreement; render formats a
	// response for the divergence error.
	same   func(a, b T) bool
	render func(T) string
	// record builds the journal entry (kind, payload, fleet outcome) from
	// the agreed response; runMutation fills seq/key/census/pending.
	record func(resp T) *journalEntry
}

// runMutation is the replicated-CRUD engine: execute on every admitted
// shard, assert agreement, and journal the entry for quarantined shards.
// The caller holds c.mu. A shard whose fan-out call fails AND whose health
// score crossed to down is quarantined inline and journaled instead of
// failing the fleet; failures on shards that are still considered healthy
// fail the mutation as before (the caller's idempotent retry converges).
func runMutation[T any](ctx context.Context, c *Coordinator, spec mutationSpec[T]) (T, error) {
	var zero T
	key := spec.inboundKey
	if key == "" {
		key = c.mintFleetKey()
	}
	admitted, quarantined := c.admissionSnapshot()
	if len(admitted) == 0 {
		return zero, fmt.Errorf("coordinator: %s: no admitted shards: %w", spec.op, ErrShardDown)
	}
	if len(quarantined) > 0 && c.journal.full() && c.journal.byKey[key] == nil {
		c.reg.Counter(MetricJournalRejects).Inc()
		return zero, fmt.Errorf("coordinator: %s: %w (%d entries queued for shards %v)",
			spec.op, ErrJournalFull, c.journal.depth(), quarantined)
	}

	out := make([]*T, len(c.shards))
	errs := c.scatterEach(ctx, spec.op, admitted, func(ctx context.Context, sc *shardConn) error {
		resp, err := spec.call(marketing.WithIdempotencyKey(ctx, key), sc)
		if err != nil {
			return err
		}
		out[sc.index] = &resp
		return nil
	})

	// A shard that failed this fan-out and has now crossed the down
	// threshold is quarantined inline: its copy of the mutation is ambiguous
	// (it may have applied just before dying), which is exactly what the
	// journal's replay probes resolve.
	var firstErr error
	for _, sc := range admitted {
		err := errs[sc.index]
		if err == nil {
			continue
		}
		if c.health.State(sc.index) == supervisor.Down && c.Quarantine(sc.index) {
			quarantined = append(quarantined, sc.index)
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return zero, firstErr
	}

	var ref *T
	var refConn *shardConn
	for _, sc := range admitted {
		resp := out[sc.index]
		if resp == nil {
			continue // quarantined mid-flight
		}
		if ref == nil {
			ref, refConn = resp, sc
			continue
		}
		if !spec.same(*resp, *ref) {
			return zero, divergence(spec.op, sc, spec.render(*resp), spec.render(*ref))
		}
	}
	if ref == nil {
		return zero, fmt.Errorf("coordinator: %s: every shard went down mid-mutation: %w", spec.op, ErrShardDown)
	}

	if len(quarantined) > 0 {
		if err := c.journalAppend(ctx, refConn, key, spec.record(*ref), quarantined); err != nil {
			// The mutation applied on the admitted shards but could not be
			// recorded; fail the call so the caller's idempotent retry
			// re-runs it (admitted shards dedupe) and records it.
			return zero, fmt.Errorf("coordinator: %s applied but not journaled, retry: %w", spec.op, err)
		}
	}
	return *ref, nil
}

// journalAppend records one executed mutation for the given quarantined
// shards. The census model is bootstrapped from the reference shard's
// inventory (which already includes this mutation) on the first append of a
// quarantine window and advanced arithmetically afterwards.
func (c *Coordinator) journalAppend(ctx context.Context, ref *shardConn, key string, e *journalEntry, pending []int) error {
	j := c.journal
	if existing := j.byKey[key]; existing != nil {
		// A retried mutation that was already recorded: just widen the
		// pending set (a second shard may have gone down since).
		for _, idx := range pending {
			existing.pending[idx] = true
		}
		return nil
	}
	if j.countsValid {
		j.bumpCounts(e.kind)
	} else {
		inv, err := ref.client.Inventory(ctx)
		if err != nil {
			return fmt.Errorf("journal census bootstrap on %s: %w", ref.label, err)
		}
		j.counts, j.countsValid = *inv, true
	}
	j.seq++
	e.seq, e.key = j.seq, key
	e.postAudiences, e.postCampaigns, e.postAds = j.counts.Audiences, j.counts.Campaigns, j.counts.Ads
	e.pending = make(map[int]bool, len(pending))
	for _, idx := range pending {
		e.pending[idx] = true
	}
	j.entries = append(j.entries, e)
	j.byKey[key] = e
	c.reg.Counter(MetricJournalAppends).Inc()
	c.reg.Gauge(MetricJournalDepth).Set(int64(j.depth()))
	return nil
}

// replayJournalLocked replays the journal gap onto a recovered shard, in
// order. snapshot is the shard's census at rejoin start: an entry whose
// post-apply census the snapshot already reached was executed before the
// shard died and is skipped (status-probed for appeals); everything newer is
// executed with the original idempotency key and must reproduce the recorded
// fleet outcome bit for bit.
func (c *Coordinator) replayJournalLocked(ctx context.Context, sc *shardConn, snapshot platform.Inventory) error {
	for _, e := range c.journal.entries {
		if !e.pending[sc.index] {
			continue
		}
		applied, err := c.entryApplied(ctx, sc, e, snapshot)
		if err != nil {
			return err
		}
		if applied {
			c.reg.Counter(MetricJournalSkipped).Inc()
			continue
		}
		if err := c.replayEntry(ctx, sc, e); err != nil {
			return err
		}
		c.reg.Counter(MetricJournalReplayed).Inc()
	}
	return nil
}

// entryApplied probes whether the shard executed e before it died.
func (c *Coordinator) entryApplied(ctx context.Context, sc *shardConn, e *journalEntry, snapshot platform.Inventory) (bool, error) {
	switch e.kind {
	case entryAudience:
		return snapshot.Audiences >= e.postAudiences, nil
	case entryCampaign:
		return snapshot.Campaigns >= e.postCampaigns, nil
	case entryAd:
		return snapshot.Ads >= e.postAds, nil
	case entryAppeal:
		// Appeals move no census counter; probe the ad's status directly
		// (the ad exists by now — its create precedes the appeal in the
		// journal order).
		ad, err := sc.client.GetAd(ctx, e.appealAdID)
		if err != nil {
			return false, fmt.Errorf("replay probe GetAd(%s) on %s: %w", e.appealAdID, sc.label, err)
		}
		return ad.Status == e.wantStatus, nil
	}
	return false, fmt.Errorf("journal entry %d has unknown kind %q", e.seq, e.kind)
}

// replayEntry executes one journal entry on the shard and asserts the
// outcome matches the fleet's recorded one. A mismatch is divergence: the
// shard rebuilt different state than the fleet agreed on (wrong world seed,
// drifted RNG cursor) and must not rejoin.
func (c *Coordinator) replayEntry(ctx context.Context, sc *shardConn, e *journalEntry) error {
	ctx = marketing.WithIdempotencyKey(ctx, e.key)
	switch e.kind {
	case entryAudience:
		resp, err := sc.client.CreateAudience(ctx, e.audienceName, e.audienceHashes)
		if err != nil {
			return fmt.Errorf("replay %s #%d on %s: %w", e.kind, e.seq, sc.label, err)
		}
		if resp.ID != e.wantID || resp.MatchedSize != e.wantMatched {
			return divergence("journal replay audience", sc,
				fmt.Sprintf("%+v", *resp), fmt.Sprintf("id=%s matched=%d", e.wantID, e.wantMatched))
		}
	case entryCampaign:
		resp, err := sc.client.CreateCampaign(ctx, e.campaignReq)
		if err != nil {
			return fmt.Errorf("replay %s #%d on %s: %w", e.kind, e.seq, sc.label, err)
		}
		if resp.ID != e.wantID {
			return divergence("journal replay campaign", sc, resp.ID, e.wantID)
		}
	case entryAd:
		resp, err := sc.client.CreateAd(ctx, e.adReq)
		if err != nil {
			return fmt.Errorf("replay %s #%d on %s: %w", e.kind, e.seq, sc.label, err)
		}
		if resp.ID != e.wantID || resp.Status != e.wantStatus {
			return divergence("journal replay ad", sc,
				fmt.Sprintf("%+v", *resp), fmt.Sprintf("id=%s status=%s", e.wantID, e.wantStatus))
		}
	case entryAppeal:
		resp, err := sc.client.AppealAd(ctx, e.appealAdID)
		if err != nil {
			return fmt.Errorf("replay %s #%d on %s: %w", e.kind, e.seq, sc.label, err)
		}
		if resp.Status != e.wantStatus {
			return divergence("journal replay appeal", sc, resp.Status, e.wantStatus)
		}
	default:
		return fmt.Errorf("journal entry %d has unknown kind %q", e.seq, e.kind)
	}
	return nil
}

// rejoinLocked is the readmission protocol for one quarantined shard, run
// under the fleet mutex (so no mutation or day moves while state converges):
//
//  1. handshake — the shard answers GET /v1/shard/status, its world
//     fingerprint matches an admitted reference, and no day session is
//     still open on it;
//  2. catch-up — the journal gap replays in order (applied-probe per entry);
//  3. digest gate — the shard's full state digest must equal the
//     reference's, byte for byte;
//  4. admit — back into the CRUD fan-out and delivery pool; its journal
//     entries drain; MTTR is observed.
//
// With no admitted reference left (whole-fleet outage), the first shard back
// is readmitted on replay alone — there is nothing to digest against — and
// counted in router.rejoin_unverified; every later shard digests against it.
func (c *Coordinator) rejoinLocked(ctx context.Context, shard int) error {
	if c.isAdmitted(shard) {
		return nil
	}
	sc := c.shards[shard]
	fail := func(err error) error {
		c.reg.Counter(MetricRejoinFailures).Inc()
		return err
	}
	st, err := sc.client.ShardStatus(ctx)
	if err != nil {
		return fail(fmt.Errorf("coordinator: rejoin handshake on %s: %w", sc.label, err))
	}
	if st.SessionActive {
		return fail(fmt.Errorf("coordinator: rejoin %s: a day session is still open mid-recovery", sc.label))
	}
	ref := c.referenceConn()
	if ref != nil {
		refSt, err := ref.client.ShardStatus(ctx)
		if err != nil {
			return fail(fmt.Errorf("coordinator: rejoin reference handshake on %s: %w", ref.label, err))
		}
		if st.NumUsers != refSt.NumUsers {
			return fail(divergence("rejoin world fingerprint", sc,
				fmt.Sprintf("num_users=%d", st.NumUsers), fmt.Sprintf("num_users=%d", refSt.NumUsers)))
		}
	}
	replayStart := c.clock.Now()
	if err := c.replayJournalLocked(ctx, sc, st.Inventory); err != nil {
		return fail(fmt.Errorf("coordinator: rejoin replay on %s: %w", sc.label, err))
	}
	c.reg.Histogram(MetricJournalReplayLatency).Observe(c.clock.Now().Sub(replayStart))
	if ref != nil {
		after, err := sc.client.ShardStatus(ctx)
		if err != nil {
			return fail(fmt.Errorf("coordinator: rejoin digest read on %s: %w", sc.label, err))
		}
		refAfter, err := ref.client.ShardStatus(ctx)
		if err != nil {
			return fail(fmt.Errorf("coordinator: rejoin digest read on %s: %w", ref.label, err))
		}
		if after.StateDigest != refAfter.StateDigest {
			return fail(divergence("rejoin state digest", sc, after.StateDigest, refAfter.StateDigest))
		}
	} else {
		c.reg.Counter(MetricRejoinUnverified).Inc()
	}
	c.admit(shard)
	c.reg.Counter(MetricRejoins).Inc()
	return nil
}
