package coordinator

// The cross-shard delivery day: PR 5's two-phase budget contract run over
// HTTP. Per tick, the coordinator's PacingController freezes the pacing /
// committed-spend snapshot and slices the tick cap per shard (phase 1),
// every backend runs its slice of the auctions against that frozen snapshot
// (phase 2), and the reported spend commits in fixed shard order with the
// budget clamp (phase 3). The controller calls the same float functions the
// in-process engines call, and JSON round-trips float64 bits exactly, so
// the result is byte-identical to RunDayWorkers(workers=shards).
//
// Failure model: sessions are in-memory on the backends, so a shard that
// dies mid-day loses its session and answers 409 afterwards. The
// coordinator then aborts the day everywhere and re-runs it from scratch —
// determinism makes the re-run byte-identical, so a crash costs wall time,
// never correctness. The one asymmetric window is the finish fan-out: some
// shards may commit durably while another dies first. For that the
// coordinator keeps the day's full directive record and replays the day on
// just the unfinished shards (their output is a pure function of the
// directives), converging every backend onto the same committed day.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
)

// dayRecord is one delivery-day attempt's replayable trace: everything a
// backend needs to re-derive its slice of the day without the other shards.
type dayRecord struct {
	session string
	adIDs   []string
	seed    int64
	dirs    [][]platform.TickDirective // per tick, per ad
	cents   []float64                  // set once every tick committed
}

// Deliver runs one coordinated delivery day over all shards, re-running it
// after shard failures until it commits everywhere or attempts run out.
// Every shard must be admitted for a fresh attempt to start — the delivery
// partition is position-mod-N over ALL shards, so a day cannot simply skip a
// quarantined one. Between attempts the loop performs the rejoin protocol
// inline (it already holds the fleet mutex the supervisor's TryRejoin would
// contend on), which is how a day survives a mid-day shard crash: the shard
// is relaunched by the supervisor, rejoined here, and the day re-runs
// byte-identically.
func (c *Coordinator) Deliver(ctx context.Context, adIDs []string, seed int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.clock.Now()
	daySeq := c.daySeq.Add(1)
	var rec *dayRecord
	var lastErr error
	for attempt := 1; attempt <= c.cfg.DayAttempts; attempt++ {
		if attempt > 1 {
			c.reg.Counter(MetricDayRestarts).Inc()
			c.reg.Counter(MetricDayRetries).Inc()
			// Holding c.mu across the backoff is the point, not an accident:
			// the lock freezes fleet-wide CRUD for the whole day including its
			// retries, because a mutation slipping between two attempts would
			// make the re-run a *different* (non-replayable) day.
			c.clock.Sleep(c.dayBackoff(daySeq, attempt)) //adlint:allow lockhold (day retries must keep fleet CRUD frozen; a mutation between attempts would change the re-run day)
		}
		// Heal before retrying: quarantined shards that answer a probe again
		// are walked through the rejoin protocol under the lock we already
		// hold. A rejoin that fails (still dead, digest gap from a partial
		// commit) leaves the shard quarantined; the partial-commit replay
		// below converges the day state so a later pass can succeed.
		c.rejoinQuarantinedLocked(ctx)
		var err error
		committed, pending, statusErr := c.dayStatus(ctx, adIDs, attempt)
		switch {
		case statusErr != nil:
			err = statusErr
		case committed:
			// The failed attempt landed everywhere after all (e.g. the ack
			// was lost): the day is done.
			err = nil
		case len(pending) > 0 && len(pending) < len(c.shards):
			// Partial commit: a shard died inside the finish fan-out after
			// others committed. Replay the recorded day on the stragglers —
			// admission does not gate this path, because the replay targets
			// the pending shards directly and is exactly what converges a
			// quarantined shard's day state.
			if rec == nil || rec.cents == nil {
				return fmt.Errorf("coordinator: day partially committed with no replayable record (shards %v pending): %w", pending, lastErr)
			}
			err = c.replayDay(ctx, rec, pending)
		case len(c.quarantinedIdx()) > 0:
			// A fresh attempt needs the whole fleet: the day's user partition
			// spans every shard index.
			err = fmt.Errorf("coordinator: day needs full fleet, shards %v quarantined: %w", c.quarantinedIdx(), ErrShardDown)
		default:
			rec = &dayRecord{
				session: fmt.Sprintf("day-%d-%d", seed, daySeq),
				adIDs:   adIDs,
				seed:    seed,
			}
			err = c.runDayOnce(ctx, rec)
		}
		if err == nil {
			c.reg.Counter(MetricDays).Inc()
			c.reg.Histogram(MetricDayLatency).Observe(c.clock.Now().Sub(start))
			return nil
		}
		lastErr = err
		if rec != nil {
			c.abortDay(rec.session)
		}
		if ctx.Err() != nil {
			return lastErr
		}
		if !marketing.Retryable(err) && !marketing.IsSessionConflict(err) && !errors.Is(err, ErrShardDown) {
			// Terminal API answer (validation, divergence): re-running the
			// day would only repeat it.
			return lastErr
		}
	}
	return fmt.Errorf("%w: %d attempts: %w", ErrDayExhausted, c.cfg.DayAttempts, lastErr)
}

// dayBackoff is the wait before retry `attempt`: exponential from DayBackoff,
// capped at DayBackoffMax, with deterministic jitter mixed from the day
// sequence and attempt number — reproducible in tests (injected clock, fixed
// sequence), yet de-synchronized across days and fleets.
func (c *Coordinator) dayBackoff(daySeq uint64, attempt int) time.Duration {
	backoff := c.cfg.DayBackoff << uint(attempt-2) // attempt 2 waits DayBackoff
	if backoff <= 0 || backoff > c.cfg.DayBackoffMax {
		backoff = c.cfg.DayBackoffMax
	}
	// Jitter in [0, backoff/2): derived, not sampled, so a replayed test run
	// waits exactly as long as the original.
	jitter := time.Duration(faults.Mix64(int64(daySeq), uint64(attempt)) % uint64(backoff/2+1))
	backoff += jitter
	if backoff > c.cfg.DayBackoffMax {
		backoff = c.cfg.DayBackoffMax
	}
	return backoff
}

// rejoinQuarantinedLocked probes every quarantined shard and runs the rejoin
// protocol for the ones that answer. Called with c.mu held (Deliver's retry
// preamble); failures leave the shard quarantined for a later pass or the
// supervisor.
func (c *Coordinator) rejoinQuarantinedLocked(ctx context.Context) {
	for _, idx := range c.quarantinedIdx() {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := c.ProbeShard(pctx, idx)
		cancel()
		c.observeOutcome(idx, err)
		if err != nil {
			continue
		}
		c.health.MarkRecovering(idx)
		_ = c.rejoinLocked(ctx, idx)
	}
}

// runDayOnce runs one full day attempt across all shards, recording the
// directive trace into rec as it goes.
func (c *Coordinator) runDayOnce(ctx context.Context, rec *dayRecord) error {
	shards := len(c.shards)
	inits := make([]*platform.DayInit, shards)
	err := c.scatter(ctx, "begin day", c.shards, func(ctx context.Context, sc *shardConn) error {
		init, err := sc.client.BeginDay(ctx, marketing.BeginDayRequest{
			Session: rec.session,
			AdIDs:   rec.adIDs,
			Seed:    rec.seed,
			Shard:   sc.index,
			Shards:  shards,
		})
		if err != nil {
			return err
		}
		inits[sc.index] = init
		return nil
	})
	if err != nil {
		return err
	}
	if err := assertPlansAgree(c.shards, inits); err != nil {
		return err
	}
	ctrl, err := platform.NewPacingController(inits[0], shards)
	if err != nil {
		return err
	}

	rec.dirs = make([][]platform.TickDirective, 0, ctrl.Ticks())
	for tick := 0; tick < ctrl.Ticks(); tick++ {
		dirs := ctrl.TickDirectives(tick)
		rec.dirs = append(rec.dirs, dirs)
		perShard := make([][]float64, shards)
		err := c.scatter(ctx, "day tick", c.shards, func(ctx context.Context, sc *shardConn) error {
			rep, err := sc.client.DayTick(ctx, marketing.DayTickRequest{Session: rec.session, Tick: tick, Directives: dirs})
			if err != nil {
				return err
			}
			perShard[sc.index] = rep.Spent
			return nil
		})
		if err != nil {
			return err
		}
		if err := ctrl.CommitTick(perShard); err != nil {
			return err
		}
		c.reg.Counter(MetricDayTicks).Inc()
	}

	rec.cents = ctrl.SpendCents()
	return c.scatter(ctx, "finish day", c.shards, func(ctx context.Context, sc *shardConn) error {
		return sc.client.FinishDay(ctx, rec.session, rec.cents)
	})
}

// replayDay re-runs a fully recorded day on the given shards only. Each
// shard's output is a pure function of (CRUD state, seed, shard, shards,
// directives), so feeding the recorded directives reproduces exactly the
// slice the shard would have committed in the original attempt.
func (c *Coordinator) replayDay(ctx context.Context, rec *dayRecord, pending []int) error {
	session := fmt.Sprintf("%s-replay-%d", rec.session, c.daySeq.Add(1))
	for _, idx := range pending {
		sc := c.shards[idx]
		if _, err := sc.client.BeginDay(ctx, marketing.BeginDayRequest{
			Session: session,
			AdIDs:   rec.adIDs,
			Seed:    rec.seed,
			Shard:   sc.index,
			Shards:  len(c.shards),
		}); err != nil {
			return fmt.Errorf("coordinator: replay begin on %s: %w", sc.label, err)
		}
		for tick, dirs := range rec.dirs {
			if _, err := sc.client.DayTick(ctx, marketing.DayTickRequest{Session: session, Tick: tick, Directives: dirs}); err != nil {
				return fmt.Errorf("coordinator: replay tick %d on %s: %w", tick, sc.label, err)
			}
		}
		if err := sc.client.FinishDay(ctx, session, rec.cents); err != nil {
			return fmt.Errorf("coordinator: replay finish on %s: %w", sc.label, err)
		}
	}
	return nil
}

// dayStatus probes whether a previous attempt's commit landed. On the first
// attempt there is nothing to probe. It reports committed=true when every
// shard shows every ad completed or rejected, and the pending shard indexes
// otherwise. A probe that cannot reach a shard reports that shard pending
// (the retry loop will reach it or run out of attempts).
func (c *Coordinator) dayStatus(ctx context.Context, adIDs []string, attempt int) (committed bool, pending []int, err error) {
	if attempt == 1 {
		return false, c.allShards(), nil
	}
	for _, sc := range c.shards {
		done := true
		for _, id := range adIDs {
			ad, err := sc.client.GetAd(ctx, id)
			if err != nil {
				if ctx.Err() != nil {
					return false, nil, ctx.Err()
				}
				done = false
				break
			}
			if ad.Status != "COMPLETED" && ad.Status != "REJECTED" {
				done = false
				break
			}
		}
		if !done {
			pending = append(pending, sc.index)
		}
	}
	return len(pending) == 0, pending, nil
}

// allShards lists every shard index.
func (c *Coordinator) allShards() []int {
	out := make([]int, len(c.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// abortDay best-effort aborts a session everywhere, with its own deadline so
// a dead shard cannot hang the retry loop; errors are ignored (a shard that
// lost the session already reports the abort as done).
func (c *Coordinator) abortDay(session string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = c.scatter(ctx, "abort day", c.shards, func(ctx context.Context, sc *shardConn) error {
		_ = sc.client.AbortDay(ctx, session)
		return nil
	})
}

// assertPlansAgree checks that every shard resolved the identical day plan —
// same tick count, pacing mode, and per-ad identity, budget, and starting
// bid. Divergence means the backends' CRUD state or world seeds differ, and
// delivering would produce garbage rather than a sharded day.
func assertPlansAgree(shards []*shardConn, inits []*platform.DayInit) error {
	ref := inits[0]
	for i := 1; i < len(inits); i++ {
		in := inits[i]
		if in.Ticks != ref.Ticks || in.Greedy != ref.Greedy || len(in.Ads) != len(ref.Ads) {
			return divergence("day plan", shards[i],
				fmt.Sprintf("ticks=%d greedy=%v ads=%d", in.Ticks, in.Greedy, len(in.Ads)),
				fmt.Sprintf("ticks=%d greedy=%v ads=%d", ref.Ticks, ref.Greedy, len(ref.Ads)))
		}
		for j := range in.Ads {
			if in.Ads[j] != ref.Ads[j] {
				return divergence("day plan ad", shards[i],
					fmt.Sprintf("%+v", in.Ads[j]), fmt.Sprintf("%+v", ref.Ads[j]))
			}
		}
	}
	return nil
}
