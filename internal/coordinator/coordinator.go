// Package coordinator is the multi-process serving tier: a thin router that
// fronts N independent adplatform shard backends and makes them behave as
// one deterministic platform.
//
// Every backend holds the FULL world (the population is a deterministic
// function of the world seed) and the full CRUD account state (mutations fan
// out to all shards), but during a delivery day each backend auctions only
// its own slice of the audience — position mod N over the globally sorted
// eligible-user list, the same round-robin partition the in-process sharded
// engine uses. The coordinator runs the pacing controller and the tick
// barrier (platform.PacingController) over HTTP, so an N-shard coordinated
// day is byte-identical to the single-process RunDayWorkers(workers=N) run,
// and a 1-shard day reproduces the sequential oracle goldens.
//
// The coordinator holds no durable state of its own: backends recover
// independently through their own WAL/snapshot stores, and an interrupted
// delivery day is simply re-run — determinism makes the re-run
// indistinguishable from an uninterrupted one.
package coordinator

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
)

// Config shapes a Coordinator.
type Config struct {
	// Backends are the shard base URLs, in shard order. Shard i of the
	// delivery partition is Backends[i]; the order is part of the day's
	// identity (it fixes the commit order), so give every coordinator of
	// the same fleet the same order.
	Backends []string
	// MaxFanout bounds concurrent backend calls per scatter. 0 means
	// "all shards at once".
	MaxFanout int
	// DayAttempts is how many times a delivery day is re-run from scratch
	// after a shard failure before giving up. 0 defaults to 5.
	DayAttempts int
	// DayBackoff is the wait between day attempts, doubling per attempt
	// (capped at 8x). 0 defaults to 2s.
	DayBackoff time.Duration
	// Clock injects time for the day-retry backoff; nil is the system
	// clock.
	Clock marketing.Clock
}

// shardConn is one backend: its resilient API client and its metric label.
type shardConn struct {
	index  int
	url    string
	client *marketing.Client
	label  string
}

// Coordinator fans CRUD out to every shard and runs coordinated delivery
// days. Mutations are serialized (one at a time across the fleet) so every
// backend applies them in the same order and allocates the same object IDs —
// cross-shard ID agreement is asserted on every response. Reads are
// concurrent.
type Coordinator struct {
	cfg    Config
	shards []*shardConn
	reg    *obs.Registry
	clock  marketing.Clock

	// mu serializes mutating fan-outs and delivery days. Determinism needs
	// identical mutation order on every backend; a thin coordinator buys it
	// with a lock rather than a log.
	mu     sync.Mutex
	daySeq atomic.Uint64
}

// New builds a coordinator over the configured backends.
func New(cfg Config, reg *obs.Registry) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("coordinator: no backends configured")
	}
	if cfg.DayAttempts <= 0 {
		cfg.DayAttempts = 5
	}
	if cfg.DayBackoff <= 0 {
		cfg.DayBackoff = 2 * time.Second
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = marketing.SystemClock
	}
	c := &Coordinator{cfg: cfg, reg: reg, clock: clock}
	for i, u := range cfg.Backends {
		cl, err := marketing.NewClient(u)
		if err != nil {
			return nil, fmt.Errorf("coordinator: backend %d: %w", i, err)
		}
		cl.SetMetrics(reg)
		c.shards = append(c.shards, &shardConn{index: i, url: u, client: cl, label: fmt.Sprintf("shard%d", i)})
	}
	return c, nil
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Backends reports the backend URLs in shard order.
func (c *Coordinator) Backends() []string {
	return append([]string(nil), c.cfg.Backends...)
}

// SetRetryPolicy applies one retry policy to every backend client.
func (c *Coordinator) SetRetryPolicy(p marketing.RetryPolicy) {
	for _, sc := range c.shards {
		sc.client.SetRetryPolicy(p)
	}
}

// scatter runs fn against every shard with bounded concurrency and waits
// for all of them, recording per-shard request/error counts and latency.
// It returns the first error in shard order (deterministic even when
// several shards fail at once).
func (c *Coordinator) scatter(ctx context.Context, op string, fn func(ctx context.Context, sc *shardConn) error) error {
	limit := c.cfg.MaxFanout
	if limit <= 0 || limit > len(c.shards) {
		limit = len(c.shards)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for _, sc := range c.shards {
		wg.Add(1)
		go func(sc *shardConn) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := c.clock.Now()
			err := fn(ctx, sc)
			c.reg.Histogram(MetricShardLatency + "|" + sc.label).Observe(c.clock.Now().Sub(start))
			c.reg.Counter(MetricShardRequests + "|" + sc.label).Inc()
			if err != nil {
				c.reg.Counter(MetricShardErrors + "|" + sc.label).Inc()
				errs[sc.index] = fmt.Errorf("coordinator: %s on %s: %w", op, sc.label, err)
			}
		}(sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOutKey derives the backend idempotency key for one fan-out: the
// caller's inbound key when it sent one (so a retried inbound request
// converges on every shard), or empty to let each client mint its own.
func fanOutKey(ctx context.Context, inboundKey string) context.Context {
	if inboundKey == "" {
		return ctx
	}
	return marketing.WithIdempotencyKey(ctx, inboundKey)
}

// CreateAudience fans an audience upload out to every shard and asserts the
// shards matched identically.
func (c *Coordinator) CreateAudience(ctx context.Context, inboundKey, name string, piiHashes []string) (*marketing.CreateAudienceResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*marketing.CreateAudienceResponse, len(c.shards))
	err := c.scatter(ctx, "create audience", func(ctx context.Context, sc *shardConn) error {
		resp, err := sc.client.CreateAudience(fanOutKey(ctx, inboundKey), name, piiHashes)
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		if out[i].ID != out[0].ID || out[i].MatchedSize != out[0].MatchedSize {
			return nil, divergence("audience create", c.shards[i], fmt.Sprintf("%+v", out[i]), fmt.Sprintf("%+v", out[0]))
		}
	}
	return out[0], nil
}

// CreateCampaign fans a campaign create out to every shard.
func (c *Coordinator) CreateCampaign(ctx context.Context, inboundKey string, req marketing.CreateCampaignRequest) (*marketing.CreateCampaignResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*marketing.CreateCampaignResponse, len(c.shards))
	err := c.scatter(ctx, "create campaign", func(ctx context.Context, sc *shardConn) error {
		resp, err := sc.client.CreateCampaign(fanOutKey(ctx, inboundKey), req)
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		if out[i].ID != out[0].ID {
			return nil, divergence("campaign create", c.shards[i], out[i].ID, out[0].ID)
		}
	}
	return out[0], nil
}

// CreateAd fans an ad create out to every shard. The review RNG is seeded
// identically on every backend, so the review outcome must also agree.
func (c *Coordinator) CreateAd(ctx context.Context, inboundKey string, req marketing.CreateAdRequest) (*marketing.AdResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*marketing.AdResponse, len(c.shards))
	err := c.scatter(ctx, "create ad", func(ctx context.Context, sc *shardConn) error {
		resp, err := sc.client.CreateAd(fanOutKey(ctx, inboundKey), req)
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		if out[i].ID != out[0].ID || out[i].Status != out[0].Status {
			return nil, divergence("ad create", c.shards[i], fmt.Sprintf("%+v", out[i]), fmt.Sprintf("%+v", out[0]))
		}
	}
	return out[0], nil
}

// AppealAd fans an appeal out to every shard.
func (c *Coordinator) AppealAd(ctx context.Context, inboundKey, adID string) (*marketing.AdResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*marketing.AdResponse, len(c.shards))
	err := c.scatter(ctx, "appeal ad", func(ctx context.Context, sc *shardConn) error {
		resp, err := sc.client.AppealAd(fanOutKey(ctx, inboundKey), adID)
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		if out[i].Status != out[0].Status {
			return nil, divergence("ad appeal", c.shards[i], out[i].Status, out[0].Status)
		}
	}
	return out[0], nil
}

// GetAd reads an ad's status from the first shard that answers, in shard
// order (reads need no quorum: shards are replicas of the CRUD state).
func (c *Coordinator) GetAd(ctx context.Context, adID string) (*marketing.AdResponse, error) {
	var lastErr error
	for _, sc := range c.shards {
		resp, err := sc.client.GetAd(ctx, adID)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !marketing.Retryable(err) {
			break // a terminal answer (404, validation) is the answer
		}
	}
	return nil, lastErr
}

// Insights fans the insights read out to every shard and merges: counts sum
// (shards own disjoint users, so impressions, reach, clicks, and every
// breakdown cell add), while SpendCents — written identically to all shards
// at day finish — must agree to the bit and passes through.
func (c *Coordinator) Insights(ctx context.Context, adID string, dims []string) (*marketing.InsightsResponse, error) {
	out := make([]*marketing.InsightsResponse, len(c.shards))
	err := c.scatter(ctx, "insights", func(ctx context.Context, sc *shardConn) error {
		var resp *marketing.InsightsResponse
		var err error
		if len(dims) == 0 {
			resp, err = sc.client.Insights(ctx, adID)
		} else {
			resp, err = sc.client.InsightsBreakdown(ctx, adID, dims...)
		}
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeInsights(c.shards, out)
}

// mergeInsights folds per-shard delivery reports into the fleet-wide one.
func mergeInsights(shards []*shardConn, parts []*marketing.InsightsResponse) (*marketing.InsightsResponse, error) {
	m := &marketing.InsightsResponse{AdID: parts[0].AdID, SpendCents: parts[0].SpendCents}
	cells := map[marketing.BreakdownRow]int{}
	for i, part := range parts {
		if part.SpendCents != m.SpendCents {
			return nil, divergence("insights spend", shards[i],
				fmt.Sprintf("%v", part.SpendCents), fmt.Sprintf("%v", m.SpendCents))
		}
		m.Impressions += part.Impressions
		m.Reach += part.Reach
		m.Clicks += part.Clicks
		for _, row := range part.Breakdown {
			key := row
			key.Impressions = 0
			cells[key] += row.Impressions
		}
		if len(part.Hourly) > 0 {
			if m.Hourly == nil {
				m.Hourly = make([]int, len(part.Hourly))
			}
			if len(part.Hourly) != len(m.Hourly) {
				return nil, divergence("insights hourly length", shards[i],
					fmt.Sprintf("%d", len(part.Hourly)), fmt.Sprintf("%d", len(m.Hourly)))
			}
			for t, v := range part.Hourly {
				m.Hourly[t] += v
			}
		}
	}
	for key, n := range cells {
		key.Impressions = n
		m.Breakdown = append(m.Breakdown, key)
	}
	sort.Slice(m.Breakdown, func(i, j int) bool {
		a, b := m.Breakdown[i], m.Breakdown[j]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		if a.Gender != b.Gender {
			return a.Gender < b.Gender
		}
		return a.Region < b.Region
	})
	return m, nil
}

// Inventory fans the object census out to every shard and asserts the
// shards agree — the cheap convergence check the multi-process smoke test
// leans on.
func (c *Coordinator) Inventory(ctx context.Context) (*platform.Inventory, error) {
	out := make([]*platform.Inventory, len(c.shards))
	err := c.scatter(ctx, "inventory", func(ctx context.Context, sc *shardConn) error {
		inv, err := sc.client.Inventory(ctx)
		if err != nil {
			return err
		}
		out[sc.index] = inv
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		if out[i].Audiences != out[0].Audiences || out[i].Campaigns != out[0].Campaigns ||
			out[i].Ads != out[0].Ads || strings.Join(out[i].CampaignNames, ",") != strings.Join(out[0].CampaignNames, ",") {
			return nil, divergence("inventory", c.shards[i], fmt.Sprintf("%+v", *out[i]), fmt.Sprintf("%+v", *out[0]))
		}
	}
	return out[0], nil
}

// divergence builds the error for shards that disagree on what must be
// replicated state. It is not retryable by design: divergence means a
// backend executed a mutation the others did not (or runs different code /
// a different world seed) and needs operator attention, not a retry.
func divergence(what string, sc *shardConn, got, want string) error {
	return fmt.Errorf("coordinator: %s diverged on %s (%s): got %s, want %s (shard0)", what, sc.label, sc.url, got, want)
}
