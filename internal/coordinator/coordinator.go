// Package coordinator is the multi-process serving tier: a thin router that
// fronts N independent adplatform shard backends and makes them behave as
// one deterministic platform.
//
// Every backend holds the FULL world (the population is a deterministic
// function of the world seed) and the full CRUD account state (mutations fan
// out to all shards), but during a delivery day each backend auctions only
// its own slice of the audience — position mod N over the globally sorted
// eligible-user list, the same round-robin partition the in-process sharded
// engine uses. The coordinator runs the pacing controller and the tick
// barrier (platform.PacingController) over HTTP, so an N-shard coordinated
// day is byte-identical to the single-process RunDayWorkers(workers=N) run,
// and a 1-shard day reproduces the sequential oracle goldens.
//
// The coordinator holds no durable state of its own: backends recover
// independently through their own WAL/snapshot stores, and an interrupted
// delivery day is simply re-run — determinism makes the re-run
// indistinguishable from an uninterrupted one.
//
// The fleet degrades rather than dies: a per-shard health model scores
// transport silence (never HTTP answers — an error status still proves the
// process alive), a shard that crosses the down threshold is quarantined out
// of the fan-out, CRUD keeps flowing with its mutations journaled
// (journal.go), and a resurrected shard re-earns admission through the
// digest-gated rejoin protocol. Shard INDEX is pinned for the life of the
// fleet: the delivery partition is position-mod-N in shard order, so a shard
// is resurrected under its own index, never renumbered — renumbering would
// silently re-partition every subsequent day.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/supervisor"
)

// Config shapes a Coordinator.
type Config struct {
	// Backends are the shard base URLs, in shard order. Shard i of the
	// delivery partition is Backends[i]; the order is part of the day's
	// identity (it fixes the commit order), so give every coordinator of
	// the same fleet the same order.
	Backends []string
	// MaxFanout bounds concurrent backend calls per scatter. 0 means
	// "all shards at once".
	MaxFanout int
	// DayAttempts is how many times a delivery day is re-run from scratch
	// after a shard failure before giving up. 0 defaults to 5.
	DayAttempts int
	// DayBackoff is the wait between day attempts, doubling per attempt.
	// 0 defaults to 2s.
	DayBackoff time.Duration
	// DayBackoffMax caps the doubling (plus deterministic jitter derived
	// from the day sequence, so coordinated fleets don't retry in
	// lockstep). 0 defaults to 8x DayBackoff.
	DayBackoffMax time.Duration
	// JournalCap bounds the mutation catch-up journal; at capacity, new
	// mutations are refused with ErrJournalFull (503 + Retry-After at the
	// router) while a shard is down. 0 defaults to 256.
	JournalCap int
	// Health sets the failure-streak thresholds for the per-shard health
	// model; zero values take supervisor defaults.
	Health supervisor.Thresholds
	// Transport, when set, replaces every backend client's HTTP transport —
	// the chaos/fault injection seam (faults.NewTransport).
	Transport http.RoundTripper
	// Clock injects time for the day-retry backoff and MTTR accounting;
	// nil is the system clock.
	Clock marketing.Clock
	// Privacy is the insights privatization policy, applied to the MERGED
	// report after cross-shard summation (merge-then-privatize: per-shard
	// tallies are partition slices, so per-shard suppression would
	// over-suppress and per-shard noise would stack one draw per shard).
	// Shards behind this coordinator must serve raw insights; a
	// pre-privatized shard response is refused as a divergence.
	Privacy privacy.Config
}

// shardConn is one backend: its resilient API client and its metric label.
type shardConn struct {
	index  int
	url    string
	client *marketing.Client
	label  string
}

// Coordinator fans CRUD out to every shard and runs coordinated delivery
// days. Mutations are serialized (one at a time across the fleet) so every
// backend applies them in the same order and allocates the same object IDs —
// cross-shard ID agreement is asserted on every response. Reads are
// concurrent.
type Coordinator struct {
	cfg    Config
	shards []*shardConn
	reg    *obs.Registry
	clock  marketing.Clock
	health *supervisor.FleetHealth

	// mu serializes mutating fan-outs and delivery days. Determinism needs
	// identical mutation order on every backend; a thin coordinator buys it
	// with a lock rather than a log. Rejoins also run under mu — a shard is
	// readmitted only at a mutation boundary.
	mu     sync.Mutex
	daySeq atomic.Uint64

	// admMu guards the admission set and the journal's structure for
	// readers (topology, snapshots). Writers additionally hold mu; lock
	// order is mu then admMu, never the reverse.
	admMu    sync.Mutex
	admitted []bool
	journal  *mutationJournal

	keyBase string
	keySeq  atomic.Uint64
}

// New builds a coordinator over the configured backends.
func New(cfg Config, reg *obs.Registry) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("coordinator: no backends configured")
	}
	if cfg.DayAttempts <= 0 {
		cfg.DayAttempts = 5
	}
	if cfg.DayBackoff <= 0 {
		cfg.DayBackoff = 2 * time.Second
	}
	if cfg.DayBackoffMax <= 0 {
		cfg.DayBackoffMax = 8 * cfg.DayBackoff
	}
	if cfg.JournalCap <= 0 {
		cfg.JournalCap = 256
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = marketing.SystemClock
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     reg,
		clock:   clock,
		keyBase: fmt.Sprintf("fk-%08x", rand.Uint32()),
	}
	for i, u := range cfg.Backends {
		cl, err := marketing.NewClient(u)
		if err != nil {
			return nil, fmt.Errorf("coordinator: backend %d: %w", i, err)
		}
		if cfg.Transport != nil {
			cl.SetTransport(cfg.Transport)
		}
		cl.SetMetrics(reg)
		c.shards = append(c.shards, &shardConn{index: i, url: u, client: cl, label: fmt.Sprintf("shard%d", i)})
	}
	c.health = supervisor.NewFleetHealth(len(c.shards), cfg.Health, reg, obs.Clock(clock))
	c.admitted = make([]bool, len(c.shards))
	for i := range c.admitted {
		c.admitted[i] = true
	}
	c.journal = newMutationJournal(cfg.JournalCap)
	return c, nil
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Backends reports the backend URLs in shard order.
func (c *Coordinator) Backends() []string {
	return append([]string(nil), c.cfg.Backends...)
}

// Health exposes the per-shard health model (the supervisor's scorekeeper).
func (c *Coordinator) Health() *supervisor.FleetHealth { return c.health }

// SetRetryPolicy applies one retry policy to every backend client.
func (c *Coordinator) SetRetryPolicy(p marketing.RetryPolicy) {
	for _, sc := range c.shards {
		sc.client.SetRetryPolicy(p)
	}
}

// mintFleetKey makes a fleet-wide idempotency key for a mutation that
// arrived without one, so every shard — including a future journal replay —
// executes the mutation under the same key.
func (c *Coordinator) mintFleetKey() string {
	return fmt.Sprintf("%s-%d", c.keyBase, c.keySeq.Add(1))
}

// --- admission -------------------------------------------------------------

// isAdmitted reports whether a shard is in the serving set.
func (c *Coordinator) isAdmitted(shard int) bool {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	return c.admitted[shard]
}

// admissionSnapshot splits the fleet into admitted conns and quarantined
// indexes.
func (c *Coordinator) admissionSnapshot() (admitted []*shardConn, quarantined []int) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	for i, sc := range c.shards {
		if c.admitted[i] {
			admitted = append(admitted, sc)
		} else {
			quarantined = append(quarantined, i)
		}
	}
	return admitted, quarantined
}

// quarantinedIdx lists the quarantined shard indexes.
func (c *Coordinator) quarantinedIdx() []int {
	_, q := c.admissionSnapshot()
	return q
}

// referenceConn is the first admitted shard — the replica the journal's
// census bootstrap and the rejoin digest gate compare against. Nil when the
// whole fleet is down.
func (c *Coordinator) referenceConn() *shardConn {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	for i, sc := range c.shards {
		if c.admitted[i] {
			return sc
		}
	}
	return nil
}

// Quarantine removes a shard from the serving set (idempotent; reports
// whether this call did the removal) and marks it down in the health model.
// CRUD keeps flowing without it — its missed mutations accumulate in the
// journal until it rejoins.
func (c *Coordinator) Quarantine(shard int) bool {
	c.admMu.Lock()
	was := c.admitted[shard]
	c.admitted[shard] = false
	c.admMu.Unlock()
	if was {
		c.health.MarkDown(shard)
		c.reg.Counter(MetricQuarantines).Inc()
	}
	return was
}

// admit returns a shard to the serving set, drains its journal entries, and
// closes its MTTR window.
func (c *Coordinator) admit(shard int) {
	c.admMu.Lock()
	c.admitted[shard] = true
	c.journal.dropShard(shard)
	c.reg.Gauge(MetricJournalDepth).Set(int64(c.journal.depth()))
	c.admMu.Unlock()
	c.health.MarkHealthy(shard)
}

// ProbeShard is the supervisor's liveness probe: one unretried GET /healthz
// against the shard.
func (c *Coordinator) ProbeShard(ctx context.Context, shard int) error {
	return c.shards[shard].client.Healthz(ctx)
}

// TryRejoin attempts the full rejoin protocol for a quarantined shard. It
// needs the fleet mutex (rejoin is a mutation-order event) but will not wait
// for it: while a delivery day holds the lock — minutes, with retries — the
// supervisor should keep probing rather than block, so a busy fleet returns
// supervisor.ErrBusy and the day's own retry preamble performs the rejoin
// inline instead.
func (c *Coordinator) TryRejoin(ctx context.Context, shard int) error {
	if c.isAdmitted(shard) {
		return nil
	}
	if !c.mu.TryLock() {
		return supervisor.ErrBusy
	}
	defer c.mu.Unlock()
	return c.rejoinLocked(ctx, shard)
}

// --- scatter ---------------------------------------------------------------

// scatterEach runs fn against the given shards with bounded concurrency and
// waits for all of them, recording per-shard request/error counts and
// latency, and feeding each outcome to the health model. The returned slice
// is indexed by shard index (full fleet width); untargeted shards stay nil.
func (c *Coordinator) scatterEach(ctx context.Context, op string, targets []*shardConn, fn func(ctx context.Context, sc *shardConn) error) []error {
	limit := c.cfg.MaxFanout
	if limit <= 0 || limit > len(targets) {
		limit = len(targets)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for _, sc := range targets {
		wg.Add(1)
		go func(sc *shardConn) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := c.clock.Now()
			err := fn(ctx, sc)
			c.reg.Histogram(MetricShardLatency + "|" + sc.label).Observe(c.clock.Now().Sub(start))
			c.reg.Counter(MetricShardRequests + "|" + sc.label).Inc()
			c.observeOutcome(sc.index, err)
			if err != nil {
				c.reg.Counter(MetricShardErrors + "|" + sc.label).Inc()
				errs[sc.index] = fmt.Errorf("coordinator: %s on %s: %w", op, sc.label, err)
			}
		}(sc)
	}
	wg.Wait()
	return errs
}

// observeOutcome feeds one RPC outcome into the health model. The scoring
// doctrine: ANY HTTP answer — success, a terminal 4xx, an injected 5xx or
// 429 — proves the process alive and resets the failure streak; only
// transport silence (connection refused, timeout, a connection dropped
// mid-body) counts toward down. This is what makes suspect-scoring
// structurally flap-free under transient injected server errors. A caller
// cancellation says nothing about the shard and is not scored.
func (c *Coordinator) observeOutcome(shard int, err error) {
	if err == nil {
		c.health.Observe(shard, true)
		return
	}
	if errors.Is(err, context.Canceled) {
		return
	}
	var apiErr *marketing.APIError
	c.health.Observe(shard, errors.As(err, &apiErr))
}

// scatter runs fn against the given shards and returns the first error in
// shard order (deterministic even when several shards fail at once).
func (c *Coordinator) scatter(ctx context.Context, op string, targets []*shardConn, fn func(ctx context.Context, sc *shardConn) error) error {
	errs := c.scatterEach(ctx, op, targets, fn)
	for _, sc := range targets {
		if errs[sc.index] != nil {
			return errs[sc.index]
		}
	}
	return nil
}

// --- replicated CRUD -------------------------------------------------------

// CreateAudience fans an audience upload out to every admitted shard and
// asserts the shards matched identically; quarantined shards catch up
// through the journal.
func (c *Coordinator) CreateAudience(ctx context.Context, inboundKey, name string, piiHashes []string) (*marketing.CreateAudienceResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := runMutation(ctx, c, mutationSpec[marketing.CreateAudienceResponse]{
		op:         "create audience",
		inboundKey: inboundKey,
		call: func(ctx context.Context, sc *shardConn) (marketing.CreateAudienceResponse, error) {
			r, err := sc.client.CreateAudience(ctx, name, piiHashes)
			if err != nil {
				return marketing.CreateAudienceResponse{}, err
			}
			return *r, nil
		},
		same: func(a, b marketing.CreateAudienceResponse) bool {
			return a.ID == b.ID && a.MatchedSize == b.MatchedSize
		},
		render: func(r marketing.CreateAudienceResponse) string { return fmt.Sprintf("%+v", r) },
		record: func(r marketing.CreateAudienceResponse) *journalEntry {
			return &journalEntry{
				kind:           entryAudience,
				audienceName:   name,
				audienceHashes: append([]string(nil), piiHashes...),
				wantID:         r.ID,
				wantMatched:    r.MatchedSize,
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateCampaign fans a campaign create out to every admitted shard.
func (c *Coordinator) CreateCampaign(ctx context.Context, inboundKey string, req marketing.CreateCampaignRequest) (*marketing.CreateCampaignResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := runMutation(ctx, c, mutationSpec[marketing.CreateCampaignResponse]{
		op:         "create campaign",
		inboundKey: inboundKey,
		call: func(ctx context.Context, sc *shardConn) (marketing.CreateCampaignResponse, error) {
			r, err := sc.client.CreateCampaign(ctx, req)
			if err != nil {
				return marketing.CreateCampaignResponse{}, err
			}
			return *r, nil
		},
		same:   func(a, b marketing.CreateCampaignResponse) bool { return a.ID == b.ID },
		render: func(r marketing.CreateCampaignResponse) string { return r.ID },
		record: func(r marketing.CreateCampaignResponse) *journalEntry {
			return &journalEntry{kind: entryCampaign, campaignReq: req, wantID: r.ID}
		},
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateAd fans an ad create out to every admitted shard. The review RNG is
// seeded identically on every backend, so the review outcome must also
// agree.
func (c *Coordinator) CreateAd(ctx context.Context, inboundKey string, req marketing.CreateAdRequest) (*marketing.AdResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := runMutation(ctx, c, mutationSpec[marketing.AdResponse]{
		op:         "create ad",
		inboundKey: inboundKey,
		call: func(ctx context.Context, sc *shardConn) (marketing.AdResponse, error) {
			r, err := sc.client.CreateAd(ctx, req)
			if err != nil {
				return marketing.AdResponse{}, err
			}
			return *r, nil
		},
		same: func(a, b marketing.AdResponse) bool {
			return a.ID == b.ID && a.Status == b.Status
		},
		render: func(r marketing.AdResponse) string { return fmt.Sprintf("%+v", r) },
		record: func(r marketing.AdResponse) *journalEntry {
			return &journalEntry{kind: entryAd, adReq: req, wantID: r.ID, wantStatus: r.Status}
		},
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// AppealAd fans an appeal out to every admitted shard.
func (c *Coordinator) AppealAd(ctx context.Context, inboundKey, adID string) (*marketing.AdResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := runMutation(ctx, c, mutationSpec[marketing.AdResponse]{
		op:         "appeal ad",
		inboundKey: inboundKey,
		call: func(ctx context.Context, sc *shardConn) (marketing.AdResponse, error) {
			r, err := sc.client.AppealAd(ctx, adID)
			if err != nil {
				return marketing.AdResponse{}, err
			}
			return *r, nil
		},
		same:   func(a, b marketing.AdResponse) bool { return a.Status == b.Status },
		render: func(r marketing.AdResponse) string { return r.Status },
		record: func(r marketing.AdResponse) *journalEntry {
			return &journalEntry{kind: entryAppeal, appealAdID: adID, wantStatus: r.Status}
		},
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetAd reads an ad's status from the first admitted shard that answers, in
// shard order (reads need no quorum: shards are replicas of the CRUD state).
func (c *Coordinator) GetAd(ctx context.Context, adID string) (*marketing.AdResponse, error) {
	var lastErr error
	asked := 0
	for _, sc := range c.shards {
		if !c.isAdmitted(sc.index) {
			continue
		}
		asked++
		resp, err := sc.client.GetAd(ctx, adID)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !marketing.Retryable(err) {
			break // a terminal answer (404, validation) is the answer
		}
	}
	if asked == 0 {
		return nil, fmt.Errorf("coordinator: get ad %s: no admitted shards: %w", adID, ErrShardDown)
	}
	return nil, lastErr
}

// Insights fans the insights read out to every shard and merges: counts sum
// (shards own disjoint users, so impressions, reach, clicks, and every
// breakdown cell add), while SpendCents — written identically to all shards
// at day finish — must agree to the bit and passes through.
//
// Unlike the replicated CRUD state, delivery counts are PARTITIONED: each
// shard's slice exists nowhere else, so insights cannot be served while any
// shard is quarantined — the merge would silently under-count. Callers get
// a typed retryable error until the fleet heals.
func (c *Coordinator) Insights(ctx context.Context, adID string, dims []string) (*marketing.InsightsResponse, error) {
	if q := c.quarantinedIdx(); len(q) > 0 {
		return nil, fmt.Errorf("coordinator: insights for %s need the full fleet, shards %v quarantined: %w", adID, q, ErrShardDown)
	}
	out := make([]*marketing.InsightsResponse, len(c.shards))
	err := c.scatter(ctx, "insights", c.shards, func(ctx context.Context, sc *shardConn) error {
		var resp *marketing.InsightsResponse
		var err error
		if len(dims) == 0 {
			resp, err = sc.client.Insights(ctx, adID)
		} else {
			resp, err = sc.client.InsightsBreakdown(ctx, adID, dims...)
		}
		if err != nil {
			return err
		}
		out[sc.index] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := mergeInsights(c.shards, out)
	if err != nil {
		return nil, err
	}
	// Merge-then-privatize: suppression thresholds and noise apply to the
	// fleet-wide report, never to partition slices. This is the only point
	// in the fleet where the logical report exists, so it is the only point
	// where privatizing it matches the single-process engine byte for byte.
	return marketing.PrivatizeInsights(c.cfg.Privacy, merged), nil
}

// mergeInsights folds per-shard delivery reports into the fleet-wide one.
// Shard responses must be raw: a pre-privatized part means a misconfigured
// shard (suppression on a partition slice, noise stacked per shard) and is
// reported as a divergence rather than silently merged.
func mergeInsights(shards []*shardConn, parts []*marketing.InsightsResponse) (*marketing.InsightsResponse, error) {
	m := &marketing.InsightsResponse{AdID: parts[0].AdID, SpendCents: parts[0].SpendCents}
	cells := map[marketing.BreakdownRow]int{}
	for i, part := range parts {
		if part.Privacy != nil {
			return nil, divergence("insights privatized by shard", shards[i],
				part.Privacy.Level, "raw")
		}
		if part.SpendCents != m.SpendCents {
			return nil, divergence("insights spend", shards[i],
				fmt.Sprintf("%v", part.SpendCents), fmt.Sprintf("%v", m.SpendCents))
		}
		m.Impressions += part.Impressions
		m.Reach += part.Reach
		m.Clicks += part.Clicks
		for _, row := range part.Breakdown {
			key := row
			key.Impressions = 0
			cells[key] += row.Impressions
		}
		if len(part.Hourly) > 0 {
			if m.Hourly == nil {
				m.Hourly = make([]int, len(part.Hourly))
			}
			if len(part.Hourly) != len(m.Hourly) {
				return nil, divergence("insights hourly length", shards[i],
					fmt.Sprintf("%d", len(part.Hourly)), fmt.Sprintf("%d", len(m.Hourly)))
			}
			for t, v := range part.Hourly {
				m.Hourly[t] += v
			}
		}
	}
	for key, n := range cells {
		key.Impressions = n
		m.Breakdown = append(m.Breakdown, key)
	}
	sort.Slice(m.Breakdown, func(i, j int) bool {
		a, b := m.Breakdown[i], m.Breakdown[j]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		if a.Gender != b.Gender {
			return a.Gender < b.Gender
		}
		return a.Region < b.Region
	})
	return m, nil
}

// Inventory fans the object census out to every admitted shard and asserts
// they agree — the cheap convergence check the multi-process smoke test
// leans on. (CRUD state is replicated, so any admitted subset answers for
// the fleet; quarantined shards are behind by exactly the journal.)
func (c *Coordinator) Inventory(ctx context.Context) (*platform.Inventory, error) {
	admitted, _ := c.admissionSnapshot()
	if len(admitted) == 0 {
		return nil, fmt.Errorf("coordinator: inventory: no admitted shards: %w", ErrShardDown)
	}
	out := make([]*platform.Inventory, len(c.shards))
	err := c.scatter(ctx, "inventory", admitted, func(ctx context.Context, sc *shardConn) error {
		inv, err := sc.client.Inventory(ctx)
		if err != nil {
			return err
		}
		out[sc.index] = inv
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ref *platform.Inventory
	for _, sc := range admitted {
		inv := out[sc.index]
		if ref == nil {
			ref = inv
			continue
		}
		if inv.Audiences != ref.Audiences || inv.Campaigns != ref.Campaigns ||
			inv.Ads != ref.Ads || strings.Join(inv.CampaignNames, ",") != strings.Join(ref.CampaignNames, ",") {
			return nil, divergence("inventory", sc, fmt.Sprintf("%+v", *inv), fmt.Sprintf("%+v", *ref))
		}
	}
	return ref, nil
}

// divergence builds the error for shards that disagree on what must be
// replicated state. It is not retryable by design: divergence means a
// backend executed a mutation the others did not (or runs different code /
// a different world seed) and needs operator attention, not a retry.
func divergence(what string, sc *shardConn, got, want string) error {
	return fmt.Errorf("coordinator: %s diverged on %s (%s): got %s, want %s (reference)", what, sc.label, sc.url, got, want)
}
