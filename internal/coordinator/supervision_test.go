package coordinator

// Supervision-layer tests over real HTTP: quarantine, journal catch-up,
// digest-gated rejoin, journal overflow, the typed degradation errors, and
// the no-flap property under injected 5xx — the failure paths PR 7 owns.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/supervisor"
)

// downGate simulates a shard process death at the HTTP layer: while down,
// every request aborts the connection mid-handshake — the client observes
// transport silence (EOF), never an HTTP status, exactly like a SIGKILLed
// process. Reviving it models a relaunched shard that recovered its durable
// state from the WAL (the httptest backend's platform state was never lost;
// what a real restart loses — the in-memory delivery session and the
// idempotency cache — is covered by the journal's applied-probe design and
// cmd/adchaos's real-process soak).
type downGate struct {
	mu   sync.Mutex
	down bool
}

func (g *downGate) set(down bool) {
	g.mu.Lock()
	g.down = down
	g.mu.Unlock()
}

func (g *downGate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		down := g.down
		g.mu.Unlock()
		if down {
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// newFleetCfg is newFleet with a Config hook for supervision knobs.
func newFleetCfg(t *testing.T, n int, wrap map[int]func(http.Handler) http.Handler, mod func(*Config)) (*Coordinator, *marketing.Client, string) {
	t.Helper()
	backends := make([]string, n)
	for i := range backends {
		backends[i] = newBackend(t, wrap[i])
	}
	reg := obs.NewRegistry()
	cfg := Config{Backends: backends, DayBackoff: time.Millisecond, DayBackoffMax: 4 * time.Millisecond}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	router, err := NewRouter(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	return coord, client, ts.URL
}

// stepUntilDown drives supervisor passes until the shard is quarantined.
func stepUntilDown(t *testing.T, sup *supervisor.Supervisor, coord *Coordinator, shard int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		sup.Step(ctx)
		if !coord.isAdmitted(shard) {
			return
		}
	}
	t.Fatalf("shard %d never quarantined (state %v)", shard, coord.Health().State(shard))
}

// The tentpole end to end: a shard dies, the supervisor quarantines it, CRUD
// keeps flowing (journaled), insights degrade with a typed 503, the shard
// comes back, rejoin replays the journal gap and passes the digest gate, and
// a delivery day over the healed fleet is byte-identical to an undisturbed
// fleet's.
func TestShardResurrectionWithJournalCatchup(t *testing.T) {
	const nAds = 2
	const seed = 9600
	ctx := context.Background()

	// Undisturbed reference fleet: same call sequence, no outage.
	_, refClient, _ := newFleetCfg(t, 2, nil, nil)
	refIDs := setupAccount(t, refClient, nAds)
	if err := refClient.Deliver(ctx, refIDs, seed-1); err != nil {
		t.Fatal(err)
	}
	refAud, err := refClient.CreateAudience(ctx, "out-aud", worldHash[:500])
	if err != nil {
		t.Fatal(err)
	}
	refCmp, err := refClient.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "out-cmp", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatal(err)
	}
	refNew := createAdSet(t, refClient, refCmp.ID, refAud.ID, 2)
	refIDs = append(refIDs, refNew...)
	// Delivery is one-shot per ad: the second day runs only the ads the
	// first day did not consume.
	if err := refClient.Deliver(ctx, refNew, seed); err != nil {
		t.Fatal(err)
	}
	want := insightsDigest(t, refClient, refIDs)

	// Disturbed fleet: shard 1 dies after account setup.
	gate := &downGate{}
	coord, client, _ := newFleetCfg(t, 2, map[int]func(http.Handler) http.Handler{1: gate.wrap}, nil)
	reg := coord.reg
	sup := supervisor.New(coord, nil, supervisor.Config{ProbeTimeout: time.Second}, reg)
	ids := setupAccount(t, client, nAds)
	// Commit a day BEFORE the outage: a coordinated day leaves each shard
	// with the tallies of its own user partition — divergent by design —
	// which the rejoin digest gate must ignore (it hashes only the
	// replicated account surface, or no shard could ever rejoin after a
	// fleet's first committed day).
	if err := client.Deliver(ctx, ids, seed-1); err != nil {
		t.Fatal(err)
	}

	gate.set(true)
	stepUntilDown(t, sup, coord, 1)
	if got := coord.Health().State(1); got != supervisor.Down {
		t.Fatalf("dead shard state %v, want down", got)
	}

	// CRUD keeps flowing against the journal: a full audience + campaign +
	// 2 ads land while shard 1 is a corpse.
	aud, err := client.CreateAudience(ctx, "out-aud", worldHash[:500])
	if err != nil {
		t.Fatalf("audience create during outage: %v", err)
	}
	cmp, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "out-cmp", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatalf("campaign create during outage: %v", err)
	}
	outageIDs := createAdSet(t, client, cmp.ID, aud.ID, 2)
	ids = append(ids, outageIDs...)
	snap := reg.Snapshot()
	if got := snap.Counters[MetricJournalAppends]; got != 4 {
		t.Errorf("journal appends during outage = %d, want 4", got)
	}
	if got := snap.Gauges[MetricJournalDepth]; got != 4 {
		t.Errorf("journal depth during outage = %d, want 4", got)
	}

	// Reads stay up off the admitted shard; partitioned insights degrade
	// with the typed 503.
	if ad, err := client.GetAd(ctx, outageIDs[0]); err != nil || ad.Status != "ACTIVE" {
		t.Fatalf("GetAd during outage: %+v, %v", ad, err)
	}
	if _, err := client.Insights(ctx, ids[0]); err == nil {
		t.Fatal("insights during outage: want 503")
	} else {
		var apiErr *marketing.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("insights during outage: %v, want 503", err)
		}
	}

	// Resurrection: the shard answers again; one supervisor pass marks it
	// recovering and walks it through replay + digest gate back to admitted.
	gate.set(false)
	sup.Step(ctx)
	if !coord.isAdmitted(1) {
		t.Fatalf("revived shard not readmitted (state %v)", coord.Health().State(1))
	}
	if got := coord.Health().State(1); got != supervisor.Healthy {
		t.Fatalf("revived shard state %v, want healthy", got)
	}
	snap = reg.Snapshot()
	if got := snap.Counters[MetricJournalReplayed]; got != 4 {
		t.Errorf("journal entries replayed = %d, want 4 (zero acked writes lost)", got)
	}
	if got := snap.Gauges[MetricJournalDepth]; got != 0 {
		t.Errorf("journal depth after rejoin = %d, want 0", got)
	}
	if snap.Counters[MetricRejoins] < 1 {
		t.Errorf("rejoin counter = %d, want >= 1", snap.Counters[MetricRejoins])
	}
	if snap.Histograms[MetricJournalReplayLatency].Count == 0 {
		t.Errorf("journal replay latency never observed")
	}
	if snap.Histograms["supervisor.mttr"].Count == 0 {
		t.Errorf("MTTR never observed")
	}

	// Cross-shard convergence and determinism: the healed fleet's inventory
	// agrees, and a day over it is byte-identical to the undisturbed fleet.
	inv, err := coord.Inventory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Ads != 4 || inv.Audiences != 2 || inv.Campaigns != 2 {
		t.Fatalf("healed inventory %+v", inv)
	}
	if err := client.Deliver(ctx, outageIDs, seed); err != nil {
		t.Fatal(err)
	}
	if got := insightsDigest(t, client, ids); got != want {
		t.Errorf("healed-fleet day diverged from undisturbed fleet:\n got %s\nwant %s", got, want)
	}
}

// Journal overflow: with the journal at capacity during an outage, new
// mutations are refused with 503 + Retry-After — and the SAME idempotent
// request succeeds cleanly after the fleet heals (the refusal happens before
// any shard executes, so there is no half-applied state to reconcile).
func TestJournalOverflow503ComposesWithRetry(t *testing.T) {
	ctx := context.Background()
	gate := &downGate{}
	coord, client, routerURL := newFleetCfg(t, 2,
		map[int]func(http.Handler) http.Handler{1: gate.wrap},
		func(cfg *Config) { cfg.JournalCap = 1 })
	sup := supervisor.New(coord, nil, supervisor.Config{ProbeTimeout: time.Second}, coord.reg)
	setupAccount(t, client, 1)

	gate.set(true)
	stepUntilDown(t, sup, coord, 1)

	// First mutation journals; the journal is now full.
	if _, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "fits", Objective: "TRAFFIC"}); err != nil {
		t.Fatalf("first outage mutation: %v", err)
	}

	// Second mutation overflows: raw POST to inspect status and headers.
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, routerURL+"/v1/campaigns",
			strings.NewReader(`{"name":"overflows","objective":"TRAFFIC"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(marketing.IdempotencyKeyHeader, "overflow-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overflow response missing Retry-After")
	}
	if got := coord.reg.Snapshot().Counters[MetricJournalRejects]; got < 1 {
		t.Errorf("journal reject counter = %d, want >= 1", got)
	}

	// Heal, then the client's idempotent retry (same key) goes through.
	gate.set(false)
	sup.Step(ctx)
	if !coord.isAdmitted(1) {
		t.Fatalf("shard not readmitted after heal")
	}
	resp = post()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-heal retry status %d, want 201", resp.StatusCode)
	}
	inv, err := coord.Inventory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Campaigns != 3 {
		t.Fatalf("campaigns after heal = %d, want 3 (no double-apply)", inv.Campaigns)
	}
}

// A delivery day that exhausts its attempt budget fails with the typed
// ErrDayExhausted (503 + Retry-After at the router), and the retry counter
// reflects the bounded loop.
func TestDeliverExhaustionTyped(t *testing.T) {
	ctx := context.Background()
	// Every tick on shard 1 answers 409 forever: each attempt aborts and
	// re-runs until the budget runs out.
	gate := &faultGate{tickFails: 1 << 20}
	coord, client, _ := newFleetCfg(t, 2,
		map[int]func(http.Handler) http.Handler{1: gate.wrap},
		func(cfg *Config) { cfg.DayAttempts = 3 })
	ids := setupAccount(t, client, 1)

	err := coord.Deliver(ctx, ids, 9700)
	if !errors.Is(err, ErrDayExhausted) {
		t.Fatalf("exhausted day error = %v, want ErrDayExhausted", err)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters[MetricDayRetries]; got != 2 {
		t.Errorf("day retries = %d, want 2 (3 attempts)", got)
	}
	// The router maps it to a degradation 503.
	if err := client.Deliver(ctx, ids, 9700); err == nil {
		t.Fatal("router deliver after exhaustion: want error")
	} else {
		var apiErr *marketing.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("router deliver error %v, want 503", err)
		}
	}
}

// Satellite: suspect-scoring must not flap under transient injected 5xx.
// With a client-side fault transport injecting server errors on a third of
// RPCs, CRUD converges through retries and the health model never leaves
// healthy — an error answer is an answer.
func TestNoFlapUnderInjected5xx(t *testing.T) {
	inj, err := faults.New(faults.Config{Seed: 31, Rate: 0.33, Kinds: []faults.Kind{faults.KindReject5xx}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, client, _ := newFleetCfg(t, 2, nil, func(cfg *Config) {
		cfg.Transport = faults.NewTransport(nil, inj, nil)
	})
	// Generous retries: a third of calls are injected 5xx.
	coord.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	client.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	sup := supervisor.New(coord, nil, supervisor.Config{ProbeTimeout: time.Second}, coord.reg)

	ctx := context.Background()
	ids := setupAccount(t, client, 2)
	for i := 0; i < 5; i++ {
		sup.Step(ctx)
		if _, err := client.GetAd(ctx, ids[0]); err != nil {
			t.Fatalf("GetAd under injection: %v", err)
		}
	}
	if _, err := coord.Inventory(ctx); err != nil {
		t.Fatalf("inventory under injection: %v", err)
	}
	for shard, st := range coord.Health().States() {
		if st != supervisor.Healthy {
			t.Errorf("shard %d state %v under injected 5xx, want healthy (no flap)", shard, st)
		}
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["supervisor.transitions|suspect"]; got != 0 {
		t.Errorf("suspect transitions under injected 5xx = %d, want 0", got)
	}
	if got := inj.Metrics().Snapshot().Counters[faults.MetricInjected]; got == 0 {
		t.Errorf("fault injection never fired — the test proves nothing")
	}
}

// PR 6 error paths: aborting a day session that was never begun is a clean
// no-op over the wire, and dayStatus probes report an unreachable
// (mid-recovery) shard as pending rather than erroring the day.
func TestDayErrorPaths(t *testing.T) {
	ctx := context.Background()
	gate := &downGate{}
	coord, client, _ := newFleetCfg(t, 2, map[int]func(http.Handler) http.Handler{1: gate.wrap}, nil)
	ids := setupAccount(t, client, 1)

	// AbortDay against shards that never saw BeginDaySession: 200 no-op.
	for _, sc := range coord.shards {
		if err := sc.client.AbortDay(ctx, "never-begun"); err != nil {
			t.Fatalf("abort of never-begun session on %s: %v", sc.label, err)
		}
	}

	// A committed day reads as committed...
	if err := client.Deliver(ctx, ids, 9800); err != nil {
		t.Fatal(err)
	}
	committed, pending, err := coord.dayStatus(ctx, ids, 2)
	if err != nil || !committed || len(pending) != 0 {
		t.Fatalf("dayStatus on committed day = (%v, %v, %v)", committed, pending, err)
	}
	// ...and with shard 1 unreachable mid-recovery, the probe reports it
	// pending instead of failing.
	gate.set(true)
	committed, pending, err = coord.dayStatus(ctx, ids, 2)
	if err != nil {
		t.Fatalf("dayStatus with unreachable shard: %v", err)
	}
	if committed || len(pending) != 1 || pending[0] != 1 {
		t.Fatalf("dayStatus with unreachable shard = (%v, %v)", committed, pending)
	}
}
