package coordinator

// Router metric names. Per-shard metrics use the registry's "name|label"
// convention — constant metric name, shard label after the separator — so
// cardinality stays fixed at the (small, static) shard count.
const (
	// MetricShardRequests counts backend calls, labeled per shard.
	MetricShardRequests = "router.shard.requests"
	// MetricShardErrors counts failed backend calls, labeled per shard.
	MetricShardErrors = "router.shard.errors"
	// MetricShardLatency is the per-call backend latency, labeled per shard.
	MetricShardLatency = "router.shard.latency"
	// MetricDays counts coordinated delivery days that committed.
	MetricDays = "router.delivery.days"
	// MetricDayRestarts counts delivery-day attempts that were abandoned and
	// re-run after a shard failure.
	MetricDayRestarts = "router.delivery.restarts"
	// MetricDayTicks counts committed coordinated ticks.
	MetricDayTicks = "router.delivery.ticks"
	// MetricDayLatency is the wall time of whole coordinated days.
	MetricDayLatency = "router.delivery.day"
	// MetricDayRetries counts delivery-day retry attempts (the bounded,
	// jittered loop in Deliver; equals restarts today, kept as the stable
	// operator-facing name).
	MetricDayRetries = "router.delivery.day_retries"

	// MetricQuarantines counts shards removed from the serving set.
	MetricQuarantines = "router.quarantines"
	// MetricRejoins counts shards readmitted through the rejoin protocol.
	MetricRejoins = "router.rejoins"
	// MetricRejoinFailures counts rejoin attempts that failed a handshake,
	// replay, or the digest gate.
	MetricRejoinFailures = "router.rejoin_failures"
	// MetricRejoinUnverified counts readmissions with no admitted reference
	// left to digest against (first shard back after a whole-fleet outage).
	MetricRejoinUnverified = "router.rejoin_unverified"

	// MetricJournalDepth gauges queued catch-up entries.
	MetricJournalDepth = "router.journal.depth"
	// MetricJournalAppends counts mutations journaled for down shards.
	MetricJournalAppends = "router.journal.appends"
	// MetricJournalRejects counts mutations refused because the journal was
	// full (surfaced as 503 + Retry-After).
	MetricJournalRejects = "router.journal.rejects"
	// MetricJournalReplayed / MetricJournalSkipped count catch-up entries
	// executed vs. probe-skipped (already applied pre-crash) during rejoin.
	MetricJournalReplayed = "router.journal.replayed"
	MetricJournalSkipped  = "router.journal.skipped"
	// MetricJournalReplayLatency is the journal catch-up time per rejoin.
	MetricJournalReplayLatency = "router.journal.replay"
)
