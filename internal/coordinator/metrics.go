package coordinator

// Router metric names. Per-shard metrics use the registry's "name|label"
// convention — constant metric name, shard label after the separator — so
// cardinality stays fixed at the (small, static) shard count.
const (
	// MetricShardRequests counts backend calls, labeled per shard.
	MetricShardRequests = "router.shard.requests"
	// MetricShardErrors counts failed backend calls, labeled per shard.
	MetricShardErrors = "router.shard.errors"
	// MetricShardLatency is the per-call backend latency, labeled per shard.
	MetricShardLatency = "router.shard.latency"
	// MetricDays counts coordinated delivery days that committed.
	MetricDays = "router.delivery.days"
	// MetricDayRestarts counts delivery-day attempts that were abandoned and
	// re-run after a shard failure.
	MetricDayRestarts = "router.delivery.restarts"
	// MetricDayTicks counts committed coordinated ticks.
	MetricDayTicks = "router.delivery.ticks"
	// MetricDayLatency is the wall time of whole coordinated days.
	MetricDayLatency = "router.delivery.day"
)
