package coordinator

// The router's HTTP surface: the same advertiser-facing API the marketing
// server exposes, plus operator routes (topology, inventory, metrics), so
// audit tooling points at a router exactly as it would at a single backend.
// Mutating routes carry the same resilience chain as the marketing server —
// instrumentation, load shedding, idempotency replay, panic recovery,
// timeouts, body limits — reusing the obs middleware and the marketing
// package's exported idempotency cache.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
)

// TopologyResponse describes the fleet behind the router, including each
// shard's health state and whether it is currently admitted to the fan-out.
type TopologyResponse struct {
	Shards   int      `json:"shards"`
	Backends []string `json:"backends"`
	Health   []string `json:"health,omitempty"`
	Admitted []bool   `json:"admitted,omitempty"`
}

// deliverTimeout caps a coordinated delivery day's wall time, separately
// from the ordinary request timeout: a day is hundreds of fan-out RPCs plus
// potential whole-day restarts after a shard crash.
const deliverTimeout = 15 * time.Minute

// Router serves the advertiser API over a Coordinator.
type Router struct {
	c      *Coordinator
	reg    *obs.Registry
	limits marketing.ServerLimits
	idem   *marketing.IdempotencyCache
}

// NewRouter wraps a coordinator in the HTTP API, instrumenting into the
// given registry (nil for a private one).
func NewRouter(c *Coordinator, reg *obs.Registry) (*Router, error) {
	if c == nil {
		return nil, fmt.Errorf("coordinator: nil coordinator")
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Router{c: c, reg: reg, limits: marketing.DefaultServerLimits(), idem: marketing.NewIdempotencyCache()}, nil
}

// Metrics returns the router's metrics registry.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Handler returns the routing table with the full resilience chain, mirror
// of the marketing server's (see marketing.Server.Handler for the ordering
// rationale).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, timeout time.Duration, fn http.HandlerFunc) {
		var h http.Handler = fn
		h = obs.BodyLimit(rt.limits.MaxBodyBytes, h)
		h = obs.Timeout(rt.reg, timeout, h)
		h = obs.Recover(rt.reg, h)
		if strings.HasPrefix(pattern, "POST ") {
			h = rt.idem.Middleware(rt.reg, h)
		}
		h = obs.LoadShed(rt.reg, rt.limits.MaxInFlight, h)
		mux.Handle(pattern, obs.Instrument(rt.reg, pattern, h))
	}
	handle("POST /v1/customaudiences", rt.limits.RequestTimeout, rt.handleCreateAudience)
	handle("POST /v1/campaigns", rt.limits.RequestTimeout, rt.handleCreateCampaign)
	handle("POST /v1/ads", rt.limits.RequestTimeout, rt.handleCreateAd)
	handle("POST /v1/ads/{id}/appeal", rt.limits.RequestTimeout, rt.handleAppeal)
	handle("GET /v1/ads/{id}", rt.limits.RequestTimeout, rt.handleGetAd)
	handle("POST /v1/deliver", deliverTimeout, rt.handleDeliver)
	handle("GET /v1/insights", rt.limits.RequestTimeout, rt.handleInsights)
	mux.Handle("GET /metrics", obs.MetricsHandler(rt.reg))
	mux.Handle("GET /healthz", obs.HealthzHandler(rt.reg))
	mux.HandleFunc("GET /v1/topology", rt.handleTopology)
	mux.HandleFunc("GET /debug/inventory", rt.handleInventory)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// degradedRetryAfter is the Retry-After hint for fleet-degradation 503s:
// roughly one supervisor probe/rejoin cycle, so a well-behaved client's next
// idempotent retry lands after the fleet had a chance to heal.
const degradedRetryAfter = "2"

// writeRouterError maps a coordinator error onto the wire. Backend API
// answers pass through with their own status (the router adds nothing to a
// 400/404/409); fleet-degradation errors — a quarantined shard, a full
// catch-up journal, an exhausted day budget — are 503 + Retry-After, the
// "try again after the fleet heals" contract idempotent clients compose
// with; everything else — transport failures, open breakers, divergence —
// is the router's own 502.
func writeRouterError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrShardDown) || errors.Is(err, ErrJournalFull) || errors.Is(err, ErrDayExhausted) {
		w.Header().Set("Retry-After", degradedRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, marketing.ErrorResponse{Error: err.Error()})
		return
	}
	code := http.StatusBadGateway
	var apiErr *marketing.APIError
	if errors.As(err, &apiErr) {
		code = apiErr.StatusCode
	}
	writeJSON(w, code, marketing.ErrorResponse{Error: err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				marketing.ErrorResponse{Error: fmt.Sprintf("coordinator: request body exceeds %d bytes", tooBig.Limit)})
			return v, false
		}
		writeJSON(w, http.StatusBadRequest,
			marketing.ErrorResponse{Error: fmt.Sprintf("coordinator: malformed request: %v", err)})
		return v, false
	}
	return v, true
}

// inboundKey extracts the caller's idempotency key for fan-out forwarding.
func inboundKey(r *http.Request) string {
	return r.Header.Get(marketing.IdempotencyKeyHeader)
}

func (rt *Router) handleCreateAudience(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[marketing.CreateAudienceRequest](w, r)
	if !ok {
		return
	}
	resp, err := rt.c.CreateAudience(r.Context(), inboundKey(r), req.Name, req.PIIHashes)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (rt *Router) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[marketing.CreateCampaignRequest](w, r)
	if !ok {
		return
	}
	resp, err := rt.c.CreateCampaign(r.Context(), inboundKey(r), req)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (rt *Router) handleCreateAd(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[marketing.CreateAdRequest](w, r)
	if !ok {
		return
	}
	resp, err := rt.c.CreateAd(r.Context(), inboundKey(r), req)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (rt *Router) handleAppeal(w http.ResponseWriter, r *http.Request) {
	resp, err := rt.c.AppealAd(r.Context(), inboundKey(r), r.PathValue("id"))
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleGetAd(w http.ResponseWriter, r *http.Request) {
	resp, err := rt.c.GetAd(r.Context(), r.PathValue("id"))
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleDeliver(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[marketing.DeliverRequest](w, r)
	if !ok {
		return
	}
	// The fleet topology fixes the shard count; a mismatched explicit
	// worker count would silently deliver a different (equally valid but
	// different-stream) day than the caller expects.
	if req.Workers != 0 && req.Workers != rt.c.Shards() {
		writeJSON(w, http.StatusBadRequest, marketing.ErrorResponse{
			Error: fmt.Sprintf("coordinator: workers=%d conflicts with the %d-shard topology (omit workers or match it)", req.Workers, rt.c.Shards()),
		})
		return
	}
	if err := rt.c.Deliver(r.Context(), req.AdIDs, req.Seed); err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, marketing.DeliverResponse{Delivered: len(req.AdIDs)})
}

func (rt *Router) handleInsights(w http.ResponseWriter, r *http.Request) {
	adID := r.URL.Query().Get("ad_id")
	if adID == "" {
		writeJSON(w, http.StatusBadRequest, marketing.ErrorResponse{Error: "coordinator: ad_id query parameter required"})
		return
	}
	var dims []string
	if raw := r.URL.Query().Get("breakdown"); raw != "" {
		dims = strings.Split(raw, ",")
	}
	resp, err := rt.c.Insights(r.Context(), adID, dims)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleTopology(w http.ResponseWriter, _ *http.Request) {
	states := rt.c.Health().States()
	health := make([]string, len(states))
	admitted := make([]bool, len(states))
	for i, st := range states {
		health[i] = st.String()
		admitted[i] = rt.c.isAdmitted(i)
	}
	writeJSON(w, http.StatusOK, TopologyResponse{
		Shards:   rt.c.Shards(),
		Backends: rt.c.Backends(),
		Health:   health,
		Admitted: admitted,
	})
}

func (rt *Router) handleInventory(w http.ResponseWriter, r *http.Request) {
	inv, err := rt.c.Inventory(r.Context())
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inv)
}
