package coordinator

// End-to-end tests over real HTTP: a fleet of marketing servers (each a full
// platform instance, exactly what cmd/adplatform serves) behind the router.
// The determinism claims proved in-process by internal/platform's
// delivery_session tests are re-proved here across the wire, plus the
// failure paths only the coordinator owns: whole-day restart after a shard
// crash and partial-commit replay after a failed finish fan-out.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// The shared world: every backend (and the in-process reference) holds the
// same population and behavior model, like shard processes launched with the
// same -seed. Built once — world generation and model training dominate test
// time.
var (
	worldOnce sync.Once
	worldPop  *population.Population
	worldBeh  *population.Behavior
	worldHash []string
)

func world(t *testing.T) {
	t.Helper()
	worldOnce.Do(func() {
		flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 701)
		flCfg.NumVoters = 6000
		fl, err := voter.Generate(flCfg)
		if err != nil {
			panic(err)
		}
		pop, err := population.Build(population.Config{Seed: 702}, fl)
		if err != nil {
			panic(err)
		}
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		hashes := make([]string, 0, 2000)
		for i := range fl.Records[:2000] {
			r := &fl.Records[i]
			hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
		}
		worldPop, worldBeh, worldHash = pop, behave, hashes
	})
}

func newPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	world(t)
	cfg := platform.DefaultConfig(703)
	cfg.Training.LogRows = 2500
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, worldPop, worldBeh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// newBackend serves one full platform over HTTP, optionally wrapped in a
// fault middleware (nil for none).
func newBackend(t *testing.T, wrap func(http.Handler) http.Handler) string {
	t.Helper()
	srv, err := marketing.NewServer(newPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// newFleet stands up n shard backends, the coordinator, and the router's
// HTTP server, returning an API client pointed at the router.
func newFleet(t *testing.T, n int, wrap map[int]func(http.Handler) http.Handler) (*Coordinator, *marketing.Client) {
	t.Helper()
	backends := make([]string, n)
	for i := range backends {
		backends[i] = newBackend(t, wrap[i])
	}
	reg := obs.NewRegistry()
	coord, err := New(Config{Backends: backends, DayBackoff: time.Millisecond}, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Fast client retries: the failure tests exhaust attempt budgets on
	// purpose and must not sleep through real backoffs.
	coord.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	router, err := NewRouter(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	return coord, client
}

// setupAccount uploads the audience, creates a campaign, and creates nAds
// identically-specced ads through the given API client (router or direct
// backend — same call sequence, so ID allocation stays aligned).
func setupAccount(t *testing.T, client *marketing.Client, nAds int) []string {
	t.Helper()
	ctx := context.Background()
	ca, err := client.CreateAudience(ctx, "e2e-aud", worldHash)
	if err != nil {
		t.Fatal(err)
	}
	if ca.MatchedSize == 0 {
		t.Fatal("audience matched no users")
	}
	cmp, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "e2e-cmp", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatal(err)
	}
	return createAdSet(t, client, cmp.ID, ca.ID, nAds)
}

// createAdSet creates nAds ads with deterministic per-index specs on an
// existing campaign/audience.
func createAdSet(t *testing.T, client *marketing.Client, campaignID, audienceID string, nAds int) []string {
	t.Helper()
	ctx := context.Background()
	genders := []demo.Gender{demo.GenderFemale, demo.GenderMale}
	races := []demo.Race{demo.RaceBlack, demo.RaceWhite}
	ids := make([]string, 0, nAds)
	for i := 0; i < nAds; i++ {
		img := image.FromProfile(demo.Profile{
			Gender: genders[i%2],
			Race:   races[(i/2)%2],
			Age:    demo.ImpliedAdult,
		})
		ad, err := client.CreateAd(ctx, marketing.CreateAdRequest{
			CampaignID: campaignID,
			Creative: marketing.WireCreative{
				Image:    marketing.WireImageFrom(img),
				Headline: fmt.Sprintf("e2e-ad-%d", i),
				LinkURL:  "https://example.test/offer",
			},
			Targeting:        marketing.WireTargeting{CustomAudienceIDs: []string{audienceID}},
			DailyBudgetCents: 200 + 50*i,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ad.Status != "ACTIVE" {
			t.Fatalf("ad %d status %q", i, ad.Status)
		}
		ids = append(ids, ad.ID)
	}
	return ids
}

// insightsDigest hashes the full wire-level delivery report of every ad —
// the plain insights response plus the full age×gender×region breakdown —
// with ad IDs normalized to their index so runs with different allocation
// histories stay comparable.
func insightsDigest(t *testing.T, client *marketing.Client, ids []string) string {
	t.Helper()
	ctx := context.Background()
	type adReport struct {
		Full  *marketing.InsightsResponse `json:"full"`
		Cells *marketing.InsightsResponse `json:"cells"`
	}
	reports := make([]adReport, 0, len(ids))
	for i, id := range ids {
		full, err := client.Insights(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := client.InsightsBreakdown(ctx, id, "age", "gender", "region")
		if err != nil {
			t.Fatal(err)
		}
		full.AdID = fmt.Sprintf("ad#%d", i)
		cells.AdID = full.AdID
		reports = append(reports, adReport{Full: full, Cells: cells})
	}
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestRouterMatchesSingleProcess is the cross-process determinism claim over
// real HTTP: for 1, 2, and 4 shards, a router-coordinated delivery day
// produces, through the same wire-level insights surface, exactly what one
// adplatform process produces with the in-process engine at the same worker
// count. The 1-shard case pins the router to the sequential oracle (and
// thereby to the historical goldens, which the platform tests tie to that
// engine).
func TestRouterMatchesSingleProcess(t *testing.T) {
	const nAds = 3
	const seed = 9100
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			refURL := newBackend(t, nil)
			refClient, err := marketing.NewClient(refURL)
			if err != nil {
				t.Fatal(err)
			}
			refIDs := setupAccount(t, refClient, nAds)
			if err := refClient.DeliverWorkers(context.Background(), refIDs, seed, shards); err != nil {
				t.Fatal(err)
			}
			want := insightsDigest(t, refClient, refIDs)

			_, client := newFleet(t, shards, nil)
			ids := setupAccount(t, client, nAds)
			if err := client.Deliver(context.Background(), ids, seed); err != nil {
				t.Fatal(err)
			}
			if got := insightsDigest(t, client, ids); got != want {
				t.Errorf("%d-shard router day diverged from single-process workers=%d:\n got %s\nwant %s", shards, shards, got, want)
			}
		})
	}
}

// TestRouterRepeatDeterminism: two delivery days over the same fleet with
// identically-specced fresh ad sets and the same seed are byte-identical —
// the self-determinism half of the acceptance criteria (re-running the whole
// fleet from scratch is the CI smoke's job).
func TestRouterRepeatDeterminism(t *testing.T) {
	const seed = 9200
	_, client := newFleet(t, 2, nil)
	ctx := context.Background()
	ca, err := client.CreateAudience(ctx, "rep-aud", worldHash)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "rep-cmp", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	for run := 0; run < 2; run++ {
		ids := createAdSet(t, client, cmp.ID, ca.ID, 3)
		if err := client.Deliver(ctx, ids, seed); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, insightsDigest(t, client, ids))
	}
	if digests[0] != digests[1] {
		t.Errorf("repeated router day diverged:\n run0 %s\n run1 %s", digests[0], digests[1])
	}
}

// faultGate injects one-shot failures into a backend's shard-delivery routes,
// emulating crashes from the coordinator's point of view.
type faultGate struct {
	mu          sync.Mutex
	tickFails   int // remaining ticks answered 409 (as a restarted shard would)
	finishFails int // remaining finishes answered 500 (shard dies in the commit fan-out)
}

func (g *faultGate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		switch {
		case r.URL.Path == "/v1/shard/delivery/tick" && g.tickFails > 0:
			g.tickFails--
			g.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			fmt.Fprint(w, `{"error":"injected: shard restarted, delivery session lost"}`)
			return
		case r.URL.Path == "/v1/shard/delivery/finish" && g.finishFails > 0:
			g.finishFails--
			g.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"injected: shard crashed during commit"}`)
			return
		}
		g.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}

// TestRouterDayRestartAfterShardCrash: a shard that loses its session
// mid-day (409 on a tick) forces the coordinator to abort and re-run the
// whole day, and the re-run still matches the unfaulted single-process
// reference bit for bit.
func TestRouterDayRestartAfterShardCrash(t *testing.T) {
	const nAds = 2
	const seed = 9300
	refURL := newBackend(t, nil)
	refClient, err := marketing.NewClient(refURL)
	if err != nil {
		t.Fatal(err)
	}
	refIDs := setupAccount(t, refClient, nAds)
	if err := refClient.DeliverWorkers(context.Background(), refIDs, seed, 2); err != nil {
		t.Fatal(err)
	}
	want := insightsDigest(t, refClient, refIDs)

	gate := &faultGate{tickFails: 1}
	coord, client := newFleet(t, 2, map[int]func(http.Handler) http.Handler{1: gate.wrap})
	ids := setupAccount(t, client, nAds)
	if err := client.Deliver(context.Background(), ids, seed); err != nil {
		t.Fatal(err)
	}
	if got := insightsDigest(t, client, ids); got != want {
		t.Errorf("post-restart day diverged from reference:\n got %s\nwant %s", got, want)
	}
	if restarts := coord.reg.Snapshot().Counters[MetricDayRestarts]; restarts < 1 {
		t.Errorf("restart counter = %d, want >= 1", restarts)
	}
}

// TestRouterPartialCommitReplay: one shard commits its day durably while the
// other fails every finish attempt — the asymmetric window. The next attempt
// must recognize the partial commit and replay the recorded day on the
// straggler only, converging on the reference output (a full re-run would
// 400 on the already-completed shard).
func TestRouterPartialCommitReplay(t *testing.T) {
	const nAds = 2
	const seed = 9400
	refURL := newBackend(t, nil)
	refClient, err := marketing.NewClient(refURL)
	if err != nil {
		t.Fatal(err)
	}
	refIDs := setupAccount(t, refClient, nAds)
	if err := refClient.DeliverWorkers(context.Background(), refIDs, seed, 2); err != nil {
		t.Fatal(err)
	}
	want := insightsDigest(t, refClient, refIDs)

	// The fleet client retries each call twice (newFleet), so two injected
	// 500s exhaust the finish call entirely and fail the first day attempt
	// after shard 0 has already committed.
	gate := &faultGate{finishFails: 2}
	coord, client := newFleet(t, 2, map[int]func(http.Handler) http.Handler{1: gate.wrap})
	ids := setupAccount(t, client, nAds)
	if err := client.Deliver(context.Background(), ids, seed); err != nil {
		t.Fatal(err)
	}
	if got := insightsDigest(t, client, ids); got != want {
		t.Errorf("post-replay day diverged from reference:\n got %s\nwant %s", got, want)
	}
	if restarts := coord.reg.Snapshot().Counters[MetricDayRestarts]; restarts < 1 {
		t.Errorf("restart counter = %d, want >= 1", restarts)
	}
}

// TestRouterCRUDFanOutAndGuards covers the router's non-delivery surface:
// topology, merged inventory, divergence-free CRUD across shards, appeal
// pass-through, and the deliver-workers guard.
func TestRouterCRUDFanOutAndGuards(t *testing.T) {
	coord, client := newFleet(t, 2, nil)
	ctx := context.Background()
	ids := setupAccount(t, client, 2)

	if got := coord.Shards(); got != 2 {
		t.Fatalf("Shards() = %d", got)
	}
	ad, err := client.GetAd(ctx, ids[0])
	if err != nil || ad.Status != "ACTIVE" {
		t.Fatalf("GetAd via router: %+v, %v", ad, err)
	}
	inv, err := coord.Inventory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Ads != 2 || inv.Audiences != 1 || inv.Campaigns != 1 {
		t.Fatalf("merged inventory %+v", inv)
	}
	// Workers guard: explicit worker counts must match the topology.
	if err := client.DeliverWorkers(ctx, ids, 1, 3); err == nil {
		t.Error("workers=3 against a 2-shard fleet: want error")
	}
	if err := client.DeliverWorkers(ctx, ids, 9500, 2); err != nil {
		t.Errorf("workers=2 against a 2-shard fleet: %v", err)
	}
	// Appeal pass-through: appealing an ad that review did not reject is a
	// client error from every shard, surfaced with the backend's own status.
	if _, err := client.AppealAd(ctx, ids[0]); err == nil {
		t.Error("appealing an active ad: want error")
	}
}
