package coordinator

// Differential proof for the merge-then-privatize rule: a router that
// privatizes the MERGED cross-shard insights report is byte-identical, at
// the wire level, to a single adplatform process privatizing its own report
// under the same policy — for 1, 2, and 4 shards, at k-anon and k-anon+dp.
// Per-shard privatization is the bug this architecture forbids, so a fleet
// whose shards privatize locally must be refused, not merged.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/privacy"
)

// newPrivacyBackend serves one platform whose OWN insights surface
// privatizes — the single-process reference, and (misconfigured behind a
// router) the shard the coordinator must refuse.
func newPrivacyBackend(t *testing.T, cfg privacy.Config) string {
	t.Helper()
	srv, err := marketing.NewServer(newPlatform(t), marketing.WithPrivacy(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// newPrivacyFleet stands up n RAW shard backends behind a coordinator that
// privatizes the merged report (the correct fleet deployment).
func newPrivacyFleet(t *testing.T, n int, cfg privacy.Config, privateShards bool) *marketing.Client {
	t.Helper()
	backends := make([]string, n)
	for i := range backends {
		if privateShards {
			backends[i] = newPrivacyBackend(t, cfg)
		} else {
			backends[i] = newBackend(t, nil)
		}
	}
	reg := obs.NewRegistry()
	coord, err := New(Config{Backends: backends, DayBackoff: time.Millisecond, Privacy: cfg}, reg)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	router, err := NewRouter(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	client, err := marketing.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	return client
}

// TestRouterPrivatizedMatchesSingleProcess is the tentpole differential
// claim: privatized merged insights from a 1/2/4-shard router are
// byte-identical to single-process privatized output on the same seed —
// suppression decisions, noise draws, and the wire privacy block all agree,
// because both sides privatize the SAME logical report under the same pure
// (seed, cell key) noise stream.
func TestRouterPrivatizedMatchesSingleProcess(t *testing.T) {
	const nAds = 3
	const seed = 9600
	policies := []privacy.Config{
		{Level: privacy.LevelKAnon, K: 20},
		{Level: privacy.LevelKAnonDP, K: 20, Epsilon: 1, Seed: 42},
	}
	for _, cfg := range policies {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", cfg.Level, shards), func(t *testing.T) {
				refURL := newPrivacyBackend(t, cfg)
				refClient, err := marketing.NewClient(refURL)
				if err != nil {
					t.Fatal(err)
				}
				refIDs := setupAccount(t, refClient, nAds)
				if err := refClient.DeliverWorkers(context.Background(), refIDs, seed, shards); err != nil {
					t.Fatal(err)
				}
				want := insightsDigest(t, refClient, refIDs)

				client := newPrivacyFleet(t, shards, cfg, false)
				ids := setupAccount(t, client, nAds)
				if err := client.Deliver(context.Background(), ids, seed); err != nil {
					t.Fatal(err)
				}
				if got := insightsDigest(t, client, ids); got != want {
					t.Errorf("%d-shard privatized router diverged from single process (%s):\n got %s\nwant %s",
						shards, cfg.Level, got, want)
				}
			})
		}
	}
}

// TestRouterPrivacyOffIsRaw: with privacy off the router's responses carry
// no privacy block at all — the wire surface is the pre-privacy API.
func TestRouterPrivacyOffIsRaw(t *testing.T) {
	client := newPrivacyFleet(t, 2, privacy.Config{}, false)
	ids := setupAccount(t, client, 1)
	if err := client.Deliver(context.Background(), ids, 9700); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Insights(context.Background(), ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Privacy != nil {
		t.Errorf("privacy off: response carries privacy block %+v", resp.Privacy)
	}
}

// TestRouterRefusesPrivatizedShards: shards that privatize locally violate
// merge-then-privatize (per-shard suppression over-suppresses partition
// slices); the coordinator must surface a divergence, not merge garbage.
func TestRouterRefusesPrivatizedShards(t *testing.T) {
	cfg := privacy.Config{Level: privacy.LevelKAnon, K: 5}
	client := newPrivacyFleet(t, 2, cfg, true)
	ids := setupAccount(t, client, 1)
	if err := client.Deliver(context.Background(), ids, 9800); err != nil {
		t.Fatal(err)
	}
	_, err := client.Insights(context.Background(), ids[0])
	if err == nil {
		t.Fatal("insights from a fleet of privatizing shards: want divergence error")
	}
	var apiErr *marketing.APIError
	if errors.As(err, &apiErr) {
		if !strings.Contains(apiErr.Message, "privatized by shard") {
			t.Errorf("error %q, want a privatized-by-shard divergence", apiErr.Message)
		}
	} else if !strings.Contains(err.Error(), "privatized by shard") {
		t.Errorf("error %v, want a privatized-by-shard divergence", err)
	}
}
