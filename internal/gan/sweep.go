package gan

import (
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/face"
	"github.com/adaudit/impliedidentity/internal/image"
)

// DirectionSet bundles the three latent directions the study manipulates.
type DirectionSet struct {
	Gender Direction // toward female presentation
	Race   Direction // toward Black presentation (white distractor)
	Age    Direction // toward older apparent age
}

// DiscoverDirections runs the §5.4 pipeline: sample nSamples random faces,
// label each with the classifier (the Deepface stand-in), then fit one
// logistic regression per binary attribute and one linear regression for
// age, all on the flattened activation vectors. The returned directions
// inherit whatever biases the classifier has — by construction, exactly as
// in the paper.
func DiscoverDirections(net *Network, clf *face.Classifier, nSamples int, rng *rand.Rand, opt SGDOptions) (DirectionSet, []*Face, error) {
	if nSamples < 50 {
		return DirectionSet{}, nil, fmt.Errorf("gan: %d samples too few for direction discovery", nSamples)
	}
	faces, err := net.SampleBatch(nSamples, rng)
	if err != nil {
		return DirectionSet{}, nil, err
	}
	acts := make([][]float64, nSamples)
	gLabels := make([]float64, nSamples)
	rLabels := make([]float64, nSamples)
	ages := make([]float64, nSamples)
	for i, f := range faces {
		acts[i] = f.Activations
		if g, _ := clf.Gender(f.Image); g == demo.GenderFemale {
			gLabels[i] = 1
		}
		if r, _ := clf.Race(f.Image); r == demo.RaceBlack {
			rLabels[i] = 1
		}
		ages[i] = clf.AgeYears(f.Image)
	}
	var ds DirectionSet
	if ds.Gender, err = FitLogisticDirection("female", acts, gLabels, opt); err != nil {
		return DirectionSet{}, nil, fmt.Errorf("gan: gender direction: %w", err)
	}
	if ds.Race, err = FitLogisticDirection("black", acts, rLabels, opt); err != nil {
		return DirectionSet{}, nil, fmt.Errorf("gan: race direction: %w", err)
	}
	if ds.Age, err = FitLinearDirection("age", acts, ages, opt); err != nil {
		return DirectionSet{}, nil, fmt.Errorf("gan: age direction: %w", err)
	}
	return ds, faces, nil
}

// tuneBinary walks the activations along dir to the alpha whose synthesized
// image the classifier scores closest to target (0..1), scanning a fixed
// grid then refining once. score must be the classifier probability of the
// attribute the direction adds.
func tuneBinary(net *Network, acts []float64, dir Direction, score func(image.Features) float64, target float64) ([]float64, error) {
	best := acts
	bestErr := 1e18
	var bestAlpha float64
	scan := func(center, halfWidth float64, steps int) error {
		for k := 0; k <= steps; k++ {
			alpha := center - halfWidth + 2*halfWidth*float64(k)/float64(steps)
			cand := Walk(acts, dir, alpha)
			img, err := net.Synthesize(cand)
			if err != nil {
				return err
			}
			if e := abs(score(img) - target); e < bestErr {
				bestErr, best, bestAlpha = e, cand, alpha
			}
		}
		return nil
	}
	if err := scan(0, 8, 64); err != nil {
		return nil, err
	}
	if err := scan(bestAlpha, 0.25, 20); err != nil {
		return nil, err
	}
	return best, nil
}

// tuneAge walks along the age direction to match a target classified age.
func tuneAge(net *Network, acts []float64, dir Direction, clf *face.Classifier, targetYears float64) ([]float64, error) {
	best := acts
	bestErr := 1e18
	var bestAlpha float64
	scan := func(center, halfWidth float64, steps int) error {
		for k := 0; k <= steps; k++ {
			alpha := center - halfWidth + 2*halfWidth*float64(k)/float64(steps)
			cand := Walk(acts, dir, alpha)
			img, err := net.Synthesize(cand)
			if err != nil {
				return err
			}
			if e := abs(clf.AgeYears(img) - targetYears); e < bestErr {
				bestErr, best, bestAlpha = e, cand, alpha
			}
		}
		return nil
	}
	if err := scan(0, 8, 64); err != nil {
		return nil, err
	}
	if err := scan(bestAlpha, 0.25, 20); err != nil {
		return nil, err
	}
	return best, nil
}

// TuneToProfile edits a face's activations until the classifier assigns the
// target implied profile, holding everything else as constant as the
// near-orthogonal directions allow (§4.2: "we construct these images such
// that a machine learning library classifies their gender or race according
// to our hints"). Two coordinate passes absorb the small cross-talk between
// directions.
func TuneToProfile(net *Network, clf *face.Classifier, ds DirectionSet, acts []float64, target demo.Profile) ([]float64, image.Features, error) {
	// Target near-saturated classifier scores: stock photos of each group
	// score ≈ 0.98 / 0.02, and the tuned variants must imply demographics
	// as strongly as the stock images they are compared against (§5.5).
	genderTarget := 0.03
	if target.Gender == demo.GenderFemale {
		genderTarget = 0.97
	}
	raceTarget := 0.03
	if target.Race == demo.RaceBlack {
		raceTarget = 0.97
	}
	cur := acts
	var err error
	for pass := 0; pass < 2; pass++ {
		if cur, err = tuneBinary(net, cur, ds.Race, clf.RaceScore, raceTarget); err != nil {
			return nil, image.Features{}, err
		}
		if cur, err = tuneBinary(net, cur, ds.Gender, clf.GenderScore, genderTarget); err != nil {
			return nil, image.Features{}, err
		}
		if cur, err = tuneAge(net, cur, ds.Age, clf, target.Age.RepresentativeYears()); err != nil {
			return nil, image.Features{}, err
		}
	}
	img, err := net.Synthesize(cur)
	if err != nil {
		return nil, image.Features{}, err
	}
	return cur, img, nil
}

// Variant is one tuned image of a source person.
type Variant struct {
	Target      demo.Profile
	Activations []float64
	Image       image.Features
}

// VariantGrid generates the §5.5 image set for one source face: the 20
// demographic combinations (2 genders × 2 races × 5 implied ages) of the
// same "person".
func VariantGrid(net *Network, clf *face.Classifier, ds DirectionSet, source *Face) ([]Variant, error) {
	var out []Variant
	for _, p := range demo.AllProfiles() {
		acts, img, err := TuneToProfile(net, clf, ds, source.Activations, p)
		if err != nil {
			return nil, fmt.Errorf("gan: tuning to %v: %w", p, err)
		}
		out = append(out, Variant{Target: p, Activations: acts, Image: img})
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
