package gan

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/stats"
)

// Direction is a latent direction in activation space: the fitted
// coefficient vector of a regression of attribute labels on activations
// (§5.4: "the fitted coefficients of the regression model are precisely the
// vector in the activation space that represents the direction of change").
type Direction struct {
	Name string
	Vec  []float64 // unit length
}

// SGDOptions configures the stochastic-gradient fits used for direction
// discovery. Full-Newton logistic regression is quadratic in the activation
// dimension; gradient descent keeps direction fitting linear, which is what
// makes the 18×width activation space tractable.
type SGDOptions struct {
	Epochs    int     // default 40
	LearnRate float64 // default 0.5
	Momentum  float64 // default 0.9
	L2        float64 // default 1e-3
	Seed      int64   // shuffling seed
}

func (o *SGDOptions) setDefaults() {
	if o.Epochs == 0 {
		o.Epochs = 40
	}
	if o.LearnRate == 0 {
		o.LearnRate = 0.5
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	if o.L2 == 0 {
		o.L2 = 1e-3
	}
}

// FitLogisticDirection fits a logistic regression of binary labels on
// activation vectors by momentum SGD and returns the normalized coefficient
// vector. Used for the gender direction (female vs male) and each race
// direction (target race vs white distractor).
func FitLogisticDirection(name string, acts [][]float64, labels []float64, opt SGDOptions) (Direction, error) {
	if err := checkFitInputs(acts, labels); err != nil {
		return Direction{}, err
	}
	opt.setDefaults()
	dim := len(acts[0])
	w := make([]float64, dim)
	vel := make([]float64, dim)
	var b, bVel float64
	rng := rand.New(rand.NewSource(opt.Seed))
	n := len(acts)
	order := rng.Perm(n)
	lr := opt.LearnRate
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		// Fisher-Yates reshuffle per epoch for SGD independence.
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			x := acts[i]
			z := b
			for j, v := range x {
				z += w[j] * v
			}
			g := stats.Sigmoid(z) - labels[i] // d(logloss)/dz
			bVel = opt.Momentum*bVel - lr*g
			b += bVel
			for j, v := range x {
				grad := g*v + opt.L2*w[j]
				vel[j] = opt.Momentum*vel[j] - lr*grad
				w[j] += vel[j]
			}
		}
		lr *= 0.95
	}
	return normalizedDirection(name, w)
}

// FitLinearDirection fits a least-squares regression of a continuous target
// (the paper's age model) on activation vectors by momentum SGD and returns
// the normalized coefficient vector. Targets are standardized internally.
func FitLinearDirection(name string, acts [][]float64, targets []float64, opt SGDOptions) (Direction, error) {
	if err := checkFitInputs(acts, targets); err != nil {
		return Direction{}, err
	}
	opt.setDefaults()
	mean := stats.Mean(targets)
	sd := stats.StdDev(targets)
	if sd == 0 {
		return Direction{}, fmt.Errorf("gan: constant target for direction %q", name)
	}
	y := make([]float64, len(targets))
	for i, t := range targets {
		y[i] = (t - mean) / sd
	}
	dim := len(acts[0])
	w := make([]float64, dim)
	var b float64
	rng := rand.New(rand.NewSource(opt.Seed))
	n := len(acts)
	order := rng.Perm(n)
	// Normalized LMS: the per-sample step is divided by 1+|x|², which keeps
	// the update stable for any feature scale or dimension.
	lr := 0.5
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			x := acts[i]
			z := b
			var xx float64
			for j, v := range x {
				z += w[j] * v
				xx += v * v
			}
			g := (z - y[i]) / (1 + xx)
			b -= lr * g
			for j, v := range x {
				w[j] -= lr * (g*v + opt.L2*w[j]/float64(n))
			}
		}
	}
	return normalizedDirection(name, w)
}

func checkFitInputs(acts [][]float64, labels []float64) error {
	if len(acts) == 0 {
		return fmt.Errorf("gan: no activation samples")
	}
	if len(acts) != len(labels) {
		return fmt.Errorf("gan: %d samples but %d labels", len(acts), len(labels))
	}
	dim := len(acts[0])
	for i, a := range acts {
		if len(a) != dim {
			return fmt.Errorf("gan: sample %d has dim %d, want %d", i, len(a), dim)
		}
	}
	return nil
}

func normalizedDirection(name string, w []float64) (Direction, error) {
	var norm float64
	for _, v := range w {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return Direction{}, fmt.Errorf("gan: degenerate direction %q (norm %v)", name, norm)
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v / norm
	}
	return Direction{Name: name, Vec: out}, nil
}

// Walk returns a copy of the activation vector moved alpha units along the
// direction. Positive alpha adds the attribute the direction models.
func Walk(acts []float64, dir Direction, alpha float64) []float64 {
	out := make([]float64, len(acts))
	for i, v := range acts {
		out[i] = v + alpha*dir.Vec[i]
	}
	return out
}

// Cosine returns the cosine similarity of two directions — the diagnostic
// used to verify that independently fitted attribute directions are close to
// orthogonal (so walking one holds the others approximately constant).
func Cosine(a, b Direction) float64 {
	var num, na, nb float64
	for i := range a.Vec {
		num += a.Vec[i] * b.Vec[i]
		na += a.Vec[i] * a.Vec[i]
		nb += b.Vec[i] * b.Vec[i]
	}
	if na == 0 || nb == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(na*nb)
}
