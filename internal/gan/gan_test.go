package gan

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/face"
	"github.com/adaudit/impliedidentity/internal/image"
)

// testConfig keeps unit tests fast; the technique is width-independent.
func testConfig(seed int64) Config {
	return Config{Seed: seed, LatentDim: 64, NumLayers: 6, LayerWidth: 24}
}

func testNetwork(t *testing.T, seed int64) *Network {
	t.Helper()
	n, err := New(testConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config: want error")
	}
	if _, err := New(Config{LatentDim: 10, NumLayers: -1, LayerWidth: 5}); err == nil {
		t.Error("negative layers: want error")
	}
}

func TestMappingShapeAndDeterminism(t *testing.T) {
	n := testNetwork(t, 1)
	z := make([]float64, n.LatentDim())
	rng := rand.New(rand.NewSource(9))
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	a1, err := n.Mapping(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != n.ActivationDim() {
		t.Fatalf("activation length %d, want %d", len(a1), n.ActivationDim())
	}
	a2, _ := n.Mapping(z)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("mapping not deterministic")
		}
		if a1[i] < -1 || a1[i] > 1 {
			t.Fatalf("activation %v outside tanh range", a1[i])
		}
	}
	if _, err := n.Mapping(z[:3]); err == nil {
		t.Error("short latent: want error")
	}
}

func TestSameSeedNetworksIdentical(t *testing.T) {
	a := testNetwork(t, 5)
	b := testNetwork(t, 5)
	z := make([]float64, a.LatentDim())
	z[0] = 1
	fa, _ := a.Mapping(z)
	fb, _ := b.Mapping(z)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same-seed networks differ")
		}
	}
}

func TestSampleBatchDiversity(t *testing.T) {
	n := testNetwork(t, 2)
	rng := rand.New(rand.NewSource(3))
	faces, err := n.SampleBatch(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	var female, black, child, elderly int
	for _, f := range faces {
		p := f.Image.ImpliedProfile()
		if p.Gender == demo.GenderFemale {
			female++
		}
		if p.Race == demo.RaceBlack {
			black++
		}
		switch p.Age {
		case demo.ImpliedChild:
			child++
		case demo.ImpliedElderly:
			elderly++
		}
	}
	// Random faces must cover both sides of every axis.
	if female < 50 || female > 350 {
		t.Errorf("female count %d of 400: poor gender coverage", female)
	}
	if black < 50 || black > 350 {
		t.Errorf("black count %d of 400: poor race coverage", black)
	}
	if child == 0 || elderly == 0 {
		t.Errorf("age coverage: child=%d elderly=%d", child, elderly)
	}
	if _, err := n.SampleBatch(0, rng); err == nil {
		t.Error("zero batch: want error")
	}
}

func TestSynthesizeRejectsWrongLength(t *testing.T) {
	n := testNetwork(t, 4)
	if _, err := n.Synthesize(make([]float64, 3)); err == nil {
		t.Error("short activations: want error")
	}
}

func TestFitLogisticDirectionRecoversPlantedDirection(t *testing.T) {
	// Labels generated from a known hyperplane over synthetic activations:
	// the fitted direction must align with it.
	rng := rand.New(rand.NewSource(7))
	dim := 40
	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	n := 1500
	acts := make([][]float64, n)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		a := make([]float64, dim)
		var z float64
		for j := range a {
			a[j] = rng.NormFloat64()
			z += truth[j] * a[j]
		}
		acts[i] = a
		if z > 0 {
			labels[i] = 1
		}
	}
	dir, err := FitLogisticDirection("planted", acts, labels, SGDOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cos := Cosine(dir, Direction{Vec: truth})
	if cos < 0.9 {
		t.Errorf("cosine with planted direction %v, want > 0.9", cos)
	}
	// Unit norm.
	var norm float64
	for _, v := range dir.Vec {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("direction norm² = %v", norm)
	}
}

func TestFitLinearDirectionRecoversPlantedDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dim := 40
	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	n := 1500
	acts := make([][]float64, n)
	targets := make([]float64, n)
	for i := 0; i < n; i++ {
		a := make([]float64, dim)
		var z float64
		for j := range a {
			a[j] = rng.NormFloat64()
			z += truth[j] * a[j]
		}
		acts[i] = a
		targets[i] = 40 + 5*z + rng.NormFloat64()
	}
	dir, err := FitLinearDirection("age", acts, targets, SGDOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cos := Cosine(dir, Direction{Vec: truth}); cos < 0.9 {
		t.Errorf("cosine with planted direction %v", cos)
	}
}

func TestFitDirectionInputValidation(t *testing.T) {
	if _, err := FitLogisticDirection("x", nil, nil, SGDOptions{}); err == nil {
		t.Error("empty inputs: want error")
	}
	if _, err := FitLogisticDirection("x", [][]float64{{1}}, []float64{1, 0}, SGDOptions{}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := FitLogisticDirection("x", [][]float64{{1, 2}, {1}}, []float64{1, 0}, SGDOptions{}); err == nil {
		t.Error("ragged activations: want error")
	}
	if _, err := FitLinearDirection("x", [][]float64{{1}, {2}}, []float64{5, 5}, SGDOptions{}); err == nil {
		t.Error("constant target: want error")
	}
}

func TestWalkMovesAlongDirection(t *testing.T) {
	acts := []float64{1, 2, 3}
	dir := Direction{Vec: []float64{1, 0, 0}}
	out := Walk(acts, dir, 2.5)
	if out[0] != 3.5 || out[1] != 2 || out[2] != 3 {
		t.Errorf("Walk = %v", out)
	}
	// Original untouched.
	if acts[0] != 1 {
		t.Error("Walk mutated input")
	}
}

func trainedSetup(t *testing.T) (*Network, *face.Classifier, DirectionSet, []*Face) {
	t.Helper()
	net := testNetwork(t, 10)
	clf, err := face.Train(face.TrainOptions{CorpusSize: 2500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	ds, faces, err := DiscoverDirections(net, clf, 1500, rng, SGDOptions{Seed: 13, Epochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	return net, clf, ds, faces
}

func TestDiscoverDirectionsTooFewSamples(t *testing.T) {
	net := testNetwork(t, 20)
	clf, err := face.Train(face.TrainOptions{CorpusSize: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DiscoverDirections(net, clf, 10, rand.New(rand.NewSource(1)), SGDOptions{}); err == nil {
		t.Error("too few samples: want error")
	}
}

func TestDiscoveredDirectionsEditAttributes(t *testing.T) {
	net, clf, ds, faces := trainedSetup(t)
	// Walking positive along a direction must yield a higher attribute
	// score than walking negative (comparing against the unwalked base is
	// uninformative for faces already saturated on the attribute).
	var genderUp, raceUp, ageUp, n int
	for _, f := range faces[:80] {
		gp, err := net.Synthesize(Walk(f.Activations, ds.Gender, 3))
		if err != nil {
			t.Fatal(err)
		}
		gn, _ := net.Synthesize(Walk(f.Activations, ds.Gender, -3))
		rp, _ := net.Synthesize(Walk(f.Activations, ds.Race, 3))
		rn, _ := net.Synthesize(Walk(f.Activations, ds.Race, -3))
		ap, _ := net.Synthesize(Walk(f.Activations, ds.Age, 3))
		an, _ := net.Synthesize(Walk(f.Activations, ds.Age, -3))
		if clf.GenderScore(gp) > clf.GenderScore(gn) {
			genderUp++
		}
		if clf.RaceScore(rp) > clf.RaceScore(rn) {
			raceUp++
		}
		if clf.AgeYears(ap) > clf.AgeYears(an) {
			ageUp++
		}
		n++
	}
	if float64(genderUp)/float64(n) < 0.8 {
		t.Errorf("gender direction raised score for only %d/%d faces", genderUp, n)
	}
	if float64(raceUp)/float64(n) < 0.8 {
		t.Errorf("race direction raised score for only %d/%d faces", raceUp, n)
	}
	if float64(ageUp)/float64(n) < 0.8 {
		t.Errorf("age direction raised age for only %d/%d faces", ageUp, n)
	}
}

func TestDirectionsNearOrthogonal(t *testing.T) {
	_, _, ds, _ := trainedSetup(t)
	pairs := [][2]Direction{{ds.Gender, ds.Race}, {ds.Gender, ds.Age}, {ds.Race, ds.Age}}
	for _, p := range pairs {
		if c := math.Abs(Cosine(p[0], p[1])); c > 0.5 {
			t.Errorf("|cos(%s, %s)| = %v, directions too entangled", p[0].Name, p[1].Name, c)
		}
	}
}

func TestTuneToProfileHitsTargets(t *testing.T) {
	net, clf, ds, faces := trainedSetup(t)
	source := faces[0]
	targets := []demo.Profile{
		{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedElderly},
		{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedChild},
		{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
	}
	for _, target := range targets {
		_, img, err := TuneToProfile(net, clf, ds, source.Activations, target)
		if err != nil {
			t.Fatal(err)
		}
		got := clf.Profile(img)
		if got.Gender != target.Gender || got.Race != target.Race {
			t.Errorf("target %v: classifier sees %v", target, got)
		}
		if math.Abs(clf.AgeYears(img)-target.Age.RepresentativeYears()) > 12 {
			t.Errorf("target %v: classified age %v", target, clf.AgeYears(img))
		}
	}
}

func TestVariantGridHoldsNuisanceConstant(t *testing.T) {
	net, clf, ds, faces := trainedSetup(t)
	variants, err := VariantGrid(net, clf, ds, faces[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 20 {
		t.Fatalf("%d variants, want 20", len(variants))
	}
	// Variants of the same person must sit far closer in nuisance space
	// than independent stock photos do — the §5.4 control property.
	var maxDist float64
	for i := 0; i < len(variants); i++ {
		for j := i + 1; j < len(variants); j++ {
			if d := image.NuisanceDistance(variants[i].Image, variants[j].Image); d > maxDist {
				maxDist = d
			}
		}
	}
	// Stock photos average nuisance distance > 1 per axis bank (see image
	// tests); same-person GAN variants stay well under that.
	if maxDist > 1.6 {
		t.Errorf("max within-person nuisance distance %v, variants not controlled", maxDist)
	}
}

func TestTruncationShrinksAttributeRange(t *testing.T) {
	net := testNetwork(t, 30)
	rng := rand.New(rand.NewSource(31))
	mean, err := net.MeanActivations(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	faces, err := net.SampleBatch(200, rng)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(psi float64) float64 {
		var lo, hi float64 = 1, -1
		for _, f := range faces {
			tr, err := net.Truncate(f.Activations, mean, psi)
			if err != nil {
				t.Fatal(err)
			}
			img, err := net.Synthesize(tr)
			if err != nil {
				t.Fatal(err)
			}
			if img.RaceAxis < lo {
				lo = img.RaceAxis
			}
			if img.RaceAxis > hi {
				hi = img.RaceAxis
			}
		}
		return hi - lo
	}
	full := spread(1)
	half := spread(0.4)
	if half >= full {
		t.Errorf("truncation should shrink the race-axis range: psi=0.4 %v vs psi=1 %v", half, full)
	}
	// psi = 1 must be the identity.
	id, err := net.Truncate(faces[0].Activations, mean, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range id {
		if id[i] != faces[0].Activations[i] {
			t.Fatal("psi=1 should be identity")
		}
	}
	// Validation.
	if _, err := net.Truncate(faces[0].Activations[:3], mean, 0.5); err == nil {
		t.Error("short activations: want error")
	}
	if _, err := net.Truncate(faces[0].Activations, mean, 2); err == nil {
		t.Error("psi out of range: want error")
	}
	if _, err := net.MeanActivations(0, rng); err == nil {
		t.Error("zero samples: want error")
	}
}
