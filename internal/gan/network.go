// Package gan implements the study's stand-in for StyleGAN 2 (§5.4): a
// deterministic generative network that maps a 512-element latent vector
// through a multi-layer mapping network to per-layer activations, and
// synthesizes a face image (in the feature space of package image) from
// those activations. The package also implements the Nikitko latent-
// direction technique the paper uses verbatim: fit a logistic regression of
// classifier-assigned labels on the flattened activation vector; the fitted
// coefficient vector is the direction along which to perturb activations to
// add or remove the attribute while minimizing change to everything else.
//
// Scale note: real StyleGAN 2 has 18 layers × 512 neurons (the paper flattens
// these to one activation vector; its stated length 9,126 is a typo for
// 9,216). The layer count is kept at 18 here and the layer width is
// configurable; the default width is reduced so direction fitting on
// commodity hardware stays fast. Nothing in the technique depends on the
// width.
package gan

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/image"
)

// Config configures the generative network.
type Config struct {
	Seed       int64
	LatentDim  int // z dimensionality; default 512 as in StyleGAN
	NumLayers  int // mapping-network depth; default 18 as in StyleGAN 2
	LayerWidth int // neurons per layer; default 64 (scaled down from 512)
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, LatentDim: 512, NumLayers: 18, LayerWidth: 64}
}

// Network is a frozen generative model: a mapping network followed by a
// synthesizer. All weights are fixed at construction, deterministic in the
// seed — the reproduction's analogue of downloading pretrained StyleGAN 2
// weights.
type Network struct {
	cfg Config

	// Mapping network: layer 0 maps z → width; layers 1..L-1 map the
	// previous layer's output → width. Weights are scaled for unit-variance
	// tanh activations.
	weights [][]float64 // per layer, row-major (width × fanIn)
	biases  [][]float64

	// Synthesizer: one read-out direction per image attribute over the
	// flattened activation vector.
	genderDir   []float64
	raceDir     []float64
	ageDir      []float64
	nuisanceDir [image.NumNuisance][]float64
}

// ActivationDim returns the length of the flattened activation vector
// (NumLayers × LayerWidth).
func (n *Network) ActivationDim() int { return n.cfg.NumLayers * n.cfg.LayerWidth }

// LatentDim returns the z dimensionality.
func (n *Network) LatentDim() int { return n.cfg.LatentDim }

// New constructs the frozen network.
func New(cfg Config) (*Network, error) {
	if cfg.LatentDim <= 0 || cfg.NumLayers <= 0 || cfg.LayerWidth <= 0 {
		return nil, fmt.Errorf("gan: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{cfg: cfg}
	fanIn := cfg.LatentDim
	for l := 0; l < cfg.NumLayers; l++ {
		w := make([]float64, cfg.LayerWidth*fanIn)
		scale := 1 / math.Sqrt(float64(fanIn))
		for i := range w {
			w[i] = scale * rng.NormFloat64()
		}
		b := make([]float64, cfg.LayerWidth)
		for i := range b {
			b[i] = 0.1 * rng.NormFloat64()
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, b)
		fanIn = cfg.LayerWidth
	}
	dim := n.ActivationDim()
	unit := func() []float64 {
		v := make([]float64, dim)
		var norm float64
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
		return v
	}
	n.genderDir = unit()
	n.raceDir = unit()
	n.ageDir = unit()
	for i := range n.nuisanceDir {
		n.nuisanceDir[i] = unit()
	}
	return n, nil
}

// Mapping runs the mapping network, returning the flattened per-layer
// activation vector ("we saved the activation values for each neuron in each
// layer of the network and represented them reshaped as a one dimensional
// vector", §5.4).
func (n *Network) Mapping(z []float64) ([]float64, error) {
	if len(z) != n.cfg.LatentDim {
		return nil, fmt.Errorf("gan: latent length %d, want %d", len(z), n.cfg.LatentDim)
	}
	width := n.cfg.LayerWidth
	acts := make([]float64, 0, n.ActivationDim())
	in := z
	for l := 0; l < n.cfg.NumLayers; l++ {
		out := make([]float64, width)
		w := n.weights[l]
		b := n.biases[l]
		fanIn := len(in)
		for i := 0; i < width; i++ {
			s := b[i]
			row := w[i*fanIn : (i+1)*fanIn]
			for j, v := range in {
				s += row[j] * v
			}
			out[i] = math.Tanh(s)
		}
		acts = append(acts, out...)
		in = out
	}
	return acts, nil
}

// Synthesis attribute scales: projections of a roughly unit-variance
// activation vector onto a unit direction have small magnitude, so each
// read-out is amplified before the squashing nonlinearity to cover the
// attribute's full range.
const (
	axisGain     = 12.0
	ageCenter    = 40.0
	ageSpan      = 34.0 // apparent ages ≈ [6, 74]
	nuisanceGain = 8.0
)

// Synthesize produces the face image encoded by an activation vector. It is
// a pure function of the activations, so perturbing activations along a
// latent direction and re-synthesizing is exactly the paper's image-editing
// operation.
func (n *Network) Synthesize(acts []float64) (image.Features, error) {
	if len(acts) != n.ActivationDim() {
		return image.Features{}, fmt.Errorf("gan: activation length %d, want %d", len(acts), n.ActivationDim())
	}
	f := image.Features{HasPerson: true}
	f.GenderAxis = math.Tanh(axisGain * dot(n.genderDir, acts))
	f.RaceAxis = math.Tanh(axisGain * dot(n.raceDir, acts))
	f.AgeYears = ageCenter + ageSpan*math.Tanh(axisGain*dot(n.ageDir, acts))
	for i := range f.Nuisance {
		f.Nuisance[i] = math.Tanh(nuisanceGain*dot(n.nuisanceDir[i], acts)) * 1.2
	}
	f.ApplyPresentationBias()
	return f, nil
}

// Face is one generated sample: the latent input, the activation vector,
// and the synthesized image.
type Face struct {
	Z           []float64
	Activations []float64
	Image       image.Features
}

// Sample draws a random latent vector and runs the full pipeline.
func (n *Network) Sample(rng *rand.Rand) (*Face, error) {
	z := make([]float64, n.cfg.LatentDim)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	acts, err := n.Mapping(z)
	if err != nil {
		return nil, err
	}
	img, err := n.Synthesize(acts)
	if err != nil {
		return nil, err
	}
	return &Face{Z: z, Activations: acts, Image: img}, nil
}

// SampleBatch draws count faces.
func (n *Network) SampleBatch(count int, rng *rand.Rand) ([]*Face, error) {
	if count <= 0 {
		return nil, fmt.Errorf("gan: batch count %d", count)
	}
	out := make([]*Face, count)
	for i := range out {
		f, err := n.Sample(rng)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Truncate applies the StyleGAN "truncation trick": pull an activation
// vector toward the population mean activation by factor psi in [0, 1].
// psi = 1 returns the input unchanged; psi = 0 collapses to the mean face.
// Truncation trades diversity for typicality — attribute ranges shrink —
// and is the standard knob for sampling more conservative faces.
func (n *Network) Truncate(acts []float64, mean []float64, psi float64) ([]float64, error) {
	if len(acts) != n.ActivationDim() || len(mean) != n.ActivationDim() {
		return nil, fmt.Errorf("gan: truncate length %d/%d, want %d", len(acts), len(mean), n.ActivationDim())
	}
	if psi < 0 || psi > 1 {
		return nil, fmt.Errorf("gan: psi %v outside [0,1]", psi)
	}
	out := make([]float64, len(acts))
	if psi == 1 {
		copy(out, acts) // exact identity, avoiding float round-trip error
		return out, nil
	}
	for i := range acts {
		out[i] = mean[i] + psi*(acts[i]-mean[i])
	}
	return out, nil
}

// MeanActivations estimates the mean activation vector over count random
// samples, the anchor for the truncation trick.
func (n *Network) MeanActivations(count int, rng *rand.Rand) ([]float64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("gan: mean over %d samples", count)
	}
	mean := make([]float64, n.ActivationDim())
	for k := 0; k < count; k++ {
		f, err := n.Sample(rng)
		if err != nil {
			return nil, err
		}
		for i, v := range f.Activations {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(count)
	}
	return mean, nil
}
