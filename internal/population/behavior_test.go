package population

import (
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

func testBehavior(t *testing.T) *Behavior {
	t.Helper()
	b, err := NewBehavior(DefaultBehaviorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func imgOf(p demo.Profile) image.Features { return image.FromProfile(p) }

// mkUser builds a standalone columnar view for behaviour-model tests.
func mkUser(age int, g demo.Gender, r demo.Race) UserView {
	return MakeView(demo.StateFL, "33101", age, g, r, 1)
}

func TestNewBehaviorValidation(t *testing.T) {
	cfg := DefaultBehaviorConfig()
	cfg.BaseCTR = 0
	if _, err := NewBehavior(cfg); err == nil {
		t.Error("zero base CTR: want error")
	}
	cfg = DefaultBehaviorConfig()
	cfg.AffinityScale = -1
	if _, err := NewBehavior(cfg); err == nil {
		t.Error("negative scale: want error")
	}
}

func TestClickProbBounds(t *testing.T) {
	b := testBehavior(t)
	users := []UserView{
		mkUser(20, demo.GenderFemale, demo.RaceBlack),
		mkUser(70, demo.GenderMale, demo.RaceWhite),
	}
	for _, p := range demo.AllProfiles() {
		img := imgOf(p)
		for i := range users {
			pr := b.ClickProb(users[i], img)
			if pr <= 0 || pr >= 1 {
				t.Fatalf("ClickProb out of range: %v", pr)
			}
		}
	}
}

func TestRaceHomophily(t *testing.T) {
	b := testBehavior(t)
	blackUser := mkUser(30, demo.GenderMale, demo.RaceBlack)
	whiteUser := mkUser(30, demo.GenderMale, demo.RaceWhite)
	blackImg := imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	whiteImg := imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	if b.ClickProb(blackUser, blackImg) <= b.ClickProb(blackUser, whiteImg) {
		t.Error("Black user should engage more with Black-presenting image")
	}
	if b.ClickProb(whiteUser, whiteImg) <= b.ClickProb(whiteUser, blackImg) {
		t.Error("white user should engage more with white-presenting image")
	}
}

func TestChildImagesEngageWomen(t *testing.T) {
	b := testBehavior(t)
	woman := mkUser(45, demo.GenderFemale, demo.RaceWhite)
	man := mkUser(45, demo.GenderMale, demo.RaceWhite)
	child := imgOf(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedChild})
	adult := imgOf(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	womanLift := b.ClickProb(woman, child) / b.ClickProb(woman, adult)
	manLift := b.ClickProb(man, child) / b.ClickProb(man, adult)
	if womanLift <= manLift {
		t.Errorf("child-image lift: woman %v <= man %v", womanLift, manLift)
	}
	// The effect strengthens with the woman's age (Figure 3C: older women
	// see more images of children).
	older := mkUser(65, demo.GenderFemale, demo.RaceWhite)
	youngW := mkUser(25, demo.GenderFemale, demo.RaceWhite)
	if b.ClickProb(older, child)/b.ClickProb(older, adult) <= b.ClickProb(youngW, child)/b.ClickProb(youngW, adult) {
		t.Error("child-image lift should grow with the woman's age")
	}
}

func TestYoungWomenImagesEngageOlderMen(t *testing.T) {
	b := testBehavior(t)
	olderMan := mkUser(60, demo.GenderMale, demo.RaceWhite)
	youngerMan := mkUser(30, demo.GenderMale, demo.RaceWhite)
	teenWoman := imgOf(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedTeen})
	teenMan := imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedTeen})
	// Older men: teen-woman image beats teen-man image by more than the age
	// proximity penalty difference.
	lift := b.ClickProb(olderMan, teenWoman) / b.ClickProb(olderMan, teenMan)
	if lift <= 1.5 {
		t.Errorf("older-man teen-woman lift %v, want > 1.5", lift)
	}
	// The effect is specific to men 55+.
	youngLift := b.ClickProb(youngerMan, teenWoman) / b.ClickProb(youngerMan, teenMan)
	if lift <= youngLift {
		t.Errorf("lift should concentrate in older men: %v <= %v", lift, youngLift)
	}
}

func TestAgeProximity(t *testing.T) {
	b := testBehavior(t)
	young := mkUser(22, demo.GenderMale, demo.RaceWhite)
	adultImg := imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	elderlyImg := imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedElderly})
	if b.ClickProb(young, adultImg) <= b.ClickProb(young, elderlyImg) {
		t.Error("young user should engage more with age-proximate image")
	}
}

func TestAffinityScaleZeroRemovesContentEffects(t *testing.T) {
	cfg := DefaultBehaviorConfig()
	cfg.AffinityScale = 0
	b, err := NewBehavior(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := mkUser(30, demo.GenderFemale, demo.RaceBlack)
	p1 := b.ClickProb(u, imgOf(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedChild}))
	p2 := b.ClickProb(u, imgOf(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedElderly}))
	if p1 != p2 {
		t.Errorf("scale 0 should make content irrelevant: %v vs %v", p1, p2)
	}
}

func TestNoPersonImageUsesBaseRate(t *testing.T) {
	b := testBehavior(t)
	u := mkUser(30, demo.GenderFemale, demo.RaceBlack)
	p := b.ClickProb(u, image.Features{})
	if diff := p - DefaultBehaviorConfig().BaseCTR; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("no-person image prob %v, want base rate", p)
	}
}

func TestJobAffinityComposition(t *testing.T) {
	// Lumber skews male and white; janitor skews Black; nurse skews female.
	if JobAffinity("lumber", demo.GenderMale, demo.RaceWhite) <= JobAffinity("lumber", demo.GenderFemale, demo.RaceBlack) {
		t.Error("lumber should favor white men")
	}
	if JobAffinity("janitor", demo.GenderFemale, demo.RaceBlack) <= JobAffinity("janitor", demo.GenderMale, demo.RaceWhite) {
		t.Error("janitor should favor Black women")
	}
	if JobAffinity("nurse", demo.GenderFemale, demo.RaceWhite) <= JobAffinity("nurse", demo.GenderMale, demo.RaceWhite) {
		t.Error("nurse should favor women")
	}
	if JobAffinity("unknown-job", demo.GenderMale, demo.RaceWhite) != 0 {
		t.Error("unknown job should contribute 0")
	}
}

func TestKnownJobCoversImageJobTypes(t *testing.T) {
	for _, j := range image.JobTypes() {
		if !KnownJob(j) {
			t.Errorf("behaviour model missing composition for job %q", j)
		}
	}
	if KnownJob("astronaut") {
		t.Error("astronaut should be unknown")
	}
}

func TestJobAdsShiftEngagement(t *testing.T) {
	b := testBehavior(t)
	whiteMan := mkUser(35, demo.GenderMale, demo.RaceWhite)
	blackWoman := mkUser(35, demo.GenderFemale, demo.RaceBlack)
	// Neutral face so the job-composition effect is isolated from homophily.
	face := image.Features{HasPerson: true, AgeYears: 30}
	lumber := face
	lumber.Job = "lumber"
	janitor := face
	janitor.Job = "janitor"
	if b.ClickProb(whiteMan, lumber) <= b.ClickProb(blackWoman, lumber) {
		t.Error("lumber ad should engage white men more")
	}
	if b.ClickProb(blackWoman, janitor) <= b.ClickProb(whiteMan, janitor) {
		t.Error("janitor ad should engage Black women more")
	}
}
