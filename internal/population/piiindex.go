package population

import "encoding/binary"

// piiIndex maps raw 32-byte PII digests to dense user IDs without storing
// the keys: slots hold user IDs, and probes compare against the key column
// through the keyAt accessor. Open addressing with linear probing; the hash
// is the digest's first eight bytes (SHA-256 output is uniform, so no
// further mixing is needed). Cost is four bytes per slot at ≤70% load —
// ~6 bytes/user — against the old map[string]int's ~50 bytes/user of
// buckets plus its retained 64-byte hex keys.
type piiIndex struct {
	slots []int32 // user IDs; -1 = empty
	count int
}

// keyAt resolves a stored user ID to its raw PII digest.
type keyAt func(id int32) *[32]byte

// newPIIIndex sizes the table for about n keys at ≤70% load.
func newPIIIndex(n int) *piiIndex {
	size := 64
	for size*7 < n*10 {
		size <<= 1
	}
	ix := &piiIndex{slots: make([]int32, size)}
	for i := range ix.slots {
		ix.slots[i] = -1
	}
	return ix
}

func piiHash(key *[32]byte) uint64 {
	return binary.LittleEndian.Uint64(key[:8])
}

// lookup returns the user ID stored for key, or -1.
func (ix *piiIndex) lookup(key *[32]byte, at keyAt) int32 {
	mask := uint64(len(ix.slots) - 1)
	for h := piiHash(key) & mask; ; h = (h + 1) & mask {
		id := ix.slots[h]
		if id < 0 {
			return -1
		}
		if *at(id) == *key {
			return id
		}
	}
}

// insert stores id under its key. The caller has already checked the key is
// absent (Build's dup policy needs the lookup result anyway).
func (ix *piiIndex) insert(key *[32]byte, id int32, at keyAt) {
	if (ix.count+1)*10 > len(ix.slots)*7 {
		ix.grow(at)
	}
	mask := uint64(len(ix.slots) - 1)
	for h := piiHash(key) & mask; ; h = (h + 1) & mask {
		if ix.slots[h] < 0 {
			ix.slots[h] = id
			ix.count++
			return
		}
	}
}

// grow doubles the table and rehashes every stored ID.
func (ix *piiIndex) grow(at keyAt) {
	old := ix.slots
	ix.slots = make([]int32, len(old)*2)
	for i := range ix.slots {
		ix.slots[i] = -1
	}
	mask := uint64(len(ix.slots) - 1)
	for _, id := range old {
		if id < 0 {
			continue
		}
		for h := piiHash(at(id)) & mask; ; h = (h + 1) & mask {
			if ix.slots[h] < 0 {
				ix.slots[h] = id
				break
			}
		}
	}
}

// bytes reports the table's retained storage.
func (ix *piiIndex) bytes() int64 { return 4 * int64(len(ix.slots)) }
