package population

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// builder is the shared core of Build and Stream: it applies the account-
// match model to voter records one at a time and appends accepted users to
// the columns. Build feeds it materialized registries and appends straight
// into the final columns; Stream feeds it a generator and buffers rows in a
// fixed-size chunk that flushes by bulk append, so the only per-record
// allocations are the columns themselves.
//
// The RNG draw order per record is a frozen contract (match draw, then the
// activity noise draw, then — with no further draws — the PII hash and dup
// check), identical to the struct-era builder's.
type builder struct {
	cfg     Config
	rng     *rand.Rand
	cols    Columns // flushed rows; owns the ZIP dictionary
	chunk   Columns // pending rows when chunked; zip indexes point into cols.zipDict
	chunked bool
	total   int32 // rows across cols + chunk = the next user ID
	index   *piiIndex
	at      keyAt
	zipIdx  map[string]uint16
	scratch []byte
}

// newBuilder sizes the builder for an expected voter count. chunkSize 0
// appends directly to the final columns (Build); positive values buffer
// that many rows per flush (Stream).
func newBuilder(cfg Config, expectedVoters, chunkSize int) *builder {
	b := &builder{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		zipIdx:  make(map[string]uint16, 256),
		scratch: make([]byte, 0, 128),
	}
	b.at = b.keyAt
	est := int(float64(expectedVoters) * cfg.BaseMatchRate)
	b.index = newPIIIndex(est)
	b.cols.reserve(est + est/32)
	if chunkSize > 0 {
		b.chunked = true
		b.chunk.reserve(chunkSize)
	}
	return b
}

// keyAt resolves a user ID to its PII digest across the flushed columns and
// the pending chunk.
func (b *builder) keyAt(id int32) *[32]byte {
	if int(id) < b.cols.n {
		return &b.cols.pii[id]
	}
	return &b.chunk.pii[int(id)-b.cols.n]
}

// consume applies the match model to one voter record.
func (b *builder) consume(rec *voter.Record) error {
	if b.rng.Float64() > b.cfg.BaseMatchRate*matchRateFactor(rec) {
		return nil
	}
	activity := b.cfg.MeanSessions * activityFactor(rec) * lognormalish(b.rng)
	if rec.State == demo.StateFL {
		activity *= b.cfg.FLActivityBoost
	}
	var key [32]byte
	key, b.scratch = hashPIIRaw(rec.FirstName, rec.LastName, rec.Address, rec.ZIP, b.scratch)
	if b.index.lookup(&key, b.at) >= 0 {
		// PII collision (same name+address): the platform would merge or
		// reject; we keep the first account. The RNG draws above already
		// happened, exactly as in the struct-era builder.
		return nil
	}
	age := rec.Age()
	if age < 0 || age > math.MaxUint8 {
		return fmt.Errorf("population: voter %s age %d outside column range", rec.ID, age)
	}
	zi, err := b.zipIndex(rec.ZIP)
	if err != nil {
		return err
	}
	dst := &b.cols
	if b.chunked {
		dst = &b.chunk
	}
	dst.appendRow(uint8(age), rec.Gender, rec.Race, rec.State, zi, activity, b.cfg.TravelProb, key)
	b.index.insert(&key, b.total, b.at)
	b.total++
	return nil
}

// zipIndex interns a ZIP code into the dictionary.
func (b *builder) zipIndex(zip string) (uint16, error) {
	if i, ok := b.zipIdx[zip]; ok {
		return i, nil
	}
	if len(b.cols.zipDict) > math.MaxUint16 {
		return 0, fmt.Errorf("population: more than %d distinct ZIP codes", math.MaxUint16+1)
	}
	i := uint16(len(b.cols.zipDict))
	b.cols.zipDict = append(b.cols.zipDict, zip)
	b.zipIdx[zip] = i
	return i, nil
}

// flush bulk-appends the pending chunk into the final columns.
func (b *builder) flush() {
	if b.chunk.n == 0 {
		return
	}
	b.cols.appendColumns(&b.chunk)
	b.chunk.resetRows()
}

// finish seals the columns. The dup-detection index is dropped here: it is
// pure acceleration over the pii column, LookupPII rebuilds it on demand,
// and the steady-state population then pays only for its columns.
func (b *builder) finish() (*Population, error) {
	b.flush()
	if b.cols.n == 0 {
		return nil, fmt.Errorf("population: no users matched")
	}
	b.cols.compact()
	return &Population{cols: b.cols}, nil
}

// Stream builds the population straight from generator configurations,
// chunkSize accepted users at a time, without materializing voter registries
// or intermediate user objects — the construction path for multi-million-
// user worlds. For identical Config and generator inputs its output is
// byte-identical to Build over voter.Generate's registries, at every chunk
// size (the stream property suite pins chunk sizes 1, 7, and 1024).
//
// Stream does not retain registries, so worlds built this way cannot serve
// audits that read the registry itself (stratified sampling); it exists for
// delivery-scale benchmarking and population-level measurements.
func Stream(cfg Config, chunkSize int, gens ...voter.GeneratorConfig) (*Population, error) {
	cfg.setDefaults()
	if chunkSize <= 0 {
		return nil, fmt.Errorf("population: chunk size must be positive, got %d", chunkSize)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("population: no generator configs")
	}
	if cfg.BaseMatchRate <= 0 || cfg.BaseMatchRate > 1 {
		return nil, fmt.Errorf("population: BaseMatchRate %v outside (0,1]", cfg.BaseMatchRate)
	}
	voters := 0
	for _, gc := range gens {
		voters += gc.NumVoters
	}
	b := newBuilder(cfg, voters, chunkSize)
	var rec voter.Record
	for _, gc := range gens {
		g, err := voter.NewGenerator(gc)
		if err != nil {
			return nil, err
		}
		for g.Next(&rec) {
			if err := b.consume(&rec); err != nil {
				return nil, err
			}
			if b.chunk.n >= chunkSize {
				b.flush()
			}
		}
	}
	return b.finish()
}
