package population

import (
	"runtime"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// TestStreamChunkSizeInvariance: Stream's output must be byte-identical at
// every chunk size — one-row chunks, a prime size that never aligns with the
// flush boundary, and a large one — and identical to the one-shot Build over
// the materialized registries.
func TestStreamChunkSizeInvariance(t *testing.T) {
	cfg := Config{Seed: 301}
	gens := diffGenConfigs(31)
	ref, err := Build(cfg, diffRegistries(t, 31)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 1024} {
		pop, err := Stream(cfg, chunk, gens...)
		if err != nil {
			t.Fatal(err)
		}
		if pop.Len() != ref.Len() {
			t.Fatalf("chunk %d: size %d, want %d", chunk, pop.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if !sameUser(pop.View(i), ref.View(i)) {
				t.Fatalf("chunk %d: user %d diverged from one-shot build", chunk, i)
			}
		}
	}
}

func TestStreamErrors(t *testing.T) {
	gens := diffGenConfigs(32)
	if _, err := Stream(Config{Seed: 1}, 0, gens...); err == nil {
		t.Error("zero chunk size: want error")
	}
	if _, err := Stream(Config{Seed: 1}, 64); err == nil {
		t.Error("no generators: want error")
	}
	if _, err := Stream(Config{Seed: 1, BaseMatchRate: 2}, 64, gens...); err == nil {
		t.Error("bad match rate: want error")
	}
	bad := gens[0]
	bad.NumVoters = 0
	if _, err := Stream(Config{Seed: 1}, 64, bad); err == nil {
		t.Error("invalid generator config: want error")
	}
}

// maxRetainedBytesPerUser is the documented steady-state memory budget of
// the columnar layout: 54 bytes of column data per user (1 age + 1 gender +
// 1 race + 1 state + 2 zip index + 8 activity + 8 travel + 32 pii digest),
// ×9/8 for the slack compact() tolerates, plus a small allowance for the ZIP
// dictionary and slice headers. The legacy struct layout retained ~190
// bytes/user (80-byte struct, 64-byte heap hex key, ~50-byte map entry), so
// this asserts the ≥3x reduction the columnar refactor exists for.
const maxRetainedBytesPerUser = 64

// TestMemoryBudgetPerUser checks both the accounting (MemoryBytes) and the
// actual heap: building a population must not retain more than the budget
// per user.
func TestMemoryBudgetPerUser(t *testing.T) {
	fl := voter.DefaultGeneratorConfig(demo.StateFL, 41)
	fl.NumVoters = 60000
	nc := voter.DefaultGeneratorConfig(demo.StateNC, 42)
	nc.NumVoters = 60000

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	pop, err := Stream(Config{Seed: 401}, 8192, fl, nc)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	n := int64(pop.Len())
	if got := pop.MemoryBytes() / n; got > maxRetainedBytesPerUser {
		t.Errorf("accounted bytes/user %d over budget %d", got, maxRetainedBytesPerUser)
	}
	// Live-heap growth includes the ZIP dictionary, runtime slack, and any
	// allocator noise, so give it 2x headroom over the column budget.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 2*maxRetainedBytesPerUser*n {
		t.Errorf("heap grew %d bytes for %d users (%d/user), budget %d/user (2x headroom)",
			growth, n, growth/n, 2*maxRetainedBytesPerUser)
	}
}

// TestViewAccessorsDoNotAllocate pins the hot-path contract: reading user
// attributes through a view performs zero heap allocations. (PIIKey is
// excluded — it materializes a hex string by design.)
func TestViewAccessorsDoNotAllocate(t *testing.T) {
	pop, err := Build(Config{Seed: 402}, diffRegistries(t, 43)...)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	var sinkState demo.State
	allocs := testing.AllocsPerRun(1000, func() {
		u := pop.View(17 % pop.Len())
		sink += u.Activity() + u.TravelProb() + float64(u.Age())
		if u.Gender() == demo.GenderFemale && u.Race() == demo.RaceBlack {
			sink++
		}
		sinkState = u.State()
		_ = u.AgeBucket()
		_ = u.ZIP()
	})
	if allocs != 0 {
		t.Errorf("view accessors allocated %v times per run, want 0", allocs)
	}
	_ = sink
	_ = sinkState
}
