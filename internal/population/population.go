// Package population models the platform's user base. Users are derived
// from voter registries via a probabilistic account-match model (not every
// voter has an account, and match rates differ by demographic — §3.2's
// caveat that "each demographic group may not have the same percentage of
// voters with Facebook accounts"), carry per-user activity rates ("may not
// have the same level of Facebook activity"), and expose the ground-truth
// engagement behaviour that the platform's machine-learned delivery
// optimization is trained on (package platform).
//
// The user store is columnar (see Columns): parallel attribute slices
// indexed by dense user ID, read through the UserView accessor. The layout
// is what lets a multi-million-user world fit in memory; the differential
// suite in legacy_oracle_test.go pins it byte-identical to the struct-based
// builder it replaced.
//
// The behaviour model is where documented population-level engagement
// patterns enter the simulation — homophily, women's higher engagement with
// child imagery, older men's engagement with images of young women, and
// industry workforce composition. The delivery algorithm never reads these
// parameters; it only sees logged engagement outcomes, mirroring how the
// real platform's biases arise from its training data (§2.1).
package population

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// HashPII computes the normalized PII hash used to match uploaded audience
// lists to accounts: lowercase, trimmed, SHA-256 over name|address|zip,
// hex-encoded. This is the advertiser-side upload path, exactly as real
// PII-matching pipelines hash client-side before transmission.
//
// The platform-side account records store the same digest in raw form,
// computed by hashPIIRaw on an allocation-free path; FuzzHashPII pins the
// two implementations to agree on arbitrary input.
func HashPII(first, last, address, zip string) string {
	norm := func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	h := sha256.Sum256([]byte(norm(first) + "|" + norm(last) + "|" + norm(address) + "|" + norm(zip)))
	return hex.EncodeToString(h[:])
}

// appendNormalized appends lowercase(trimmed(s)) to buf rune by rune,
// without allocating. Per-rune unicode.ToLower over a range loop matches
// strings.ToLower byte for byte, including the U+FFFD replacement of
// invalid UTF-8.
func appendNormalized(buf []byte, s string) []byte {
	for _, r := range strings.TrimSpace(s) {
		buf = utf8.AppendRune(buf, unicode.ToLower(r))
	}
	return buf
}

// hashPIIRaw is the account-side PII hash: the same normalization contract
// as HashPII, producing the raw 32-byte digest the pii column stores. It
// reuses scratch for the normalized bytes and returns it for the next call.
func hashPIIRaw(first, last, address, zip string, scratch []byte) ([32]byte, []byte) {
	buf := scratch[:0]
	buf = appendNormalized(buf, first)
	buf = append(buf, '|')
	buf = appendNormalized(buf, last)
	buf = append(buf, '|')
	buf = appendNormalized(buf, address)
	buf = append(buf, '|')
	buf = appendNormalized(buf, zip)
	return sha256.Sum256(buf), buf
}

// Config controls population construction.
type Config struct {
	Seed int64
	// BaseMatchRate is the probability a voter has a matchable account,
	// before demographic adjustments. Default 0.65.
	BaseMatchRate float64
	// TravelProb is the per-impression out-of-state probability.
	// Default 0.004, consistent with the <1% out-of-state delivery §3.3
	// reports for state-level splits.
	TravelProb float64
	// MeanSessions is the mean sessions/day across the population.
	// Default 6.
	MeanSessions float64
	// FLActivityBoost multiplies the activity of Florida users (default 1).
	// Setting it away from 1 injects a location confounder; the A4 ablation
	// uses it to show the reversed-copy aggregation cancels such
	// confounders (§3.3).
	FLActivityBoost float64
}

func (c *Config) setDefaults() {
	if c.BaseMatchRate == 0 {
		c.BaseMatchRate = 0.65
	}
	if c.TravelProb == 0 {
		c.TravelProb = 0.004
	}
	if c.MeanSessions == 0 {
		c.MeanSessions = 6
	}
	if c.FLActivityBoost == 0 {
		c.FLActivityBoost = 1
	}
}

// Population is the set of platform users in columnar form, indexed on
// demand for Custom Audience matching.
type Population struct {
	cols Columns

	// mu guards index. The PII index is pure acceleration over the pii
	// column: the builder drops its dup-detection table when construction
	// finishes (steady state then pays only for the columns), and the first
	// LookupPII — including the first after a platform Restore onto a
	// freshly rebuilt world — rebuilds it here.
	mu    sync.Mutex
	index *piiIndex
}

// Len returns the number of users.
func (p *Population) Len() int { return p.cols.n }

// View returns the accessor for user i. Views are values; creating one does
// not allocate.
func (p *Population) View(i int) UserView { return UserView{c: &p.cols, i: int32(i)} }

// MemoryBytes reports the retained storage of the columns plus the PII
// index if it has been built — the quantity the bytes-per-user budget and
// BENCH_population measure.
func (p *Population) MemoryBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.cols.bytes()
	if p.index != nil {
		b += p.index.bytes()
	}
	return b
}

// LookupPII returns the user with the given hex PII hash. The first call
// (re)builds the PII index from the pii column.
func (p *Population) LookupPII(key string) (UserView, bool) {
	var k [32]byte
	if len(key) != 64 {
		return UserView{}, false
	}
	if _, err := hex.Decode(k[:], []byte(key)); err != nil {
		return UserView{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.index == nil {
		p.index = newPIIIndex(p.cols.n)
		for i := 0; i < p.cols.n; i++ {
			p.index.insert(&p.cols.pii[i], int32(i), p.keyAt)
		}
	}
	id := p.index.lookup(&k, p.keyAt)
	if id < 0 {
		return UserView{}, false
	}
	return UserView{c: &p.cols, i: id}, true
}

// keyAt resolves a user ID to its stored PII digest; the caller holds p.mu.
func (p *Population) keyAt(id int32) *[32]byte { return &p.cols.pii[id] }

// Build derives users from one or more voter registries. Match rates and
// activity vary by demographic: younger voters are more likely to have an
// account, while accounts held by older users show somewhat higher daily
// activity — two of the mundane asymmetries that make the paper refuse to
// expect 50/50 delivery even for balanced targeting (§5.2, footnote 5).
//
// Build consumes one RNG draw sequence per accepted-or-rejected record in
// registry order; the legacy-oracle differential suite pins every produced
// field to the struct-era builder's output.
func Build(cfg Config, registries ...*voter.Registry) (*Population, error) {
	cfg.setDefaults()
	if len(registries) == 0 {
		return nil, fmt.Errorf("population: no registries")
	}
	if cfg.BaseMatchRate <= 0 || cfg.BaseMatchRate > 1 {
		return nil, fmt.Errorf("population: BaseMatchRate %v outside (0,1]", cfg.BaseMatchRate)
	}
	voters := 0
	for _, reg := range registries {
		voters += len(reg.Records)
	}
	b := newBuilder(cfg, voters, 0)
	for _, reg := range registries {
		for i := range reg.Records {
			if err := b.consume(&reg.Records[i]); err != nil {
				return nil, err
			}
		}
	}
	return b.finish()
}

// matchRateFactor adjusts account-match probability by demographic: account
// ownership declines with age, mildly.
func matchRateFactor(rec *voter.Record) float64 {
	switch rec.AgeBucket() {
	case demo.Age18to24:
		return 1.15
	case demo.Age25to34:
		return 1.12
	case demo.Age35to44:
		return 1.08
	case demo.Age45to54:
		return 1.0
	case demo.Age55to64:
		return 0.92
	default:
		return 0.80
	}
}

// activityFactor adjusts daily sessions by demographic: among account
// holders, older users browse somewhat more.
func activityFactor(rec *voter.Record) float64 {
	switch rec.AgeBucket() {
	case demo.Age18to24:
		return 0.85
	case demo.Age25to34:
		return 0.9
	case demo.Age35to44:
		return 0.95
	case demo.Age45to54:
		return 1.05
	case demo.Age55to64:
		return 1.15
	default:
		return 1.25
	}
}

// lognormalish draws a positive multiplicative noise term with mean 1
// (lognormal with σ = 0.3, mean-corrected).
func lognormalish(rng *rand.Rand) float64 {
	return math.Exp(0.3*rng.NormFloat64() - 0.045)
}
