// Package population models the platform's user base. Users are derived
// from voter registries via a probabilistic account-match model (not every
// voter has an account, and match rates differ by demographic — §3.2's
// caveat that "each demographic group may not have the same percentage of
// voters with Facebook accounts"), carry per-user activity rates ("may not
// have the same level of Facebook activity"), and expose the ground-truth
// engagement behaviour that the platform's machine-learned delivery
// optimization is trained on (package platform).
//
// The behaviour model is where documented population-level engagement
// patterns enter the simulation — homophily, women's higher engagement with
// child imagery, older men's engagement with images of young women, and
// industry workforce composition. The delivery algorithm never reads these
// parameters; it only sees logged engagement outcomes, mirroring how the
// real platform's biases arise from its training data (§2.1).
package population

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// User is one platform account.
type User struct {
	ID     int
	State  demo.State
	ZIP    string
	Age    int
	Gender demo.Gender
	Race   demo.Race
	// Activity is the user's expected browsing sessions per simulated day;
	// each session offers one ad slot.
	Activity float64
	// PIIKey is the hash of the user's registration PII, the join key for
	// Custom Audience matching.
	PIIKey string
	// TravelProb is the per-impression probability the user is currently
	// outside their home state (the <1% leakage §3.3 measures).
	TravelProb float64
}

// AgeBucket returns the user's Facebook reporting bucket.
func (u *User) AgeBucket() demo.AgeBucket { return demo.BucketForAge(u.Age) }

// HashPII computes the normalized PII hash used to match uploaded audience
// lists to accounts: lowercase, trimmed, SHA-256 over name|address|zip. Both
// the advertiser-side upload path and the platform-side account records use
// this function, as with real PII-matching pipelines.
func HashPII(first, last, address, zip string) string {
	norm := func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	h := sha256.Sum256([]byte(norm(first) + "|" + norm(last) + "|" + norm(address) + "|" + norm(zip)))
	return hex.EncodeToString(h[:])
}

// Config controls population construction.
type Config struct {
	Seed int64
	// BaseMatchRate is the probability a voter has a matchable account,
	// before demographic adjustments. Default 0.65.
	BaseMatchRate float64
	// TravelProb is the per-impression out-of-state probability.
	// Default 0.004, consistent with the <1% out-of-state delivery §3.3
	// reports for state-level splits.
	TravelProb float64
	// MeanSessions is the mean sessions/day across the population.
	// Default 6.
	MeanSessions float64
	// FLActivityBoost multiplies the activity of Florida users (default 1).
	// Setting it away from 1 injects a location confounder; the A4 ablation
	// uses it to show the reversed-copy aggregation cancels such
	// confounders (§3.3).
	FLActivityBoost float64
}

func (c *Config) setDefaults() {
	if c.BaseMatchRate == 0 {
		c.BaseMatchRate = 0.65
	}
	if c.TravelProb == 0 {
		c.TravelProb = 0.004
	}
	if c.MeanSessions == 0 {
		c.MeanSessions = 6
	}
	if c.FLActivityBoost == 0 {
		c.FLActivityBoost = 1
	}
}

// Population is the set of platform users, indexed for Custom Audience
// matching.
type Population struct {
	Users []User
	byPII map[string]int // PIIKey -> index into Users
}

// Build derives users from one or more voter registries. Match rates and
// activity vary by demographic: younger voters are more likely to have an
// account, while accounts held by older users show somewhat higher daily
// activity — two of the mundane asymmetries that make the paper refuse to
// expect 50/50 delivery even for balanced targeting (§5.2, footnote 5).
func Build(cfg Config, registries ...*voter.Registry) (*Population, error) {
	cfg.setDefaults()
	if len(registries) == 0 {
		return nil, fmt.Errorf("population: no registries")
	}
	if cfg.BaseMatchRate <= 0 || cfg.BaseMatchRate > 1 {
		return nil, fmt.Errorf("population: BaseMatchRate %v outside (0,1]", cfg.BaseMatchRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Population{byPII: map[string]int{}}
	id := 0
	for _, reg := range registries {
		for i := range reg.Records {
			rec := &reg.Records[i]
			if rng.Float64() > cfg.BaseMatchRate*matchRateFactor(rec) {
				continue
			}
			activity := cfg.MeanSessions * activityFactor(rec) * lognormalish(rng)
			if rec.State == demo.StateFL {
				activity *= cfg.FLActivityBoost
			}
			u := User{
				ID:         id,
				State:      rec.State,
				ZIP:        rec.ZIP,
				Age:        rec.Age(),
				Gender:     rec.Gender,
				Race:       rec.Race,
				Activity:   activity,
				PIIKey:     HashPII(rec.FirstName, rec.LastName, rec.Address, rec.ZIP),
				TravelProb: cfg.TravelProb,
			}
			if _, dup := p.byPII[u.PIIKey]; dup {
				// PII collision (same name+address): the platform would
				// merge or reject; we keep the first account.
				continue
			}
			p.byPII[u.PIIKey] = id
			p.Users = append(p.Users, u)
			id++
		}
	}
	if len(p.Users) == 0 {
		return nil, fmt.Errorf("population: no users matched")
	}
	return p, nil
}

// LookupPII returns the user with the given PII hash.
func (p *Population) LookupPII(key string) (*User, bool) {
	i, ok := p.byPII[key]
	if !ok {
		return nil, false
	}
	return &p.Users[i], true
}

// matchRateFactor adjusts account-match probability by demographic: account
// ownership declines with age, mildly.
func matchRateFactor(rec *voter.Record) float64 {
	switch rec.AgeBucket() {
	case demo.Age18to24:
		return 1.15
	case demo.Age25to34:
		return 1.12
	case demo.Age35to44:
		return 1.08
	case demo.Age45to54:
		return 1.0
	case demo.Age55to64:
		return 0.92
	default:
		return 0.80
	}
}

// activityFactor adjusts daily sessions by demographic: among account
// holders, older users browse somewhat more.
func activityFactor(rec *voter.Record) float64 {
	switch rec.AgeBucket() {
	case demo.Age18to24:
		return 0.85
	case demo.Age25to34:
		return 0.9
	case demo.Age35to44:
		return 0.95
	case demo.Age45to54:
		return 1.05
	case demo.Age55to64:
		return 1.15
	default:
		return 1.25
	}
}

// lognormalish draws a positive multiplicative noise term with mean 1
// (lognormal with σ = 0.3, mean-corrected).
func lognormalish(rng *rand.Rand) float64 {
	return math.Exp(0.3*rng.NormFloat64() - 0.045)
}
