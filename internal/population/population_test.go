package population

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func testRegistry(t *testing.T, state demo.State, n int) *voter.Registry {
	t.Helper()
	cfg := voter.DefaultGeneratorConfig(state, 7)
	cfg.NumVoters = n
	reg, err := voter.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestHashPIINormalization(t *testing.T) {
	a := HashPII("John", "Smith", "1 Oak St", "33101")
	b := HashPII(" john ", "SMITH", "1 oak st", "33101")
	if a != b {
		t.Error("hash must be case/whitespace insensitive")
	}
	c := HashPII("Jane", "Smith", "1 Oak St", "33101")
	if a == c {
		t.Error("different people must hash differently")
	}
	if len(a) != 64 {
		t.Errorf("hash length %d", len(a))
	}
}

func TestBuildMatchesSubsetOfVoters(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 5000)
	nc := testRegistry(t, demo.StateNC, 5000)
	pop, err := Build(Config{Seed: 1}, fl, nc)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() == 0 || pop.Len() >= 10000 {
		t.Fatalf("population size %d", pop.Len())
	}
	// Roughly the base match rate should survive.
	frac := float64(pop.Len()) / 10000
	if frac < 0.45 || frac > 0.85 {
		t.Errorf("match fraction %v", frac)
	}
	for i := 0; i < pop.Len(); i++ {
		u := pop.View(i)
		if u.ID() != i {
			t.Fatalf("user %d reports ID %d", i, u.ID())
		}
		if u.Activity() <= 0 {
			t.Fatalf("user %d activity %v", i, u.Activity())
		}
		if len(u.PIIKey()) != 64 {
			t.Fatalf("user %d PII key %q", i, u.PIIKey())
		}
	}
}

func TestBuildLookupPII(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 2000)
	pop, err := Build(Config{Seed: 2}, fl)
	if err != nil {
		t.Fatal(err)
	}
	// Every built user must be findable by the hash of some voter's PII.
	found := 0
	for i := range fl.Records {
		r := &fl.Records[i]
		key := HashPII(r.FirstName, r.LastName, r.Address, r.ZIP)
		if u, ok := pop.LookupPII(key); ok {
			found++
			if u.State() != demo.StateFL {
				t.Errorf("matched user in wrong state %v", u.State())
			}
		}
	}
	if found != pop.Len() {
		t.Errorf("found %d voters matching, population has %d", found, pop.Len())
	}
	if _, ok := pop.LookupPII("nope"); ok {
		t.Error("bogus key should not match")
	}
}

func TestBuildMatchRateDeclinesWithAge(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 60000)
	pop, err := Build(Config{Seed: 3}, fl)
	if err != nil {
		t.Fatal(err)
	}
	voterCount := map[demo.AgeBucket]int{}
	for i := range fl.Records {
		voterCount[fl.Records[i].AgeBucket()]++
	}
	userCount := map[demo.AgeBucket]int{}
	for i := 0; i < pop.Len(); i++ {
		userCount[pop.View(i).AgeBucket()]++
	}
	young := float64(userCount[demo.Age18to24]) / float64(voterCount[demo.Age18to24])
	old := float64(userCount[demo.Age65Plus]) / float64(voterCount[demo.Age65Plus])
	if young <= old {
		t.Errorf("match rate young %v <= old %v", young, old)
	}
}

func TestBuildActivityRisesWithAge(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 60000)
	pop, err := Build(Config{Seed: 4}, fl)
	if err != nil {
		t.Fatal(err)
	}
	var youngSum, oldSum float64
	var youngN, oldN int
	for i := 0; i < pop.Len(); i++ {
		u := pop.View(i)
		switch u.AgeBucket() {
		case demo.Age18to24:
			youngSum += u.Activity()
			youngN++
		case demo.Age65Plus:
			oldSum += u.Activity()
			oldN++
		}
	}
	if oldSum/float64(oldN) <= youngSum/float64(youngN) {
		t.Errorf("activity old %v <= young %v", oldSum/float64(oldN), youngSum/float64(youngN))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Seed: 1}); err == nil {
		t.Error("no registries: want error")
	}
	fl := testRegistry(t, demo.StateFL, 100)
	if _, err := Build(Config{Seed: 1, BaseMatchRate: 1.5}, fl); err == nil {
		t.Error("bad match rate: want error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 3000)
	a, err := Build(Config{Seed: 5}, fl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 5}, fl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !sameUser(a.View(i), b.View(i)) {
			t.Fatal("same-seed populations differ")
		}
	}
}

// sameUser compares every column of two user views field by field.
func sameUser(a, b UserView) bool {
	return a.ID() == b.ID() && a.Age() == b.Age() && a.Gender() == b.Gender() &&
		a.Race() == b.Race() && a.State() == b.State() && a.ZIP() == b.ZIP() &&
		a.Activity() == b.Activity() && a.TravelProb() == b.TravelProb() &&
		a.PIIKey() == b.PIIKey()
}

func TestHashPIIProperty(t *testing.T) {
	// Property: hashing is deterministic and normalization-invariant, and
	// any single-field change alters the hash.
	f := func(a, b, c, d string) bool {
		h1 := HashPII(a, b, c, d)
		h2 := HashPII(" "+a+" ", b, c, d)
		if h1 != h2 {
			return false
		}
		return HashPII(a+"x", b, c, d) != h1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLookupPIIConcurrentFirstUse: the builder drops the PII index when
// construction finishes and LookupPII rebuilds it lazily on first use. The
// rebuild must be safe and correct when the first uses arrive concurrently.
func TestLookupPIIConcurrentFirstUse(t *testing.T) {
	fl := testRegistry(t, demo.StateFL, 3000)
	pop, err := Build(Config{Seed: 6}, fl)
	if err != nil {
		t.Fatal(err)
	}
	n := pop.Len()
	if n > 256 {
		n = 256
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = pop.View(i).PIIKey()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, key := range keys {
				u, ok := pop.LookupPII(key)
				if !ok || u.ID() != i {
					errs <- fmt.Errorf("key %d resolved to (%v, %v)", i, u, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
