package population

import (
	"encoding/hex"
	"testing"
)

// FuzzHashPII pins the agreement between the two independent PII hashing
// implementations: HashPII (the advertiser upload side — strings.ToLower,
// strings.TrimSpace, string concatenation) and hashPIIRaw (the account-side
// streaming normalizer the columnar builder uses, which lowercases rune by
// rune into a reused scratch buffer). If they ever disagree on any input —
// unicode case pairs, interior whitespace, empty fields, invalid UTF-8 —
// Custom Audience matching silently breaks, so the property is fuzzed, not
// just spot-checked.
func FuzzHashPII(f *testing.F) {
	f.Add("John", "Smith", "1 Oak St", "33101")
	f.Add(" john ", "SMITH", "1  oak  st", "33101")    // interior whitespace preserved
	f.Add("", "", "", "")                              // all empty
	f.Add("Åsa", "Öberg", "Ünter den Linden", "27000") // non-ASCII case folding
	f.Add("ΣΟΦΙΑ", "ΠΑΠΑΣ", "ΟΔΟΣ 1", "32001")         // Greek final sigma
	f.Add("İstanbul", "IŞIK", "yol", "32002")          // dotted capital I
	f.Add("a\tb", "c\nd", "e f", "g h")                // exotic whitespace
	f.Add("\xff\xfe", "ok", "\x80", "33")              // invalid UTF-8
	f.Add("ＦＵＬＬＷＩＤＴＨ", "ｎａｍｅ", "１２３", "34000")         // fullwidth forms
	f.Fuzz(func(t *testing.T, first, last, address, zip string) {
		want := HashPII(first, last, address, zip)
		raw, _ := hashPIIRaw(first, last, address, zip, nil)
		if got := hex.EncodeToString(raw[:]); got != want {
			t.Fatalf("account-side hash diverged from upload-side:\n got %s\nwant %s\ninput %q %q %q %q",
				got, want, first, last, address, zip)
		}
		// Scratch reuse must not change the digest.
		scratch := make([]byte, 0, 4)
		again, _ := hashPIIRaw(first, last, address, zip, scratch)
		if again != raw {
			t.Fatal("hashPIIRaw not deterministic under scratch reuse")
		}
	})
}
