package population

import (
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// The legacy struct-of-structs population builder, kept verbatim as a test
// oracle. This is the pre-columnar implementation (one User struct per
// account, hex PII keys, a map index), and the differential suite below pins
// the columnar Build and Stream paths to its exact output: same accepted
// voters in the same order, same RNG-derived activity values, same PII keys.
// Do not "modernize" this code — its value is that it does not change.

type legacyUser struct {
	ID         int
	State      demo.State
	ZIP        string
	Age        int
	Gender     demo.Gender
	Race       demo.Race
	Activity   float64
	PIIKey     string
	TravelProb float64
}

func legacyBuild(cfg Config, registries ...*voter.Registry) []legacyUser {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var users []legacyUser
	byPII := map[string]int{}
	id := 0
	for _, reg := range registries {
		for i := range reg.Records {
			rec := &reg.Records[i]
			if rng.Float64() > cfg.BaseMatchRate*matchRateFactor(rec) {
				continue
			}
			activity := cfg.MeanSessions * activityFactor(rec) * lognormalish(rng)
			if rec.State == demo.StateFL {
				activity *= cfg.FLActivityBoost
			}
			u := legacyUser{
				ID:         id,
				State:      rec.State,
				ZIP:        rec.ZIP,
				Age:        rec.Age(),
				Gender:     rec.Gender,
				Race:       rec.Race,
				Activity:   activity,
				PIIKey:     HashPII(rec.FirstName, rec.LastName, rec.Address, rec.ZIP),
				TravelProb: cfg.TravelProb,
			}
			if _, dup := byPII[u.PIIKey]; dup {
				continue
			}
			byPII[u.PIIKey] = id
			users = append(users, u)
			id++
		}
	}
	return users
}

// diffSeeds are the configurations the differential suite runs: three
// distinct (registry seed, build seed) pairs, one with a non-default match
// rate and FL boost so the adjusted code paths are exercised too.
var diffSeeds = []struct {
	name string
	reg  int64
	cfg  Config
}{
	{name: "defaults", reg: 11, cfg: Config{Seed: 101}},
	{name: "low_match", reg: 12, cfg: Config{Seed: 102, BaseMatchRate: 0.4}},
	{name: "fl_boost", reg: 13, cfg: Config{Seed: 103, FLActivityBoost: 1.5, TravelProb: 0.01}},
}

func diffGenConfigs(regSeed int64) []voter.GeneratorConfig {
	fl := voter.DefaultGeneratorConfig(demo.StateFL, regSeed)
	fl.NumVoters = 4000
	nc := voter.DefaultGeneratorConfig(demo.StateNC, regSeed+1)
	nc.NumVoters = 3000
	return []voter.GeneratorConfig{fl, nc}
}

func diffRegistries(t *testing.T, regSeed int64) []*voter.Registry {
	t.Helper()
	var regs []*voter.Registry
	for _, gc := range diffGenConfigs(regSeed) {
		reg, err := voter.Generate(gc)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg)
	}
	return regs
}

// assertMatchesLegacy compares every user field of a columnar population to
// the legacy oracle's output.
func assertMatchesLegacy(t *testing.T, pop *Population, want []legacyUser) {
	t.Helper()
	if pop.Len() != len(want) {
		t.Fatalf("population size %d, legacy oracle %d", pop.Len(), len(want))
	}
	for i := range want {
		u, w := pop.View(i), &want[i]
		if u.ID() != w.ID || u.State() != w.State || u.ZIP() != w.ZIP ||
			u.Age() != w.Age || u.Gender() != w.Gender || u.Race() != w.Race ||
			u.Activity() != w.Activity || u.PIIKey() != w.PIIKey ||
			u.TravelProb() != w.TravelProb {
			t.Fatalf("user %d diverged from legacy oracle:\n got {id:%d st:%v zip:%q age:%d g:%v r:%v act:%v travel:%v pii:%s}\nwant %+v",
				i, u.ID(), u.State(), u.ZIP(), u.Age(), u.Gender(), u.Race(), u.Activity(), u.TravelProb(), u.PIIKey(), *w)
		}
		if got, ok := pop.LookupPII(w.PIIKey); !ok || got.ID() != w.ID {
			t.Fatalf("user %d not findable by its legacy PII key", i)
		}
	}
}

// TestBuildMatchesLegacyOracle pins the columnar Build to the legacy struct
// builder field for field at three seeds.
func TestBuildMatchesLegacyOracle(t *testing.T) {
	for _, tc := range diffSeeds {
		t.Run(tc.name, func(t *testing.T) {
			regs := diffRegistries(t, tc.reg)
			want := legacyBuild(tc.cfg, regs...)
			pop, err := Build(tc.cfg, regs...)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesLegacy(t, pop, want)
		})
	}
}

// TestStreamMatchesLegacyOracle pins the streaming construction path — which
// never materializes a registry or a voter slice — to the same legacy
// output.
func TestStreamMatchesLegacyOracle(t *testing.T) {
	for _, tc := range diffSeeds {
		t.Run(tc.name, func(t *testing.T) {
			want := legacyBuild(tc.cfg, diffRegistries(t, tc.reg)...)
			pop, err := Stream(tc.cfg, 512, diffGenConfigs(tc.reg)...)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesLegacy(t, pop, want)
		})
	}
}

// TestGeneratorMatchesGenerate pins the record stream itself: NewGenerator+
// Next must emit registries byte-identical to the one-shot Generate.
func TestGeneratorMatchesGenerate(t *testing.T) {
	for _, gc := range diffGenConfigs(17) {
		reg, err := voter.Generate(gc)
		if err != nil {
			t.Fatal(err)
		}
		g, err := voter.NewGenerator(gc)
		if err != nil {
			t.Fatal(err)
		}
		var rec voter.Record
		n := 0
		for g.Next(&rec) {
			if n >= len(reg.Records) {
				t.Fatalf("generator emitted more than %d records", len(reg.Records))
			}
			if rec != reg.Records[n] {
				t.Fatalf("record %d diverged:\n got %+v\nwant %+v", n, rec, reg.Records[n])
			}
			n++
		}
		if n != len(reg.Records) {
			t.Fatalf("generator emitted %d records, Generate %d", n, len(reg.Records))
		}
		for zip, pov := range reg.ZIPPoverty {
			if g.ZIPPoverty()[zip] != pov {
				t.Fatalf("ZIP %s poverty diverged", zip)
			}
		}
	}
}
