package population

import (
	"encoding/hex"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// Columns is the struct-of-arrays user store: one parallel slice per user
// attribute, indexed by dense user ID. The layout exists for scale — a user
// costs ~54 bytes of column data instead of a ~190-byte struct (once the
// heap-allocated hex PII key and the byPII map entry of the old layout are
// counted), and the delivery hot path touches only the columns an auction
// actually reads instead of paging whole user structs through the cache.
//
// ZIP codes are dictionary-encoded: the zip column stores an index into
// zipDict, bounding a 10M-user world's ZIP storage at two bytes per user
// plus one string per distinct ZIP. PII keys are stored as raw 32-byte
// SHA-256 digests; the hex form the advertiser API speaks is materialized
// on demand (UserView.PIIKey).
type Columns struct {
	n        int
	age      []uint8
	gender   []demo.Gender
	race     []demo.Race
	state    []demo.State
	zip      []uint16 // index into zipDict
	zipDict  []string
	activity []float64
	travel   []float64
	pii      [][32]byte
}

// reserve pre-allocates column capacity for about n users.
func (c *Columns) reserve(n int) {
	if n <= 0 {
		return
	}
	c.age = make([]uint8, 0, n)
	c.gender = make([]demo.Gender, 0, n)
	c.race = make([]demo.Race, 0, n)
	c.state = make([]demo.State, 0, n)
	c.zip = make([]uint16, 0, n)
	c.activity = make([]float64, 0, n)
	c.travel = make([]float64, 0, n)
	c.pii = make([][32]byte, 0, n)
}

// appendRow appends one user's attributes to every column.
func (c *Columns) appendRow(age uint8, g demo.Gender, r demo.Race, st demo.State, zip uint16, activity, travel float64, key [32]byte) {
	c.age = append(c.age, age)
	c.gender = append(c.gender, g)
	c.race = append(c.race, r)
	c.state = append(c.state, st)
	c.zip = append(c.zip, zip)
	c.activity = append(c.activity, activity)
	c.travel = append(c.travel, travel)
	c.pii = append(c.pii, key)
	c.n++
}

// appendColumns bulk-appends another column set (a streaming chunk). The
// chunk must share this set's ZIP dictionary.
func (c *Columns) appendColumns(src *Columns) {
	c.age = append(c.age, src.age...)
	c.gender = append(c.gender, src.gender...)
	c.race = append(c.race, src.race...)
	c.state = append(c.state, src.state...)
	c.zip = append(c.zip, src.zip...)
	c.activity = append(c.activity, src.activity...)
	c.travel = append(c.travel, src.travel...)
	c.pii = append(c.pii, src.pii...)
	c.n += src.n
}

// resetRows empties the columns, keeping capacity (chunk reuse).
func (c *Columns) resetRows() {
	c.age = c.age[:0]
	c.gender = c.gender[:0]
	c.race = c.race[:0]
	c.state = c.state[:0]
	c.zip = c.zip[:0]
	c.activity = c.activity[:0]
	c.travel = c.travel[:0]
	c.pii = c.pii[:0]
	c.n = 0
}

// compact re-allocates any column whose capacity overshoots its length by
// more than 1/8, so the retained bytes-per-user stays within the documented
// budget regardless of append growth policy.
func (c *Columns) compact() {
	if cap(c.age) > c.n+c.n/8 {
		c.age = append(make([]uint8, 0, c.n), c.age...)
		c.gender = append(make([]demo.Gender, 0, c.n), c.gender...)
		c.race = append(make([]demo.Race, 0, c.n), c.race...)
		c.state = append(make([]demo.State, 0, c.n), c.state...)
		c.zip = append(make([]uint16, 0, c.n), c.zip...)
		c.activity = append(make([]float64, 0, c.n), c.activity...)
		c.travel = append(make([]float64, 0, c.n), c.travel...)
		c.pii = append(make([][32]byte, 0, c.n), c.pii...)
	}
}

// bytes reports the retained column storage, for the memory-budget tests and
// the population benchmark.
func (c *Columns) bytes() int64 {
	b := int64(cap(c.age)) + int64(cap(c.gender)) + int64(cap(c.race)) + int64(cap(c.state)) +
		2*int64(cap(c.zip)) + 8*int64(cap(c.activity)) + 8*int64(cap(c.travel)) + 32*int64(cap(c.pii))
	for _, z := range c.zipDict {
		b += int64(len(z)) + 16 // string bytes + header
	}
	return b
}

// MakeView builds a standalone single-user view backed by its own one-row
// column set — for tests and tools that evaluate per-user models (behaviour,
// eAR) outside a built population. The view's ID is 0 and its PII key is the
// zero digest.
func MakeView(state demo.State, zip string, age int, g demo.Gender, r demo.Race, activity float64) UserView {
	c := &Columns{zipDict: []string{zip}}
	if age < 0 {
		age = 0
	} else if age > 255 {
		age = 255
	}
	c.appendRow(uint8(age), g, r, state, 0, activity, 0, [32]byte{})
	return UserView{c: c, i: 0}
}

// UserView is a cheap value handle onto one user's row of the columns. It is
// two words, never heap-allocates, and is the type the behaviour model and
// the auction hot path read user attributes through.
type UserView struct {
	c *Columns
	i int32
}

// ID returns the dense user ID (the row index).
func (v UserView) ID() int { return int(v.i) }

// Age returns the user's age in years.
func (v UserView) Age() int { return int(v.c.age[v.i]) }

// AgeBucket returns the user's Facebook reporting bucket.
func (v UserView) AgeBucket() demo.AgeBucket { return demo.BucketForAge(int(v.c.age[v.i])) }

// Gender returns the user's gender.
func (v UserView) Gender() demo.Gender { return v.c.gender[v.i] }

// Race returns the user's self-reported race.
func (v UserView) Race() demo.Race { return v.c.race[v.i] }

// State returns the user's home state.
func (v UserView) State() demo.State { return v.c.state[v.i] }

// ZIP returns the user's home ZIP code.
func (v UserView) ZIP() string { return v.c.zipDict[v.c.zip[v.i]] }

// Activity is the user's expected browsing sessions per simulated day; each
// session offers one ad slot.
func (v UserView) Activity() float64 { return v.c.activity[v.i] }

// TravelProb is the per-impression probability the user is currently outside
// their home state (the <1% leakage §3.3 measures).
func (v UserView) TravelProb() float64 { return v.c.travel[v.i] }

// PIIKey returns the hex form of the user's registration-PII hash, the join
// key for Custom Audience matching. The hex string is materialized on demand;
// only the raw 32-byte digest is stored.
func (v UserView) PIIKey() string { return hex.EncodeToString(v.c.pii[v.i][:]) }
