package population

import (
	"fmt"
	"math"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Behavior is the ground-truth engagement model: the probability that a
// given user clicks a given ad creative. It encodes documented population-
// level engagement patterns; the delivery algorithm never reads it directly,
// only the click outcomes it generates (the engagement logs the platform's
// estimated-action-rate model is trained on).
//
// Pattern sources, all discussed in the paper:
//   - homophily on race and (weakly) gender: minority users respond more to
//     ads featuring people like them (§2.2, refs [16, 41, 53]);
//   - women engage more with images of children (§8: "historically, women
//     were more likely to engage with such ads");
//   - men aged 55+ engage disproportionately with images of young women
//     (§2.2's Musical.ly episode, ref [62]);
//   - engagement with a job ad tracks the probability of working in that
//     industry, i.e. its workforce composition (§6, following Ali et al.).
type Behavior struct {
	cfg BehaviorConfig
}

// BehaviorConfig sets the engagement-pattern strengths (log-odds units).
// AffinityScale multiplies every demographic affinity at once and is the
// knob the A2 ablation sweeps; 0 removes all content-demographic coupling.
type BehaviorConfig struct {
	BaseCTR              float64 // baseline click probability, default 0.02
	AffinityScale        float64 // global multiplier, default 1
	RaceHomophily        float64 // default 1.1
	GenderAffinity       float64 // default 0.18
	AgeProximity         float64 // default 0.9 (penalty at max age distance)
	ChildToWomen         float64 // default 0.9
	YoungWomenToOlderMen float64 // default 1.3
	JobComposition       float64 // default 1.0
}

// DefaultBehaviorConfig returns the calibration used by the experiments.
func DefaultBehaviorConfig() BehaviorConfig {
	return BehaviorConfig{
		BaseCTR:              0.02,
		AffinityScale:        1,
		RaceHomophily:        0.9,
		GenderAffinity:       0.02,
		AgeProximity:         1.6,
		ChildToWomen:         1.2,
		YoungWomenToOlderMen: 2.2,
		JobComposition:       1.0,
	}
}

// NewBehavior validates the config and returns the model.
func NewBehavior(cfg BehaviorConfig) (*Behavior, error) {
	if cfg.BaseCTR <= 0 || cfg.BaseCTR >= 0.5 {
		return nil, fmt.Errorf("population: BaseCTR %v outside (0, 0.5)", cfg.BaseCTR)
	}
	if cfg.AffinityScale < 0 {
		return nil, fmt.Errorf("population: negative AffinityScale %v", cfg.AffinityScale)
	}
	return &Behavior{cfg: cfg}, nil
}

// ClickProb returns P(user clicks | shown the creative). It reads the user
// through the columnar view and never allocates — it sits inside every
// auction of the delivery hot loop.
func (b *Behavior) ClickProb(u UserView, img image.Features) float64 {
	c := &b.cfg
	z := math.Log(c.BaseCTR / (1 - c.BaseCTR))
	if !img.HasPerson {
		return stats.Sigmoid(z)
	}
	s := c.AffinityScale
	gender := u.Gender()
	age := u.Age()

	// Race homophily: raceAxis > 0 is Black presentation; raceSign(u) is +1
	// for Black users, -1 for white. Aligned signs raise engagement.
	z += s * c.RaceHomophily * img.RaceAxis * raceSign(u.Race()) * 0.5

	// Weak gender homophily.
	z += s * c.GenderAffinity * img.GenderAxis * genderSign(gender) * 0.5

	// Age proximity: engagement decays with |user age - pictured age|.
	ageDist := math.Abs(float64(age)-img.AgeYears) / 60
	if ageDist > 1 {
		ageDist = 1
	}
	z -= s * c.AgeProximity * ageDist

	// Women (increasingly with age) engage with images of children. The
	// age gradient must outrun the age-proximity penalty so that older
	// women show the strongest child-image engagement (Figure 3C).
	if gender == demo.GenderFemale {
		z += s * c.ChildToWomen * childness(img) * (0.35 + float64(age)/70)
	}

	// Men 55+ engage with images of young women.
	if gender == demo.GenderMale && age >= 55 {
		z += s * c.YoungWomenToOlderMen * youngWomanness(img)
	}

	// Job ads: engagement tracks the advertised industry's workforce
	// composition for the user's demographic.
	if img.Job != "" {
		z += s * c.JobComposition * JobAffinity(img.Job, gender, u.Race())
	}
	return stats.Sigmoid(z)
}

func raceSign(r demo.Race) float64 {
	switch r {
	case demo.RaceBlack:
		return 1
	case demo.RaceWhite:
		return -1
	}
	return 0
}

func genderSign(g demo.Gender) float64 {
	switch g {
	case demo.GenderFemale:
		return 1
	case demo.GenderMale:
		return -1
	}
	return 0
}

// childness is 1 for an image of a young child, fading to 0 by age 16.
func childness(img image.Features) float64 {
	v := (16 - img.AgeYears) / 10
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// youngWomanness peaks for feminine-presenting images of apparent age ≈ 18
// and fades by the mid-30s.
func youngWomanness(img image.Features) float64 {
	if img.GenderAxis <= 0 {
		return 0
	}
	ageTerm := math.Exp(-math.Pow((img.AgeYears-18)/9, 2))
	return img.GenderAxis * ageTerm
}

// jobShare holds the approximate workforce composition of the §6 job
// categories: the fraction of workers who are female and the fraction who
// are Black. Values are stylized from U.S. labor statistics; only their
// ordering and rough magnitudes matter for reproducing Figure 7's base
// skews (lumber → white men, janitor → Black women, supermarket → women).
type jobShare struct {
	female float64
	black  float64
}

var jobShares = map[string]jobShare{
	"ai-engineer":       {female: 0.20, black: 0.08},
	"doctor":            {female: 0.40, black: 0.09},
	"janitor":           {female: 0.55, black: 0.45},
	"lawyer":            {female: 0.38, black: 0.09},
	"lumber":            {female: 0.05, black: 0.10},
	"nurse":             {female: 0.88, black: 0.25},
	"preschool-teacher": {female: 0.97, black: 0.18},
	"restaurant-server": {female: 0.70, black: 0.18},
	"secretary":         {female: 0.93, black: 0.17},
	"supermarket-clerk": {female: 0.65, black: 0.22},
	"taxi-driver":       {female: 0.15, black: 0.30},
}

// JobAffinity returns the log-odds adjustment for a user demographic
// engaging with an ad for the given job, derived from workforce shares
// (log share relative to an even split). Unknown jobs contribute 0.
func JobAffinity(job string, g demo.Gender, r demo.Race) float64 {
	sh, ok := jobShares[job]
	if !ok {
		return 0
	}
	var z float64
	switch g {
	case demo.GenderFemale:
		z += math.Log(sh.female / 0.5)
	case demo.GenderMale:
		z += math.Log((1 - sh.female) / 0.5)
	}
	// Black workers are ~12% of the U.S. workforce; normalize against that
	// base rate so the adjustment is relative over/under-representation.
	const blackBase = 0.12
	switch r {
	case demo.RaceBlack:
		z += math.Log(sh.black / blackBase)
	case demo.RaceWhite:
		z += math.Log((1 - sh.black) / (1 - blackBase))
	}
	return 0.5 * z
}

// KnownJob reports whether the behaviour model has composition data for a
// job type.
func KnownJob(job string) bool {
	_, ok := jobShares[job]
	return ok
}
