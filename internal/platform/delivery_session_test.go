package platform

// Differential tests for the coordinated day session (delivery_session.go)
// and the coordinator-side PacingController: driving N independent platform
// instances — each holding the full world and identical CRUD state, exactly
// like N shard backend processes — through the session protocol must
// reproduce the in-process engines bit for bit. This is the in-process half
// of the cross-process determinism proof; internal/coordinator's e2e test
// carries the same assertion over real HTTP.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// coordObjects is one backend's copy of the coordinated account state.
type coordObjects struct {
	p   *Platform
	ca  string
	ids []string
}

// runCoordinatedDay drives one delivery day across the given backends the
// way the coordinator does: Begin on every backend (asserting the day plans
// agree), per tick scatter the controller's directives and commit the
// reported spend, then Finish everywhere with the controller's authoritative
// SpendCents.
func runCoordinatedDay(t *testing.T, backends []coordObjects, seed int64) {
	t.Helper()
	shards := len(backends)
	session := fmt.Sprintf("day-%d-%d", seed, shards)
	var init *DayInit
	for shard, b := range backends {
		in, err := b.p.BeginDaySession(session, b.ids, seed, shard, shards)
		if err != nil {
			t.Fatal(err)
		}
		// IDs differ across backends only if CRUD histories diverged; the
		// plan's budgets and starting bids must agree exactly.
		if init == nil {
			init = in
			continue
		}
		if len(in.Ads) != len(init.Ads) || in.Ticks != init.Ticks || in.Greedy != init.Greedy {
			t.Fatalf("shard %d day plan shape diverged: %+v vs %+v", shard, in, init)
		}
		for i := range in.Ads {
			if in.Ads[i].Pacing != init.Ads[i].Pacing || in.Ads[i].DailyBudgetCents != init.Ads[i].DailyBudgetCents {
				t.Fatalf("shard %d ad %d plan diverged: %+v vs %+v", shard, i, in.Ads[i], init.Ads[i])
			}
		}
	}
	ctrl, err := NewPacingController(init, shards)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < ctrl.Ticks(); tick++ {
		dirs := ctrl.TickDirectives(tick)
		perShard := make([][]float64, shards)
		for shard, b := range backends {
			rep, err := b.p.DaySessionTick(session, tick, dirs)
			if err != nil {
				t.Fatal(err)
			}
			perShard[shard] = rep.Spent
		}
		if err := ctrl.CommitTick(perShard); err != nil {
			t.Fatal(err)
		}
	}
	cents := ctrl.SpendCents()
	for _, b := range backends {
		if err := b.p.FinishDaySession(session, cents); err != nil {
			t.Fatal(err)
		}
	}
}

// mergedSessionDigest merges per-backend insights the way the router does —
// counts sum (shards own disjoint users), SpendCents must agree to the bit —
// and hashes the result in deliveryDigest's canonical form.
func mergedSessionDigest(t *testing.T, backends []coordObjects) string {
	t.Helper()
	states := make([]AdStatsState, 0, len(backends[0].ids))
	for i := range backends[0].ids {
		var m *AdStats
		for _, b := range backends {
			st, err := b.p.Insights(b.ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if m == nil {
				m = st
				continue
			}
			if st.SpendCents != m.SpendCents {
				t.Fatalf("ad %d spend diverged across shards: %v vs %v", i, st.SpendCents, m.SpendCents)
			}
			m.Impressions += st.Impressions
			m.Reach += st.Reach
			m.Clicks += st.Clicks
			for k, v := range st.Breakdown {
				m.Breakdown[k] += v
			}
			for r, v := range st.RaceOracle {
				m.RaceOracle[r] += v
			}
			for ti, v := range st.HourlySeries {
				m.HourlySeries[ti] += v
			}
		}
		ss := adStatsState(m)
		ss.AdID = fmt.Sprintf("ad#%d", i)
		states = append(states, *ss)
	}
	b, err := json.Marshal(states)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestDaySessionMatchesInProcessEngines is the central equivalence claim of
// the multi-process design: a coordinated day over N backend platforms is
// byte-identical to RunDayWorkers(workers=N) on a single platform — the
// 1-shard configuration therefore also matches the historical sequential
// goldens.
func TestDaySessionMatchesInProcessEngines(t *testing.T) {
	f := sharedFixture(t)
	const maxShards = 4
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := New(tc.cfg(), f.pop, f.behave)
			if err != nil {
				t.Fatal(err)
			}
			refCA := tc.setup(t, ref, f)
			backends := make([]coordObjects, maxShards)
			for i := range backends {
				p, err := New(tc.cfg(), f.pop, f.behave)
				if err != nil {
					t.Fatal(err)
				}
				backends[i] = coordObjects{p: p, ca: tc.setup(t, p, f)}
			}
			for _, shards := range []int{1, 2, 4} {
				// Fresh identically-specced ad sets per run, on the reference
				// and on every backend, so ID sequences stay aligned and the
				// comparison is independent of allocation history.
				refIDs := createAdSet(t, ref, tc.obj, refCA, tc.specs)
				if err := ref.RunDayWorkers(refIDs, tc.runSeed, shards); err != nil {
					t.Fatal(err)
				}
				want := deliveryDigest(t, ref, refIDs)
				if shards == 1 && want != tc.golden {
					t.Fatalf("reference workers=1 digest %s does not match golden %s", want, tc.golden)
				}
				for i := range backends {
					backends[i].ids = createAdSet(t, backends[i].p, tc.obj, backends[i].ca, tc.specs)
				}
				runCoordinatedDay(t, backends[:shards], tc.runSeed)
				if got := mergedSessionDigest(t, backends[:shards]); got != want {
					t.Errorf("coordinated %d-shard day diverged from RunDayWorkers(workers=%d):\n got %s\nwant %s", shards, shards, got, want)
				}
			}
		})
	}
}

// TestDaySessionProtocol covers the session lifecycle rules: tick replay,
// ordering, engine exclusion, abort, and replacement.
func TestDaySessionProtocol(t *testing.T) {
	f := sharedFixture(t)
	tc := diffCases()[0]
	p, err := New(tc.cfg(), f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	caID := tc.setup(t, p, f)
	ids := createAdSet(t, p, tc.obj, caID, tc.specs)

	init, err := p.BeginDaySession("s1", ids, tc.runSeed, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewPacingController(init, 2)
	if err != nil {
		t.Fatal(err)
	}
	dirs := ctrl.TickDirectives(0)

	if err := p.RunDayWorkers(ids, tc.runSeed, 1); err == nil {
		t.Fatal("RunDayWorkers succeeded during an active session")
	}
	if _, err := p.DaySessionTick("other", 0, dirs); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("foreign session tick: got %v, want ErrSessionConflict", err)
	}
	if _, err := p.DaySessionTick("s1", 3, dirs); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("out-of-order tick: got %v, want ErrSessionConflict", err)
	}
	rep, err := p.DaySessionTick("s1", 0, dirs)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := p.DaySessionTick("s1", 0, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, replay) {
		t.Fatalf("tick replay diverged: %+v vs %+v", replay, rep)
	}
	if err := p.FinishDaySession("s1", ctrl.SpendCents()); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("early finish: got %v, want ErrSessionConflict", err)
	}
	if err := p.AbortDaySession("other"); !errors.Is(err, ErrSessionConflict) {
		t.Fatalf("foreign abort: got %v, want ErrSessionConflict", err)
	}
	if err := p.AbortDaySession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := p.AbortDaySession("s1"); err != nil {
		t.Fatalf("abort is not idempotent: %v", err)
	}

	// Begin replaces a stale session, and the abandoned day leaves no trace:
	// the replacement run still matches the engine.
	if _, err := p.BeginDaySession("stale", ids, tc.runSeed, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginDaySession("s2", ids, tc.runSeed, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AbortDaySession("s2"); err != nil {
		t.Fatal(err)
	}
	if err := p.RunDayWorkers(ids, tc.runSeed, 1); err != nil {
		t.Fatal(err)
	}
	if got := deliveryDigest(t, p, ids); got != tc.golden {
		t.Errorf("post-abort engine run diverged from golden:\n got %s\nwant %s", got, tc.golden)
	}
}
