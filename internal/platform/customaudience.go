package platform

import (
	"fmt"
	"sort"

	"github.com/adaudit/impliedidentity/internal/population"
)

// CustomAudience is a PII-matched user list (§2.1: "the advertiser can
// provide the platform with the list of personally identifiable
// information… thereby specifying precisely who is in the target audience").
// The platform only ever reports the matched size, never which users
// matched.
type CustomAudience struct {
	ID      string
	Name    string
	Size    int   // matched accounts
	members []int // population indexes; internal, never exposed via the API
}

// UploadRecord is one row of an audience upload: the advertiser-side PII,
// hashed client-side before transmission as real platforms require.
type UploadRecord struct {
	FirstName string
	LastName  string
	Address   string
	ZIP       string
}

// Hash returns the normalized PII hash for the row.
func (r UploadRecord) Hash() string {
	return population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP)
}

// CreateCustomAudience matches a list of PII hashes against the user base
// and registers the audience. Duplicate hashes are tolerated (matched once).
func (p *Platform) CreateCustomAudience(name string, piiHashes []string) (*CustomAudience, error) {
	if name == "" {
		return nil, fmt.Errorf("platform: custom audience needs a name")
	}
	if len(piiHashes) == 0 {
		return nil, fmt.Errorf("platform: custom audience %q: empty upload", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ca := &CustomAudience{
		ID:   fmt.Sprintf("ca-%d", len(p.audiences)+1),
		Name: name,
	}
	seen := map[int]bool{}
	for _, h := range piiHashes {
		u, ok := p.pop.LookupPII(h)
		if !ok || seen[u.ID()] {
			continue
		}
		seen[u.ID()] = true
		ca.members = append(ca.members, u.ID())
	}
	ca.Size = len(ca.members)
	p.audiences[ca.ID] = ca
	p.emit(Mutation{Kind: MutAudienceCreated, Audience: audienceState(ca)})
	return ca, nil
}

// Audience returns a registered audience by ID. Audiences are immutable
// after creation, so the shared pointer is safe to read without the lock.
func (p *Platform) Audience(id string) (*CustomAudience, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.audienceLocked(id)
}

// audienceLocked looks up an audience; the caller holds p.mu.
func (p *Platform) audienceLocked(id string) (*CustomAudience, error) {
	ca, ok := p.audiences[id]
	if !ok {
		return nil, fmt.Errorf("platform: unknown custom audience %q", id)
	}
	return ca, nil
}

// resolveAudience computes the final targeted user set for an ad: the union
// of its Custom Audiences filtered by the attribute limits. The caller
// holds p.mu.
func (p *Platform) resolveAudience(t *Targeting) ([]int, error) {
	inUnion := map[int]bool{}
	for _, id := range t.CustomAudienceIDs {
		ca, err := p.audienceLocked(id)
		if err != nil {
			return nil, err
		}
		for _, idx := range ca.members {
			inUnion[idx] = true
		}
	}
	var out []int
	for idx := range inUnion {
		if t.matchesUser(p.pop.View(idx)) {
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("platform: targeting matches no users")
	}
	// Map iteration order is randomized per process; the audience order
	// feeds seeded RNG consumption downstream, so sort for run-to-run
	// determinism.
	sort.Ints(out)
	return out, nil
}
