package platform

import (
	"math/rand"
	"sort"
	"testing"
)

// eligAds builds a throwaway active-ad slice with the given audiences; only
// the fields buildEligIndex reads (audience, and implicitly run order) are
// populated.
func eligAds(audiences ...[]int) []*Ad {
	ads := make([]*Ad, len(audiences))
	for i, a := range audiences {
		ads[i] = &Ad{runIdx: i, audience: a}
	}
	return ads
}

// mapOracle reproduces the pre-CSR index: the adsByUser map in run-append
// order with sorted keys — the exact iteration semantics the delivery RNG
// draw order depends on.
func mapOracle(active []*Ad) (map[int][]int, []int) {
	adsByUser := map[int][]int{}
	for i, ad := range active {
		for _, idx := range ad.audience {
			adsByUser[idx] = append(adsByUser[idx], i)
		}
	}
	users := make([]int, 0, len(adsByUser))
	for idx := range adsByUser {
		users = append(users, idx)
	}
	sort.Ints(users)
	return adsByUser, users
}

// assertMatchesOracle checks the CSR index against the sorted-map oracle:
// identical user sequence, and identical per-user ad list in run order.
func assertMatchesOracle(t *testing.T, active []*Ad) {
	t.Helper()
	e := buildEligIndex(active)
	adsByUser, users := mapOracle(active)
	if e.rows() != len(users) {
		t.Fatalf("rows %d, oracle %d", e.rows(), len(users))
	}
	for pos, idx := range users {
		if int(e.users[pos]) != idx {
			t.Fatalf("row %d holds user %d, oracle %d", pos, e.users[pos], idx)
		}
		got := e.adsFor(int32(pos))
		want := adsByUser[idx]
		if len(got) != len(want) {
			t.Fatalf("user %d has %d ads, oracle %d", idx, len(got), len(want))
		}
		for k := range want {
			if int(got[k]) != want[k] {
				t.Fatalf("user %d ad %d: run index %d, oracle %d", idx, k, got[k], want[k])
			}
		}
	}
}

func TestEligIndexMatchesSortedMapOracle(t *testing.T) {
	cases := map[string][]*Ad{
		"single_user":     eligAds([]int{7}),
		"single_ad":       eligAds([]int{3, 9, 1, 40}),
		"disjoint":        eligAds([]int{0, 2, 4}, []int{1, 3, 5}),
		"overlapping":     eligAds([]int{5, 1, 9}, []int{9, 5, 100}, []int{1}),
		"all_users_both":  eligAds([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}),
		"one_empty":       eligAds([]int{4, 8}, nil, []int{8}),
		"gapped_indexes":  eligAds([]int{1000000, 5}, []int{500000}),
		"duplicated_sets": eligAds([]int{2, 4}, []int{2, 4}, []int{2, 4}, []int{4}),
	}
	for name, active := range cases {
		t.Run(name, func(t *testing.T) { assertMatchesOracle(t, active) })
	}
}

func TestEligIndexEmptyAudiences(t *testing.T) {
	e := buildEligIndex(eligAds(nil, nil))
	if e.rows() != 0 {
		t.Fatalf("all-empty audiences: %d rows, want 0", e.rows())
	}
	if len(e.offsets) != 1 || e.offsets[0] != 0 {
		t.Fatalf("offsets %v, want [0]", e.offsets)
	}
}

func TestEligIndexRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		nAds := 1 + rng.Intn(6)
		audiences := make([][]int, nAds)
		for i := range audiences {
			n := rng.Intn(40)
			seen := map[int]bool{}
			for len(seen) < n {
				seen[rng.Intn(200)] = true
			}
			// Audiences arrive sorted in production (resolveAudience sorts);
			// the oracle comparison is order-sensitive, so mirror that.
			for idx := range seen {
				audiences[i] = append(audiences[i], idx)
			}
			sort.Ints(audiences[i])
		}
		assertMatchesOracle(t, eligAds(audiences...))
	}
}

func TestEligIndexRowOrderIsIdentity(t *testing.T) {
	e := buildEligIndex(eligAds([]int{10, 20}, []int{20, 30}))
	order := e.rowOrder()
	if len(order) != e.rows() {
		t.Fatalf("order length %d, rows %d", len(order), e.rows())
	}
	for i, pos := range order {
		if int(pos) != i {
			t.Fatalf("order[%d] = %d, want identity", i, pos)
		}
	}
}
