package platform

// Property tests on delivery invariants that must hold for every engine
// configuration. Unlike the differential suite, these scenarios use tight
// budgets so ads exhaust mid-day and the overspend clamp actually fires,
// and a small frequency cap so cap pressure is real.

import (
	"fmt"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

// assertDeliveryInvariants checks the engine-level invariants on one ad's
// report: budget never exceeded, series/breakdown/oracle all account for
// exactly the impressions, reach consistent with the frequency cap.
func assertDeliveryInvariants(t *testing.T, p *Platform, adID string, budgetCents, freqCap, ticks, workers int) {
	t.Helper()
	st, err := p.Insights(adID)
	if err != nil {
		t.Fatal(err)
	}
	label := func(s string) string {
		return fmt.Sprintf("%s (ad %s, workers %d)", s, adID, workers)
	}
	if st.SpendCents > float64(budgetCents) {
		t.Errorf("%s: spend %.0f¢ exceeds daily budget %d¢", label("overspend"), st.SpendCents, budgetCents)
	}
	if len(st.HourlySeries) != ticks {
		t.Fatalf("%s: hourly series has %d ticks, want %d", label("series"), len(st.HourlySeries), ticks)
	}
	sum := 0
	for _, v := range st.HourlySeries {
		if v < 0 {
			t.Errorf("%s: negative hourly count %d", label("series"), v)
		}
		sum += v
	}
	if sum != st.Impressions {
		t.Errorf("%s: hourly series sums to %d, impressions %d", label("series"), sum, st.Impressions)
	}
	if st.Reach > st.Impressions {
		t.Errorf("%s: reach %d exceeds impressions %d", label("reach"), st.Reach, st.Impressions)
	}
	if st.Impressions > 0 && st.Reach == 0 {
		t.Errorf("%s: impressions %d with zero reach", label("reach"), st.Impressions)
	}
	if freqCap > 0 && st.Impressions > freqCap*st.Reach {
		// Per-user impressions are capped, so total impressions can never
		// exceed cap × distinct users reached.
		t.Errorf("%s: impressions %d exceed frequency cap %d × reach %d", label("freqcap"), st.Impressions, freqCap, st.Reach)
	}
	if st.Clicks > st.Impressions {
		t.Errorf("%s: clicks %d exceed impressions %d", label("clicks"), st.Clicks, st.Impressions)
	}
	bsum := 0
	for k, v := range st.Breakdown {
		if v <= 0 {
			t.Errorf("%s: non-positive breakdown cell %+v=%d", label("breakdown"), k, v)
		}
		bsum += v
	}
	if bsum != st.Impressions {
		t.Errorf("%s: breakdown totals %d, impressions %d", label("breakdown"), bsum, st.Impressions)
	}
	rsum := 0
	for _, v := range st.RaceOracle {
		rsum += v
	}
	if rsum != st.Impressions {
		t.Errorf("%s: race oracle totals %d, impressions %d", label("oracle"), rsum, st.Impressions)
	}
}

func TestDeliveryInvariantsAcrossWorkerCounts(t *testing.T) {
	f := sharedFixture(t)
	imgWM := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgBF := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})

	configs := []struct {
		name string
		cfg  Config
	}{
		{"paced_tight_budget", func() Config {
			cfg := testConfig(601)
			cfg.FrequencyCap = 2
			return cfg
		}()},
		{"greedy_pacing", func() Config {
			cfg := testConfig(602)
			cfg.GreedyPacing = true
			return cfg
		}()},
	}
	// Budgets small enough that every ad exhausts mid-day, so eligibility
	// shutoff and the overspend clamp both fire on every engine.
	budgets := []int{60, 90}

	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg, f.pop, f.behave)
			if err != nil {
				t.Fatal(err)
			}
			caID := uploadBalancedAudience(t, p, f, 50, 61)
			for _, workers := range []int{1, 2, 4, 8} {
				ids := createAdSet(t, p, ObjectiveTraffic, caID, []diffAdSpec{{imgWM, budgets[0]}, {imgBF, budgets[1]}})
				if err := p.RunDayWorkers(ids, 7007, workers); err != nil {
					t.Fatal(err)
				}
				for i, id := range ids {
					assertDeliveryInvariants(t, p, id, budgets[i], tc.cfg.FrequencyCap, tc.cfg.Ticks, workers)
					st, _ := p.Insights(id)
					if st.SpendCents != float64(budgets[i]) {
						// With budgets this tight every engine must spend to
						// exactly the budget: exhaustion plus the clamp pin
						// SpendCents to DailyBudgetCents.
						t.Errorf("workers=%d ad %s: spend %.0f¢, want exactly budget %d¢", workers, id, st.SpendCents, budgets[i])
					}
				}
			}
		})
	}
}
