package platform

import (
	"reflect"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

// TestInsightsReturnsDeepCopy is the regression test for the aliasing bug
// where Insights handed out the engine's live *AdStats: a caller mutating
// the returned report (maps and series included) corrupted the frozen
// record every later Insights call read.
func TestInsightsReturnsDeepCopy(t *testing.T) {
	f := sharedFixture(t)
	p, err := New(testConfig(701), f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	caID := uploadBalancedAudience(t, p, f, 30, 71)
	img := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	ids := createAdSet(t, p, ObjectiveTraffic, caID, []diffAdSpec{{img, 500}})
	if err := p.RunDay(ids, 7071); err != nil {
		t.Fatal(err)
	}

	first, err := p.Insights(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Impressions == 0 || len(first.Breakdown) == 0 || len(first.RaceOracle) == 0 {
		t.Fatalf("scenario too small to exercise the copy: %+v", first)
	}
	pristine := first.clone()

	// Vandalize every part of the returned report.
	first.Impressions = -1
	first.Clicks = -1
	first.Reach = -1
	first.SpendCents = -1
	for k := range first.Breakdown {
		first.Breakdown[k] = -1
	}
	first.Breakdown[BreakdownKey{Region: demo.StateOther}] = 42
	for k := range first.RaceOracle {
		first.RaceOracle[k] = -1
	}
	for i := range first.HourlySeries {
		first.HourlySeries[i] = -1
	}

	second, err := p.Insights(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, pristine) {
		t.Errorf("mutating a returned report leaked into the frozen record:\n got %+v\nwant %+v", second, pristine)
	}
}
