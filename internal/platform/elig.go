package platform

import "slices"

// eligIndex is a delivery day's eligibility index in CSR form: for every
// user targeted by at least one active ad, the run-order list of ads that
// may bid on their slots. It replaces the old adsByUser map[int][]*Ad —
// three flat int32 slices instead of a hash table with one heap-allocated
// pointer slice per user, built once per day by prepareDay.
//
// Layout contract, pinned by the CSR regression tests against the old
// sorted-map semantics:
//   - users holds the targeted population rows in ascending order (the old
//     sorted-keys order the per-tick shuffles start from);
//   - row r's eligible ads are ads[offsets[r]:offsets[r+1]], as run indexes
//     into the active slice, in run order (the old append order).
//
// Day loops address users by *row position* in this index, not by
// population index; position is what the shuffles permute and what the
// round-robin shard and session partitions slice.
type eligIndex struct {
	users   []int32
	offsets []int32 // len(users)+1
	ads     []int32
}

// buildEligIndex constructs the index for the run's active ads (run order =
// slice order). It consumes no randomness and allocates only the three CSR
// slices plus one transient per-row cursor.
func buildEligIndex(active []*Ad) *eligIndex {
	total := 0
	for _, ad := range active {
		total += len(ad.audience)
	}
	all := make([]int32, 0, total)
	for _, ad := range active {
		for _, idx := range ad.audience {
			all = append(all, int32(idx))
		}
	}
	slices.Sort(all)
	users := slices.Compact(all)

	e := &eligIndex{
		users:   users,
		offsets: make([]int32, len(users)+1),
		ads:     make([]int32, total),
	}
	// Degree count, prefix sums, then a run-order fill with per-row
	// cursors: each row's ad list comes out in active-slice order because
	// the outer loop visits ads in run order.
	deg := make([]int32, len(users))
	for _, ad := range active {
		for _, idx := range ad.audience {
			deg[e.rowOf(int32(idx))]++
		}
	}
	var off int32
	for r, d := range deg {
		e.offsets[r] = off
		off += d
	}
	e.offsets[len(users)] = off
	next := deg[:0] // reuse: deg is dead after the prefix sum
	next = append(next, e.offsets[:len(users)]...)
	for i, ad := range active {
		for _, idx := range ad.audience {
			r := e.rowOf(int32(idx))
			e.ads[next[r]] = int32(i)
			next[r]++
		}
	}
	return e
}

// rows returns the number of targeted users.
func (e *eligIndex) rows() int { return len(e.users) }

// rowOf returns the row position of a population index; the index must be
// present.
func (e *eligIndex) rowOf(user int32) int32 {
	pos, _ := slices.BinarySearch(e.users, user)
	return int32(pos)
}

// adsFor returns row pos's eligible ads as run indexes, in run order.
func (e *eligIndex) adsFor(pos int32) []int32 {
	return e.ads[e.offsets[pos]:e.offsets[pos+1]]
}

// rowOrder returns the identity position permutation 0..rows-1, the
// deterministic base order the per-tick seeded shuffles start from
// (ascending population index, exactly the old sorted user list).
func (e *eligIndex) rowOrder() []int32 {
	order := make([]int32, len(e.users))
	for i := range order {
		order[i] = int32(i)
	}
	return order
}
