package platform

import (
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// servedRow is one logged served impression: who saw which creative and
// whether they clicked. The retraining buffer is what closes the feedback
// loop the paper's discussion warns about ("this optimization for engagement
// has also been leveraged by scammers", §2.2): the next model trains on
// traffic the previous model chose.
type servedRow struct {
	userIdx int
	ad      *Ad
	clicked bool
}

// maxServedLog bounds the retraining buffer.
const maxServedLog = 200000

// recordServed appends an impression to the retraining buffer.
func (p *Platform) recordServed(userIdx int, ad *Ad, clicked bool) {
	if len(p.served) >= maxServedLog {
		return
	}
	p.served = append(p.served, servedRow{userIdx: userIdx, ad: ad, clicked: clicked})
}

// ServedLogSize reports the retraining buffer size.
func (p *Platform) ServedLogSize() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.served)
}

// Retrain refits the estimated-action-rate model on a fresh background
// engagement log plus every impression the platform itself has served since
// the last (re)training. Served impressions are selection-biased — the
// previous model chose who saw what — which is precisely the feedback-loop
// mechanism experiment E16 measures. Ads created after Retrain use the new
// model; completed ads keep their recorded delivery.
func (p *Platform) Retrain(cfg TrainingConfig) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cfg.LogRows == 0 {
		cfg.LogRows = p.cfg.Training.LogRows
	}
	base, err := trainLogRows(cfg, p.pop, p.behave, p.vision)
	if err != nil {
		return err
	}
	layout := newFeatureLayout()
	total := base.x.Rows + len(p.served)
	x := stats.NewMatrix(total, layout.dim)
	copy(x.Data, base.x.Data)
	y := make([]float64, total)
	copy(y, base.y)
	for i := range p.served {
		row := &p.served[i]
		layout.featurize(p.pop.View(row.userIdx), &row.ad.perceived, x.Row(base.x.Rows+i))
		if row.clicked {
			y[base.x.Rows+i] = 1
		}
	}
	fit, err := stats.Logit(layout.names(), x, y, stats.LogitOptions{Ridge: 3.0, MaxIter: 60})
	if err != nil {
		return fmt.Errorf("platform: retraining eAR model: %w", err)
	}
	p.ear = &earModel{layout: layout, fit: fit}
	p.served = p.served[:0]
	return nil
}

// logRows is a generated background engagement log.
type logRows struct {
	x *stats.Matrix
	y []float64
}

// trainLogRows generates a background engagement log (the shared inner step
// of initial training and retraining).
func trainLogRows(cfg TrainingConfig, pop *population.Population, behave *population.Behavior, vision visionModel) (*logRows, error) {
	if cfg.LogRows < 1000 {
		return nil, fmt.Errorf("platform: %d log rows too few to train eAR", cfg.LogRows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	layout := newFeatureLayout()
	x := stats.NewMatrix(cfg.LogRows, layout.dim)
	y := make([]float64, cfg.LogRows)
	fillEngagementLog(rng, layout, pop, behave, vision, x, y)
	return &logRows{x: x, y: y}, nil
}
