package platform

// Differential determinism suite for the delivery engines.
//
// Two claims are pinned here:
//
//  1. workers=1 is the sequential oracle: its output is byte-identical to
//     the pre-parallelization engine's, asserted against golden digests
//     captured from the sequential implementation before the sharded
//     engine existed. These digests must never change; a diff here means
//     the oracle's RNG draw order or accounting moved.
//  2. Every parallel worker count is self-deterministic: repeated runs of
//     the same (ads, seed, workers) input produce identical AdStats —
//     impressions, clicks, spend, breakdown cells, RaceOracle, and
//     HourlySeries. Repeats use freshly created (identical-spec) ad sets,
//     so the assertion also catches any dependence on map layout or
//     allocation history.
//
// The golden scenarios deliberately use budgets far above the market's
// natural spend ceiling so the overspend clamp (which post-dates the golden
// capture) can never fire in them; clamp behavior is covered by the
// property suite instead.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

// deliveryDigest canonicalizes the ads' delivery reports — sorted
// serializable form with ad IDs normalized to creation order, so digests
// are comparable across ad sets created at different points in a
// platform's ID sequence — and hashes them.
func deliveryDigest(t *testing.T, p *Platform, adIDs []string) string {
	t.Helper()
	states := make([]AdStatsState, 0, len(adIDs))
	for i, id := range adIDs {
		st, err := p.Insights(id)
		if err != nil {
			t.Fatal(err)
		}
		ss := adStatsState(st)
		ss.AdID = fmt.Sprintf("ad#%d", i)
		states = append(states, *ss)
	}
	b, err := json.Marshal(states)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

type diffAdSpec struct {
	img    image.Features
	budget int
}

// createAdSet creates one campaign with one ad per spec and returns the ad
// IDs in creation order.
func createAdSet(t *testing.T, p *Platform, objective Objective, caID string, specs []diffAdSpec) []string {
	t.Helper()
	cmp, err := p.CreateCampaign("diff", objective, SpecialNone, 2019)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(specs))
	for _, s := range specs {
		ad, err := p.CreateAd(cmp.ID, Creative{Image: s.img, Headline: "h", LinkURL: "https://example.com"}, Targeting{CustomAudienceIDs: []string{caID}}, s.budget)
		if err != nil {
			t.Fatal(err)
		}
		if ad.Status != StatusActive {
			t.Fatalf("ad %s not active: %v", ad.ID, ad.Status)
		}
		ids = append(ids, ad.ID)
	}
	return ids
}

// diffCase is one (seed, population slice, ad mix) configuration plus the
// golden digest of the sequential engine's output for it.
type diffCase struct {
	name    string
	cfg     func() Config
	setup   func(t *testing.T, p *Platform, f *fixture) string // returns audience ID
	obj     Objective
	specs   []diffAdSpec
	runSeed int64
	golden  string
	// sharded holds per-worker-count golden digests captured from the
	// sharded engine before the columnar population refactor, pinning the
	// parallel paths byte-for-byte across representation changes.
	sharded map[int]string
}

func diffCases() []diffCase {
	imgWM := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgBM := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	imgBF := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	imgWF := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	return []diffCase{
		{
			name: "traffic_balanced",
			cfg:  func() Config { return testConfig(501) },
			setup: func(t *testing.T, p *Platform, f *fixture) string {
				return uploadBalancedAudience(t, p, f, 60, 51)
			},
			obj:     ObjectiveTraffic,
			specs:   []diffAdSpec{{imgWM, 2_000_000}, {imgBM, 2_000_000}},
			runSeed: 9001,
			golden:  "bfab4b68f56278ae3d81c3b18c0fc06f6dc41658a212e7d85d1bc21317af4557",
			sharded: map[int]string{
				2: "2645fac0a84d0db98b1cea2ee261bd8fb8ab3b08cd33ceb93f0f56f9f897d31f",
				4: "8788f405a671510acf6823d9c7157f0321d2596d149c50eba2ee049b4570cb59",
				8: "18e644fb449ca983042cbb3295fbd7f1b537924d350471ca65805e08720bf01a",
			},
		},
		{
			name: "conversions_split_24ticks",
			cfg: func() Config {
				cfg := testConfig(502)
				cfg.Ticks = 24
				cfg.FrequencyCap = 2
				return cfg
			},
			setup: func(t *testing.T, p *Platform, f *fixture) string {
				return splitAudience(t, p, f, 800, false, 52)
			},
			obj:     ObjectiveConversions,
			specs:   []diffAdSpec{{imgWM, 1_500_000}, {imgBM, 1_500_000}, {imgBF, 2_000_000}},
			runSeed: 9002,
			golden:  "b35bc4589ba175aa3beaa852e19138add87d1f677f58f649d6cea66ba1fcc9b1",
			sharded: map[int]string{
				2: "371de01a25f6e4fe10d18924b2e5853d39a868fc342bdbc393208fd3dfc84f9f",
				4: "b9c926bc437fb3cfc969ab7ab266980621c4f7bfb45dd41a4949c8d6f11358dc",
				8: "b5e91ae3b517d5176daccc0786ade1e3462a07f955abc7b1ef2a7e8a12168234",
			},
		},
		{
			name: "awareness_noiseless_ties",
			cfg: func() Config {
				cfg := testConfig(503)
				cfg.ValueNoise = 0
				return cfg
			},
			setup: func(t *testing.T, p *Platform, f *fixture) string {
				return uploadBalancedAudience(t, p, f, 40, 53)
			},
			obj:     ObjectiveAwareness,
			specs:   []diffAdSpec{{imgWF, 30_000_000}, {imgBF, 30_000_000}, {imgWM, 20_000_000}, {imgBM, 20_000_000}},
			runSeed: 9003,
			golden:  "5d41bd178b88923945493808e66212c304839779775a029dfe7db5fb08097107",
			sharded: map[int]string{
				2: "4fb23637227ec9562e6b1541a96d3f4314c8b9544343ccb0174b96de063626dc",
				4: "0768544c3f58d3a191dcb04c36e39a7ac1fda211fcf362698d045292802c9a3e",
				8: "28b1c0226c7300ffd60ea2f72c02a06142f288aa16933aaca11aae65b3438f02",
			},
		},
	}
}

// TestDeliverySequentialMatchesGoldens pins the workers=1 engine to the
// digests captured from the pre-parallelization sequential implementation.
func TestDeliverySequentialMatchesGoldens(t *testing.T) {
	f := sharedFixture(t)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg(), f.pop, f.behave)
			if err != nil {
				t.Fatal(err)
			}
			caID := tc.setup(t, p, f)
			ids := createAdSet(t, p, tc.obj, caID, tc.specs)
			if err := p.RunDayWorkers(ids, tc.runSeed, 1); err != nil {
				t.Fatal(err)
			}
			if got := deliveryDigest(t, p, ids); got != tc.golden {
				t.Errorf("workers=1 output diverged from the pre-change sequential golden:\n got %s\nwant %s", got, tc.golden)
			}
		})
	}
}

// TestDeliveryShardedMatchesGoldens pins the parallel engine at workers
// 2, 4, and 8 to digests captured before the columnar population refactor:
// proof that moving the user store from structs to columns (and the audience
// index from a sorted map to CSR) changed no RNG draw, auction outcome, or
// accounting step on any shard.
func TestDeliveryShardedMatchesGoldens(t *testing.T) {
	f := sharedFixture(t)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg(), f.pop, f.behave)
			if err != nil {
				t.Fatal(err)
			}
			caID := tc.setup(t, p, f)
			for _, workers := range []int{2, 4, 8} {
				ids := createAdSet(t, p, tc.obj, caID, tc.specs)
				if err := p.RunDayWorkers(ids, tc.runSeed, workers); err != nil {
					t.Fatal(err)
				}
				if got := deliveryDigest(t, p, ids); got != tc.sharded[workers] {
					t.Errorf("workers=%d output diverged from the pre-refactor golden:\n got %s\nwant %s", workers, got, tc.sharded[workers])
				}
			}
		})
	}
}

// TestDeliveryShardedSelfDeterministic asserts that for each parallel
// worker count, three repeated runs of the same delivery day are
// bit-identical. Each repeat uses a freshly created ad set with identical
// specs, so the digest comparison (over normalized IDs) also proves the
// output does not depend on object identity, ID numbering, or map layout.
func TestDeliveryShardedSelfDeterministic(t *testing.T) {
	f := sharedFixture(t)
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg(), f.pop, f.behave)
			if err != nil {
				t.Fatal(err)
			}
			caID := tc.setup(t, p, f)
			for _, workers := range []int{2, 4, 8} {
				var digests []string
				for rep := 0; rep < 3; rep++ {
					ids := createAdSet(t, p, tc.obj, caID, tc.specs)
					if err := p.RunDayWorkers(ids, tc.runSeed, workers); err != nil {
						t.Fatal(err)
					}
					digests = append(digests, deliveryDigest(t, p, ids))
				}
				for rep := 1; rep < len(digests); rep++ {
					if digests[rep] != digests[0] {
						t.Errorf("workers=%d repeat %d diverged:\n got %s\nwant %s", workers, rep, digests[rep], digests[0])
					}
				}
			}
		})
	}
}

// TestDeliveryWorkersFallsBackToConfig checks that RunDay (and an explicit
// workers<=0) use Config.DeliveryWorkers, by matching the digest of an
// explicit worker count.
func TestDeliveryWorkersFallsBackToConfig(t *testing.T) {
	f := sharedFixture(t)
	tc := diffCases()[0]
	cfg := tc.cfg()
	cfg.DeliveryWorkers = 4
	p, err := New(cfg, f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	caID := tc.setup(t, p, f)

	explicit := createAdSet(t, p, tc.obj, caID, tc.specs)
	if err := p.RunDayWorkers(explicit, tc.runSeed, 4); err != nil {
		t.Fatal(err)
	}
	viaConfig := createAdSet(t, p, tc.obj, caID, tc.specs)
	if err := p.RunDay(viaConfig, tc.runSeed); err != nil {
		t.Fatal(err)
	}
	if a, b := deliveryDigest(t, p, explicit), deliveryDigest(t, p, viaConfig); a != b {
		t.Errorf("RunDay with DeliveryWorkers=4 diverged from explicit workers=4:\n got %s\nwant %s", b, a)
	}
}
