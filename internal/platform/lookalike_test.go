package platform

import (
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/population"
)

func TestCreateLookalikeAudienceErrors(t *testing.T) {
	p, f := newTestPlatform(t, 910)
	if _, err := p.CreateLookalikeAudience("x", "ca-404", 10); err == nil {
		t.Error("unknown seed: want error")
	}
	recs := f.registry.Records[:200]
	hashes := make([]string, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	seed, err := p.CreateCustomAudience("seed", hashes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateLookalikeAudience("x", seed.ID, 0); err == nil {
		t.Error("zero size: want error")
	}
	// Oversized requests are truncated to the candidate pool, not an error.
	big, err := p.CreateLookalikeAudience("big", seed.ID, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if big.Size == 0 || big.Size >= f.pop.Len() {
		t.Errorf("truncated size %d vs population %d", big.Size, f.pop.Len())
	}
}

func TestLookalikeExcludesSeedAndEnriches(t *testing.T) {
	p, f := newTestPlatform(t, 911)
	rng := rand.New(rand.NewSource(5))
	hashes := raceHashes(f.registry.Records, demo.RaceBlack, 1200, rng)
	seed, err := p.CreateCustomAudience("seed", hashes)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := p.CreateLookalikeAudience("exp", seed.ID, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// No overlap with the seed.
	inSeed := map[int]bool{}
	for _, idx := range seed.members {
		inSeed[idx] = true
	}
	for _, idx := range exp.members {
		if inSeed[idx] {
			t.Fatal("expansion contains a seed member")
		}
	}
	// The expansion is enriched for the seed's (unobserved) race relative
	// to the population base rate.
	comp, err := p.CompositionOf(exp.ID)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.CompositionOf(seed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if base.FracBlack < 0.99 {
		t.Fatalf("seed composition %v, setup broken", base.FracBlack)
	}
	var popBlack int
	for i := 0; i < f.pop.Len(); i++ {
		if f.pop.View(i).Race() == demo.RaceBlack {
			popBlack++
		}
	}
	popRate := float64(popBlack) / float64(f.pop.Len())
	if comp.FracBlack < popRate+0.08 {
		t.Errorf("expansion %.3f Black vs population %.3f; want clear enrichment", comp.FracBlack, popRate)
	}
}

func TestCompositionOfErrors(t *testing.T) {
	p, _ := newTestPlatform(t, 912)
	if _, err := p.CompositionOf("ca-404"); err == nil {
		t.Error("unknown audience: want error")
	}
}

func TestObjectiveOptimizationTerm(t *testing.T) {
	p, f := newTestPlatform(t, 913)
	u := f.pop.View(0)
	img := p.perceive(imageOfAdult())
	folded := p.ear.fold(&img)
	awareness := &Ad{Objective: ObjectiveAwareness, folded: folded}
	traffic := &Ad{Objective: ObjectiveTraffic, folded: folded}
	conversions := &Ad{Objective: ObjectiveConversions, folded: folded}
	if got := p.optimizationTerm(awareness, u); got != 1 {
		t.Errorf("awareness term %v, want 1", got)
	}
	tr := p.optimizationTerm(traffic, u)
	if tr <= 0 || tr >= 1 {
		t.Errorf("traffic term %v, want a probability", tr)
	}
	cv := p.optimizationTerm(conversions, u)
	if cv <= 0 {
		t.Errorf("conversions term %v", cv)
	}
	// The conversions transform is monotone in eAR: a user with higher
	// traffic term must keep a higher conversions term.
	hi, found := population.UserView{}, false
	for i := 0; i < f.pop.Len(); i++ {
		cand := f.pop.View(i)
		if p.optimizationTerm(traffic, cand) > tr {
			hi, found = cand, true
			break
		}
	}
	if found && p.optimizationTerm(conversions, hi) <= cv {
		t.Error("conversions transform not monotone in eAR")
	}
}
