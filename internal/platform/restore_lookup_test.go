package platform

// Regression suite for the restore path of the columnar population: the
// builder drops its PII index once construction finishes, and LookupPII
// rebuilds it lazily on first use. Historically the equivalent byPII map
// could be left stale after Platform.Restore; these tests pin that a
// restored platform still PII-matches new audience uploads and delivers
// byte-identically to the platform it was cloned from.

import (
	"encoding/json"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
)

func TestRestoreThenPIIMatchAndDelivery(t *testing.T) {
	f := sharedFixture(t)
	mk := func() *Platform {
		p, err := New(testConfig(601), f.pop, f.behave)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := mk()
	caID := uploadBalancedAudience(t, p1, f, 50, 61)

	var st State
	b, err := json.Marshal(p1.State())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	p2 := mk()
	if err := p2.Restore(&st); err != nil {
		t.Fatal(err)
	}

	// A fresh PII upload on the restored platform must match the same users
	// the origin platform matches — the lookup index is rebuilt, not stale.
	ca2ID := uploadBalancedAudience(t, p2, f, 40, 62)
	ca2OnP1 := uploadBalancedAudience(t, p1, f, 40, 62)
	a1, err := p1.Audience(ca2OnP1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.Audience(ca2ID)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Size == 0 || a1.Size != a2.Size {
		t.Fatalf("post-restore audience size %d, origin %d", a2.Size, a1.Size)
	}

	// Identical ad sets over the restored audience deliver byte-identically
	// on both platforms, sequential and sharded.
	img := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	specs := []diffAdSpec{{img, 500_000}, {img, 700_000}}
	for _, workers := range []int{1, 4} {
		ids1 := createAdSet(t, p1, ObjectiveTraffic, caID, specs)
		ids2 := createAdSet(t, p2, ObjectiveTraffic, caID, specs)
		if err := p1.RunDayWorkers(ids1, 9601, workers); err != nil {
			t.Fatal(err)
		}
		if err := p2.RunDayWorkers(ids2, 9601, workers); err != nil {
			t.Fatal(err)
		}
		if d1, d2 := deliveryDigest(t, p1, ids1), deliveryDigest(t, p2, ids2); d1 != d2 {
			t.Errorf("workers=%d: restored platform delivery diverged:\n got %s\nwant %s", workers, d2, d1)
		}
	}
}
