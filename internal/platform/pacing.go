package platform

// The budget-pacing arithmetic, factored into free functions so every
// delivery configuration — the in-process sequential oracle, the in-process
// sharded engine, and an external cross-process coordinator driving shard
// backends over HTTP — runs the exact same float operations in the exact
// same order. Byte-identical delivery output across all of them depends on
// this file being the only place the controller math lives.

import (
	"fmt"
	"math"
)

// pacingStep applies one tick of the budget-pacing controller to one ad:
// the multiplicative effective-bid update toward on-schedule spend (§2.1:
// "this process is called bid pacing"), computed from the *committed* spend,
// plus the tick's spend cap that spreads the budget over the whole day
// rather than dumping it into the first slots.
func pacingStep(pacing, spent, budget, elapsed float64, ticks int, greedy bool) (newPacing, tickCap float64) {
	target := budget * elapsed
	switch {
	case spent >= budget:
		pacing = 0 // budget exhausted
	case spent > target:
		pacing *= 0.82
	default:
		pacing *= 1.25
	}
	pacing = math.Min(pacing, 50)
	tickCap = 2 * budget / float64(ticks)
	if greedy {
		// A5 ablation: no pacing control at all — bid high until the
		// budget runs out.
		pacing = 5
		tickCap = budget
	}
	return pacing, tickCap
}

// shardCapShare slices what an ad may still spend this tick into one
// shard's share. Each shard gets a 1/shards slice, so the committed total
// overruns the tick cap by at most one winning price per shard; the commit
// clamp absorbs any overrun of the daily budget itself.
func shardCapShare(tickCap, budget, spent float64, shards int) float64 {
	remaining := math.Min(tickCap, budget-spent)
	if remaining < 0 {
		remaining = 0
	}
	return remaining / float64(shards)
}

// commitSpend folds one shard's tick spend into an ad's committed total,
// clamped so the committed day never exceeds the daily budget — the same
// overspend clamp the sequential engine applies per auction, applied to the
// shard batch.
func commitSpend(spent, tickSpent, budget float64) float64 {
	if spent+tickSpent > budget {
		tickSpent = budget - spent
	}
	return spent + tickSpent
}

// DayAdPlan is one active ad's coordinator-visible delivery plan: identity,
// budget, and the starting effective bid the platform derived from its eAR
// model. Every shard of a coordinated day computes the identical plan from
// the same CRUD state, so the coordinator can adopt any one shard's plan
// (and assert the rest agree).
type DayAdPlan struct {
	AdID             string  `json:"ad_id"`
	DailyBudgetCents int     `json:"daily_budget_cents"`
	Pacing           float64 `json:"pacing"`
}

// DayInit is a shard backend's answer to beginning a coordinated delivery
// session: the resolved active-ad plans (in run order, the order every
// per-tick vector is indexed by) and the pacing-relevant configuration.
type DayInit struct {
	Session string      `json:"session"`
	Ticks   int         `json:"ticks"`
	Greedy  bool        `json:"greedy"`
	Ads     []DayAdPlan `json:"ads"`
}

// TickDirective is the coordinator's frozen tick-start snapshot for one ad:
// the updated effective bid, the committed day spend every shard bids
// against, and this shard's slice of the tick spend cap. Shards treat all
// three as read-only for the duration of the tick — the two-phase contract's
// phase-1 freeze, carried over the wire.
type TickDirective struct {
	Pacing float64 `json:"pacing"`
	Spent  float64 `json:"spent"`
	Cap    float64 `json:"cap"`
}

// TickReport is one shard's phase-2 result for one tick: the spend each ad
// accrued on this shard (indexed in run order), ready for the coordinator's
// phase-3 commit, plus the auction count for observability.
type TickReport struct {
	Tick     int       `json:"tick"`
	Spent    []float64 `json:"spent"`
	Auctions int64     `json:"auctions"`
}

// PacingController replicates the delivery engines' phase-1 pacing update
// and phase-3 spend commit for an external coordinator driving shard
// backends over the wire. It calls the same pacingStep / shardCapShare /
// commitSpend functions the in-process engines call, in the same order, so
// a coordinated day's committed spend trajectory is bit-identical to the
// in-process run with the same (ads, seed, shards).
//
// JSON carries the floats without loss: encoding/json emits the shortest
// round-trip representation of a float64, which decodes to the identical
// bits, so freezing a snapshot through an HTTP hop preserves byte
// determinism end to end.
type PacingController struct {
	ticks  int
	greedy bool
	shards int
	ads    []DayAdPlan
	spent  []float64
}

// NewPacingController builds the coordinator-side controller from one
// shard's DayInit. shards is the number of backends the day fans out to;
// with shards == 1 the directives reproduce the sequential oracle's
// undivided tick caps, matching the historical golden digests.
func NewPacingController(init *DayInit, shards int) (*PacingController, error) {
	if init == nil {
		return nil, fmt.Errorf("platform: pacing controller needs a day init")
	}
	if init.Ticks < 1 {
		return nil, fmt.Errorf("platform: pacing controller needs ticks >= 1, got %d", init.Ticks)
	}
	if shards < 1 || shards > maxDeliveryWorkers {
		return nil, fmt.Errorf("platform: shard count %d outside [1, %d]", shards, maxDeliveryWorkers)
	}
	if len(init.Ads) == 0 {
		return nil, fmt.Errorf("platform: pacing controller needs at least one ad plan")
	}
	return &PacingController{
		ticks:  init.Ticks,
		greedy: init.Greedy,
		shards: shards,
		ads:    append([]DayAdPlan(nil), init.Ads...),
		spent:  make([]float64, len(init.Ads)),
	}, nil
}

// Ticks reports the day length in pacing ticks.
func (c *PacingController) Ticks() int { return c.ticks }

// TickDirectives runs the phase-1 pacing update for one tick and returns
// the frozen per-ad snapshot to scatter to every shard. tick must advance
// 0..Ticks()-1; the controller is stateful (pacing evolves multiplicatively
// from the committed spend).
func (c *PacingController) TickDirectives(tick int) []TickDirective {
	elapsed := float64(tick) / float64(c.ticks)
	dirs := make([]TickDirective, len(c.ads))
	for i := range c.ads {
		ad := &c.ads[i]
		budget := float64(ad.DailyBudgetCents) / 100
		pacing, tickCap := pacingStep(ad.Pacing, c.spent[i], budget, elapsed, c.ticks, c.greedy)
		ad.Pacing = pacing
		cap := tickCap
		if c.shards > 1 {
			cap = shardCapShare(tickCap, budget, c.spent[i], c.shards)
		}
		dirs[i] = TickDirective{Pacing: pacing, Spent: c.spent[i], Cap: cap}
	}
	return dirs
}

// CommitTick runs the phase-3 barrier commit: fold every shard's reported
// tick spend into the committed totals, in fixed shard order (fixed
// floating-point addition order), clamped at the daily budget. perShard
// must hold one spend vector per shard, each indexed in run order.
//
// A 1-shard day is the sequential oracle, which accumulates spend one
// clamped auction price at a time — an addition order only the backend
// itself can reproduce. Its TickReport therefore carries committed absolute
// spend, and the controller adopts it verbatim instead of folding.
func (c *PacingController) CommitTick(perShard [][]float64) error {
	if len(perShard) != c.shards {
		return fmt.Errorf("platform: commit got %d shard reports, want %d", len(perShard), c.shards)
	}
	for s, spent := range perShard {
		if len(spent) != len(c.ads) {
			return fmt.Errorf("platform: shard %d reported %d spends, want %d", s, len(spent), len(c.ads))
		}
	}
	if c.shards == 1 {
		copy(c.spent, perShard[0])
		return nil
	}
	for _, spent := range perShard {
		for i := range c.ads {
			c.spent[i] = commitSpend(c.spent[i], spent[i], float64(c.ads[i].DailyBudgetCents)/100)
		}
	}
	return nil
}

// SpendCents reports the authoritative end-of-day spend per ad in cents,
// rounded exactly once from the committed float totals — the same rounding
// the in-process engine applies. The coordinator distributes these values
// to every shard at day finish, so cross-shard reports agree to the bit
// (summing independently rounded per-shard values would not).
func (c *PacingController) SpendCents() []float64 {
	out := make([]float64, len(c.ads))
	for i := range c.ads {
		out[i] = math.Round(c.spent[i] * 100)
	}
	return out
}
