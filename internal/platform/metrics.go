package platform

import (
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// Delivery-phase metric names. Constant names keep the registry cardinality
// fixed (adlint obsreg); each name is used with exactly one metric kind.
const (
	// MetricDeliveryDays counts completed RunDay calls.
	MetricDeliveryDays = "platform.delivery.days"
	// MetricDeliveryTicks counts simulated pacing ticks.
	MetricDeliveryTicks = "platform.delivery.ticks"
	// MetricDeliveryAuctions counts ad slots auctioned (user sessions).
	MetricDeliveryAuctions = "platform.delivery.auctions"
	// MetricDeliveryImpressions counts impressions served to audit ads.
	MetricDeliveryImpressions = "platform.delivery.impressions"
	// MetricDeliveryDayLatency is the wall-time histogram of whole days.
	MetricDeliveryDayLatency = "platform.delivery.day"
	// MetricDeliveryMergeLatency is the per-day total time spent in tick
	// barrier commits (sharded engine only).
	MetricDeliveryMergeLatency = "platform.delivery.merge"
	// MetricDeliveryTicksPerSec is the last run's tick throughput.
	MetricDeliveryTicksPerSec = "platform.delivery.ticks_per_sec"
	// MetricDeliveryAuctionsPerSec is the last run's auction throughput.
	MetricDeliveryAuctionsPerSec = "platform.delivery.auctions_per_sec"
	// MetricDeliveryWorkers is the last run's effective worker count.
	MetricDeliveryWorkers = "platform.delivery.workers"
)

// SetObserver installs a metrics registry and clock for delivery-phase
// instrumentation. A nil clock defaults to the system clock; a nil registry
// disables instrumentation entirely (the default), which also keeps every
// clock read out of the engine — timing is observational and can never leak
// into delivery output, which is a pure function of (ads, seed, workers).
func (p *Platform) SetObserver(reg *obs.Registry, clock obs.Clock) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsReg = reg
	if clock == nil {
		clock = obs.SystemClock
	}
	p.clock = clock
}

// deliveryClockNow reads the observer clock, or reports zero time when no
// observer is installed.
func (p *Platform) deliveryClockNow() time.Time {
	if p.obsReg == nil {
		return time.Time{}
	}
	return p.clock.Now()
}

// observeDelivery records one completed day's delivery metrics; no-op
// without a registry.
func (p *Platform) observeDelivery(start time.Time, ticks, auctions, impressions int64, workers int, merge time.Duration) {
	if p.obsReg == nil {
		return
	}
	elapsed := p.clock.Now().Sub(start)
	reg := p.obsReg
	reg.Counter(MetricDeliveryDays).Inc()
	reg.Counter(MetricDeliveryTicks).Add(ticks)
	reg.Counter(MetricDeliveryAuctions).Add(auctions)
	reg.Counter(MetricDeliveryImpressions).Add(impressions)
	reg.Histogram(MetricDeliveryDayLatency).Observe(elapsed)
	if merge > 0 {
		reg.Histogram(MetricDeliveryMergeLatency).Observe(merge)
	}
	reg.Gauge(MetricDeliveryWorkers).Set(int64(workers))
	if secs := elapsed.Seconds(); secs > 0 {
		reg.Gauge(MetricDeliveryTicksPerSec).Set(int64(float64(ticks) / secs))
		reg.Gauge(MetricDeliveryAuctionsPerSec).Set(int64(float64(auctions) / secs))
	}
}
