package platform

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// fixture shares one trained platform across tests; construction (vision +
// eAR training) dominates test time otherwise.
type fixture struct {
	pop      *population.Population
	behave   *population.Behavior
	registry *voter.Registry // FL
	ncReg    *voter.Registry
}

var (
	fixtureOnce sync.Once
	fx          fixture
)

func sharedFixture(t *testing.T) *fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 101)
		flCfg.NumVoters = 24000
		ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, 102)
		ncCfg.NumVoters = 24000
		fl, err := voter.Generate(flCfg)
		if err != nil {
			panic(err)
		}
		nc, err := voter.Generate(ncCfg)
		if err != nil {
			panic(err)
		}
		pop, err := population.Build(population.Config{Seed: 103}, fl, nc)
		if err != nil {
			panic(err)
		}
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		fx = fixture{pop: pop, behave: behave, registry: fl, ncReg: nc}
	})
	return &fx
}

func testConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Training.LogRows = 12000
	cfg.ReviewRejectProb = 0
	return cfg
}

func newTestPlatform(t *testing.T, seed int64) (*Platform, *fixture) {
	t.Helper()
	f := sharedFixture(t)
	p, err := New(testConfig(seed), f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	return p, f
}

// uploadBalancedAudience creates a custom audience from a stratified sample
// of both registries and returns its ID.
func uploadBalancedAudience(t *testing.T, p *Platform, f *fixture, perCell int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var hashes []string
	for _, reg := range []*voter.Registry{f.registry, f.ncReg} {
		sample := voter.StratifiedSample(reg.Records, perCell, rng)
		for i := range sample {
			r := &sample[i]
			hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
		}
	}
	ca, err := p.CreateCustomAudience("balanced", hashes)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Size == 0 {
		t.Fatal("audience matched no users")
	}
	return ca.ID
}

func TestObjectiveAndCategoryRoundTrip(t *testing.T) {
	for _, o := range []Objective{ObjectiveTraffic, ObjectiveConversions, ObjectiveAwareness} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("objective %v: %v, %v", o, got, err)
		}
	}
	if _, err := ParseObjective("REACH"); err == nil {
		t.Error("unknown objective: want error")
	}
	for _, c := range []SpecialAdCategory{SpecialNone, SpecialEmployment, SpecialHousing, SpecialCredit} {
		got, err := ParseSpecialAdCategory(c.String())
		if err != nil || got != c {
			t.Errorf("category %v: %v, %v", c, got, err)
		}
	}
	if _, err := ParseSpecialAdCategory("POLITICS"); err == nil {
		t.Error("unknown category: want error")
	}
}

func TestTargetingValidateSpecialCategories(t *testing.T) {
	base := Targeting{CustomAudienceIDs: []string{"ca-1"}}
	if err := base.Validate(SpecialNone); err != nil {
		t.Errorf("plain targeting: %v", err)
	}
	aged := base
	aged.AgeMin, aged.AgeMax = 25, 45
	if err := aged.Validate(SpecialNone); err != nil {
		t.Errorf("age-limited ordinary ad: %v", err)
	}
	if err := aged.Validate(SpecialEmployment); err == nil {
		t.Error("age targeting in employment category: want error")
	}
	gendered := base
	gendered.Genders = []demo.Gender{demo.GenderFemale}
	if err := gendered.Validate(SpecialHousing); err == nil {
		t.Error("gender targeting in housing category: want error")
	}
	empty := Targeting{}
	if err := empty.Validate(SpecialNone); err == nil {
		t.Error("no audiences: want error")
	}
	bad := base
	bad.AgeMin, bad.AgeMax = 40, 30
	if err := bad.Validate(SpecialNone); err == nil {
		t.Error("inverted age range: want error")
	}
}

func TestNewValidation(t *testing.T) {
	f := sharedFixture(t)
	if _, err := New(testConfig(1), nil, f.behave); err == nil {
		t.Error("nil population: want error")
	}
	if _, err := New(testConfig(1), f.pop, nil); err == nil {
		t.Error("nil behaviour: want error")
	}
	cfg := testConfig(1)
	cfg.Ticks = 1
	if _, err := New(cfg, f.pop, f.behave); err == nil {
		t.Error("1 tick: want error")
	}
	cfg = testConfig(1)
	cfg.Training.LogRows = 10
	if _, err := New(cfg, f.pop, f.behave); err == nil {
		t.Error("tiny training log: want error")
	}
}

func TestCustomAudienceMatching(t *testing.T) {
	p, f := newTestPlatform(t, 200)
	recs := f.registry.Records[:500]
	hashes := make([]string, 0, len(recs)+2)
	for i := range recs {
		r := &recs[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	// Unknown hashes and duplicates must be tolerated silently.
	hashes = append(hashes, "deadbeef", hashes[0])
	ca, err := p.CreateCustomAudience("test", hashes)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Size == 0 || ca.Size > 500 {
		t.Errorf("matched %d of 500", ca.Size)
	}
	// Match rate should be near the population build rate.
	if rate := float64(ca.Size) / 500; rate < 0.3 || rate > 0.95 {
		t.Errorf("match rate %v", rate)
	}
	if _, err := p.CreateCustomAudience("", hashes); err == nil {
		t.Error("unnamed audience: want error")
	}
	if _, err := p.CreateCustomAudience("empty", nil); err == nil {
		t.Error("empty upload: want error")
	}
	if _, err := p.Audience("ca-404"); err == nil {
		t.Error("unknown audience: want error")
	}
}

func TestCreateAdValidation(t *testing.T) {
	p, f := newTestPlatform(t, 201)
	caID := uploadBalancedAudience(t, p, f, 20, 1)
	cmp, err := p.CreateCampaign("c", ObjectiveTraffic, SpecialNone, 2019)
	if err != nil {
		t.Fatal(err)
	}
	creative := Creative{Image: image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})}
	good := Targeting{CustomAudienceIDs: []string{caID}}
	if _, err := p.CreateAd(cmp.ID, creative, good, 200); err != nil {
		t.Fatalf("valid ad: %v", err)
	}
	if _, err := p.CreateAd("cmp-404", creative, good, 200); err == nil {
		t.Error("unknown campaign: want error")
	}
	if _, err := p.CreateAd(cmp.ID, creative, good, 0); err == nil {
		t.Error("zero budget: want error")
	}
	bad := Targeting{CustomAudienceIDs: []string{"ca-404"}}
	if _, err := p.CreateAd(cmp.ID, creative, bad, 200); err == nil {
		t.Error("unknown audience: want error")
	}
	if _, err := p.CreateCampaign("", ObjectiveTraffic, SpecialNone, 2019); err == nil {
		t.Error("unnamed campaign: want error")
	}
}

func TestAdReviewAndAppeal(t *testing.T) {
	p, f := newTestPlatform(t, 202)
	caID := uploadBalancedAudience(t, p, f, 20, 2)
	cmp, _ := p.CreateCampaign("c", ObjectiveTraffic, SpecialNone, 2019)
	creative := Creative{Image: image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})}
	targeting := Targeting{CustomAudienceIDs: []string{caID}}

	if err := p.SetReviewRejectProb(2); err == nil {
		t.Error("reject prob > 1: want error")
	}
	if err := p.SetReviewRejectProb(1); err != nil {
		t.Fatal(err)
	}
	ad, err := p.CreateAd(cmp.ID, creative, targeting, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Status != StatusRejected {
		t.Fatalf("status %v, want rejected under prob 1", ad.Status)
	}
	// Appeal under prob 1 keeps it rejected; under prob 0 it recovers. The
	// returned ads are snapshots, so each appeal's outcome is read from its
	// own return value.
	denied, err := p.AppealAd(ad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if denied.Status != StatusRejected {
		t.Error("appeal under reject prob 1 should fail")
	}
	if err := p.SetReviewRejectProb(0); err != nil {
		t.Fatal(err)
	}
	granted, err := p.AppealAd(ad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if granted.Status != StatusActive {
		t.Error("appeal under reject prob 0 should recover the ad")
	}
	// Appealing a non-rejected ad is an error.
	if _, err := p.AppealAd(ad.ID); err == nil {
		t.Error("appealing active ad: want error")
	}
	if _, err := p.AppealAd("ad-404"); err == nil {
		t.Error("unknown ad: want error")
	}
}

func TestFoldedEARMatchesFullModel(t *testing.T) {
	p, f := newTestPlatform(t, 203)
	// Property: for random creatives and users, the folded evaluation must
	// equal the full featurized logistic prediction.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		prof := demo.AllProfiles()[rng.Intn(20)]
		img := image.FromProfile(prof)
		if rng.Float64() < 0.3 {
			img.Job = image.JobTypes()[rng.Intn(11)]
		}
		if rng.Float64() < 0.1 {
			img = image.Features{} // no-person creative
		}
		pc := p.perceive(img)
		folded := p.ear.fold(&pc)
		u := f.pop.View(rng.Intn(f.pop.Len()))
		x := make([]float64, p.ear.layout.dim)
		p.ear.layout.featurize(u, &pc, x)
		want := p.ear.fit.Predict(x)
		got := folded.rate(u)
		if d := got - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("trial %d: folded %v != full %v", trial, got, want)
		}
	}
}

func TestEARLearnsHomophily(t *testing.T) {
	p, f := newTestPlatform(t, 204)
	blackImg := p.perceive(image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult}))
	whiteImg := p.perceive(image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult}))
	fb := p.ear.fold(&blackImg)
	fw := p.ear.fold(&whiteImg)
	// Averaged over many users of each race, the trained model must predict
	// higher action rates for congruent pairings.
	var bOnB, bOnW, wOnB, wOnW float64
	var nb, nw int
	for i := 0; i < f.pop.Len(); i++ {
		u := f.pop.View(i)
		switch u.Race() {
		case demo.RaceBlack:
			bOnB += fb.rate(u)
			bOnW += fw.rate(u)
			nb++
		case demo.RaceWhite:
			wOnB += fb.rate(u)
			wOnW += fw.rate(u)
			nw++
		}
		if nb > 2000 && nw > 2000 {
			break
		}
	}
	if bOnB/float64(nb) <= bOnW/float64(nb) {
		t.Error("eAR should predict Black users engage more with Black-image ads")
	}
	if wOnW/float64(nw) <= wOnB/float64(nw) {
		t.Error("eAR should predict white users engage more with white-image ads")
	}
}

// imageOfAdult is a shared creative fixture.
func imageOfAdult() image.Features {
	f := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	f.ApplyPresentationBias()
	return f
}
