package platform

// The sharded parallel delivery engine. The audience is partitioned into
// `workers` deterministic shards; each shard runs its tick's auctions on its
// own goroutine with its own RNG stream and thread-local accumulators, and
// everything shared is committed single-threaded at the tick barrier in
// fixed shard order. That makes the day's output a pure function of
// (ads, seed, worker count): repeated runs are bit-identical.
//
// Budget pacing is two-phase per tick:
//
//	phase 1 (single-threaded): the pacing controller updates every ad's
//	  effective bid from the *committed* spend — exactly the sequential
//	  controller's rule — and slices the tick's spend cap per shard;
//	phase 2 (parallel): shards bid against that frozen tick-start snapshot
//	  (ad.pacing / ad.spent / the per-shard cap never move mid-tick),
//	  accruing spend and stats locally;
//	phase 3 (single-threaded): shard spend commits into ad.spent in shard
//	  order — fixed floating-point addition order — clamped so the daily
//	  budget is never exceeded, and buffered served-log rows flush in the
//	  same order.
//
// Per-user state (frequency caps, reach) needs no synchronization at all:
// a user lives in exactly one shard, so the shard's local maps are the
// authoritative ones.

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/population"
)

// newDeliveryShard builds one shard's day state: a private RNG stream
// derived from (seed, shard) and empty per-ad accumulators.
func newDeliveryShard(seed int64, shard, numAds, ticks int) *deliveryShard {
	sh := &deliveryShard{
		rng:  rand.New(rand.NewSource(shardSeed(seed, shard))),
		accs: make([]*shardAcc, numAds),
	}
	for i := range sh.accs {
		sh.accs[i] = &shardAcc{
			hourly:    make([]int, ticks),
			breakdown: map[BreakdownKey]int{},
			race:      map[demo.Race]int{},
			reached:   map[int]struct{}{},
			frequency: map[int]int{},
		}
	}
	return sh
}

// mergeShardStats folds one shard's day-end accumulators into the stats map
// in run-index order. Map-to-map addition is insensitive to Go's randomized
// map iteration order, so the merged counts are deterministic even though
// the per-shard map walks are not. Reach adds because shards own disjoint
// users.
func mergeShardStats(stats map[string]*AdStats, active []*Ad, sh *deliveryShard) {
	for i, acc := range sh.accs {
		st := stats[active[i].ID]
		st.Impressions += acc.impressions
		st.Clicks += acc.clicks
		st.Reach += len(acc.reached)
		for t, v := range acc.hourly {
			st.HourlySeries[t] += v
		}
		for k, v := range acc.breakdown {
			st.Breakdown[k] += v
		}
		for r, v := range acc.race {
			st.RaceOracle[r] += v
		}
	}
}

// shardSeed derives one shard's RNG seed from the day seed with a
// splitmix64-style mixer, giving well-separated streams even for adjacent
// (seed, shard) pairs. The mapping depends only on its inputs, so a fixed
// (seed, workers) pair always reproduces the same streams.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shardAcc is one ad's thread-local accumulator inside one shard. Spend is
// drained at every tick barrier; the counting stats merge once at day end.
type shardAcc struct {
	tickSpent   float64 // spend accrued this tick, committed at the barrier
	impressions int
	clicks      int
	hourly      []int
	breakdown   map[BreakdownKey]int
	race        map[demo.Race]int
	reached     map[int]struct{}
	frequency   map[int]int
}

// deliveryShard owns a disjoint slice of the audience (as row positions into
// the day's CSR eligibility index), a private RNG stream that persists across
// ticks, and per-ad accumulators.
type deliveryShard struct {
	rng      *rand.Rand
	order    []int32     // row positions into the day's eligIndex
	accs     []*shardAcc // indexed by Ad.runIdx
	served   []servedRow // buffered rows, flushed at the tick barrier
	auctions int64
}

// runDaySharded runs the parallel engine. The caller holds p.mu for writing
// for the whole day, same as the sequential engine; parallelism lives
// entirely inside this call. Returns the auction count and the total time
// spent in barrier commits (zero unless an observer is installed).
func (p *Platform) runDaySharded(active []*Ad, elig *eligIndex, seed int64, workers int) (int64, time.Duration) {
	ticks := p.cfg.Ticks
	shards := make([]*deliveryShard, workers)
	for s := range shards {
		shards[s] = newDeliveryShard(seed, s, len(active), ticks)
	}
	// Round-robin partition of the row positions (ascending population
	// order, the old sorted user list): deterministic, and it spreads every
	// demographic stratum across shards instead of giving one shard a
	// contiguous (correlated) block.
	for i := 0; i < elig.rows(); i++ {
		sh := shards[i%workers]
		sh.order = append(sh.order, int32(i))
	}

	var mergeTime time.Duration
	timed := p.obsReg != nil
	shardCaps := make([]float64, len(active))
	for tick := 0; tick < ticks; tick++ {
		// Phase 1: pacing controller over committed spend. Identical update
		// rule to the sequential engine's; only the tick cap is additionally
		// sliced per shard.
		elapsed := float64(tick) / float64(ticks)
		for i, ad := range active {
			budget := float64(ad.DailyBudgetCents) / 100
			ad.pacing, ad.tickCap = pacingStep(ad.pacing, ad.spent, budget, elapsed, ticks, p.cfg.GreedyPacing)
			ad.tickSpent = 0
			shardCaps[i] = shardCapShare(ad.tickCap, budget, ad.spent, workers)
		}

		// Phase 2: the parallel fan-out. Shards only read the shared state
		// (ad bid fields frozen until the barrier, the population columns,
		// the read-only CSR index) and write their own accumulators.
		p.runShardTick(shards, active, elig, tick, shardCaps)

		// Phase 3: barrier commit in fixed shard order.
		var commitStart time.Time
		if timed {
			commitStart = p.clock.Now()
		}
		for _, sh := range shards {
			for i, acc := range sh.accs {
				if acc.tickSpent == 0 {
					continue
				}
				ad := active[i]
				ad.spent = commitSpend(ad.spent, acc.tickSpent, float64(ad.DailyBudgetCents)/100)
				acc.tickSpent = 0
			}
			// Serve-log rows flush in shard order, so the retraining buffer
			// (and its maxServedLog truncation point) is deterministic.
			for _, row := range sh.served {
				p.recordServed(row.userIdx, row.ad, row.clicked)
			}
			sh.served = sh.served[:0]
		}
		if timed {
			mergeTime += p.clock.Now().Sub(commitStart)
		}
	}

	// Day-end merge, fixed shard order.
	var auctions int64
	for _, sh := range shards {
		auctions += sh.auctions
		mergeShardStats(p.stats, active, sh)
	}
	return auctions, mergeTime
}

// runShardTick fans one tick out to a goroutine per shard and waits for all
// of them. The WaitGroup wait is the tick barrier of the two-phase pacing
// design: no shared mutation happens until every shard has parked, so the
// commit phase that follows needs no locking at all.
func (p *Platform) runShardTick(shards []*deliveryShard, active []*Ad, elig *eligIndex, tick int, shardCaps []float64) {
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *deliveryShard) {
			defer wg.Done()
			p.shardTick(sh, active, elig, tick, shardCaps)
		}(sh)
	}
	wg.Wait()
}

// shardTick runs one shard's slice of a tick: shuffle the shard's row
// positions with the shard RNG, then run each user's sessions.
func (p *Platform) shardTick(sh *deliveryShard, active []*Ad, elig *eligIndex, tick int, shardCaps []float64) {
	rng := sh.rng
	order := sh.order
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	ticks := float64(p.cfg.Ticks)
	for _, pos := range order {
		u := p.pop.View(int(elig.users[pos]))
		sessions := poisson(rng, u.Activity()/ticks)
		sh.auctions += int64(sessions)
		for s := 0; s < sessions; s++ {
			p.shardAuction(sh, active, u, elig.adsFor(pos), tick, shardCaps)
		}
	}
}

// shardAuction is the sharded counterpart of auction: same bidding,
// second-price, frequency-cap, and click semantics, but spend and stats
// accrue into the shard's accumulators and the tick cap is the shard's
// slice of it.
func (p *Platform) shardAuction(sh *deliveryShard, active []*Ad, u population.UserView, eligible []int32, tick int, shardCaps []float64) {
	rng := sh.rng
	uid := u.ID()
	bg := p.backgroundBid(rng, u)
	var winner *Ad
	best, second := bg, 0.0
	// Random starting offset so exact-tie auctions don't systematically
	// favor earlier-created ads.
	off := 0
	if len(eligible) > 1 {
		off = rng.Intn(len(eligible))
	}
	for k := range eligible {
		ad := active[eligible[(k+off)%len(eligible)]]
		acc := sh.accs[ad.runIdx]
		if ad.pacing <= 0 || ad.spent >= float64(ad.DailyBudgetCents)/100 || acc.tickSpent >= shardCaps[ad.runIdx] {
			continue
		}
		if p.cfg.FrequencyCap > 0 && acc.frequency[uid] >= p.cfg.FrequencyCap {
			continue
		}
		value := ad.pacing*p.optimizationTerm(ad, u) + p.cfg.Quality
		if p.cfg.ValueNoise > 0 {
			sigma := p.cfg.ValueNoise
			value *= math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
		}
		if value > best {
			second = best
			best = value
			winner = ad
		} else if value > second {
			second = value
		}
	}
	if winner == nil {
		return
	}
	price := math.Max(second, bg)
	acc := sh.accs[winner.runIdx]
	acc.tickSpent += price
	acc.impressions++
	acc.hourly[tick]++
	acc.breakdown[BreakdownKey{
		Age:    u.AgeBucket(),
		Gender: u.Gender(),
		Region: p.deliveryRegion(rng, u),
	}]++
	acc.race[u.Race()]++
	acc.reached[uid] = struct{}{}
	acc.frequency[uid]++
	clicked := rng.Float64() < p.behave.ClickProb(u, winner.Creative.Image)
	if clicked {
		acc.clicks++
	}
	sh.served = append(sh.served, servedRow{userIdx: uid, ad: winner, clicked: clicked})
}
