package platform

import (
	"fmt"
	"sort"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// This file is the platform's serialization boundary: the durable-state
// subsystem (internal/store) persists the account through the exported
// State/Restore/ApplyMutation surface and the mutation hook, never by
// reaching into private fields. Two properties shape the design:
//
//   - Events carry RESULTS, not commands. Ad review consumes the review RNG
//     and RunDay consumes a delivery RNG, so replaying the *call* would
//     diverge from what the platform acked. Every mutation therefore embeds
//     the full post-mutation object state (the created ad with its review
//     outcome, the delivered day with its complete AdStats), making replay
//     deterministic and idempotent: applying a mutation twice, or applying
//     one already reflected in a snapshot, converges to the same state.
//
//   - The world is rebuilt, the account is restored. Population, behaviour
//     model, vision model, and eAR model are deterministic functions of the
//     configuration seed and are NOT serialized; custom-audience membership
//     and ad audiences are stored as population indexes, which are only
//     valid against the same world. Recovery must run against a platform
//     built from the same seed; internal/store verifies the population size
//     as a cheap fingerprint. The retraining buffer and the RNG cursors are
//     deliberately non-durable: losing them costs nothing the audit
//     methodology observes.

// StateVersion tags the serialized account layout. Readers must reject
// versions they do not understand rather than guess.
const StateVersion = 1

// Mutation kinds, one per durable platform state change.
const (
	MutAudienceCreated = "audience_created"
	MutCampaignCreated = "campaign_created"
	MutAdCreated       = "ad_created"
	MutAdAppealed      = "ad_appealed"
	MutDayDelivered    = "day_delivered"
)

// AudienceState is the serializable form of a CustomAudience, including the
// matched member indexes the API never exposes (they are account state, not
// advertiser-visible data).
type AudienceState struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Size    int    `json:"size"`
	Members []int  `json:"members"`
}

// AdState is the serializable form of an Ad. Perceived-creative scores and
// the folded eAR coefficients are re-derived on restore from the creative
// and the (deterministically retrained) models, so only inputs are stored.
type AdState struct {
	ID               string    `json:"id"`
	CampaignID       string    `json:"campaign_id"`
	Objective        Objective `json:"objective"`
	Creative         Creative  `json:"creative"`
	Targeting        Targeting `json:"targeting"`
	DailyBudgetCents int       `json:"daily_budget_cents"`
	Status           AdStatus  `json:"status"`
	Audience         []int     `json:"audience"`
}

// BreakdownCell is one insights breakdown cell in serializable form (struct
// map keys do not survive JSON).
type BreakdownCell struct {
	Age    demo.AgeBucket `json:"age"`
	Gender demo.Gender    `json:"gender"`
	Region demo.State     `json:"region"`
	N      int            `json:"n"`
}

// RaceCell is one race-oracle count.
type RaceCell struct {
	Race demo.Race `json:"race"`
	N    int       `json:"n"`
}

// AdStatsState is the serializable form of an AdStats.
type AdStatsState struct {
	AdID        string          `json:"ad_id"`
	Impressions int             `json:"impressions"`
	Reach       int             `json:"reach"`
	Clicks      int             `json:"clicks"`
	SpendCents  float64         `json:"spend_cents"`
	Cells       []BreakdownCell `json:"cells"`
	Hourly      []int           `json:"hourly"`
	RaceCells   []RaceCell      `json:"race_cells"`
}

// AppealState records the outcome of an ad appeal.
type AppealState struct {
	AdID   string   `json:"ad_id"`
	Status AdStatus `json:"status"`
}

// DeliveryState records one committed delivery day: which ads completed and
// their frozen insights.
type DeliveryState struct {
	Seed int64 `json:"seed"`
	// Workers is the effective delivery worker count the day ran with.
	// Replay applies the recorded stats rather than re-running the day, so
	// the field is informational, but it lets an auditor confirm which
	// engine configuration produced a recorded day.
	Workers int `json:"workers,omitempty"`
	// Shard/Shards identify which slice of a coordinated multi-process day
	// this backend ran (see delivery_session.go). Zero for in-process days.
	Shard     int            `json:"shard,omitempty"`
	Shards    int            `json:"shards,omitempty"`
	Completed []string       `json:"completed"`
	Stats     []AdStatsState `json:"stats"`
}

// sortDeliveryState puts a day record into its canonical order (sorted ad
// IDs), so identical days serialize to identical bytes.
func sortDeliveryState(del *DeliveryState) {
	sort.Strings(del.Completed)
	sort.Slice(del.Stats, func(i, j int) bool { return del.Stats[i].AdID < del.Stats[j].AdID })
}

// Mutation is one durable platform state change, emitted through the
// mutation hook after the change is applied in memory. Exactly one of the
// payload pointers is set, selected by Kind. NextID is the ID allocator
// cursor after the mutation, so replay restores it without parsing IDs.
type Mutation struct {
	Kind     string         `json:"kind"`
	NextID   int            `json:"next_id"`
	Audience *AudienceState `json:"audience,omitempty"`
	Campaign *Campaign      `json:"campaign,omitempty"`
	Ad       *AdState       `json:"ad,omitempty"`
	Appeal   *AppealState   `json:"appeal,omitempty"`
	Delivery *DeliveryState `json:"delivery,omitempty"`
}

// MutationHook receives every committed mutation. It is invoked synchronously
// while the platform's write lock is held, so hook invocation order is
// exactly state-application order; implementations must therefore be fast
// (enqueue, don't fsync) and must not call back into the platform.
type MutationHook func(Mutation)

// SetMutationHook installs the hook (nil disables emission). Install it
// before serving traffic; mutations applied earlier are not re-emitted.
func (p *Platform) SetMutationHook(hook MutationHook) {
	p.mu.Lock()
	p.hook = hook
	p.mu.Unlock()
}

// emit delivers a mutation to the hook; the caller holds p.mu (write).
func (p *Platform) emit(m Mutation) {
	if p.hook == nil {
		return
	}
	m.NextID = p.nextID
	p.hook(m)
}

// NumUsers reports the size of the user population, the cheap world
// fingerprint snapshots carry to catch recovery against a mismatched seed.
func (p *Platform) NumUsers() int {
	return p.pop.Len()
}

// State captures the full durable account state as a deep copy with
// deterministic ordering (sorted by object ID), so identical accounts
// serialize to identical bytes.
func (p *Platform) State() *State {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := &State{Version: StateVersion, NextID: p.nextID}
	for _, ca := range p.audiences {
		st.Audiences = append(st.Audiences, *audienceState(ca))
	}
	for _, c := range p.campaigns {
		st.Campaigns = append(st.Campaigns, *c)
	}
	for _, ad := range p.ads {
		st.Ads = append(st.Ads, *adState(ad))
	}
	for _, s := range p.stats {
		st.Stats = append(st.Stats, *adStatsState(s))
	}
	sort.Slice(st.Audiences, func(i, j int) bool { return st.Audiences[i].ID < st.Audiences[j].ID })
	sort.Slice(st.Campaigns, func(i, j int) bool { return st.Campaigns[i].ID < st.Campaigns[j].ID })
	sort.Slice(st.Ads, func(i, j int) bool { return st.Ads[i].ID < st.Ads[j].ID })
	sort.Slice(st.Stats, func(i, j int) bool { return st.Stats[i].AdID < st.Stats[j].AdID })
	return st
}

// State is the serializable account: everything a restart must bring back.
type State struct {
	Version   int             `json:"version"`
	NextID    int             `json:"next_id"`
	Audiences []AudienceState `json:"audiences"`
	Campaigns []Campaign      `json:"campaigns"`
	Ads       []AdState       `json:"ads"`
	Stats     []AdStatsState  `json:"stats"`
}

// Restore replaces the account state wholesale. Call it on a freshly built
// platform (same world seed) before serving traffic; the mutation hook is
// not invoked for restored state.
func (p *Platform) Restore(st *State) error {
	if st == nil {
		return fmt.Errorf("platform: nil state")
	}
	if st.Version != StateVersion {
		return fmt.Errorf("platform: state version %d, this build reads %d", st.Version, StateVersion)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.audiences = make(map[string]*CustomAudience, len(st.Audiences))
	p.campaigns = make(map[string]*Campaign, len(st.Campaigns))
	p.ads = make(map[string]*Ad, len(st.Ads))
	p.stats = make(map[string]*AdStats, len(st.Stats))
	p.nextID = st.NextID
	for i := range st.Audiences {
		if err := p.applyAudienceLocked(&st.Audiences[i]); err != nil {
			return err
		}
	}
	for i := range st.Campaigns {
		c := st.Campaigns[i]
		p.campaigns[c.ID] = &c
	}
	for i := range st.Ads {
		if err := p.applyAdLocked(&st.Ads[i]); err != nil {
			return err
		}
	}
	for i := range st.Stats {
		p.applyStatsLocked(&st.Stats[i])
	}
	return nil
}

// ApplyMutation applies one replayed mutation. Application is idempotent
// (objects are keyed by ID and overwritten), which lets recovery replay a
// WAL tail that overlaps the snapshot it starts from.
func (p *Platform) ApplyMutation(m *Mutation) error {
	if m == nil {
		return fmt.Errorf("platform: nil mutation")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.NextID > p.nextID {
		p.nextID = m.NextID
	}
	switch m.Kind {
	case MutAudienceCreated:
		if m.Audience == nil {
			return fmt.Errorf("platform: %s mutation without payload", m.Kind)
		}
		return p.applyAudienceLocked(m.Audience)
	case MutCampaignCreated:
		if m.Campaign == nil {
			return fmt.Errorf("platform: %s mutation without payload", m.Kind)
		}
		c := *m.Campaign
		p.campaigns[c.ID] = &c
		return nil
	case MutAdCreated:
		if m.Ad == nil {
			return fmt.Errorf("platform: %s mutation without payload", m.Kind)
		}
		return p.applyAdLocked(m.Ad)
	case MutAdAppealed:
		if m.Appeal == nil {
			return fmt.Errorf("platform: %s mutation without payload", m.Kind)
		}
		ad, ok := p.ads[m.Appeal.AdID]
		if !ok {
			return fmt.Errorf("platform: appeal replay for unknown ad %q", m.Appeal.AdID)
		}
		ad.Status = m.Appeal.Status
		return nil
	case MutDayDelivered:
		if m.Delivery == nil {
			return fmt.Errorf("platform: %s mutation without payload", m.Kind)
		}
		for _, id := range m.Delivery.Completed {
			ad, ok := p.ads[id]
			if !ok {
				return fmt.Errorf("platform: delivery replay for unknown ad %q", id)
			}
			ad.Status = StatusCompleted
		}
		for i := range m.Delivery.Stats {
			p.applyStatsLocked(&m.Delivery.Stats[i])
		}
		return nil
	}
	return fmt.Errorf("platform: unknown mutation kind %q", m.Kind)
}

// applyAudienceLocked installs an audience from its serialized form; the
// caller holds p.mu.
func (p *Platform) applyAudienceLocked(as *AudienceState) error {
	for _, idx := range as.Members {
		if idx < 0 || idx >= p.pop.Len() {
			return fmt.Errorf("platform: audience %s member index %d outside population of %d (world seed mismatch?)",
				as.ID, idx, p.pop.Len())
		}
	}
	p.audiences[as.ID] = &CustomAudience{
		ID:      as.ID,
		Name:    as.Name,
		Size:    as.Size,
		members: append([]int(nil), as.Members...),
	}
	return nil
}

// applyAdLocked installs an ad from its serialized form, re-deriving the
// machine-perceived creative and the folded eAR coefficients from the
// current models; the caller holds p.mu.
func (p *Platform) applyAdLocked(as *AdState) error {
	for _, idx := range as.Audience {
		if idx < 0 || idx >= p.pop.Len() {
			return fmt.Errorf("platform: ad %s audience index %d outside population of %d (world seed mismatch?)",
				as.ID, idx, p.pop.Len())
		}
	}
	ad := &Ad{
		ID:               as.ID,
		CampaignID:       as.CampaignID,
		Objective:        as.Objective,
		Creative:         as.Creative,
		Targeting:        as.Targeting,
		DailyBudgetCents: as.DailyBudgetCents,
		Status:           as.Status,
		audience:         append([]int(nil), as.Audience...),
	}
	ad.perceived = p.perceive(ad.Creative.Image)
	ad.folded = p.ear.fold(&ad.perceived)
	p.ads[ad.ID] = ad
	return nil
}

// applyStatsLocked installs delivery stats from their serialized form; the
// caller holds p.mu.
func (p *Platform) applyStatsLocked(ss *AdStatsState) {
	st := &AdStats{
		AdID:         ss.AdID,
		Impressions:  ss.Impressions,
		Reach:        ss.Reach,
		Clicks:       ss.Clicks,
		SpendCents:   ss.SpendCents,
		Breakdown:    make(map[BreakdownKey]int, len(ss.Cells)),
		HourlySeries: append([]int(nil), ss.Hourly...),
		RaceOracle:   make(map[demo.Race]int, len(ss.RaceCells)),
	}
	for _, c := range ss.Cells {
		st.Breakdown[BreakdownKey{Age: c.Age, Gender: c.Gender, Region: c.Region}] = c.N
	}
	for _, c := range ss.RaceCells {
		st.RaceOracle[c.Race] = c.N
	}
	p.stats[ss.AdID] = st
}

// audienceState serializes an audience; the caller holds p.mu (read).
func audienceState(ca *CustomAudience) *AudienceState {
	return &AudienceState{
		ID:      ca.ID,
		Name:    ca.Name,
		Size:    ca.Size,
		Members: append([]int(nil), ca.members...),
	}
}

// adState serializes an ad; the caller holds p.mu (read).
func adState(ad *Ad) *AdState {
	return &AdState{
		ID:               ad.ID,
		CampaignID:       ad.CampaignID,
		Objective:        ad.Objective,
		Creative:         ad.Creative,
		Targeting:        ad.Targeting,
		DailyBudgetCents: ad.DailyBudgetCents,
		Status:           ad.Status,
		Audience:         append([]int(nil), ad.audience...),
	}
}

// adStatsState serializes delivery stats with deterministic cell ordering;
// the caller holds p.mu (read).
func adStatsState(st *AdStats) *AdStatsState {
	ss := &AdStatsState{
		AdID:        st.AdID,
		Impressions: st.Impressions,
		Reach:       st.Reach,
		Clicks:      st.Clicks,
		SpendCents:  st.SpendCents,
		Hourly:      append([]int(nil), st.HourlySeries...),
	}
	for k, n := range st.Breakdown {
		ss.Cells = append(ss.Cells, BreakdownCell{Age: k.Age, Gender: k.Gender, Region: k.Region, N: n})
	}
	sort.Slice(ss.Cells, func(i, j int) bool {
		a, b := ss.Cells[i], ss.Cells[j]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		if a.Gender != b.Gender {
			return a.Gender < b.Gender
		}
		return a.Region < b.Region
	})
	for r, n := range st.RaceOracle {
		ss.RaceCells = append(ss.RaceCells, RaceCell{Race: r, N: n})
	}
	sort.Slice(ss.RaceCells, func(i, j int) bool { return ss.RaceCells[i].Race < ss.RaceCells[j].Race })
	return ss
}
