package platform

import (
	"fmt"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// The estimated-action-rate model (§2.1). A logistic regression over user
// features, perceived creative features, and their pairwise interactions,
// trained on historical engagement logs. The interactions are what let
// optimization learn patterns like homophily — no such pattern is coded
// here; the capacity is generic and the weights come from data.

const (
	numUserFeatures  = 5 // age, age², female, black, older-male
	numImageFeatures = 6 // female, black, age, age², child, young-woman
)

// featureLayout fixes the index ranges of the eAR design vector.
type featureLayout struct {
	user   int // start of user block
	img    int // start of image block
	cross  int // start of user×image block (row-major user-major)
	ageGap int // |user age - perceived image age| / 80, a standard
	// age-match ranking feature; its weight is learned like any other
	hasPerson int
	jobs      int // start of job block: per job [main, ×female, ×black]
	jobNames  []string
	dim       int
}

func newFeatureLayout() featureLayout {
	l := featureLayout{jobNames: image.JobTypes()}
	l.user = 0
	l.img = l.user + numUserFeatures
	l.cross = l.img + numImageFeatures
	l.ageGap = l.cross + numUserFeatures*numImageFeatures
	l.hasPerson = l.ageGap + 1
	l.jobs = l.hasPerson + 1
	l.dim = l.jobs + 3*len(l.jobNames)
	return l
}

func (l *featureLayout) names() []string {
	userNames := [numUserFeatures]string{"u-age", "u-age2", "u-female", "u-black", "u-older-male"}
	imgNames := [numImageFeatures]string{"i-female", "i-black", "i-age", "i-age2", "i-child", "i-young-woman"}
	out := make([]string, 0, l.dim)
	out = append(out, userNames[:]...)
	out = append(out, imgNames[:]...)
	for _, u := range userNames {
		for _, i := range imgNames {
			out = append(out, u+"×"+i)
		}
	}
	out = append(out, "age-gap", "has-person")
	for _, j := range l.jobNames {
		out = append(out, "job-"+j, "job-"+j+"×u-female", "job-"+j+"×u-black")
	}
	return out
}

// userBasis fills dst (len numUserFeatures) with the user-side features.
func userBasis(u population.UserView, dst []float64) {
	age := u.Age()
	a := float64(age) / 80
	dst[0] = a
	dst[1] = a * a
	if u.Gender() == demo.GenderFemale {
		dst[2] = 1
	} else {
		dst[2] = 0
	}
	if u.Race() == demo.RaceBlack {
		dst[3] = 1
	} else {
		dst[3] = 0
	}
	dst[4] = 0
	if u.Gender() == demo.GenderMale && age > 55 {
		dst[4] = float64(age-55) / 25
	}
}

// imageBasis fills dst (len numImageFeatures) from a perceived creative.
func imageBasis(pc *perceivedCreative, dst []float64) {
	if !pc.HasPerson {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	a := pc.AgeYears / 80
	dst[0] = pc.Female
	dst[1] = pc.Black
	dst[2] = a
	dst[3] = a * a
	dst[4] = pc.Child
	dst[5] = pc.YoungWoman
}

// featurize writes the full design vector for a (user, creative) pair.
func (l *featureLayout) featurize(u population.UserView, pc *perceivedCreative, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	ub := dst[l.user : l.user+numUserFeatures]
	ib := dst[l.img : l.img+numImageFeatures]
	userBasis(u, ub)
	imageBasis(pc, ib)
	k := l.cross
	for _, uv := range ub {
		for _, iv := range ib {
			dst[k] = uv * iv
			k++
		}
	}
	if pc.HasPerson {
		dst[l.hasPerson] = 1
		dst[l.ageGap] = ageGap(u.Age(), pc.AgeYears)
	}
	if pc.Job != "" {
		for j, name := range l.jobNames {
			if name == pc.Job {
				base := l.jobs + 3*j
				dst[base] = 1
				dst[base+1] = ub[2] // ×female
				dst[base+2] = ub[3] // ×black
				break
			}
		}
	}
}

// ageGap is the scaled absolute difference between a user's age and the
// perceived age of the person pictured.
func ageGap(userAge int, imgAge float64) float64 {
	g := (float64(userAge) - imgAge) / 80
	if g < 0 {
		return -g
	}
	return g
}

// earModel is the trained estimator plus the folding machinery that makes
// per-(ad, user) evaluation O(numUserFeatures).
type earModel struct {
	layout featureLayout
	fit    *stats.LogitResult
}

// foldedEAR is an eAR model specialized to one creative: because the design
// is linear in (user block) once the image is fixed, the image and
// interaction weights fold into per-user-feature coefficients.
type foldedEAR struct {
	c0        float64
	cu        [numUserFeatures]float64
	gapW      float64 // weight on the age-gap feature
	imgAge    float64
	hasPerson bool
}

// fold specializes the model to a creative.
func (m *earModel) fold(pc *perceivedCreative) foldedEAR {
	w := m.fit.Coef // w[0] is the intercept; feature k is w[k+1]
	l := &m.layout
	var f foldedEAR
	f.c0 = w[0]
	if pc.HasPerson {
		f.hasPerson = true
		f.imgAge = pc.AgeYears
		f.gapW = w[1+l.ageGap]
	}
	var ib [numImageFeatures]float64
	imageBasis(pc, ib[:])
	for j, iv := range ib {
		f.c0 += w[1+l.img+j] * iv
	}
	if pc.HasPerson {
		f.c0 += w[1+l.hasPerson]
	}
	for k := 0; k < numUserFeatures; k++ {
		c := w[1+l.user+k]
		for j, iv := range ib {
			c += w[1+l.cross+k*numImageFeatures+j] * iv
		}
		f.cu[k] = c
	}
	if pc.Job != "" {
		for j, name := range l.jobNames {
			if name == pc.Job {
				base := 1 + l.jobs + 3*j
				f.c0 += w[base]
				f.cu[2] += w[base+1] // ×female
				f.cu[3] += w[base+2] // ×black
				break
			}
		}
	}
	return f
}

// rate returns the estimated action rate for a user under the folded model.
func (f *foldedEAR) rate(u population.UserView) float64 {
	var ub [numUserFeatures]float64
	userBasis(u, ub[:])
	z := f.c0
	for k, v := range ub {
		z += f.cu[k] * v
	}
	if f.hasPerson {
		z += f.gapW * ageGap(u.Age(), f.imgAge)
	}
	return stats.Sigmoid(z)
}

// TrainingConfig controls engagement-log generation and eAR fitting.
type TrainingConfig struct {
	LogRows int   // engagement log size; default 60000
	Seed    int64 // log sampling seed
}

// trainEAR generates historical engagement logs — random users shown random
// historical creatives, with clicks drawn from the ground-truth behaviour
// model — and fits the logistic eAR model on them. This is the only place
// the platform touches the behaviour model, and only through sampled
// outcomes.
func trainEAR(cfg TrainingConfig, pop *population.Population, behave *population.Behavior, vision visionModel) (*earModel, error) {
	if cfg.LogRows == 0 {
		cfg.LogRows = 60000
	}
	rows, err := trainLogRows(cfg, pop, behave, vision)
	if err != nil {
		return nil, err
	}
	layout := newFeatureLayout()
	// Mild ridge: enough to stabilise the interaction block on small logs
	// without flattening the learned affinities.
	fit, err := stats.Logit(layout.names(), rows.x, rows.y, stats.LogitOptions{Ridge: 3.0, MaxIter: 60})
	if err != nil {
		return nil, fmt.Errorf("platform: training eAR model: %w", err)
	}
	return &earModel{layout: layout, fit: fit}, nil
}

// fillEngagementLog populates a design matrix and response vector with
// simulated historical engagement: random users shown random creatives
// (60% plain people images, 30% job ads with a face, 10% no-person), with
// clicks drawn from the ground-truth behaviour model.
func fillEngagementLog(rng *rand.Rand, layout featureLayout, pop *population.Population, behave *population.Behavior, vision visionModel, x *stats.Matrix, y []float64) {
	jobs := image.JobTypes()
	profiles := demo.AllProfiles()
	stock := image.DefaultStockOptions()
	for i := 0; i < x.Rows; i++ {
		u := pop.View(rng.Intn(pop.Len()))
		var img image.Features
		switch r := rng.Float64(); {
		case r < 0.10:
			img = image.Features{}
		default:
			p := profiles[rng.Intn(len(profiles))]
			img = image.FromProfile(p)
			img.GenderAxis += stock.PersonJitter * rng.NormFloat64()
			img.RaceAxis += stock.PersonJitter * rng.NormFloat64()
			img.AgeYears += stock.AgeJitterYears * rng.NormFloat64()
			for j := range img.Nuisance {
				img.Nuisance[j] = stock.NuisanceStdDev * rng.NormFloat64()
			}
			img.ApplyPresentationBias()
			if r < 0.40 {
				img.Job = jobs[rng.Intn(len(jobs))]
			}
		}
		pc := perceiveWith(vision, img)
		layout.featurize(u, &pc, x.Row(i))
		if rng.Float64() < behave.ClickProb(u, img) {
			y[i] = 1
		}
	}
}

// perceiveWith mirrors Platform.perceive for use before the Platform exists.
func perceiveWith(vision visionModel, img image.Features) perceivedCreative {
	if !img.HasPerson {
		return perceivedCreative{Job: img.Job}
	}
	pc := perceivedCreative{HasPerson: true, Job: img.Job}
	pc.Female = vision.GenderScore(img)
	pc.Black = vision.RaceScore(img)
	pc.AgeYears = vision.AgeYears(img)
	pc.Child = conceptChild(pc.AgeYears)
	pc.YoungWoman = pc.Female * conceptYoungAdult(pc.AgeYears)
	return pc
}
