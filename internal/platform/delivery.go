package platform

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/population"
)

// BreakdownKey is one cell of the insights breakdown: age bucket × gender ×
// delivery region. Region is the state the user was in when the impression
// was served — the quantity the race-measurement methodology reads (§3.3).
type BreakdownKey struct {
	Age    demo.AgeBucket
	Gender demo.Gender
	Region demo.State
}

// AdStats is the delivery report for one ad, mirroring the Insights API's
// advertiser-visible surface: counts only, never user identities (§2.1,
// Reporting).
type AdStats struct {
	AdID        string
	Impressions int
	Reach       int
	Clicks      int
	SpendCents  float64
	Breakdown   map[BreakdownKey]int // impressions per cell
	// HourlySeries is impressions per pacing tick, the shape of spend over
	// the simulated day (real insights expose hourly delivery the same
	// way). Its sum equals Impressions.
	HourlySeries []int

	// RaceOracle counts impressions by the recipient's true self-reported
	// race. It is a simulator-only instrument for validating the §3.3
	// inference methodology (experiment E11) and is never exposed through
	// the marketing API — a real advertiser cannot observe it.
	RaceOracle map[demo.Race]int
}

// clone deep-copies the stats, maps and series included, so callers can
// never reach the engine's live accounting through a returned report.
func (s *AdStats) clone() *AdStats {
	cp := *s
	cp.Breakdown = make(map[BreakdownKey]int, len(s.Breakdown))
	for k, v := range s.Breakdown {
		cp.Breakdown[k] = v
	}
	cp.RaceOracle = make(map[demo.Race]int, len(s.RaceOracle))
	for k, v := range s.RaceOracle {
		cp.RaceOracle[k] = v
	}
	cp.HourlySeries = append([]int(nil), s.HourlySeries...)
	return &cp
}

// Insights returns the delivery report for an ad. It fails for ads that
// have not delivered yet. The returned stats are a deep copy: mutating the
// report (its maps and series included) cannot corrupt the frozen record a
// later Insights call reads.
func (p *Platform) Insights(adID string) (*AdStats, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.stats[adID]
	if !ok {
		return nil, fmt.Errorf("platform: no delivery data for ad %q", adID)
	}
	return s.clone(), nil
}

// maxDeliveryWorkers bounds the shard count so a wire-supplied worker count
// cannot make the engine allocate absurd numbers of shards.
const maxDeliveryWorkers = 64

// RunDay delivers all the given ads over one simulated 24-hour window using
// the configured default worker count (Config.DeliveryWorkers). Per the
// audit protocol (§3.2), ads launched together experience the same running
// environment: one shared auction per ad slot. Ads must be Active; rejected
// ads are skipped with their status preserved (the Appendix A analysis
// depends on knowing which were rejected). After the run every delivered ad
// is StatusCompleted and its insights are frozen.
func (p *Platform) RunDay(adIDs []string, seed int64) error {
	return p.RunDayWorkers(adIDs, seed, 0)
}

// RunDayWorkers is RunDay with an explicit worker count. workers <= 0 falls
// back to Config.DeliveryWorkers; an effective count of 1 runs the
// sequential oracle engine, anything higher runs the sharded parallel
// engine (see delivery_shard.go). Output is a pure function of (ads, seed,
// effective worker count): repeated runs with the same inputs are
// bit-identical, and workers=1 reproduces the historical sequential output
// exactly. Different worker counts produce statistically equivalent but not
// identical days, because each shard consumes its own RNG stream.
func (p *Platform) RunDayWorkers(adIDs []string, seed int64, workers int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.session != nil {
		return fmt.Errorf("platform: coordinated delivery session %q active, cannot run an in-process day", p.session.name)
	}
	if workers <= 0 {
		workers = p.cfg.DeliveryWorkers
	}
	if workers < 1 {
		workers = 1
	}
	if workers > maxDeliveryWorkers {
		workers = maxDeliveryWorkers
	}
	active, elig, err := p.prepareDay(adIDs)
	if err != nil {
		return err
	}
	for _, ad := range active {
		p.stats[ad.ID] = p.newAdStats(ad.ID)
	}

	start := p.deliveryClockNow()
	var auctions int64
	var merge time.Duration
	if workers == 1 {
		auctions = p.runDaySequential(active, elig, seed)
	} else {
		auctions, merge = p.runDaySharded(active, elig, seed, workers)
	}

	var impressions int64
	for _, ad := range active {
		ad.Status = StatusCompleted
		st := p.stats[ad.ID]
		st.SpendCents = math.Round(ad.spent * 100)
		impressions += int64(st.Impressions)
	}
	// One mutation commits the whole day: the completed ads and their frozen
	// insights, so a recovered platform reports the day identically.
	del := &DeliveryState{Seed: seed, Workers: workers}
	for _, ad := range active {
		del.Completed = append(del.Completed, ad.ID)
		del.Stats = append(del.Stats, *adStatsState(p.stats[ad.ID]))
	}
	sortDeliveryState(del)
	p.emit(Mutation{Kind: MutDayDelivered, Delivery: del})
	p.observeDelivery(start, int64(p.cfg.Ticks), auctions, impressions, workers, merge)
	return nil
}

// prepareDay resolves a delivery request into the run's active ad set and
// CSR eligibility index, and initializes per-run ad state (zeroed spend, run
// index, starting pacing). It is shared by RunDayWorkers and the coordinated
// day session (delivery_session.go) and consumes no randomness, so every
// shard of a coordinated day derives the identical plan from the same CRUD
// state. The caller holds p.mu for writing.
func (p *Platform) prepareDay(adIDs []string) (active []*Ad, elig *eligIndex, err error) {
	for _, id := range adIDs {
		ad, err := p.adLocked(id)
		if err != nil {
			return nil, nil, err
		}
		switch ad.Status {
		case StatusActive:
			active = append(active, ad)
		case StatusRejected:
			// Skipped, not an error.
		default:
			return nil, nil, fmt.Errorf("platform: ad %s is %v, cannot deliver", id, ad.Status)
		}
	}
	if len(active) == 0 {
		return nil, nil, fmt.Errorf("platform: no active ads to deliver")
	}

	for i, ad := range active {
		ad.spent = 0
		ad.runIdx = i
		// Start the effective bid so that bid × (typical optimization term)
		// lands near the competing demand level; the pacing controller
		// refines from there. Without this, reach-optimized ads (term = 1)
		// would burn their budget at eAR-scaled bids ~25× too high.
		meanTerm := p.meanOptimizationTerm(ad)
		ad.pacing = math.Min(math.Max(2*p.cfg.CompetitionBase/meanTerm, 0.005), 50)
	}
	return active, buildEligIndex(active), nil
}

// newAdStats allocates an empty delivery report sized for the configured
// tick count; the caller holds p.mu.
func (p *Platform) newAdStats(adID string) *AdStats {
	return &AdStats{
		AdID:         adID,
		Breakdown:    map[BreakdownKey]int{},
		RaceOracle:   map[demo.Race]int{},
		HourlySeries: make([]int, p.cfg.Ticks),
	}
}

// seqDay is the sequential engine's per-day state, factored out so the
// coordinated 1-shard day session (delivery_session.go) can run the exact
// oracle tick path one externally paced tick at a time. Auctions write into
// the injected stats map and served-row sink rather than straight into
// platform state, which is what lets a session defer installing its results
// until the coordinator commits the day.
type seqDay struct {
	rng       *rand.Rand
	active    []*Ad // by run index, the CSR index's ad addressing
	stats     map[string]*AdStats
	reached   map[string]map[int]struct{}
	frequency map[string]map[int]int
	serve     func(userIdx int, ad *Ad, clicked bool)
}

// newSeqDay builds sequential-engine day state over the given stats map and
// served-row sink.
func newSeqDay(active []*Ad, seed int64, stats map[string]*AdStats, serve func(int, *Ad, bool)) *seqDay {
	sd := &seqDay{
		rng:       rand.New(rand.NewSource(seed)),
		active:    active,
		stats:     stats,
		reached:   make(map[string]map[int]struct{}, len(active)),
		frequency: make(map[string]map[int]int, len(active)),
		serve:     serve,
	}
	for _, ad := range active {
		sd.reached[ad.ID] = map[int]struct{}{}
		sd.frequency[ad.ID] = map[int]int{}
	}
	return sd
}

// runDaySequential is the single-threaded oracle engine: one RNG stream,
// auctions applied to shared state in user-visit order. Its output defines
// the determinism contract every parallel configuration is differentially
// tested against, so its draw order must never change.
func (p *Platform) runDaySequential(active []*Ad, elig *eligIndex, seed int64) int64 {
	sd := newSeqDay(active, seed, p.stats, p.recordServed)
	order := elig.rowOrder()
	var auctions int64
	ticks := p.cfg.Ticks
	for tick := 0; tick < ticks; tick++ {
		// Budget pacing: adjust each ad's effective bid toward on-schedule
		// spend (§2.1: "this process is called bid pacing"), and cap each
		// tick's spend so the budget spreads over the whole day rather than
		// dumping into the first slots.
		elapsed := float64(tick) / float64(ticks)
		for _, ad := range active {
			ad.pacing, ad.tickCap = pacingStep(ad.pacing, ad.spent, float64(ad.DailyBudgetCents)/100, elapsed, ticks, p.cfg.GreedyPacing)
			ad.tickSpent = 0
		}
		auctions += p.seqTick(sd, elig, order, tick)
	}
	for _, ad := range active {
		p.stats[ad.ID].Reach = len(sd.reached[ad.ID])
	}
	return auctions
}

// seqTick runs one sequential-engine tick: visit users in a fresh random
// order (so no ad's spend window correlates with a fixed slice of the
// audience), running each user's sessions. The shuffle permutes the caller's
// row-position slice in place — order persists across ticks, exactly like
// the original inline loop over the sorted user list (position i starts as
// the i-th targeted user in ascending population order, so the draw sequence
// is unchanged from the map-index era).
func (p *Platform) seqTick(sd *seqDay, elig *eligIndex, order []int32, tick int) int64 {
	rng := sd.rng
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	var auctions int64
	ticks := float64(p.cfg.Ticks)
	for _, pos := range order {
		u := p.pop.View(int(elig.users[pos]))
		sessions := poisson(rng, u.Activity()/ticks)
		auctions += int64(sessions)
		for s := 0; s < sessions; s++ {
			p.auction(sd, u, elig.adsFor(pos), tick)
		}
	}
	return auctions
}

// auction runs one ad slot: the eligible audit ads (run indexes into
// sd.active, straight out of the CSR index) compete with each other and with
// background advertiser demand; the winner pays the second price.
func (p *Platform) auction(sd *seqDay, u population.UserView, eligible []int32, tick int) {
	rng := sd.rng
	uid := u.ID()
	bg := p.backgroundBid(rng, u)
	var winner *Ad
	best, second := bg, 0.0
	// Random starting offset so exact-tie auctions don't systematically
	// favor earlier-created ads.
	off := 0
	if len(eligible) > 1 {
		off = rng.Intn(len(eligible))
	}
	for k := range eligible {
		ad := sd.active[eligible[(k+off)%len(eligible)]]
		if ad.pacing <= 0 || ad.spent >= float64(ad.DailyBudgetCents)/100 || ad.tickSpent >= ad.tickCap {
			continue
		}
		if p.cfg.FrequencyCap > 0 && sd.frequency[ad.ID][uid] >= p.cfg.FrequencyCap {
			continue
		}
		value := ad.pacing*p.optimizationTerm(ad, u) + p.cfg.Quality
		if p.cfg.ValueNoise > 0 {
			sigma := p.cfg.ValueNoise
			value *= math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
		}
		if value > best {
			second = best
			best = value
			winner = ad
		} else if value > second {
			second = value
		}
	}
	if winner == nil {
		return
	}
	price := math.Max(second, bg)
	// Overspend clamp: never charge past the daily budget, making
	// SpendCents ≤ DailyBudgetCents an engine invariant. The clamp cannot
	// change any auction outcome or RNG draw: it only truncates the single
	// budget-crossing price, and after that charge the ad is ineligible
	// (spent >= budget) whether or not the charge was clamped.
	if budget := float64(winner.DailyBudgetCents) / 100; winner.spent+price > budget {
		price = budget - winner.spent
	}
	winner.spent += price
	winner.tickSpent += price
	st := sd.stats[winner.ID]
	st.Impressions++
	st.HourlySeries[tick]++
	st.Breakdown[BreakdownKey{
		Age:    u.AgeBucket(),
		Gender: u.Gender(),
		Region: p.deliveryRegion(rng, u),
	}]++
	st.RaceOracle[u.Race()]++
	sd.reached[winner.ID][uid] = struct{}{}
	sd.frequency[winner.ID][uid]++
	// Traffic objective: record clicks from ground-truth behaviour and log
	// the served impression into the retraining buffer — the feedback loop
	// Retrain closes.
	clicked := rng.Float64() < p.behave.ClickProb(u, winner.Creative.Image)
	if clicked {
		st.Clicks++
	}
	sd.serve(uid, winner, clicked)
}

// optimizationTerm computes the per-user multiplier the delivery objective
// applies to the paced bid (§2.1). Awareness maximizes reach, so it ignores
// the estimated action rate entirely; Traffic bids proportionally to eAR;
// Conversions — the highest-intent objective — applies a sharper exponent,
// concentrating delivery even harder on the users the model scores highest.
// The paper ran everything under Traffic; experiment E13 varies this.
func (p *Platform) optimizationTerm(ad *Ad, u population.UserView) float64 {
	if !p.cfg.UseEAR || ad.Objective == ObjectiveAwareness {
		return 1
	}
	ear := ad.folded.rate(u)
	if ad.Objective == ObjectiveConversions {
		// ear^1.6, rescaled so a typical base rate keeps comparable
		// magnitude and pacing dynamics.
		return math.Pow(ear, 1.6) * 4
	}
	return ear
}

// meanOptimizationTerm estimates an ad's typical optimization term over a
// sample of its audience, for bid initialization.
func (p *Platform) meanOptimizationTerm(ad *Ad) float64 {
	n := len(ad.audience)
	if n == 0 {
		return 1
	}
	step := n/200 + 1
	var sum float64
	var count int
	for i := 0; i < n; i += step {
		sum += p.optimizationTerm(ad, p.pop.View(ad.audience[i]))
		count++
	}
	if count == 0 || sum <= 0 {
		return 1
	}
	return sum / float64(count)
}

// backgroundBid draws the highest competing total value for a slot.
// Competition is stiffer for younger users, making them more expensive for
// a budget-paced ad to win.
func (p *Platform) backgroundBid(rng *rand.Rand, u population.UserView) float64 {
	ageFactor := 1.0
	if age := u.Age(); age < 65 {
		ageFactor += p.cfg.CompetitionAgeSlope * float64(65-age) / 47
	}
	raceFactor := 1.0
	if u.Race() == demo.RaceWhite {
		raceFactor += p.cfg.CompetitionWhitePremium
	}
	noise := math.Exp(0.45*rng.NormFloat64() - 0.10125)
	return p.cfg.CompetitionBase * ageFactor * raceFactor * noise
}

// deliveryRegion returns the state an impression is recorded in: the user's
// home state, or — while traveling — usually some other state, occasionally
// the other study state (the miscount risk §3.3 argues is negligible and
// symmetric).
func (p *Platform) deliveryRegion(rng *rand.Rand, u population.UserView) demo.State {
	if rng.Float64() >= u.TravelProb() {
		return u.State()
	}
	if rng.Float64() < 0.1 {
		if u.State() == demo.StateFL {
			return demo.StateNC
		}
		return demo.StateFL
	}
	return demo.StateOther
}

// poisson draws a Poisson variate by Knuth's method; efficient for the
// small per-tick session rates used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
