package platform

import (
	"math"

	"github.com/adaudit/impliedidentity/internal/face"
	"github.com/adaudit/impliedidentity/internal/image"
)

// perceivedCreative is what the platform's content-understanding model
// extracts from an ad image before delivery optimization ever sees it. The
// delivery pipeline has no access to ground-truth image attributes — only to
// these machine-perceived scores, mirroring how a real platform's ranking
// models consume upstream vision-model embeddings.
type perceivedCreative struct {
	HasPerson  bool
	Female     float64 // P(pictured person presents female)
	Black      float64 // P(pictured person presents Black)
	AgeYears   float64 // estimated apparent age
	Child      float64 // derived concept score: a child is pictured
	YoungWoman float64 // derived concept score: a young woman is pictured
	Job        string  // advertised vertical, from the ad's landing context
}

// perceive runs the platform's classifier over a creative image.
func (p *Platform) perceive(img image.Features) perceivedCreative {
	if !img.HasPerson {
		return perceivedCreative{Job: img.Job}
	}
	pc := perceivedCreative{HasPerson: true, Job: img.Job}
	pc.Female = p.vision.GenderScore(img)
	pc.Black = p.vision.RaceScore(img)
	pc.AgeYears = p.vision.AgeYears(img)
	pc.Child = conceptChild(pc.AgeYears)
	pc.YoungWoman = pc.Female * conceptYoungAdult(pc.AgeYears)
	return pc
}

// conceptChild and conceptYoungAdult are fixed perceptual basis functions
// over the estimated age — concept detectors whose *weights* in delivery
// decisions are still entirely learned from engagement logs.
func conceptChild(ageYears float64) float64 {
	v := (16 - ageYears) / 10
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func conceptYoungAdult(ageYears float64) float64 {
	return math.Exp(-math.Pow((ageYears-18)/9, 2))
}

// visionModel is the subset of the classifier interface the platform needs,
// satisfied by *face.Classifier.
type visionModel interface {
	GenderScore(image.Features) float64
	RaceScore(image.Features) float64
	AgeYears(image.Features) float64
}

var _ visionModel = (*face.Classifier)(nil)
