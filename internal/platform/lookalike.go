package platform

import (
	"fmt"
	"math"
	"sort"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// CreateLookalikeAudience expands a seed Custom Audience to roughly size
// accounts that "look like" the seed — the construction behind lookalike
// and, post-settlement, Special Ad Audiences, which are built without
// explicit demographic features (§2.2; the paper's discussion of ref [58],
// "Algorithms that Don't See Color").
//
// The expansion model deliberately uses only non-demographic account
// features: the account's ZIP code (scored by how over-represented that ZIP
// is among the seed) and its activity level. No race, gender, or age enters
// the score. The E15 extension experiment shows the expansion reproduces
// the seed's racial makeup anyway, because residential segregation makes
// ZIP a proxy — the mechanism the reference paper documents.
func (p *Platform) CreateLookalikeAudience(name, seedID string, size int) (*CustomAudience, error) {
	if size <= 0 {
		return nil, fmt.Errorf("platform: lookalike size must be positive, got %d", size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	seed, err := p.audienceLocked(seedID)
	if err != nil {
		return nil, err
	}
	inSeed := make(map[int]bool, len(seed.members))
	for _, idx := range seed.members {
		inSeed[idx] = true
	}

	// Seed ZIP distribution vs the whole user base.
	seedZIP := map[string]float64{}
	for _, idx := range seed.members {
		seedZIP[p.pop.View(idx).ZIP()]++
	}
	baseZIP := map[string]float64{}
	var seedActivity float64
	for i := 0; i < p.pop.Len(); i++ {
		baseZIP[p.pop.View(i).ZIP()]++
	}
	for _, idx := range seed.members {
		seedActivity += p.pop.View(idx).Activity()
	}
	seedActivity /= float64(len(seed.members))
	seedN := float64(len(seed.members))
	baseN := float64(p.pop.Len())

	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, 0, p.pop.Len())
	for i := 0; i < p.pop.Len(); i++ {
		if inSeed[i] {
			continue
		}
		u := p.pop.View(i)
		// Laplace-smoothed ZIP lift: log of how over-represented the
		// user's ZIP is among seed accounts.
		lift := math.Log(((seedZIP[u.ZIP()] + 0.5) / (seedN + 1)) / ((baseZIP[u.ZIP()] + 0.5) / (baseN + 1)))
		// Activity proximity, a weak secondary signal.
		act := -math.Abs(u.Activity()-seedActivity) / (seedActivity + 1)
		cands = append(cands, cand{idx: i, score: lift + 0.2*act})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("platform: no candidates outside the seed")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].idx < cands[j].idx // deterministic ties
	})
	if size > len(cands) {
		size = len(cands)
	}
	ca := &CustomAudience{
		ID:   fmt.Sprintf("ca-%d", len(p.audiences)+1),
		Name: name,
	}
	for _, c := range cands[:size] {
		ca.members = append(ca.members, c.idx)
	}
	ca.Size = len(ca.members)
	p.audiences[ca.ID] = ca
	return ca, nil
}

// AudienceComposition reports the demographic makeup of an audience. This
// is a simulator-side oracle for the E15 analysis — the real platform never
// reveals audience demographics, which is exactly why ref [58] had to
// measure them by running ads against voter-list ground truth.
type AudienceComposition struct {
	Size       int
	FracBlack  float64
	FracFemale float64
	Frac45Plus float64
}

// CompositionOf computes the oracle composition of an audience.
func (p *Platform) CompositionOf(audienceID string) (AudienceComposition, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ca, err := p.audienceLocked(audienceID)
	if err != nil {
		return AudienceComposition{}, err
	}
	var out AudienceComposition
	out.Size = ca.Size
	if ca.Size == 0 {
		return out, nil
	}
	var black, female, older int
	for _, idx := range ca.members {
		u := p.pop.View(idx)
		if u.Race() == demo.RaceBlack {
			black++
		}
		if u.Gender() == demo.GenderFemale {
			female++
		}
		if u.Age() >= 45 {
			older++
		}
	}
	n := float64(ca.Size)
	out.FracBlack = float64(black) / n
	out.FracFemale = float64(female) / n
	out.Frac45Plus = float64(older) / n
	return out, nil
}
