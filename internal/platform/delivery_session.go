package platform

// The coordinated day session: one shard backend's side of the cross-process
// delivery protocol (internal/coordinator drives the other side). A session
// runs the same engines RunDayWorkers runs — the sequential oracle for a
// 1-shard day, one deliveryShard of the sharded engine otherwise — but one
// externally paced tick at a time:
//
//	Begin   resolve the ad set, initialize pacing, report the day plan;
//	Tick    apply the coordinator's frozen (pacing, spent, cap) snapshot,
//	        run phase 2 for this shard, report accrued spend;
//	Finish  install the day's stats with the coordinator's authoritative
//	        spend, complete the ads, emit the durable mutation;
//	Abort   discard everything.
//
// Nothing a session does before Finish touches durable state: stats live in
// a session-local map, served-log rows are buffered, no mutation is emitted.
// A shard process that dies mid-day therefore loses the session entirely and
// cleanly — the coordinator detects the conflict, aborts the day everywhere,
// and re-runs it; determinism makes the re-run byte-identical.
//
// Sessions are deliberately in-memory and single: one coordinator owns a
// backend. Begin replaces any existing session (that IS the recovery path),
// and RunDayWorkers refuses to run while a session is active.

import (
	"errors"
	"fmt"
	"time"
)

// ErrSessionConflict reports a session-scoped call whose session name does
// not match the backend's active delivery session — none at all (the shard
// restarted and lost it), or another coordinator's. The marketing layer maps
// it to HTTP 409; the coordinator responds by aborting and re-running the
// day.
var ErrSessionConflict = errors.New("platform: delivery session conflict")

// daySession is the in-memory state of one coordinated delivery day on one
// shard backend.
type daySession struct {
	name   string
	seed   int64
	shard  int
	shards int

	active []*Ad
	elig   *eligIndex
	order  []int32 // this shard's row positions into elig
	stats  map[string]*AdStats

	seq  *seqDay        // shards == 1: the sequential oracle engine
	sh   *deliveryShard // shards > 1: one shard of the parallel engine
	caps []float64      // shards > 1: this tick's per-ad cap slice

	served   []servedRow // buffered; flushed to the platform at Finish
	auctions int64
	nextTick int
	last     *TickReport // previous tick's report, for idempotent replay
	start    time.Time
}

// BeginDaySession opens a coordinated delivery session named `session` for
// one shard of a `shards`-wide day. It resolves the ad set exactly like
// RunDayWorkers (rejected ads skipped, other non-active statuses fatal) and
// returns the day plan: tick count, pacing mode, and per-ad budgets and
// starting bids in run order. The user partition is by position in the
// globally sorted eligible-user list (position mod shards), the same
// round-robin split the in-process sharded engine uses — so an N-shard
// coordinated day reproduces RunDayWorkers(workers=N) bit for bit, and a
// 1-shard day reproduces the sequential oracle.
//
// Any existing session is replaced: sessions are volatile scratch, and
// replacement is how a coordinator recovers a backend that holds a stale
// day.
func (p *Platform) BeginDaySession(session string, adIDs []string, seed int64, shard, shards int) (*DayInit, error) {
	if session == "" {
		return nil, fmt.Errorf("platform: day session needs a name")
	}
	if shards < 1 || shards > maxDeliveryWorkers {
		return nil, fmt.Errorf("platform: shard count %d outside [1, %d]", shards, maxDeliveryWorkers)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("platform: shard %d outside [0, %d)", shard, shards)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	active, elig, err := p.prepareDay(adIDs)
	if err != nil {
		return nil, err
	}
	sess := &daySession{
		name:   session,
		seed:   seed,
		shard:  shard,
		shards: shards,
		active: active,
		elig:   elig,
		stats:  make(map[string]*AdStats, len(active)),
		start:  p.deliveryClockNow(),
	}
	for _, ad := range active {
		sess.stats[ad.ID] = p.newAdStats(ad.ID)
	}
	if shards == 1 {
		sess.order = elig.rowOrder()
		sess.seq = newSeqDay(active, seed, sess.stats, func(userIdx int, ad *Ad, clicked bool) {
			sess.served = append(sess.served, servedRow{userIdx: userIdx, ad: ad, clicked: clicked})
		})
	} else {
		for i := 0; i < elig.rows(); i++ {
			if i%shards == shard {
				sess.order = append(sess.order, int32(i))
			}
		}
		sess.sh = newDeliveryShard(seed, shard, len(active), p.cfg.Ticks)
		sess.sh.order = sess.order
		sess.caps = make([]float64, len(active))
	}
	p.session = sess

	init := &DayInit{
		Session: session,
		Ticks:   p.cfg.Ticks,
		Greedy:  p.cfg.GreedyPacing,
		Ads:     make([]DayAdPlan, len(active)),
	}
	for i, ad := range active {
		init.Ads[i] = DayAdPlan{AdID: ad.ID, DailyBudgetCents: ad.DailyBudgetCents, Pacing: ad.pacing}
	}
	return init, nil
}

// DaySessionTick runs phase 2 of one tick under the coordinator's frozen
// snapshot. dirs must carry one directive per active ad in run order. Ticks
// must arrive in order; re-sending the previous tick replays its recorded
// report without re-running anything (so a retried RPC whose response was
// lost is harmless), and any other tick number is a conflict.
//
// The report's Spent vector is this shard's tick spend for a multi-shard
// day (the coordinator folds it with the budget clamp, in shard order);
// for a 1-shard day it is the backend's committed absolute spend — the
// sequential oracle accumulates spend per auction with a per-auction clamp,
// and only its own addition order reproduces the historical digests, so
// there the backend is authoritative and the coordinator adopts its totals.
func (p *Platform) DaySessionTick(session string, tick int, dirs []TickDirective) (*TickReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sess, err := p.sessionLocked(session)
	if err != nil {
		return nil, err
	}
	if sess.last != nil && tick == sess.nextTick-1 {
		rep := *sess.last
		rep.Spent = append([]float64(nil), sess.last.Spent...)
		return &rep, nil
	}
	if tick != sess.nextTick {
		return nil, fmt.Errorf("platform: session %q expects tick %d, got %d: %w", session, sess.nextTick, tick, ErrSessionConflict)
	}
	ticks := p.cfg.Ticks
	if tick >= ticks {
		return nil, fmt.Errorf("platform: tick %d beyond day length %d: %w", tick, ticks, ErrSessionConflict)
	}
	if len(dirs) != len(sess.active) {
		return nil, fmt.Errorf("platform: session %q got %d directives, want %d: %w", session, len(dirs), len(sess.active), ErrSessionConflict)
	}

	for i, ad := range sess.active {
		ad.pacing = dirs[i].Pacing
		ad.spent = dirs[i].Spent
		ad.tickSpent = 0
		if sess.shards == 1 {
			ad.tickCap = dirs[i].Cap
		} else {
			sess.caps[i] = dirs[i].Cap
		}
	}

	rep := &TickReport{Tick: tick, Spent: make([]float64, len(sess.active))}
	if sess.shards == 1 {
		rep.Auctions = p.seqTick(sess.seq, sess.elig, sess.order, tick)
		for i, ad := range sess.active {
			rep.Spent[i] = ad.spent
		}
	} else {
		before := sess.sh.auctions
		p.shardTick(sess.sh, sess.active, sess.elig, tick, sess.caps)
		rep.Auctions = sess.sh.auctions - before
		for i, acc := range sess.sh.accs {
			rep.Spent[i] = acc.tickSpent
			acc.tickSpent = 0
		}
		sess.served = append(sess.served, sess.sh.served...)
		sess.sh.served = sess.sh.served[:0]
	}
	sess.auctions += rep.Auctions
	sess.nextTick++
	sess.last = rep

	out := *rep
	out.Spent = append([]float64(nil), rep.Spent...)
	return &out, nil
}

// FinishDaySession commits a completed session: the session's stats become
// the ads' frozen insights with the coordinator's authoritative per-ad
// SpendCents (identical on every shard — the coordinator rounds its
// committed float totals exactly once and distributes the result), the ads
// complete, the durable day mutation is emitted, and the buffered served
// rows flush into the retraining buffer. The day must have run every tick.
func (p *Platform) FinishDaySession(session string, spendCents []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sess, err := p.sessionLocked(session)
	if err != nil {
		return err
	}
	if sess.nextTick != p.cfg.Ticks {
		return fmt.Errorf("platform: session %q finished at tick %d of %d: %w", session, sess.nextTick, p.cfg.Ticks, ErrSessionConflict)
	}
	if len(spendCents) != len(sess.active) {
		return fmt.Errorf("platform: session %q got %d spend totals, want %d: %w", session, len(spendCents), len(sess.active), ErrSessionConflict)
	}

	if sess.shards == 1 {
		for _, ad := range sess.active {
			sess.stats[ad.ID].Reach = len(sess.seq.reached[ad.ID])
		}
	} else {
		mergeShardStats(sess.stats, sess.active, sess.sh)
	}
	var impressions int64
	for i, ad := range sess.active {
		ad.Status = StatusCompleted
		st := sess.stats[ad.ID]
		st.SpendCents = spendCents[i]
		p.stats[ad.ID] = st
		impressions += int64(st.Impressions)
	}
	del := &DeliveryState{Seed: sess.seed, Workers: sess.shards, Shard: sess.shard, Shards: sess.shards}
	for _, ad := range sess.active {
		del.Completed = append(del.Completed, ad.ID)
		del.Stats = append(del.Stats, *adStatsState(p.stats[ad.ID]))
	}
	sortDeliveryState(del)
	p.emit(Mutation{Kind: MutDayDelivered, Delivery: del})
	for _, row := range sess.served {
		p.recordServed(row.userIdx, row.ad, row.clicked)
	}
	p.observeDelivery(sess.start, int64(p.cfg.Ticks), sess.auctions, impressions, sess.shards, 0)
	p.session = nil
	return nil
}

// AbortDaySession discards the named session. Aborting when no session is
// active is a no-op (the abort already took effect — likely a retry, or the
// shard restarted); aborting someone else's session is a conflict.
func (p *Platform) AbortDaySession(session string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.session == nil {
		return nil
	}
	if p.session.name != session {
		return fmt.Errorf("platform: session %q active, cannot abort %q: %w", p.session.name, session, ErrSessionConflict)
	}
	p.session = nil
	return nil
}

// SessionActive reports whether a coordinated day session is currently open
// on this shard — a mid-recovery signal the rejoin handshake surfaces so a
// supervisor never readmits a shard that is still inside someone's day.
func (p *Platform) SessionActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.session != nil
}

// sessionLocked resolves a session name to the active session; the caller
// holds p.mu.
func (p *Platform) sessionLocked(session string) (*daySession, error) {
	if p.session == nil {
		return nil, fmt.Errorf("platform: no delivery session active, want %q: %w", session, ErrSessionConflict)
	}
	if p.session.name != session {
		return nil, fmt.Errorf("platform: session %q active, want %q: %w", p.session.name, session, ErrSessionConflict)
	}
	return p.session, nil
}
