package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/adaudit/impliedidentity/internal/face"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/population"
)

// Config configures the platform.
type Config struct {
	Seed int64
	// Ticks divides the simulated 24-hour run into pacing intervals.
	// Default 48 (30-minute ticks).
	Ticks int
	// Training configures engagement-log generation and eAR fitting.
	Training TrainingConfig
	// Quality is the ad-quality term added to every bid (§2.1). The audit's
	// ads are identical in quality, so this is a constant.
	Quality float64
	// CompetitionBase sets the background advertiser demand level (the
	// highest competing total value for a slot, in dollars). Default 0.012.
	CompetitionBase float64
	// CompetitionAgeSlope makes younger users more expensive: competing
	// demand is multiplied by 1+slope×(65-age)/47 for ages below 65.
	// Default 1.2. This mundane market asymmetry produces the overall
	// delivery skew toward older users the paper observes (§5.3).
	CompetitionAgeSlope float64
	// CompetitionWhitePremium raises competing demand for white users
	// (default 0.3): other advertisers' targeting prices demographics
	// differently (§5.2 footnote 5: groups "may not be equally priced based
	// on the targeting of other advertisers"). This is what makes balanced
	// audiences deliver majority-Black at equal budgets, as the paper's
	// intercepts show (Table 4a: 57% Black for a white-adult-male image).
	CompetitionWhitePremium float64
	// ValueNoise is the per-slot lognormal σ applied to each ad's
	// bid×eAR term, modelling per-request context features and ranking
	// exploration. Without it the deterministic eAR ordering sorts users
	// across ads winner-take-all, wildly overstating delivery skews.
	// Default 0.9.
	ValueNoise float64
	// ReviewRejectProb is the ad-review rejection probability. Near zero in
	// normal operation; Appendix A's experiment raises it via
	// SetReviewRejectProb to reproduce the mass rejections the authors hit.
	ReviewRejectProb float64
	// UseEAR toggles the estimated-action-rate term in the auction. The A1
	// ablation sets it false: with constant eAR the auction is blind to
	// content and all content-based skew should vanish.
	UseEAR bool
	// GreedyPacing disables the budget-pacing controller (A5 ablation):
	// ads bid a fixed high amount until the budget is exhausted.
	GreedyPacing bool
	// FrequencyCap limits how many times one ad is shown to one user per
	// day. Default 4; 0 disables the cap.
	FrequencyCap int
	// VisionSeed seeds the platform's own content classifier training,
	// independent of any classifier the auditor uses.
	VisionSeed int64
	// DeliveryWorkers is the default worker count for RunDay: the number of
	// deterministic user shards delivery is partitioned across. 0 or 1 runs
	// the sequential oracle engine; higher counts run the sharded parallel
	// engine. Output is bit-identical across runs for a fixed worker count;
	// different counts give statistically equivalent but distinct days
	// (each shard has its own seeded RNG stream). See DESIGN.md.
	DeliveryWorkers int
}

// DefaultConfig returns the standard simulation configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                    seed,
		Ticks:                   48,
		Training:                TrainingConfig{LogRows: 60000, Seed: seed + 1},
		Quality:                 0.004,
		FrequencyCap:            4,
		CompetitionBase:         0.007,
		CompetitionAgeSlope:     2.2,
		CompetitionWhitePremium: 0.3,
		ValueNoise:              0.7,
		ReviewRejectProb:        0.01,
		UseEAR:                  true,
		VisionSeed:              seed + 2,
	}
}

// Platform is the simulated advertising platform. It is safe for concurrent
// use: exported methods take the account lock (writes exclusively, reads
// shared), mirroring a real platform's per-account serialization of mutating
// Marketing-API calls. Objects returned by read methods are either immutable
// after creation (campaigns, audiences) or snapshot copies (ads), so callers
// may use them without holding any lock.
type Platform struct {
	// mu guards every field below it as well as the mutable parts of the
	// objects the maps point to (ad delivery state, the retraining buffer,
	// the review RNG, and cfg.ReviewRejectProb).
	mu sync.RWMutex

	cfg    Config
	pop    *population.Population
	behave *population.Behavior
	vision visionModel
	ear    *earModel

	audiences map[string]*CustomAudience
	campaigns map[string]*Campaign
	ads       map[string]*Ad
	stats     map[string]*AdStats

	served    []servedRow // retraining buffer of served impressions
	reviewRNG *rand.Rand
	nextID    int

	// session is the active coordinated delivery session, if any (see
	// delivery_session.go). In-memory only: a restart loses it, by design.
	session *daySession

	// hook receives every committed mutation (see state.go); invoked while
	// p.mu is held for writing, so emission order is application order.
	hook MutationHook

	// obsReg/clock instrument the delivery phase (see metrics.go). Both are
	// nil/unset until SetObserver; instrumentation is strictly observational
	// and never influences delivery output.
	obsReg *obs.Registry
	clock  obs.Clock
}

// New builds a platform over a user population: it trains the platform's
// content classifier, generates engagement logs, and fits the eAR model.
func New(cfg Config, pop *population.Population, behave *population.Behavior) (*Platform, error) {
	if pop == nil || pop.Len() == 0 {
		return nil, fmt.Errorf("platform: empty population")
	}
	if behave == nil {
		return nil, fmt.Errorf("platform: nil behaviour model")
	}
	if cfg.Ticks == 0 {
		cfg.Ticks = 48
	}
	if cfg.Ticks < 2 {
		return nil, fmt.Errorf("platform: need at least 2 pacing ticks, got %d", cfg.Ticks)
	}
	vision, err := face.Train(face.TrainOptions{CorpusSize: 4000, Seed: cfg.VisionSeed, LabelNoise: 0.02})
	if err != nil {
		return nil, fmt.Errorf("platform: training vision model: %w", err)
	}
	ear, err := trainEAR(cfg.Training, pop, behave, vision)
	if err != nil {
		return nil, err
	}
	return &Platform{
		cfg:       cfg,
		pop:       pop,
		behave:    behave,
		vision:    vision,
		ear:       ear,
		audiences: map[string]*CustomAudience{},
		campaigns: map[string]*Campaign{},
		ads:       map[string]*Ad{},
		stats:     map[string]*AdStats{},
		reviewRNG: rand.New(rand.NewSource(cfg.Seed + 77)),
	}, nil
}

// Inventory is a point-in-time census of the account's objects. The chaos
// soak asserts exactly-once creation under fault injection against it: a
// retried create that double-executed would inflate the counts, a lost one
// would leave them short.
type Inventory struct {
	Audiences int
	Campaigns int
	Ads       int
	// CampaignNames is sorted; duplicate names expose a double-created
	// campaign even when counts happen to balance out.
	CampaignNames []string
}

// Inventory counts the account's objects.
func (p *Platform) Inventory() Inventory {
	p.mu.RLock()
	defer p.mu.RUnlock()
	inv := Inventory{
		Audiences: len(p.audiences),
		Campaigns: len(p.campaigns),
		Ads:       len(p.ads),
	}
	for _, c := range p.campaigns {
		inv.CampaignNames = append(inv.CampaignNames, c.Name)
	}
	sort.Strings(inv.CampaignNames)
	return inv
}

// SetReviewRejectProb changes review strictness (used by the Appendix A
// experiment to reproduce the mass rejections).
func (p *Platform) SetReviewRejectProb(prob float64) error {
	if prob < 0 || prob > 1 {
		return fmt.Errorf("platform: reject probability %v outside [0,1]", prob)
	}
	p.mu.Lock()
	p.cfg.ReviewRejectProb = prob
	p.mu.Unlock()
	return nil
}

// CreateCampaign registers a campaign.
func (p *Platform) CreateCampaign(name string, obj Objective, special SpecialAdCategory, accountAge int) (*Campaign, error) {
	if name == "" {
		return nil, fmt.Errorf("platform: campaign needs a name")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	c := &Campaign{
		ID:              fmt.Sprintf("cmp-%d", p.nextID),
		Name:            name,
		Objective:       obj,
		SpecialCategory: special,
		AccountAge:      accountAge,
	}
	p.campaigns[c.ID] = c
	cp := *c
	p.emit(Mutation{Kind: MutCampaignCreated, Campaign: &cp})
	return c, nil
}

// Campaign returns a campaign by ID. Campaigns are immutable after
// creation, so the shared pointer is safe to read without the lock.
func (p *Platform) Campaign(id string) (*Campaign, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.campaignLocked(id)
}

// campaignLocked looks up a campaign; the caller holds p.mu.
func (p *Platform) campaignLocked(id string) (*Campaign, error) {
	c, ok := p.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("platform: unknown campaign %q", id)
	}
	return c, nil
}

// CreateAd validates targeting against the campaign's special-category
// restrictions, resolves the target audience, runs ad review, and registers
// the ad. A rejected ad is returned (with StatusRejected) along with a nil
// error: rejection is an outcome, not a failure of the call. The returned
// ad is a snapshot: later delivery does not mutate it.
func (p *Platform) CreateAd(campaignID string, creative Creative, targeting Targeting, dailyBudgetCents int) (*Ad, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := p.campaignLocked(campaignID)
	if err != nil {
		return nil, err
	}
	if dailyBudgetCents <= 0 {
		return nil, fmt.Errorf("platform: daily budget must be positive, got %d", dailyBudgetCents)
	}
	if err := targeting.Validate(c.SpecialCategory); err != nil {
		return nil, err
	}
	audience, err := p.resolveAudience(&targeting)
	if err != nil {
		return nil, err
	}
	p.nextID++
	ad := &Ad{
		ID:               fmt.Sprintf("ad-%d", p.nextID),
		CampaignID:       campaignID,
		Objective:        c.Objective,
		Creative:         creative,
		Targeting:        targeting,
		DailyBudgetCents: dailyBudgetCents,
		Status:           StatusActive,
		audience:         audience,
	}
	ad.perceived = p.perceive(creative.Image)
	ad.folded = p.ear.fold(&ad.perceived)
	if p.reviewRNG.Float64() < p.cfg.ReviewRejectProb {
		ad.Status = StatusRejected
	}
	p.ads[ad.ID] = ad
	// The emitted state carries the review outcome: replay must not re-roll
	// the review RNG.
	p.emit(Mutation{Kind: MutAdCreated, Ad: adState(ad)})
	return ad.snapshot(), nil
}

// Ad returns a snapshot of an ad by ID: a copy whose value fields (Status
// in particular) will not change under a concurrent delivery run.
func (p *Platform) Ad(id string) (*Ad, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ad, err := p.adLocked(id)
	if err != nil {
		return nil, err
	}
	return ad.snapshot(), nil
}

// adLocked looks up the live ad object; the caller holds p.mu.
func (p *Platform) adLocked(id string) (*Ad, error) {
	ad, ok := p.ads[id]
	if !ok {
		return nil, fmt.Errorf("platform: unknown ad %q", id)
	}
	return ad, nil
}

// snapshot copies the ad for return outside the platform lock. Slices
// (audience, targeting) share backing arrays but are never mutated after
// creation; value fields like Status and spend are decoupled from the
// engine's live object.
func (ad *Ad) snapshot() *Ad {
	cp := *ad
	return &cp
}

// AppealAd re-reviews a rejected ad (the Appendix A appeal path). Appeals
// succeed with probability 1 - ReviewRejectProb, re-rolled independently.
// The returned ad is a snapshot reflecting the post-appeal status.
func (p *Platform) AppealAd(id string) (*Ad, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ad, err := p.adLocked(id)
	if err != nil {
		return nil, err
	}
	if ad.Status != StatusRejected {
		return nil, fmt.Errorf("platform: ad %s is %v, only rejected ads can be appealed", id, ad.Status)
	}
	if p.reviewRNG.Float64() >= p.cfg.ReviewRejectProb {
		ad.Status = StatusActive
	}
	p.emit(Mutation{Kind: MutAdAppealed, Appeal: &AppealState{AdID: ad.ID, Status: ad.Status}})
	return ad.snapshot(), nil
}
