package platform

import (
	"encoding/json"
	"testing"

	"github.com/adaudit/impliedidentity/internal/image"
)

// stateJSON renders the account state canonically for comparison.
func stateJSON(t *testing.T, p *Platform) string {
	t.Helper()
	b, err := json.Marshal(p.State())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// buildAccount drives one platform through every durable mutation kind:
// audience upload, campaign, active ads, a forced rejection + appeal, and a
// delivered day. Returns the IDs of the delivered ads.
func buildAccount(t *testing.T, p *Platform, f *fixture) []string {
	t.Helper()
	caID := uploadBalancedAudience(t, p, f, 20, 31)
	cmp, err := p.CreateCampaign("round-trip", ObjectiveTraffic, SpecialNone, 2019)
	if err != nil {
		t.Fatal(err)
	}
	targeting := Targeting{CustomAudienceIDs: []string{caID}}
	imgA := image.Features{HasPerson: true, GenderAxis: 0.9, RaceAxis: -0.9, AgeYears: 30}
	imgB := image.Features{HasPerson: true, GenderAxis: -0.9, RaceAxis: 0.9, AgeYears: 55}
	adA, err := p.CreateAd(cmp.ID, Creative{Image: imgA, Headline: "h"}, targeting, 300)
	if err != nil {
		t.Fatal(err)
	}
	adB, err := p.CreateAd(cmp.ID, Creative{Image: imgB, Headline: "h"}, targeting, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Force one rejection and appeal it back to active, so the appeal
	// mutation is exercised too.
	if err := p.SetReviewRejectProb(1); err != nil {
		t.Fatal(err)
	}
	adC, err := p.CreateAd(cmp.ID, Creative{Image: imgA, Headline: "h"}, targeting, 100)
	if err != nil {
		t.Fatal(err)
	}
	if adC.Status != StatusRejected {
		t.Fatalf("ad with reject prob 1: status %v", adC.Status)
	}
	if err := p.SetReviewRejectProb(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppealAd(adC.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.RunDay([]string{adA.ID, adB.ID}, 999); err != nil {
		t.Fatal(err)
	}
	return []string{adA.ID, adB.ID}
}

func TestStateRoundTrip(t *testing.T) {
	p1, f := newTestPlatform(t, 104)
	var muts []Mutation
	p1.SetMutationHook(func(m Mutation) { muts = append(muts, m) })
	delivered := buildAccount(t, p1, f)
	want := stateJSON(t, p1)

	// Serialize through JSON (the store's wire format) and restore into a
	// fresh platform built from the same world.
	var decoded State
	if err := json.Unmarshal([]byte(want), &decoded); err != nil {
		t.Fatal(err)
	}
	p2, _ := newTestPlatform(t, 104)
	if err := p2.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("state diverged after Restore:\n got %.200s…\nwant %.200s…", got, want)
	}
	// Restored insights are queryable and identical.
	for _, id := range delivered {
		s1, err1 := p1.Insights(id)
		s2, err2 := p2.Insights(id)
		if err1 != nil || err2 != nil {
			t.Fatalf("insights after restore: %v / %v", err1, err2)
		}
		if s1.Impressions != s2.Impressions || s1.Reach != s2.Reach || s1.SpendCents != s2.SpendCents {
			t.Fatalf("ad %s: restored insights differ: %+v vs %+v", id, s1, s2)
		}
	}

	// The emitted mutation log replays to the same state, and replaying it
	// twice converges (idempotence — recovery replays WAL tails that overlap
	// the snapshot).
	if len(muts) != 7 {
		t.Fatalf("captured %d mutations, want 7 (audience, campaign, 3 ads, appeal, delivery)", len(muts))
	}
	p3, _ := newTestPlatform(t, 104)
	for round := 0; round < 2; round++ {
		for i := range muts {
			if err := p3.ApplyMutation(&muts[i]); err != nil {
				t.Fatalf("round %d mutation %d (%s): %v", round, i, muts[i].Kind, err)
			}
		}
		if got := stateJSON(t, p3); got != want {
			t.Fatalf("round %d: replayed state diverged", round)
		}
	}
}

func TestRestoreRejectsVersionMismatch(t *testing.T) {
	p, _ := newTestPlatform(t, 104)
	if err := p.Restore(&State{Version: StateVersion + 1}); err == nil {
		t.Fatal("future state version: want error")
	}
	if err := p.Restore(nil); err == nil {
		t.Fatal("nil state: want error")
	}
}

func TestApplyMutationRejectsForeignWorld(t *testing.T) {
	p, _ := newTestPlatform(t, 104)
	m := Mutation{Kind: MutAudienceCreated, Audience: &AudienceState{
		ID: "ca-1", Name: "alien", Size: 1, Members: []int{p.NumUsers() + 5},
	}}
	if err := p.ApplyMutation(&m); err == nil {
		t.Fatal("audience index outside population: want error")
	}
	if _, err := p.Audience("ca-1"); err == nil {
		t.Fatal("failed mutation must not install the audience")
	}
}
