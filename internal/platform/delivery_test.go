package platform

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// launchPair creates two ads differing only in the creative image and runs
// them for a day, returning their stats.
func launchPair(t *testing.T, p *Platform, caID string, imgA, imgB image.Features, budgetCents int) (*AdStats, *AdStats) {
	t.Helper()
	cmp, err := p.CreateCampaign("pair", ObjectiveTraffic, SpecialNone, 2019)
	if err != nil {
		t.Fatal(err)
	}
	targeting := Targeting{CustomAudienceIDs: []string{caID}}
	adA, err := p.CreateAd(cmp.ID, Creative{Image: imgA, Headline: "h", LinkURL: "https://example.com"}, targeting, budgetCents)
	if err != nil {
		t.Fatal(err)
	}
	adB, err := p.CreateAd(cmp.ID, Creative{Image: imgB, Headline: "h", LinkURL: "https://example.com"}, targeting, budgetCents)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunDay([]string{adA.ID, adB.ID}, 999); err != nil {
		t.Fatal(err)
	}
	sa, err := p.Insights(adA.ID)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := p.Insights(adB.ID)
	if err != nil {
		t.Fatal(err)
	}
	return sa, sb
}

// newRand returns a deterministic RNG for test helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// raceHashes returns PII hashes for up to count voters of the given race,
// sampled uniformly.
func raceHashes(records []voter.Record, race demo.Race, count int, rng *rand.Rand) []string {
	var idx []int
	for i := range records {
		if records[i].Race == race {
			idx = append(idx, i)
		}
	}
	if count > len(idx) {
		count = len(idx)
	}
	out := make([]string, 0, count)
	for _, j := range rng.Perm(len(idx))[:count] {
		r := &records[idx[j]]
		out = append(out, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	return out
}

func statsInvariants(t *testing.T, s *AdStats, budgetCents int) {
	t.Helper()
	if s.Impressions <= 0 {
		t.Fatalf("ad %s: no impressions", s.AdID)
	}
	if s.Reach <= 0 || s.Reach > s.Impressions {
		t.Fatalf("ad %s: reach %d vs impressions %d", s.AdID, s.Reach, s.Impressions)
	}
	var sum int
	for _, n := range s.Breakdown {
		sum += n
	}
	if sum != s.Impressions {
		t.Fatalf("ad %s: breakdown sums to %d, impressions %d", s.AdID, sum, s.Impressions)
	}
	if s.Clicks < 0 || s.Clicks > s.Impressions {
		t.Fatalf("ad %s: clicks %d", s.AdID, s.Clicks)
	}
	// Pacing should spend most of the budget without overshooting much.
	if s.SpendCents > float64(budgetCents)*1.15 {
		t.Fatalf("ad %s: spent %.0f¢ of %d¢ budget", s.AdID, s.SpendCents, budgetCents)
	}
	if s.SpendCents < float64(budgetCents)*0.5 {
		t.Errorf("ad %s: only spent %.0f¢ of %d¢ budget (pacing too timid)", s.AdID, s.SpendCents, budgetCents)
	}
}

func TestRunDayBasicInvariants(t *testing.T) {
	p, f := newTestPlatform(t, 300)
	caID := uploadBalancedAudience(t, p, f, 150, 3)
	imgW := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgB := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sa, sb := launchPair(t, p, caID, imgW, imgB, 200)
	statsInvariants(t, sa, 200)
	statsInvariants(t, sb, 200)
	// Ads are completed after the run and cannot run again.
	adIDs := []string{sa.AdID, sb.AdID}
	if err := p.RunDay(adIDs, 1000); err == nil {
		t.Error("re-running completed ads: want error")
	}
}

func TestRunDayErrors(t *testing.T) {
	p, _ := newTestPlatform(t, 301)
	if err := p.RunDay([]string{"ad-404"}, 1); err == nil {
		t.Error("unknown ad: want error")
	}
	if err := p.RunDay(nil, 1); err == nil {
		t.Error("no ads: want error")
	}
	if _, err := p.Insights("ad-404"); err == nil {
		t.Error("insights before delivery: want error")
	}
}

func TestRejectedAdsAreSkippedNotFatal(t *testing.T) {
	p, f := newTestPlatform(t, 302)
	caID := uploadBalancedAudience(t, p, f, 50, 4)
	cmp, _ := p.CreateCampaign("c", ObjectiveTraffic, SpecialNone, 2019)
	targeting := Targeting{CustomAudienceIDs: []string{caID}}
	img := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	okAd, err := p.CreateAd(cmp.ID, Creative{Image: img}, targeting, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetReviewRejectProb(1); err != nil {
		t.Fatal(err)
	}
	rejected, err := p.CreateAd(cmp.ID, Creative{Image: img}, targeting, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rejected.Status != StatusRejected {
		t.Fatal("setup: second ad should be rejected")
	}
	if err := p.RunDay([]string{okAd.ID, rejected.ID}, 5); err != nil {
		t.Fatalf("run with rejected ad present: %v", err)
	}
	if _, err := p.Insights(rejected.ID); err == nil {
		t.Error("rejected ad should have no insights")
	}
	if _, err := p.Insights(okAd.ID); err != nil {
		t.Errorf("active ad should have insights: %v", err)
	}
}

// splitAudience builds the §3.3 race-split audience: white FL voters and
// Black NC voters (or reversed), returning the custom audience ID.
func splitAudience(t *testing.T, p *Platform, f *fixture, count int, reversed bool, seed int64) string {
	t.Helper()
	rng := newRand(seed)
	flRace, ncRace := demo.RaceWhite, demo.RaceBlack
	if reversed {
		flRace, ncRace = demo.RaceBlack, demo.RaceWhite
	}
	hashes := raceHashes(f.registry.Records, flRace, count, rng)
	hashes = append(hashes, raceHashes(f.ncReg.Records, ncRace, count, rng)...)
	name := "split"
	if reversed {
		name = "split-rev"
	}
	ca, err := p.CreateCustomAudience(name, hashes)
	if err != nil {
		t.Fatal(err)
	}
	return ca.ID
}

func TestDeliverySkewsTowardCongruentRace(t *testing.T) {
	// The paper's core finding, as an emergent property: two identical ads
	// differing only in the pictured person's race deliver to measurably
	// different racial mixes. Measured with the §3.3 split methodology.
	p, f := newTestPlatform(t, 303)
	caID := splitAudience(t, p, f, 1500, false, 6) // white FL + Black NC
	imgW := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgB := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sw, sb := launchPair(t, p, caID, imgW, imgB, 800)
	// Within this audience, NC impressions are deliveries to Black users.
	blackFracW := regionFraction(sw, demo.StateNC)
	blackFracB := regionFraction(sb, demo.StateNC)
	t.Logf("white-image ad: %d impressions, %.1f%% Black; Black-image ad: %d impressions, %.1f%% Black",
		sw.Impressions, 100*blackFracW, sb.Impressions, 100*blackFracB)
	// A two-ad pair shows a smaller gap than a full campaign (less
	// competitive selection), but it must still be clearly positive.
	if blackFracB <= blackFracW+0.03 {
		t.Errorf("Black-image ad delivered %.1f%% Black vs white-image %.1f%%; want a clear congruent skew",
			100*blackFracB, 100*blackFracW)
	}
}

func TestAblationNoEARRemovesSkew(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(304)
	cfg.UseEAR = false
	p, err := New(cfg, f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	caID := splitAudience(t, p, f, 1500, false, 7)
	imgW := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	imgB := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sw, sb := launchPair(t, p, caID, imgW, imgB, 800)
	gap := regionFraction(sb, demo.StateNC) - regionFraction(sw, demo.StateNC)
	t.Logf("no-eAR gap: %.1f points (%d + %d impressions)", 100*gap, sw.Impressions, sb.Impressions)
	if math.Abs(gap) > 0.10 {
		t.Errorf("content-blind auction still shows %.1f-point race gap", 100*gap)
	}
}

func TestDeliverySkewsOlderThanAudience(t *testing.T) {
	// §5.3: over 70% of delivery went to 45+ despite 58% of the target
	// audience being 45+. Mechanism here: stiffer competition for younger
	// users. Check delivery over-represents 45+ relative to the audience.
	p, f := newTestPlatform(t, 305)
	caID := uploadBalancedAudience(t, p, f, 150, 8)
	ca, err := p.Audience(caID)
	if err != nil {
		t.Fatal(err)
	}
	var audienceOld int
	for _, idx := range ca.members {
		if f.pop.View(idx).Age() >= 45 {
			audienceOld++
		}
	}
	audienceFrac := float64(audienceOld) / float64(ca.Size)

	img := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	sa, _ := launchPair(t, p, caID, img, img, 250)
	var old, all int
	for k, n := range sa.Breakdown {
		all += n
		if k.Age >= demo.Age45to54 {
			old += n
		}
	}
	deliveredFrac := float64(old) / float64(all)
	if deliveredFrac <= audienceFrac+0.03 {
		t.Errorf("delivery 45+ fraction %.2f vs audience %.2f; want a clear old skew", deliveredFrac, audienceFrac)
	}
}

func TestOutOfStateLeakageSmall(t *testing.T) {
	p, f := newTestPlatform(t, 306)
	caID := uploadBalancedAudience(t, p, f, 150, 9)
	img := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sa, _ := launchPair(t, p, caID, img, img, 250)
	leak := regionFraction(sa, demo.StateOther)
	if leak > 0.02 {
		t.Errorf("out-of-state leakage %.2f%%, want < 2%% (§3.3 reports < 1%%)", 100*leak)
	}
}

// regionFraction returns the fraction of impressions delivered in a region.
func regionFraction(s *AdStats, region demo.State) float64 {
	var in, all int
	for k, n := range s.Breakdown {
		all += n
		if k.Region == region {
			in += n
		}
	}
	if all == 0 {
		return math.NaN()
	}
	return float64(in) / float64(all)
}

func TestPoissonProperties(t *testing.T) {
	rng := newRand(42)
	// Mean of Poisson(λ) draws should approximate λ.
	const lambda = 0.3
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	if mean := float64(sum) / n; math.Abs(mean-lambda) > 0.02 {
		t.Errorf("poisson mean %v, want ≈ %v", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestFrequencyCapBoundsPerUserImpressions(t *testing.T) {
	// With a tiny audience and a large budget, impressions per user would
	// explode without the cap; with it, impressions ≤ cap × audience.
	f := sharedFixture(t)
	cfg := testConfig(310)
	cfg.FrequencyCap = 2
	p, err := New(cfg, f.pop, f.behave)
	if err != nil {
		t.Fatal(err)
	}
	caID := uploadBalancedAudience(t, p, f, 5, 31) // ~150 users
	ca, err := p.Audience(caID)
	if err != nil {
		t.Fatal(err)
	}
	img := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult})
	sa, _ := launchPair(t, p, caID, img, img, 5000)
	if sa.Impressions > 2*ca.Size {
		t.Errorf("impressions %d exceed cap×audience %d", sa.Impressions, 2*ca.Size)
	}
	if sa.Reach > ca.Size {
		t.Errorf("reach %d exceeds audience %d", sa.Reach, ca.Size)
	}
}

func TestHourlySeriesSumsAndSpreads(t *testing.T) {
	p, f := newTestPlatform(t, 311)
	caID := uploadBalancedAudience(t, p, f, 100, 32)
	img := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sa, _ := launchPair(t, p, caID, img, img, 400)
	if len(sa.HourlySeries) != p.cfg.Ticks {
		t.Fatalf("series length %d, want %d ticks", len(sa.HourlySeries), p.cfg.Ticks)
	}
	var sum, nonZero int
	for _, n := range sa.HourlySeries {
		sum += n
		if n > 0 {
			nonZero++
		}
	}
	if sum != sa.Impressions {
		t.Errorf("hourly sum %d != impressions %d", sum, sa.Impressions)
	}
	// Pacing must spread delivery over the day, not dump it in a few ticks.
	if nonZero < p.cfg.Ticks/3 {
		t.Errorf("delivery concentrated in %d of %d ticks", nonZero, p.cfg.Ticks)
	}
}

func TestRetrainKeepsWorkingModel(t *testing.T) {
	p, f := newTestPlatform(t, 312)
	caID := uploadBalancedAudience(t, p, f, 50, 33)
	img := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	sa, _ := launchPair(t, p, caID, img, img, 300)
	if sa.Impressions == 0 {
		t.Fatal("no impressions before retrain")
	}
	if p.ServedLogSize() == 0 {
		t.Fatal("served buffer empty after delivery")
	}
	if err := p.Retrain(TrainingConfig{Seed: 999, LogRows: 8000}); err != nil {
		t.Fatal(err)
	}
	if p.ServedLogSize() != 0 {
		t.Error("served buffer should reset after retraining")
	}
	// New ads under the retrained model still deliver.
	caID2 := uploadBalancedAudience(t, p, f, 50, 34)
	sb, _ := launchPair(t, p, caID2, img, img, 300)
	if sb.Impressions == 0 {
		t.Error("no impressions after retrain")
	}
	// Tiny retraining logs are rejected.
	if err := p.Retrain(TrainingConfig{Seed: 1, LogRows: 10}); err == nil {
		t.Error("tiny retrain log: want error")
	}
}
