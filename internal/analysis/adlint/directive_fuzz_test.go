package adlint

// Native fuzz coverage for the //adlint: directive parser. The parser sits
// in front of every suppression decision, so it must never panic on
// malformed input, and — more importantly — a malformed directive must be
// IGNORED, never misapplied: garbage after "allow" must not suppress an
// analyzer whose name does not literally appear before the reason.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseAllowNames checks the allow-list extractor's contract on
// arbitrary directive tails.
func FuzzParseAllowNames(f *testing.F) {
	f.Add(" detrand (reason)")
	f.Add(" detrand,walerr (two at once)")
	f.Add("")
	f.Add("(no names at all)")
	f.Add(" lockhold\t walerr")
	f.Add(" UPPER, sp aces,, (trailing")
	f.Add(" name-with-dash (rejected)")
	f.Add(strings.Repeat(",", 1000))
	f.Fuzz(func(t *testing.T, tail string) {
		names := parseAllowNames(tail)
		for _, n := range names {
			if !isIdent(n) {
				t.Fatalf("parseAllowNames(%q) produced non-identifier %q", tail, n)
			}
			// An extracted name must literally occur in the tail before any
			// parenthesized reason: suppression must never apply to an
			// analyzer the author did not spell out.
			prefix := tail
			if i := strings.Index(tail, "("); i >= 0 {
				prefix = tail[:i]
			}
			if !strings.Contains(prefix, n) {
				t.Fatalf("parseAllowNames(%q) invented name %q", tail, n)
			}
		}
	})
}

// FuzzIndexDirectives synthesizes a source file around an arbitrary comment
// body and runs the full directive indexer over the parsed result: no
// panic, and an allow entry only ever records identifier-shaped names.
func FuzzIndexDirectives(f *testing.F) {
	f.Add("//adlint:allow detrand (seeded by hand)")
	f.Add("//adlint:deterministic")
	f.Add("//adlint:allow")
	f.Add("//adlint:allownothing")
	f.Add("//adlint: allow detrand (space breaks the verb)")
	f.Add("//adlint:allow detrand walerr")
	f.Add("// ordinary comment")
	f.Add("//adlint:deterministic=maybe")
	f.Fuzz(func(t *testing.T, comment string) {
		// Keep the synthesized line a single comment: a newline would change
		// which text ends up in the comment node, not exercise the parser.
		if strings.ContainsAny(comment, "\r\n") {
			t.Skip()
		}
		src := fmt.Sprintf("package p\n\n%s\nvar X int\n", comment)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // not a legal comment line; nothing to index
		}
		pass := &Pass{Fset: fset, Files: []*ast.File{file}}
		pass.indexDirectives()
		for key, names := range pass.allow {
			if !strings.HasPrefix(key, "fuzz.go:") {
				t.Fatalf("allow key %q not anchored to the file", key)
			}
			for n := range names {
				if !isIdent(n) {
					t.Fatalf("indexDirectives admitted non-identifier %q from %q", n, comment)
				}
			}
		}
		// The deterministic marker requires the exact verb: nothing, or a
		// whitespace separator, may follow it.
		if pass.deterministic {
			rest := strings.TrimPrefix(comment, "//adlint:deterministic")
			if rest == comment || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				t.Fatalf("deterministic set by %q", comment)
			}
		}
	})
}
