package adlint

// The flow layer, part 1: a package-local call graph with function
// summaries. PR 4's analyzers were purely syntactic — each looked at one
// function body in isolation. The invariants added since (merge-then-
// privatize, the day-session protocol, goroutine lifecycles) are properties
// of *call chains*: "this function eventually reaches AbortDaySession",
// "that value has passed through PrivatizeInsights". The call graph gives
// analyzers a path-insensitive answer to exactly one question — CAN this
// function (transitively) call a function matching a predicate — which is
// cheap to compute, dependency-free, and conservative in the right
// direction for an invariant checker: reachability over-approximates what
// actually runs, so "does not reach a release call" findings are real
// structural gaps, never scheduling accidents.
//
// Edges are intra-package: calls into other packages are leaves, visible to
// predicates (a *types.Func carries its package path and name) but not
// expanded. Function literals do not get their own nodes — a closure's
// calls are attributed to the declaring function, because every closure in
// the code this suite guards is either invoked synchronously by a fan-out
// helper (coordinator.scatter) or IS the goroutine body the analyzer is
// inspecting, and in both cases the declaring function is the unit whose
// obligations the closure discharges.

import (
	"go/ast"
	"go/types"
)

// CallGraph is the intra-package call graph of one pass's package.
type CallGraph struct {
	// decls maps a function object to its declaration, for every function
	// and method declared with a body in this package.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists the resolved direct callees of each declared function,
	// including calls made inside function literals declared in its body.
	callees map[*types.Func][]*types.Func
	// callers is the reverse edge set, restricted to intra-package callers.
	callers map[*types.Func][]*types.Func
}

// buildCallGraph indexes the pass's package once; analyzers share the
// result through Pass.callGraph().
func buildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		decls:   map[*types.Func]*ast.FuncDecl{},
		callees: map[*types.Func][]*types.Func{},
		callers: map[*types.Func][]*types.Func{},
	}
	for _, fd := range funcDecls(pass.Files) {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		g.decls[fn] = fd
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(pass.TypesInfo, call); callee != nil && !seen[callee] {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	for fn, outs := range g.callees {
		for _, callee := range outs {
			if _, declared := g.decls[callee]; declared {
				g.callers[callee] = append(g.callers[callee], fn)
			}
		}
	}
	return g
}

// DeclOf returns the in-package declaration of fn, nil for functions
// declared elsewhere (or without a body).
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// CallersOf lists the in-package functions that call fn directly.
func (g *CallGraph) CallersOf(fn *types.Func) []*types.Func { return g.callers[fn] }

// Reaches reports whether fn can transitively reach a call to a function
// matching pred: fn's own callees are tested first, then the search expands
// through callees declared in this package (external callees are leaves).
// fn itself is not tested — reachability is about what a call to fn may
// cause, not what fn is named.
func (g *CallGraph) Reaches(fn *types.Func, pred func(*types.Func) bool) bool {
	visited := map[*types.Func]bool{fn: true}
	work := []*types.Func{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range g.callees[cur] {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			if pred(callee) {
				return true
			}
			if _, declared := g.decls[callee]; declared {
				work = append(work, callee)
			}
		}
	}
	return false
}

// reachesSkipping is Reaches with one node excluded from matching and
// expansion — "can fn reach pred without going through skip". Caller-
// coverage rules need this: a caller discharging a helper's obligation must
// do so on its own paths, not through the leaking helper's happy path.
func (g *CallGraph) reachesSkipping(fn *types.Func, pred func(*types.Func) bool, skip *types.Func) bool {
	visited := map[*types.Func]bool{fn: true, skip: true}
	work := []*types.Func{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range g.callees[cur] {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			if pred(callee) {
				return true
			}
			if _, declared := g.decls[callee]; declared {
				work = append(work, callee)
			}
		}
	}
	return false
}

// CallReaches reports whether one call expression resolves to a function
// that matches pred or transitively reaches one — the per-call-site form of
// Reaches that flow-aware analyzers classify statements with.
func (g *CallGraph) CallReaches(info *types.Info, call *ast.CallExpr, pred func(*types.Func) bool) bool {
	callee := calleeOf(info, call)
	if callee == nil {
		return false
	}
	if pred(callee) {
		return true
	}
	if _, declared := g.decls[callee]; !declared {
		return false
	}
	return g.Reaches(callee, pred)
}

// nodeReaches reports whether any call expression under n matches pred
// directly or transitively — the statement-level classifier the flow engine
// uses. Function literals under n are included: their calls run (or may
// run) on behalf of the statement that created them.
func (g *CallGraph) nodeReaches(info *types.Info, n ast.Node, pred func(*types.Func) bool) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok && g.CallReaches(info, call, pred) {
			found = true
		}
		return !found
	})
	return found
}

// callGraph lazily builds and caches the pass's call graph.
func (p *Pass) callGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}
