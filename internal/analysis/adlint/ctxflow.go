package adlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow enforces context propagation on the API surface:
//
//   - any function with a context.Context parameter must not call
//     context.Background or context.TODO in its body (that severs the
//     cancellation chain — derive from the parameter instead);
//   - any HTTP handler (a function with an *http.Request parameter) must
//     use r.Context(), not a fresh Background context;
//   - exported functions and methods in marketing API packages
//     (import-path suffix internal/marketing) must actually use the
//     context parameter they accept — a dropped context means timeouts
//     and cancellation silently stop working for that call.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require API methods and HTTP handlers to propagate their context.Context",
	Run:  runCtxflow,
}

// marketingPkgSuffix scopes the dropped-context rule to the API client and
// server surface.
const marketingPkgSuffix = "internal/marketing"

func runCtxflow(pass *Pass) {
	inMarketing := pathHasSuffix(pass.Pkg.Path(), marketingPkgSuffix)
	for _, fd := range funcDecls(pass.Files) {
		scope := scopePos(fd)
		ctxParam := paramOfType(pass.TypesInfo, fd, func(t types.Type) bool {
			return namedIs(t, "context", "Context")
		})
		reqParam := paramOfType(pass.TypesInfo, fd, func(t types.Type) bool {
			return namedIs(t, "net/http", "Request")
		})

		if ctxParam != nil || reqParam != nil {
			checkFreshContext(pass, fd, ctxParam, scope)
		}
		if inMarketing && ctxParam != nil && fd.Name.IsExported() &&
			!usesObject(pass.TypesInfo, fd.Body, ctxParam) {
			pass.ReportfScoped(fd.Name.Pos(), scope,
				"exported %s accepts a context.Context (%s) but never uses it; propagate it into downstream calls or drop the parameter",
				fd.Name.Name, ctxParam.Name())
		}
	}
}

// checkFreshContext flags context.Background()/context.TODO() calls inside a
// function that already has a context available (a ctx parameter or an
// *http.Request whose Context method supplies one).
func checkFreshContext(pass *Pass, fd *ast.FuncDecl, ctxParam types.Object, scope token.Pos) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(pass.TypesInfo, call)
		if f == nil || isMethod(f) || pkgPathOf(f) != "context" {
			return true
		}
		if f.Name() != "Background" && f.Name() != "TODO" {
			return true
		}
		have := "the request's r.Context()"
		if ctxParam != nil {
			have = "the " + ctxParam.Name() + " parameter"
		}
		pass.ReportfScoped(call.Pos(), scope,
			"context.%s severs the cancellation chain; derive from %s instead", f.Name(), have)
		return true
	})
}
