package adlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Walerr guards the durability contract: an error discarded on the
// persistence path silently voids the persist-before-respond barrier.
// It flags three shapes of discarded error (bare expression statement,
// deferred call, or blank assignment):
//
//   - calls to exported, error-returning methods on types defined in a
//     store package (import-path suffix internal/store) — the WAL,
//     snapshot, and barrier APIs — from any package;
//   - inside store packages, any discarded Sync/Flush/Write/WriteString
//     error regardless of receiver (the io.Writer persistence path);
//   - anywhere, a discarded Close/Flush/Sync on a handle the same function
//     demonstrably wrote to (a receiver of Write-like method calls, or an
//     argument to a Write*/Encode*/Fprint*/Copy call) — closing a written
//     file is the last chance to observe a buffered write failure.
//
// Deliberately best-effort sites (directory fsync, cleanup in error paths
// where the original error is already latched) carry an
// //adlint:allow walerr annotation with the reason.
var Walerr = &Analyzer{
	Name: "walerr",
	Doc:  "forbid discarded errors from WAL/snapshot/fsync APIs and the write path",
	Run:  runWalerr,
}

// storePkgSuffix marks the durability subsystem.
const storePkgSuffix = "internal/store"

// storeWriteNames are the method names whose errors must never be dropped
// inside a store package.
var storeWriteNames = map[string]bool{
	"Sync": true, "Flush": true, "Write": true, "WriteString": true,
}

// closeLikeNames are flagged anywhere when the handle was written to.
var closeLikeNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runWalerr(pass *Pass) {
	inStore := pathHasSuffix(pass.Pkg.Path(), storePkgSuffix)
	for _, fd := range funcDecls(pass.Files) {
		scope := scopePos(fd)
		written := writtenObjects(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch node := n.(type) {
			case *ast.ExprStmt:
				call, _ = node.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = node.Call
			case *ast.AssignStmt:
				call = blankedErrorCall(pass.TypesInfo, node)
			}
			if call == nil {
				return true
			}
			checkDiscarded(pass, call, scope, inStore, written)
			return true
		})
	}
}

// checkDiscarded reports a discarded-error call that matches one of the
// walerr rules.
func checkDiscarded(pass *Pass, call *ast.CallExpr, scope token.Pos, inStore bool, written map[types.Object]bool) {
	f := calleeOf(pass.TypesInfo, call)
	if f == nil || !returnsError(f) {
		return
	}
	// Rule 1: store-API calls, from anywhere.
	if recv := recvNamed(f); recv != nil && f.Exported() && recv.Obj().Pkg() != nil &&
		pathHasSuffix(recv.Obj().Pkg().Path(), storePkgSuffix) {
		pass.ReportfScoped(call.Pos(), scope,
			"error from %s.%s discarded; durability failures must be propagated or logged", recv.Obj().Name(), f.Name())
		return
	}
	// Rule 2: write-path names inside the store package itself.
	if inStore && isMethod(f) && storeWriteNames[f.Name()] {
		pass.ReportfScoped(call.Pos(), scope,
			"error from %s discarded on the persistence path; a swallowed %s error breaks the durability guarantee",
			exprText(pass.Fset, call.Fun), f.Name())
		return
	}
	// Rule 3: close-like calls on handles this function wrote to.
	if isMethod(f) && closeLikeNames[f.Name()] {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		root := rootIdent(sel.X)
		if root == nil {
			return
		}
		if obj := objOf(pass.TypesInfo, root); obj != nil && written[obj] {
			pass.ReportfScoped(call.Pos(), scope,
				"error from %s discarded but %s was written to in this function; %s is the last chance to surface a buffered write failure",
				exprText(pass.Fset, call.Fun), root.Name, f.Name())
		}
	}
}

// blankedErrorCall matches assignments that discard a call's error result
// through the blank identifier (`_ = f()`, `_, _ = g()`, `x, _ = h()` where
// the blanked position is the error).
func blankedErrorCall(info *types.Info, assign *ast.AssignStmt) *ast.CallExpr {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	f := calleeOf(info, call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(assign.Lhs) {
		// Single-value context (`_ = f()` with one result) still matches
		// when lengths agree; anything else is not a plain discard.
		if !(sig.Results().Len() >= 1 && len(assign.Lhs) == 1) {
			return nil
		}
	}
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if len(assign.Lhs) == sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
			return call
		}
		if len(assign.Lhs) == 1 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
			return call
		}
	}
	return nil
}

// writtenObjects collects the variables fd demonstrably writes to: receivers
// of Write-like methods and arguments to Write*/Encode*/Fprint*/Copy-named
// calls. Used by rule 3 to tell a written file handle from a read-only one.
func writtenObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	written := map[types.Object]bool{}
	note := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if obj := objOf(pass.TypesInfo, root); obj != nil {
				written[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if strings.HasPrefix(sel.Sel.Name, "Write") {
				note(sel.X)
			}
		}
		name := calleeName(pass.TypesInfo, call)
		if name == "" {
			return true
		}
		if strings.Contains(name, "Write") || strings.Contains(name, "Encod") ||
			strings.HasPrefix(name, "Fprint") || name == "Copy" {
			for _, arg := range call.Args {
				note(arg)
			}
		}
		return true
	})
	return written
}

// calleeName returns the bare name of the called function, "" when
// unresolvable.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeOf(info, call); f != nil {
		return f.Name()
	}
	// Conversions like bufio.NewWriter(f) resolve through Uses on the Sel.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
