package adlint

// Analyzer goroleak enforces goroutine lifecycle discipline in the
// long-lived subsystems — the supervisor's probe/relaunch loops, the
// coordinator's fan-out, and the chaos scheduler. Every `go` statement
// there must have a reachable stop path the spawner can exercise:
//
//   - context cancellation: the goroutine (or an in-package function it
//     calls) checks ctx.Done()/ctx.Err();
//   - a done/stop channel: it receives from, sends on, closes, or ranges
//     over a channel declared outside its own body — the close-to-stop and
//     result-join idioms;
//   - a WaitGroup join: it calls (*sync.WaitGroup).Done, so some Wait()
//     observes its exit.
//
// A goroutine with none of these can outlive its subsystem: a supervisor
// probe loop that survives Stop() keeps hammering restarted shards, and a
// leaked fan-out worker holds its per-shard connection forever. The walk is
// transitive through the package call graph (a goroutine whose body is
// `s.probeLoop(ctx)` is fine if probeLoop selects on ctx.Done()), and a
// `go` whose target cannot be resolved to a body in this package is
// reported — annotate deliberate fire-and-forget sites with a reason.
//
// Scope is path-based like detrand's: only the subsystems whose goroutines
// are long-lived by design are checked; ad-hoc parallelism elsewhere (test
// servers, one-shot CLI helpers) is not this analyzer's concern.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroleakPkgSuffixes scopes the check to the long-lived subsystems.
var goroleakPkgSuffixes = []string{
	"internal/supervisor",
	"internal/coordinator",
	"internal/chaos",
}

// Goroleak is the analyzer instance.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements in long-lived subsystems need a stop path: ctx cancellation, a done/stop channel, or a WaitGroup join",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) {
	inScope := false
	for _, suffix := range goroleakPkgSuffixes {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	g := pass.callGraph()
	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, gs)
			if body == nil {
				pass.ReportfScoped(gs.Pos(), scopePos(fd),
					"cannot resolve the goroutine's body in this package; if the target manages its own lifetime, annotate why")
				return true
			}
			if !hasStopPath(pass, g, body, map[*ast.BlockStmt]bool{}) {
				pass.ReportfScoped(gs.Pos(), scopePos(fd),
					"goroutine has no reachable stop path (ctx cancellation, done/stop channel, or WaitGroup join)")
			}
			return true
		})
	}
}

// goBody resolves the body a go statement runs: a literal's own body, or
// the in-package declaration of a named target.
func goBody(pass *Pass, g *CallGraph, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	callee := calleeOf(pass.TypesInfo, gs.Call)
	if callee == nil {
		return nil
	}
	if fd := g.DeclOf(callee); fd != nil {
		return fd.Body
	}
	return nil
}

// hasStopPath reports whether body contains a stop construct, searching
// transitively through in-package callees.
func hasStopPath(pass *Pass, g *CallGraph, body *ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if visited[body] {
		return false
	}
	visited[body] = true
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(info, x); callee != nil {
				if isContextCheck(callee) || isWaitGroupDone(callee) {
					found = true
					return false
				}
				if fd := g.DeclOf(callee); fd != nil && hasStopPath(pass, g, fd.Body, visited) {
					found = true
					return false
				}
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if outerChannel(info, x.Args[0], body) {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && outerChannel(info, x.X, body) {
				found = true
				return false
			}
		case *ast.SendStmt:
			if outerChannel(info, x.Chan, body) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && outerChannel(info, x.X, body) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isContextCheck matches ctx.Done() / ctx.Err().
func isContextCheck(f *types.Func) bool {
	return pkgPathOf(f) == "context" && (f.Name() == "Done" || f.Name() == "Err")
}

// isWaitGroupDone matches (*sync.WaitGroup).Done.
func isWaitGroupDone(f *types.Func) bool {
	return pkgPathOf(f) == "sync" && f.Name() == "Done" && recvNamed(f) != nil &&
		recvNamed(f).Obj().Name() == "WaitGroup"
}

// outerChannel reports whether the channel expression roots in a variable
// declared outside body — a stop/done/result channel the spawner shares —
// rather than one the goroutine made for itself.
func outerChannel(info *types.Info, ch ast.Expr, body *ast.BlockStmt) bool {
	id := rootIdent(ch)
	if id == nil {
		return false
	}
	obj := objOf(info, id)
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}
