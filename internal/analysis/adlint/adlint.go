// Package adlint is a custom static-analysis suite that mechanically
// enforces the invariants this reproduction's correctness rests on:
//
//   - seeded determinism: audit results must replay bit-identically under a
//     fixed seed, so determinism-critical packages must not read the wall
//     clock, draw from the process-global RNG, or depend on map iteration
//     order (analyzer detrand);
//   - lock discipline: no blocking call (sleep, file or network I/O, channel
//     wait) while a sync.Mutex/RWMutex is held — the bug class the client
//     throttle fixed by reserving its slot under the lock and sleeping
//     outside it (analyzer lockhold);
//   - context propagation: API-surface methods and HTTP handlers must thread
//     their context.Context instead of dropping it or substituting
//     context.Background (analyzer ctxflow);
//   - durability: errors from WAL/snapshot/fsync APIs and from writes on the
//     persistence path must be handled, not discarded — a swallowed fsync
//     error silently voids the persist-before-respond guarantee (analyzer
//     walerr);
//   - bounded metric cardinality: metric names passed to internal/obs must
//     be constants, with dynamic parts only in the "name|label" position
//     (analyzer obsreg).
//
// The suite is deliberately dependency-free: it drives `go list -export` for
// package discovery and export data, and type-checks with the standard
// library's go/parser + go/types. The analyzer API mirrors the shape of
// golang.org/x/tools/go/analysis so the analyzers could be ported to a real
// multichecker/vettool with mechanical changes only.
//
// # Escape hatches
//
// A finding can be suppressed with an annotation comment:
//
//	//adlint:allow <name>[,<name>...] (reason)
//
// placed on the offending line, on the line directly above it, or on the
// line of the enclosing function declaration (which suppresses the named
// analyzers for the whole function — used for e.g. the WAL group-commit
// path, where fsync-under-lock IS the design). A package outside the
// built-in determinism-critical list can opt into detrand with a
// file-level
//
//	//adlint:deterministic
//
// comment anywhere in one of its files.
package adlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects the pass's package and reports
// findings through pass.Reportf / pass.ReportfScoped.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //adlint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the vet-style "file:line:col: analyzer: message" line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allow maps "filename:line" to the analyzer names allowed there.
	allow map[string]map[string]bool
	// deterministic is true when a file in the package carries the
	// //adlint:deterministic directive (path-based marking is detrand's own
	// concern).
	deterministic bool
	// graph is the lazily built intra-package call graph (callGraph()).
	graph *CallGraph

	diags *[]Diagnostic
}

// directivePrefix introduces every adlint annotation comment.
const directivePrefix = "//adlint:"

// indexDirectives scans the package's comments once and records allow
// annotations by file:line, plus the package-level deterministic marker.
func (p *Pass) indexDirectives() {
	p.allow = map[string]map[string]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				verb, tail := splitVerb(strings.TrimPrefix(text, directivePrefix))
				switch verb {
				case "deterministic":
					p.deterministic = true
				case "allow":
					names := parseAllowNames(tail)
					if len(names) == 0 {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					if p.allow[key] == nil {
						p.allow[key] = map[string]bool{}
					}
					for _, n := range names {
						p.allow[key][n] = true
					}
				}
			}
		}
	}
}

// splitVerb cuts a directive body at the first whitespace: the verb must be
// spelled exactly ("//adlint:allowdetrand" is malformed and ignored, it
// does NOT suppress detrand), with everything after the separator as the
// verb's tail.
func splitVerb(rest string) (verb, tail string) {
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

// parseAllowNames extracts the analyzer names from the tail of an allow
// directive: comma- or space-separated identifiers, terminated by a
// parenthesized free-form reason. The tail is cut at the first "(" before
// any splitting — fuzzing showed that a paren opening mid-token otherwise
// let identifier-shaped words inside the reason be misapplied as names.
func parseAllowNames(s string) []string {
	if i := strings.Index(s, "("); i >= 0 {
		s = s[:i]
	}
	var names []string
	for _, field := range strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' }) {
		if isIdent(field) {
			names = append(names, field)
		}
	}
	return names
}

// isIdent reports whether s is a plausible analyzer name.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// allowedAt reports whether the current analyzer is suppressed at pos: an
// allow directive on the same line or the line directly above.
func (p *Pass) allowedAt(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		key := fmt.Sprintf("%s:%d", position.Filename, line)
		if names := p.allow[key]; names != nil && names[p.Analyzer.Name] {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos unless an allow directive covers that
// line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfScoped(pos, token.NoPos, format, args...)
}

// ReportfScoped is Reportf with an additional suppression scope: a directive
// at scope's line (typically the enclosing function declaration) also
// silences the finding. Pass token.NoPos for no scope.
func (p *Pass) ReportfScoped(pos, scope token.Pos, format string, args ...any) {
	if p.allowedAt(pos) || (scope.IsValid() && p.allowedAt(scope)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the loaded packages and returns every
// finding, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			pass.indexDirectives()
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full suite in stable order: the five syntactic analyzers
// from the original suite, then the four flow-aware ones built on the call
// graph.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Lockhold, Ctxflow, Walerr, Obsreg, Privflow, Sessionlife, Goroleak, Bodyclose}
}

// ByName resolves a comma-separated -only list against the suite. An
// unknown name is an error that enumerates the valid names, so a typo
// fails loudly instead of quietly checking nothing.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	valid := make([]string, 0, len(All()))
	for _, a := range All() {
		byName[a.Name] = a
		valid = append(valid, a.Name)
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("adlint: unknown analyzer %q (valid analyzers: %s)", n, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
