package adlint_test

import (
	"testing"

	"github.com/adaudit/impliedidentity/internal/analysis/adlint"
	"github.com/adaudit/impliedidentity/internal/analysis/analysistest"
)

// TestAnalyzers drives every analyzer over its fixture packages and checks
// the reported diagnostics against the // want expectations in the fixture
// sources. Each analyzer's fixture set includes at least one
// false-positive regression (a compliant shape that must stay silent).
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *adlint.Analyzer
		fixtures []string
	}{
		{"detrand", adlint.Detrand, []string{"detrand/internal/platform", "detrand/internal/privacy", "detrand/clocked", "detrand/optin"}},
		{"lockhold", adlint.Lockhold, []string{"lockhold/a"}},
		{"ctxflow", adlint.Ctxflow, []string{"ctxflow/internal/marketing"}},
		{"walerr", adlint.Walerr, []string{"walerr/internal/store", "walerr/caller"}},
		{"obsreg", adlint.Obsreg, []string{"obsreg/a"}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, tt.analyzer, tt.fixtures...)
		})
	}
}

// TestByName covers the -only flag's resolver.
func TestByName(t *testing.T) {
	all, err := adlint.ByName("")
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	two, err := adlint.ByName("detrand, walerr")
	if err != nil || len(two) != 2 || two[0].Name != "detrand" || two[1].Name != "walerr" {
		t.Fatalf("ByName(detrand, walerr) = %v, err %v", two, err)
	}
	if _, err := adlint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
}
