package adlint_test

import (
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/analysis/adlint"
	"github.com/adaudit/impliedidentity/internal/analysis/analysistest"
)

// TestAnalyzers drives every analyzer over its fixture packages and checks
// the reported diagnostics against the // want expectations in the fixture
// sources. Each analyzer's fixture set includes at least one
// false-positive regression (a compliant shape that must stay silent).
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *adlint.Analyzer
		fixtures []string
	}{
		{"detrand", adlint.Detrand, []string{"detrand/internal/platform", "detrand/internal/privacy", "detrand/internal/chaos", "detrand/internal/supervisor", "detrand/clocked", "detrand/optin"}},
		{"lockhold", adlint.Lockhold, []string{"lockhold/a"}},
		{"ctxflow", adlint.Ctxflow, []string{"ctxflow/internal/marketing"}},
		{"walerr", adlint.Walerr, []string{"walerr/internal/store", "walerr/caller"}},
		{"obsreg", adlint.Obsreg, []string{"obsreg/a"}},
		{"privflow", adlint.Privflow, []string{"privflow/internal/coordinator"}},
		{"sessionlife", adlint.Sessionlife, []string{"sessionlife/internal/delivery"}},
		{"goroleak", adlint.Goroleak, []string{"goroleak/internal/supervisor"}},
		{"bodyclose", adlint.Bodyclose, []string{"bodyclose/a"}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, tt.analyzer, tt.fixtures...)
		})
	}
}

// TestByName covers the -only flag's resolver.
func TestByName(t *testing.T) {
	all, err := adlint.ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := adlint.ByName("detrand, bodyclose")
	if err != nil || len(two) != 2 || two[0].Name != "detrand" || two[1].Name != "bodyclose" {
		t.Fatalf("ByName(detrand, bodyclose) = %v, err %v", two, err)
	}
	_, err = adlint.ByName("nosuch")
	if err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
	// A typo must fail loudly AND tell the user what would have worked.
	for _, name := range []string{"detrand", "privflow", "sessionlife", "goroleak", "bodyclose"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ByName(nosuch) error %q does not list valid analyzer %q", err, name)
		}
	}
}
