package adlint

// Analyzer bodyclose enforces response-body hygiene repo-wide: every
// *http.Response acquired from a call must have its Body closed on every
// path from the acquisition to the function's exits. A leaked body pins the
// keep-alive connection; under the marketing client's bounded-concurrency
// transport a handful of leaks exhausts the pool and the audit stalls —
// a failure mode that looks exactly like a slow shard.
//
// The check runs the flow engine per acquisition. It discharges on:
//
//   - a Close call rooted at the response variable (resp.Body.Close()),
//     including deferred ones, which cover every later exit;
//   - an ownership escape: the response itself returned, passed whole as a
//     call argument, stored away, or sent on a channel — the receiver
//     becomes responsible (passing resp.Body to a reader is NOT an escape;
//     readers do not close).
//
// The `x, err := do()` error guard narrows paths: a branch under
// `err != nil` never held a body, and under `err == nil` only that branch
// does. Unlike sessionlife there is no caller-excuse for error returns — a
// body acquired successfully must be closed before propagating any later
// error.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Bodyclose is the analyzer instance.
var Bodyclose = &Analyzer{
	Name: "bodyclose",
	Doc:  "http.Response bodies must be closed (or ownership passed on) on every path",
	Run:  runBodyclose,
}

func runBodyclose(pass *Pass) {
	for _, fd := range funcDecls(pass.Files) {
		for _, unit := range funcUnits(fd) {
			for _, acq := range responseAcquires(pass, unit) {
				ob := &flowOb{
					acquire: acq.stmt,
					errObj:  acq.errObj,
					releases: func(n ast.Node) bool {
						return releasesResponse(pass.TypesInfo, n, acq.respObj)
					},
				}
				for _, leak := range scanObligation(pass, unit.body, unit.results, ob) {
					pass.ReportfScoped(leak.pos, scopePos(fd),
						"response body of %s (acquired at line %d) is not closed on this path",
						acq.respObj.Name(), pass.Fset.Position(acq.pos).Line)
					break // one report per acquisition is enough signal
				}
			}
		}
	}
}

// funcUnit is one independently scanned function-like body: a declaration's
// or a literal's. A body obligation is local to the function that acquires
// it — a goroutine closure closes its own responses — so each unit is
// scanned against its own statement tree.
type funcUnit struct {
	body    *ast.BlockStmt
	results *ast.FieldList
}

// funcUnits yields fd's own body plus the body of every function literal
// inside it.
func funcUnits(fd *ast.FuncDecl) []funcUnit {
	units := []funcUnit{{body: fd.Body, results: fd.Type.Results}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			units = append(units, funcUnit{body: lit.Body, results: lit.Type.Results})
		}
		return true
	})
	return units
}

// respAcquire is one statement binding a fresh *http.Response.
type respAcquire struct {
	stmt    ast.Stmt
	pos     token.Pos
	respObj types.Object
	errObj  types.Object
}

// responseAcquires finds assignments directly in this unit (nested literals
// belong to their own unit) whose right-hand call returns a *http.Response
// bound to a named variable.
func responseAcquires(pass *Pass, unit funcUnit) []respAcquire {
	var out []respAcquire
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != unit.body {
			return false // scanned as its own unit
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		respObj, errObj := bindResults(pass.TypesInfo, assign, sig)
		if respObj == nil {
			return true
		}
		stmt := enclosingStmt(unit.body, assign)
		if stmt == nil {
			return true
		}
		out = append(out, respAcquire{stmt: stmt, pos: call.Pos(), respObj: respObj, errObj: errObj})
		return true
	})
	return out
}

// bindResults maps the callee's result tuple onto the assignment's
// left-hand sides, returning the bound *http.Response variable and its
// companion error variable (either may be nil).
func bindResults(info *types.Info, assign *ast.AssignStmt, sig *types.Signature) (respObj, errObj types.Object) {
	results := sig.Results()
	if results.Len() != len(assign.Lhs) {
		return nil, nil
	}
	for i := 0; i < results.Len(); i++ {
		id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objOf(info, id)
		if obj == nil {
			continue
		}
		switch {
		case isHTTPResponsePtr(results.At(i).Type()):
			respObj = obj
		case isErrorType(results.At(i).Type()):
			errObj = obj
		}
	}
	return respObj, errObj
}

// releasesResponse reports whether node n discharges the body obligation
// for respObj: a Close rooted at it, or a whole-value escape.
func releasesResponse(info *types.Info, n ast.Node, respObj types.Object) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id := rootIdent(sel.X); id != nil && objOf(info, id) == respObj {
					found = true
					return false
				}
			}
			for _, arg := range x.Args {
				if identResolves(info, arg, respObj) {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if identResolves(info, r, respObj) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if identResolves(info, r, respObj) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if identResolves(info, x.Value, respObj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// identResolves reports whether e is exactly (possibly parenthesized) an
// identifier for obj — a selector into obj, like resp.Body, does not count.
func identResolves(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && objOf(info, id) == obj
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && namedIs(p.Elem(), "net/http", "Response")
}
