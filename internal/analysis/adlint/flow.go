package adlint

// The flow layer, part 2: a structured, path-insensitive obligation scan.
// Several of the suite's invariants have the same shape — a statement
// ACQUIRES an obligation (open a day session, receive an *http.Response)
// and every path from there to function exit must DISCHARGE it (finish or
// abort the session, close the body). The engine here walks one function
// body in source order over Go's structured statements (if/for/switch/
// select), threading a three-value state:
//
//	flowIdle    before the acquisition statement
//	flowActive  acquired, not yet discharged
//	flowDone    discharged (released, escaped, or deferred)
//
// and records a leak at every return reached while flowActive. Two
// refinements keep the scan useful without full path sensitivity:
//
//   - error guards: acquisitions of the form `x, err := f()` bind an error
//     variable; a branch guarded by `err != nil` is the failure path on
//     which the resource never materialized, so it is scanned exempt, and a
//     branch guarded by `err == nil` is the only success path, so only it
//     inherits the obligation. This is the idiom-aware narrowing that lets
//     `if err == nil { resp.Body.Close(); ... }` pass without annotations.
//
//   - error-propagating returns are classified separately (flowLeak.
//     errReturn): an analyzer may excuse them when the call graph proves
//     every caller pairs the call with the discharge — the coordinator's
//     split-protocol pattern, where runDayOnce propagates tick errors and
//     Deliver owns the abort.
//
// Merging at join points is a max over {idle < done < active}: if any
// falling-through branch still holds the obligation, the joined state does.
// Branches that end in return/break/continue/panic do not contribute to the
// join (their leaks, if any, were recorded where they happened). Loops join
// the zero-iteration state with the body's exit state. The scan never
// claims a leak is reachable — it claims no discharge exists on some
// structural path, which for these protocols is a bug by construction.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type flowState int

const (
	flowIdle flowState = iota
	flowDone
	flowActive
)

// flowMerge joins two branch states: an obligation still live on either
// side is live after the join.
func flowMerge(a, b flowState) flowState {
	if a > b {
		return a
	}
	return b
}

type guardKind int

const (
	guardNone    guardKind = iota
	guardFail              // `err != nil`: the acquisition failed on this branch
	guardSuccess           // `err == nil`: the only branch holding the resource
)

// flowOb is one acquire→discharge obligation.
type flowOb struct {
	// acquire is the top-level statement that creates the obligation,
	// matched by identity during the walk. A call nested in an if-init or a
	// function-literal argument is attributed to the statement that
	// contains it in the enclosing function's own statement tree.
	acquire ast.Stmt
	// releases reports whether node n discharges the obligation (a release
	// call, transitively via the call graph, or an ownership escape).
	releases func(n ast.Node) bool
	// errObj is the error variable bound by the acquisition, nil when the
	// acquisition cannot fail; guards on it classify failure/success paths.
	errObj types.Object
}

// flowLeak is one return (or fall-off-the-end) reached with the obligation
// still active.
type flowLeak struct {
	pos token.Pos
	// errReturn marks a return whose error result is a non-nil expression —
	// a propagated failure the caller may be contractually discharging.
	errReturn bool
}

// scanObligation runs the obligation scan over one function-like body
// (a declaration's or a literal's) and returns the leaks; results is the
// unit's result list, for error-return classification.
func scanObligation(pass *Pass, body *ast.BlockStmt, results *ast.FieldList, ob *flowOb) []flowLeak {
	s := &flowScan{pass: pass, ob: ob, results: results}
	end := s.seq(body.List, flowIdle)
	if end == flowActive {
		s.leaks = append(s.leaks, flowLeak{pos: body.Rbrace})
	}
	return s.leaks
}

type flowScan struct {
	pass    *Pass
	ob      *flowOb
	results *ast.FieldList
	leaks   []flowLeak
}

// seq walks one statement list, stopping at an unconditional terminator
// (everything after it is unreachable on this path).
func (s *flowScan) seq(stmts []ast.Stmt, st flowState) flowState {
	for _, stmt := range stmts {
		st = s.stmt(stmt, st)
		if terminates(stmt) {
			return st
		}
	}
	return st
}

// stmt threads the state through one statement.
func (s *flowScan) stmt(stmt ast.Stmt, st flowState) flowState {
	switch n := stmt.(type) {
	case *ast.BlockStmt:
		return s.seq(n.List, st)
	case *ast.LabeledStmt:
		return s.stmt(n.Stmt, st)
	case *ast.IfStmt:
		return s.ifStmt(n, st)
	case *ast.ForStmt:
		if n.Init != nil {
			st = s.stmt(n.Init, st)
		}
		body := s.seq(n.Body.List, st)
		return flowMerge(st, body)
	case *ast.RangeStmt:
		st = s.simple(n, st)
		body := s.seq(n.Body.List, st)
		return flowMerge(st, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.caseStmt(n, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// A deferred discharge covers every later exit; a discharge handed
		// to a goroutine is the spawner's explicit transfer of the
		// obligation.
		return s.simple(n, st)
	case *ast.ReturnStmt:
		if st == flowActive {
			if s.ob.releases(n) {
				return flowDone
			}
			s.leaks = append(s.leaks, flowLeak{pos: n.Pos(), errReturn: s.errReturn(n)})
		}
		return flowDone
	default:
		return s.simple(stmt, st)
	}
}

// simple handles a leaf statement: the acquisition itself, or a potential
// discharge.
func (s *flowScan) simple(stmt ast.Node, st flowState) flowState {
	if stmtIs(stmt, s.ob.acquire) {
		return flowActive
	}
	if st == flowActive && s.ob.releases(stmt) {
		return flowDone
	}
	return st
}

// stmtIs matches the acquisition statement by identity.
func stmtIs(n ast.Node, acquire ast.Stmt) bool {
	got, ok := n.(ast.Stmt)
	return ok && got == acquire
}

// ifStmt applies the error-guard narrowing, then the plain two-way join.
func (s *flowScan) ifStmt(n *ast.IfStmt, st flowState) flowState {
	if n.Init != nil {
		st = s.stmt(n.Init, st)
	}
	if st == flowActive && s.ob.releases(n.Cond) {
		st = flowDone
	}
	if st == flowActive {
		switch s.guard(n.Cond) {
		case guardFail:
			// Failure path: the resource never materialized there. Scan it
			// exempt; the success continuation keeps the obligation.
			s.seq(n.Body.List, flowIdle)
			if n.Else != nil {
				return s.stmt(n.Else, st)
			}
			return st
		case guardSuccess:
			bodyOut := s.seq(n.Body.List, st)
			if n.Else != nil {
				s.stmt(n.Else, flowIdle)
			}
			// The failure fall-through holds nothing; only a success body
			// that falls through still owing the discharge keeps the
			// obligation alive.
			if fallsThrough(n.Body.List) {
				return bodyOut
			}
			return flowDone
		}
	}
	thenOut := s.seq(n.Body.List, st)
	elseOut := st
	if n.Else != nil {
		elseOut = s.stmt(n.Else, st)
	}
	thenFalls := fallsThrough(n.Body.List)
	elseFalls := n.Else == nil || !stmtTerminatesAll(n.Else)
	switch {
	case thenFalls && elseFalls:
		return flowMerge(thenOut, elseOut)
	case thenFalls:
		return thenOut
	case elseFalls:
		return elseOut
	default:
		return flowDone // both branches left the function
	}
}

// caseStmt joins switch/type-switch/select clause bodies; a missing default
// keeps the entry state in the join (the statement may select no clause).
func (s *flowScan) caseStmt(n ast.Stmt, st flowState) flowState {
	var clauses []ast.Stmt
	hasDefault := false
	switch sw := n.(type) {
	case *ast.SwitchStmt:
		if sw.Init != nil {
			st = s.stmt(sw.Init, st)
		}
		if st == flowActive && sw.Tag != nil && s.ob.releases(sw.Tag) {
			st = flowDone
		}
		clauses = sw.Body.List
	case *ast.TypeSwitchStmt:
		if sw.Init != nil {
			st = s.stmt(sw.Init, st)
		}
		st = s.simple(sw.Assign, st)
		clauses = sw.Body.List
	case *ast.SelectStmt:
		clauses = sw.Body.List
	}
	out := flowIdle
	saw := false
	for _, clause := range clauses {
		var body []ast.Stmt
		switch cc := clause.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				st = s.stmt(cc.Comm, st)
			}
			body = cc.Body
		}
		clauseOut := s.seq(body, st)
		if fallsThrough(body) {
			out = flowMerge(out, clauseOut)
			saw = true
		}
	}
	if !hasDefault {
		out = flowMerge(out, st)
		saw = true
	}
	if !saw {
		return flowDone
	}
	return out
}

// guard classifies an if-condition against the obligation's error variable.
func (s *flowScan) guard(cond ast.Expr) guardKind {
	if s.ob.errObj == nil {
		return guardNone
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return guardNone
	}
	var other ast.Expr
	switch {
	case isNilIdent(s.pass.TypesInfo, bin.Y):
		other = bin.X
	case isNilIdent(s.pass.TypesInfo, bin.X):
		other = bin.Y
	default:
		return guardNone
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok || objOf(s.pass.TypesInfo, id) != s.ob.errObj {
		return guardNone
	}
	if bin.Op == token.NEQ {
		return guardFail
	}
	return guardSuccess
}

// errReturn reports whether ret propagates a non-nil error: the enclosing
// function returns an error and the expression in that result position is
// not the nil literal.
func (s *flowScan) errReturn(ret *ast.ReturnStmt) bool {
	if s.results == nil || len(ret.Results) == 0 {
		return false
	}
	idx := 0
	for _, field := range s.results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := s.pass.TypesInfo.Types[field.Type]; ok && isErrorType(tv.Type) {
			if idx < len(ret.Results) && !isNilIdent(s.pass.TypesInfo, ret.Results[idx]) {
				return true
			}
		}
		idx += n
	}
	// A single call expression fanned out over multiple results: trust the
	// callee's error result to be live (it is what the caller propagates).
	return len(ret.Results) == 1 && len(s.results.List) > 1
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(info, id)
	_, isNil := obj.(*types.Nil)
	return isNil || (obj == nil && id.Name == "nil")
}

// terminates reports whether control cannot flow past stmt: returns,
// branch statements, and the conventional process-exit calls.
func terminates(stmt ast.Stmt) bool {
	switch n := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf"
		}
	case *ast.BlockStmt:
		return !fallsThrough(n.List)
	}
	return false
}

// stmtTerminatesAll reports whether an else-branch (block or chained if)
// leaves the function on every path — the only cases the if join needs.
func stmtTerminatesAll(stmt ast.Stmt) bool {
	switch n := stmt.(type) {
	case *ast.BlockStmt:
		return !fallsThrough(n.List)
	case *ast.IfStmt:
		if n.Else == nil {
			return false
		}
		return !fallsThrough(n.Body.List) && stmtTerminatesAll(n.Else)
	}
	return terminates(stmt)
}

// fallsThrough reports whether a statement list can reach its end.
func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	return !terminates(stmts[len(stmts)-1])
}

// enclosingStmt returns the ancestor of target that is a statement directly
// in body's own statement tree — function-literal interiors are collapsed
// onto the statement that creates the literal, because that is where the
// literal's effects happen for a synchronous fan-out (and where a
// goroutine hand-off becomes the spawner's responsibility).
func enclosingStmt(body *ast.BlockStmt, target ast.Node) ast.Stmt {
	var found ast.Stmt
	var walk func(stmt ast.Stmt) bool
	contains := func(n ast.Node) bool {
		return n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	walk = func(stmt ast.Stmt) bool {
		if stmt == nil || !contains(stmt) {
			return false
		}
		found = stmt
		switch n := stmt.(type) {
		case *ast.BlockStmt:
			for _, child := range n.List {
				if walk(child) {
					return true
				}
			}
		case *ast.LabeledStmt:
			walk(n.Stmt)
		case *ast.IfStmt:
			if n.Init != nil && walk(n.Init) {
				return true
			}
			if contains(n.Cond) {
				return true
			}
			if walk(n.Body) {
				return true
			}
			if n.Else != nil {
				walk(n.Else)
			}
		case *ast.ForStmt:
			if n.Init != nil && walk(n.Init) {
				return true
			}
			walk(n.Body)
		case *ast.RangeStmt:
			walk(n.Body)
		case *ast.SwitchStmt:
			if n.Init != nil && walk(n.Init) {
				return true
			}
			walk(n.Body)
		case *ast.TypeSwitchStmt:
			if n.Init != nil && walk(n.Init) {
				return true
			}
			if walk(n.Assign) {
				return true
			}
			walk(n.Body)
		case *ast.SelectStmt:
			walk(n.Body)
		case *ast.CaseClause:
			for _, child := range n.Body {
				if walk(child) {
					return true
				}
			}
		case *ast.CommClause:
			if n.Comm != nil && walk(n.Comm) {
				return true
			}
			for _, child := range n.Body {
				if walk(child) {
					return true
				}
			}
		}
		return true
	}
	for _, stmt := range body.List {
		if walk(stmt) {
			break
		}
	}
	return found
}
