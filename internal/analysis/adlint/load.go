package adlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	// PkgPath is the import path (also Types.Path()).
	PkgPath string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
}

// runGoList invokes `go list` in dir with the given extra arguments and
// decodes the JSON package stream.
func runGoList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("adlint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("adlint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves the package patterns (relative to dir, which must sit inside
// a module), compiles export data for their dependency graph, and
// type-checks each matched package from source. Test files are not analyzed:
// the suite guards production invariants, and tests legitimately use wall
// clocks and best-effort cleanup.
//
// Wildcard patterns follow go tooling rules, so `./...` never descends into
// testdata directories — the analyzer fixtures, which contain violations by
// design, are only reachable by naming their directories explicitly (which
// is what the analysistest harness does).
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Pass 1: which packages did the patterns match?
	matched, err := runGoList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targetSet := map[string]bool{}
	for _, p := range matched {
		targetSet[p.ImportPath] = true
	}

	// Pass 2: the full dependency graph with compiled export data. This is
	// the only build step; everything after runs in-process on the standard
	// library's go/parser + go/types.
	listed, err := runGoList(dir, append([]string{"-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if targetSet[p.ImportPath] && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("adlint: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("adlint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("adlint: type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	return out, nil
}
