package adlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgSuffixes lists the packages whose outputs must replay
// bit-identically under a fixed seed: the delivery engine, the fault
// schedule, the synthetic population, the statistics kernels, the load
// generator's workload decisions, and the privacy layer (whose noise stream
// must be a pure function of seed and cell key for the router/single-process
// equivalence proof). A package outside this list opts in with a file-level
// //adlint:deterministic directive.
var deterministicPkgSuffixes = []string{
	"internal/platform",
	"internal/faults",
	"internal/population",
	"internal/stats",
	"internal/loadgen",
	"internal/privacy",
	// The chaos schedule is a pure (seed, tick) function and the supervisor's
	// relaunch backoff is Mix64-jittered: both replay in soak logs only if
	// they never touch the wall clock or the global RNG.
	"internal/chaos",
	"internal/supervisor",
}

// globalRandExempt lists the math/rand package-level functions that are the
// sanctioned route to seeded determinism: constructors that the caller feeds
// an explicit source or seed. Everything else at package level draws from
// the process-global, boot-seeded generator.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

// Detrand flags nondeterminism sources in determinism-critical packages:
// wall-clock reads (time.Now, time.Since), draws from the process-global
// math/rand generator, and map iterations whose order leaks into an ordered
// output without a subsequent sort. The injectable-Clock pattern
// (marketing.Clock and friends) is inherently exempt: a clock.Now() call
// resolves to the interface method, never to time.Now.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, global math/rand, and order-dependent map " +
		"iteration in determinism-critical packages",
	Run: runDetrand,
}

func runDetrand(pass *Pass) {
	critical := pass.deterministic
	if !critical {
		for _, suffix := range deterministicPkgSuffixes {
			if pathHasSuffix(pass.Pkg.Path(), suffix) {
				critical = true
				break
			}
		}
	}
	if !critical {
		return
	}
	for _, fd := range funcDecls(pass.Files) {
		scope := scopePos(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkDetrandCall(pass, node, scope)
			case *ast.RangeStmt:
				checkMapRange(pass, fd, node, scope)
			}
			return true
		})
	}
}

// checkDetrandCall flags wall-clock reads and global-RNG draws.
func checkDetrandCall(pass *Pass, call *ast.CallExpr, scope token.Pos) {
	f := calleeOf(pass.TypesInfo, call)
	if f == nil {
		return
	}
	switch pkgPathOf(f) {
	case "time":
		if !isMethod(f) && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until") {
			pass.ReportfScoped(call.Pos(), scope,
				"wall-clock read time.%s in determinism-critical package %s; inject a Clock or derive timing from the seed",
				f.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if !isMethod(f) && !globalRandExempt[f.Name()] {
			pass.ReportfScoped(call.Pos(), scope,
				"global rand.%s draws from the process-wide generator; use a seeded rand.New(rand.NewSource(seed))",
				f.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the iteration order
// escapes into ordered output — an append to a variable declared outside the
// loop, a channel send, or direct printing — unless the enclosing function
// later sorts the accumulated value (the repo's collect-then-sort idiom).
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, scope token.Pos) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			pass.ReportfScoped(node.Pos(), scope,
				"channel send inside map iteration publishes elements in nondeterministic order; collect and sort first")
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.TypesInfo.Uses[id]) {
				// Builtin append: find the accumulated variable.
				if len(node.Args) == 0 {
					return true
				}
				root := rootIdent(node.Args[0])
				if root == nil {
					return true
				}
				obj := objOf(pass.TypesInfo, root)
				if obj == nil || obj.Pos() > rng.Pos() {
					// Declared inside the loop: per-iteration scratch.
					return true
				}
				if sortedInFunc(pass.TypesInfo, fd, obj) {
					return true
				}
				pass.ReportfScoped(node.Pos(), scope,
					"append to %q inside map iteration depends on map order; sort the result afterwards or annotate", root.Name)
				return true
			}
			if f := calleeOf(pass.TypesInfo, node); f != nil && pkgPathOf(f) == "fmt" &&
				(strings.HasPrefix(f.Name(), "Fprint") || strings.HasPrefix(f.Name(), "Print")) {
				pass.ReportfScoped(node.Pos(), scope,
					"fmt.%s inside map iteration emits elements in nondeterministic order; collect and sort first", f.Name())
			}
		}
		return true
	})
}

// isBuiltin reports whether obj is a language builtin (or unresolved, which
// only builtins are after a successful type-check).
func isBuiltin(obj types.Object) bool {
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// sortedInFunc reports whether fd contains a sort.* / slices.Sort* call
// whose arguments mention obj — the collect-then-sort suppression.
func sortedInFunc(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(info, call)
		if f == nil {
			return true
		}
		if p := pkgPathOf(f); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
