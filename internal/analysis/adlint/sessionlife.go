package adlint

// Analyzer sessionlife enforces the day-session protocol's pairing
// invariant: a function that opens a delivery day (BeginDaySession on the
// platform, or BeginDay through the shard client) must pair it with
// FinishDaySession/FinishDay or AbortDaySession/AbortDay on every path to a
// return. This is the PR 6 leak class — a shard stuck in an open day
// rejects the next BeginDay with a session conflict, and the fleet can only
// recover by crash-restarting it.
//
// The check runs the flow engine per begin site with the call graph
// supplying transitive discharge: `return c.scatter(..., finishClosure)`
// counts because the statement reaches FinishDay through the closure. The
// protocol splits responsibility across functions — the coordinator's
// runDayOnce propagates tick errors and its caller Deliver owns the abort —
// so error-propagating returns are excused when every in-package caller of
// the leaking function transitively reaches a finish/abort call. A clean
// (nil-error) return with the session still open, or an error return whose
// callers provably never abort, is reported.
//
// Exemptions: functions named like protocol edges (the Begin*/Finish*/
// Abort* definitions and client wrappers are the pairing vocabulary, not
// users of it), and HTTP handlers (a *http.Request parameter) — the wire
// protocol deliberately spans one session across many requests.

import (
	"go/ast"
	"go/types"
)

// sessionBeginNames are the calls that open a day session.
var sessionBeginNames = map[string]bool{
	"BeginDaySession": true,
	"BeginDay":        true,
}

// sessionEndNames are the calls that discharge one.
var sessionEndNames = map[string]bool{
	"FinishDaySession": true,
	"FinishDay":        true,
	"AbortDaySession":  true,
	"AbortDay":         true,
}

// Sessionlife is the analyzer instance.
var Sessionlife = &Analyzer{
	Name: "sessionlife",
	Doc:  "BeginDaySession must be paired with FinishDaySession or AbortDaySession on every return path",
	Run:  runSessionlife,
}

func runSessionlife(pass *Pass) {
	g := pass.callGraph()
	endPred := func(f *types.Func) bool { return sessionEndNames[f.Name()] }
	for _, fd := range funcDecls(pass.Files) {
		if sessionBeginNames[fd.Name.Name] || sessionEndNames[fd.Name.Name] {
			continue // protocol edge or wrapper: defines the vocabulary
		}
		if paramOfType(pass.TypesInfo, fd, isHTTPRequestPtr) != nil {
			continue // handlers hold sessions across requests by design
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		for _, call := range sessionBeginCalls(pass, fd) {
			acquire := enclosingStmt(fd.Body, call)
			if acquire == nil {
				continue
			}
			ob := &flowOb{
				acquire: acquire,
				errObj:  assignedErr(pass.TypesInfo, acquire),
				releases: func(n ast.Node) bool {
					return g.nodeReaches(pass.TypesInfo, n, endPred)
				},
			}
			seen := map[int]bool{}
			for _, leak := range scanObligation(pass, fd.Body, fd.Type.Results, ob) {
				line := pass.Fset.Position(leak.pos).Line
				if seen[line] {
					continue
				}
				seen[line] = true
				if leak.errReturn && callersDischarge(g, fn, endPred) {
					continue // caller-owned abort: the Deliver/runDayOnce split
				}
				begin := calleeOf(pass.TypesInfo, call)
				name := "BeginDaySession"
				if begin != nil {
					name = begin.Name()
				}
				if leak.errReturn {
					pass.ReportfScoped(leak.pos, scopePos(fd),
						"day session opened by %s leaks on this error return and no caller of %s finishes or aborts it",
						name, fd.Name.Name)
				} else {
					pass.ReportfScoped(leak.pos, scopePos(fd),
						"day session opened by %s reaches this return without FinishDaySession or AbortDaySession",
						name)
				}
			}
		}
	}
}

// sessionBeginCalls finds the direct begin calls in fd, including inside
// function literals (a fan-out closure opens the session on behalf of the
// statement that launches it).
func sessionBeginCalls(pass *Pass, fd *ast.FuncDecl) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeOf(pass.TypesInfo, call); f != nil && sessionBeginNames[f.Name()] {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

// callersDischarge reports whether fn has at least one in-package caller and
// every caller transitively reaches a session finish/abort call on a path
// that does not run through fn itself — the contract that lets a helper
// propagate errors while its owner aborts. Reaching the finish only through
// the leaking helper's own happy path proves nothing about the error path.
func callersDischarge(g *CallGraph, fn *types.Func, endPred func(*types.Func) bool) bool {
	if fn == nil {
		return false
	}
	callers := g.CallersOf(fn)
	if len(callers) == 0 {
		return false
	}
	for _, caller := range callers {
		if !g.reachesSkipping(caller, endPred, fn) && !endPred(caller) {
			return false
		}
	}
	return true
}

// assignedErr returns the error object bound by an acquisition statement
// (the last error-typed left-hand side of the assignment), nil when the
// statement binds none.
func assignedErr(info *types.Info, stmt ast.Stmt) types.Object {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var errObj types.Object
	for _, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := objOf(info, id); obj != nil && isErrorType(obj.Type()) {
			errObj = obj
		}
	}
	return errObj
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && namedIs(p.Elem(), "net/http", "Request")
}
