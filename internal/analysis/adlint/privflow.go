package adlint

// Analyzer privflow structurally enforces DESIGN §5d's merge-then-privatize
// rule in the coordinator: raw per-shard insights responses must flow
// through the merge and then through PrivatizeInsights before any wire
// encoding, and must never be privatized below the merge. Both directions
// matter for measurement validity — an unprivatized merged report leaks the
// exact cells the k-anonymity floor exists to suppress, while privatizing a
// partition slice both over-suppresses (per-shard counts sit below
// thresholds the fleet-wide count clears) and stacks noise draws, so the
// audit numbers stop matching the single-process engine.
//
// The check is a per-function taint walk in source order with three states:
//
//	raw      result of a shard client Insights/InsightsBreakdown call
//	merged   result of an in-package many-to-one merge (a function taking a
//	         slice of insights responses and returning a single one)
//	private  result of PrivatizeInsights, or of an in-package call that
//	         transitively reaches it (the call graph supplies this, which is
//	         how router handlers calling Coordinator.Insights come out clean)
//
// Violations: PrivatizeInsights applied to a raw value (below-the-merge),
// and a raw or merged value reaching a wire sink — writeJSON, json
// Encode/Marshal — or returned from an exported function (insights leaving
// the coordinator's API surface unprivatized).
//
// Scope is the coordinator package only: shards serve raw responses by
// design (the merge refuses pre-privatized parts as a divergence).

import (
	"go/ast"
	"go/types"
)

// Taint states, ordered so a max-join propagates the strongest claim.
const (
	taintNone = iota
	taintRaw
	taintMerged
	taintPrivate
)

// Privflow is the analyzer instance.
var Privflow = &Analyzer{
	Name: "privflow",
	Doc:  "coordinator insights must be merged then privatized exactly once before wire encoding",
	Run:  runPrivflow,
}

func runPrivflow(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/coordinator") {
		return
	}
	g := pass.callGraph()
	for _, fd := range funcDecls(pass.Files) {
		w := &privWalk{pass: pass, g: g, fd: fd, taint: map[types.Object]int{}}
		w.walk()
	}
}

// privWalk carries one function's taint map through a source-order walk.
type privWalk struct {
	pass  *Pass
	g     *CallGraph
	fd    *ast.FuncDecl
	taint map[types.Object]int
	lits  []*ast.FuncLit
}

func (w *privWalk) walk() {
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, x)
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.CallExpr:
			w.checkCall(x)
		case *ast.ReturnStmt:
			w.checkReturn(x)
		}
		return true
	})
}

// inClosure reports whether n sits inside a function literal — a closure's
// returns stay inside the declaring function, so only the declaration's own
// returns are the API surface.
func (w *privWalk) inClosure(n ast.Node) bool {
	for _, lit := range w.lits {
		if lit.Body != nil && lit.Body.Pos() <= n.Pos() && n.End() <= lit.Body.End() {
			return true
		}
	}
	return false
}

// assign updates the taint map. A single multi-value call on the right
// taints every insights-typed name on the left.
func (w *privWalk) assign(assign *ast.AssignStmt) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		t := w.exprTaint(assign.Rhs[0])
		for _, lhs := range assign.Lhs {
			w.setTaint(lhs, t)
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if i < len(assign.Rhs) {
			w.setTaint(lhs, w.exprTaint(assign.Rhs[i]))
		}
	}
}

// setTaint records taint for the root of an assignable expression whose
// static type is an insights response (the error half of `resp, err := …`
// never carries taint). A write through an index or field (out[i] = resp)
// taints the container; an untainted write through one leaves the
// container's taint alone (a partial write does not launder the rest).
func (w *privWalk) setTaint(lhs ast.Expr, t int) {
	if lt := w.pass.TypesInfo.TypeOf(lhs); lt == nil || !isInsightsResponse(lt) {
		return
	}
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := objOf(w.pass.TypesInfo, root)
	if obj == nil {
		return
	}
	if _, direct := ast.Unparen(lhs).(*ast.Ident); !direct && t == taintNone {
		return
	}
	w.taint[obj] = t
}

// exprTaint classifies an expression against the lattice.
func (w *privWalk) exprTaint(e ast.Expr) int {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objOf(w.pass.TypesInfo, x); obj != nil {
			return w.taint[obj]
		}
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
		if root := rootIdent(e); root != nil {
			if obj := objOf(w.pass.TypesInfo, root); obj != nil {
				return w.taint[obj]
			}
		}
	case *ast.UnaryExpr:
		return w.exprTaint(x.X)
	case *ast.CallExpr:
		return w.callTaint(x)
	}
	return taintNone
}

// callTaint classifies a call's result.
func (w *privWalk) callTaint(call *ast.CallExpr) int {
	callee := calleeOf(w.pass.TypesInfo, call)
	if callee == nil {
		return taintNone
	}
	switch {
	case isShardInsightsRead(callee):
		return taintRaw
	case isPrivatizeFn(callee):
		return taintPrivate
	case isMergeFn(w.g, callee):
		return taintMerged
	case w.g.DeclOf(callee) != nil && resultsInsights(callee) && w.g.Reaches(callee, isPrivatizeFn):
		return taintPrivate
	case resultsInsights(callee):
		// A helper shuffling insights around (clone, filter) propagates the
		// strongest taint among its arguments.
		max := taintNone
		for _, arg := range call.Args {
			if t := w.exprTaint(arg); t > max {
				max = t
			}
		}
		return max
	}
	return taintNone
}

// checkCall reports below-the-merge privatization and tainted wire sinks.
func (w *privWalk) checkCall(call *ast.CallExpr) {
	callee := calleeOf(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if isPrivatizeFn(callee) {
		for _, arg := range call.Args {
			if w.exprTaint(arg) == taintRaw {
				w.pass.ReportfScoped(call.Pos(), scopePos(w.fd),
					"PrivatizeInsights applied to a raw per-shard response: privatize only the merged fleet-wide report (DESIGN merge-then-privatize)")
			}
		}
		return
	}
	if !isWireSink(callee) {
		return
	}
	for _, arg := range call.Args {
		switch w.exprTaint(arg) {
		case taintRaw:
			w.pass.ReportfScoped(call.Pos(), scopePos(w.fd),
				"raw per-shard insights reach wire encoding without PrivatizeInsights")
		case taintMerged:
			w.pass.ReportfScoped(call.Pos(), scopePos(w.fd),
				"merged insights reach wire encoding without PrivatizeInsights")
		}
	}
}

// checkReturn reports unprivatized insights leaving an exported function.
func (w *privWalk) checkReturn(ret *ast.ReturnStmt) {
	if !w.fd.Name.IsExported() || w.inClosure(ret) {
		return
	}
	for _, r := range ret.Results {
		switch w.exprTaint(r) {
		case taintRaw:
			w.pass.ReportfScoped(ret.Pos(), scopePos(w.fd),
				"exported %s returns raw per-shard insights: merge and privatize before they leave the coordinator", w.fd.Name.Name)
		case taintMerged:
			w.pass.ReportfScoped(ret.Pos(), scopePos(w.fd),
				"exported %s returns merged insights without PrivatizeInsights", w.fd.Name.Name)
		}
	}
}

// isInsightsResponse matches *InsightsResponse (any package spelling the
// marketing wire type, so fixtures with a stub package behave like the real
// one).
func isInsightsResponse(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "InsightsResponse"
}

// isShardInsightsRead matches the shard client's raw reads.
func isShardInsightsRead(f *types.Func) bool {
	if f.Name() != "Insights" && f.Name() != "InsightsBreakdown" {
		return false
	}
	recv := recvNamed(f)
	return recv != nil && recv.Obj().Name() == "Client"
}

// isPrivatizeFn matches the privacy boundary.
func isPrivatizeFn(f *types.Func) bool {
	return f.Name() == "PrivatizeInsights"
}

// isMergeFn matches an in-package many-to-one merge: a parameter that is a
// slice of insights responses, and an insights response among the results.
func isMergeFn(g *CallGraph, f *types.Func) bool {
	if g.DeclOf(f) == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !resultsInsights(f) {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if s, ok := sig.Params().At(i).Type().(*types.Slice); ok && isInsightsResponse(s.Elem()) {
			return true
		}
	}
	return false
}

// resultsInsights reports whether f returns an insights response.
func resultsInsights(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isInsightsResponse(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isWireSink matches the encoding boundary: the router's writeJSON helper
// and encoding/json's Encode/Marshal.
func isWireSink(f *types.Func) bool {
	if f.Name() == "writeJSON" {
		return true
	}
	return pkgPathOf(f) == "encoding/json" && (f.Name() == "Encode" || f.Name() == "Marshal")
}
