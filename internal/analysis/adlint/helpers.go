package adlint

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// calleeOf resolves a call expression to the *types.Func it invokes:
// package-level functions, methods (through selections), and
// package-qualified references all resolve; builtins, conversions, and
// calls through function-typed variables yield nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Not a selection: a package-qualified identifier (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathOf returns the defining package path of f, "" for nil or builtins.
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// pathHasSuffix reports whether import path p is exactly suffix or ends in
// "/"+suffix — the matching rule that lets analyzer fixtures under
// testdata/src mimic real packages by path shape.
func pathHasSuffix(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// isMethod reports whether f has a receiver.
func isMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// recvNamed returns the named type of f's receiver (unwrapping a pointer),
// or nil for functions and receivers of unnamed type.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// namedIs reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func namedIs(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// returnsError reports whether f's results include an error (anywhere in the
// tuple).
func returnsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exprText renders an expression back to source, for diagnostics.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// rootIdent walks a selector/index chain (s.f.g, x[i].y) down to its
// leftmost identifier, nil when the chain roots in a call or literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// funcDecls yields every function declaration with a body across the pass's
// files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// paramOfType finds the first parameter of fd whose type matches pred,
// returning its object (nil if absent or unnamed/blank).
func paramOfType(info *types.Info, fd *ast.FuncDecl, pred func(types.Type) bool) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if pred(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if id, ok := node.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// constStringOf returns the constant string value of e and whether it is
// constant.
func constStringOf(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// enclosingScope pairs a reported position with its function declaration so
// directives on the func line suppress the whole body.
func scopePos(fd *ast.FuncDecl) token.Pos {
	if fd == nil {
		return token.NoPos
	}
	return fd.Pos()
}
