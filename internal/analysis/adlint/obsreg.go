package adlint

import (
	"go/ast"
	"strings"
)

// Obsreg enforces the metric-naming discipline of the obs registry:
//
//   - Registry.Counter/Gauge/Histogram must be called with a constant name,
//     or with a `CONST + "|" + label` concatenation whose left operand is a
//     constant containing the "|" separator (the repo's name|label
//     convention for per-route series). Fully dynamic names create
//     unbounded metric cardinality and unstable extract schemas;
//   - one constant name must not be registered under two different metric
//     kinds in the same package — Counter("x") and Gauge("x") race to
//     create incompatible series in one registry slot.
var Obsreg = &Analyzer{
	Name: "obsreg",
	Doc:  "require constant metric names (or const|label concatenations) and one kind per name",
	Run:  runObsreg,
}

// obsPkgSuffix marks the metrics registry package.
const obsPkgSuffix = "internal/obs"

// registryMethods are the get-or-create entry points on obs.Registry.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runObsreg(pass *Pass) {
	// kinds: constant metric name -> registered kind -> first position.
	type firstUse struct {
		kind string
		expr string
	}
	kinds := map[string]firstUse{}
	for _, fd := range funcDecls(pass.Files) {
		scope := scopePos(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			f := calleeOf(pass.TypesInfo, call)
			if f == nil || !isMethod(f) || !registryMethods[f.Name()] {
				return true
			}
			recv := recvNamed(f)
			if recv == nil || recv.Obj().Name() != "Registry" || recv.Obj().Pkg() == nil ||
				!pathHasSuffix(recv.Obj().Pkg().Path(), obsPkgSuffix) {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			name, constant := constStringOf(pass.TypesInfo, arg)
			if !constant && !isConstLabelConcat(pass, arg) {
				pass.ReportfScoped(arg.Pos(), scope,
					"dynamic metric name passed to Registry.%s; use a package constant, or a CONST+\"|\"+label concatenation for per-label series",
					f.Name())
				return true
			}
			if constant {
				if prev, seen := kinds[name]; seen && prev.kind != f.Name() {
					pass.ReportfScoped(arg.Pos(), scope,
						"metric %q registered as %s here but as %s elsewhere in this package; one name maps to one kind",
						name, f.Name(), prev.kind)
				} else if !seen {
					kinds[name] = firstUse{kind: f.Name(), expr: exprText(pass.Fset, arg)}
				}
			}
			return true
		})
	}
}

// isConstLabelConcat accepts the repo's per-label naming idiom: a binary `+`
// whose leftmost constant operand contains the "|" separator, e.g.
// MetricRequests + "|" + route or MetricRequests + ".2xx|" + route. The
// constant prefix pins the metric family; only the label part varies.
func isConstLabelConcat(pass *Pass, e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	// Left-associative parse: the leftmost operand chain holds the prefix.
	left := bin.X
	for {
		if inner, ok := ast.Unparen(left).(*ast.BinaryExpr); ok {
			left = inner.X
			continue
		}
		break
	}
	prefix, constant := constStringOf(pass.TypesInfo, ast.Unparen(left))
	if !constant {
		return false
	}
	// The separator may live in the leftmost constant itself or in a later
	// constant segment (MetricRequests + ".2xx|" + route); check the whole
	// constant-foldable prefix of the concatenation.
	if strings.Contains(prefix, "|") {
		return true
	}
	if whole, ok := constStringOf(pass.TypesInfo, bin.X); ok {
		return strings.Contains(whole, "|")
	}
	return false
}
