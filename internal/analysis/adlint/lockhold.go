package adlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockhold flags blocking calls made while a sync.Mutex or sync.RWMutex is
// held: sleeps (time.Sleep and any Sleep method, including injectable
// clocks), file and network I/O, channel operations, and select statements
// without a default. This is the bug class PR 2 fixed by hand in the client
// throttle — reserve under the lock, wait outside it.
//
// The scan is syntactic and statement-ordered within one function body:
// x.Lock() marks x held until a matching x.Unlock() statement; a deferred
// unlock keeps the lock held to the end of the function (which is exactly
// its runtime behavior). Nested function literals are scanned as separate
// scopes, since a closure does not inherit the creating goroutine's critical
// section at its eventual call site.
var Lockhold = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid blocking calls (sleep, I/O, channel waits) while a mutex is held",
	Run:  runLockhold,
}

func runLockhold(pass *Pass) {
	for _, fd := range funcDecls(pass.Files) {
		scanLockScope(pass, fd.Body, scopePos(fd))
	}
}

// scanLockScope walks one function body in source order, tracking held
// locks, and recurses into nested FuncLits with a fresh (empty) lock set.
func scanLockScope(pass *Pass, body *ast.BlockStmt, scope token.Pos) {
	held := map[string]token.Pos{} // mutex expr text -> Lock() position
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			scanLockScope(pass, node.Body, scope)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function, so it does NOT clear the held set. Any other
			// deferred call runs after the body; skip its arguments' scan
			// except nested literals (handled above via Inspect recursion).
			if name, expr, ok := lockCall(pass.TypesInfo, node.Call); ok && (name == "Unlock" || name == "RUnlock") {
				_ = expr
				return false
			}
			return true
		case *ast.SendStmt:
			reportBlocked(pass, held, node.Pos(), scope, "channel send")
			return true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				reportBlocked(pass, held, node.Pos(), scope, "channel receive")
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				reportBlocked(pass, held, node.Pos(), scope, "select without default")
			}
			// The comm expressions are part of the (already reported) select
			// wait; scan only the clause bodies to avoid double counting.
			for _, clause := range node.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range comm.Body {
						ast.Inspect(stmt, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if name, expr, ok := lockCall(pass.TypesInfo, node); ok {
				key := exprText(pass.Fset, expr)
				switch name {
				case "Lock", "RLock":
					held[key] = node.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return true
			}
			if desc := blockingCall(pass.TypesInfo, node); desc != "" {
				reportBlocked(pass, held, node.Pos(), scope, desc)
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// reportBlocked emits one diagnostic per held mutex at a blocking site.
func reportBlocked(pass *Pass, held map[string]token.Pos, pos, scope token.Pos, what string) {
	for mu := range held {
		pass.ReportfScoped(pos, scope,
			"%s while holding %s; release the lock first (reserve under the lock, wait outside it)", what, mu)
	}
}

// lockCall matches mu.Lock/RLock/Unlock/RUnlock where mu is a
// sync.Mutex/RWMutex (possibly behind a pointer), returning the method name
// and the mutex expression.
func lockCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", nil, false
	}
	recv := selection.Recv()
	if namedIs(recv, "sync", "Mutex") || namedIs(recv, "sync", "RWMutex") {
		return name, sel.X, true
	}
	return "", nil, false
}

// blockingCall classifies calls that can block for macroscopic time,
// returning a short description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeOf(info, call)
	if f == nil {
		return ""
	}
	name := f.Name()
	pkg := pkgPathOf(f)
	if isMethod(f) {
		recv := recvNamed(f)
		switch {
		case name == "Sleep":
			// Any Sleep method: time-based waits behind an injectable Clock
			// block exactly like time.Sleep does in production.
			return "Sleep call (" + f.FullName() + ")"
		case name == "Wait" && pkg == "sync":
			return "sync." + recv.Obj().Name() + ".Wait"
		case pkg == "net/http" && recv != nil && recv.Obj().Name() == "Client":
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "HTTP round-trip http.Client." + name
			}
		case pkg == "os" && recv != nil && recv.Obj().Name() == "File":
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Close":
				return "file I/O os.File." + name
			}
		case pkg == "bufio" && name == "Flush":
			return "buffered-writer flush (underlying I/O)"
		}
		return ""
	}
	switch pkg {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir",
			"Remove", "RemoveAll", "Rename", "Truncate", "Stat", "MkdirAll":
			return "file I/O os." + name
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen":
			return "network call net." + name
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head":
			return "HTTP round-trip http." + name
		}
	}
	return ""
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}
