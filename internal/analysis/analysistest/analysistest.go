// Package analysistest runs an adlint analyzer over fixture packages under
// internal/analysis/testdata/src and checks its diagnostics against
// expectations written in the fixtures themselves.
//
// An expectation is a trailing comment of the form
//
//	code() // want "regexp"
//	code() // want "first regexp" "second regexp"
//
// Every diagnostic the analyzer reports must match a want-regexp on its
// line, and every want-regexp must be matched by exactly one diagnostic —
// both unexpected findings and missed findings fail the test. This mirrors
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// stdlib-only adlint loader so the suite needs no external modules.
//
// Fixture packages are named by path relative to testdata/src, e.g.
// "detrand/internal/platform". Because they live under a testdata
// directory, go's ./... wildcard never matches them — they are invisible
// to builds and to cmd/adlint runs over the repo — but naming them
// explicitly loads them as ordinary packages of this module, complete
// with an import path whose suffix (internal/platform, internal/store, …)
// triggers the path-scoped analyzer rules exactly like the real packages.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/analysis/adlint"
)

// fixtureRoot is the location of analyzer fixtures relative to the module
// root.
const fixtureRoot = "internal/analysis/testdata/src"

// Run loads each fixture package, applies the analyzer, and compares its
// diagnostics against the // want expectations in the fixture sources.
func Run(t *testing.T, analyzer *adlint.Analyzer, fixtures ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join(fixtureRoot, fx))
	}
	pkgs, err := adlint.Load(root, patterns)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures %v: %v", fixtures, err)
	}
	diags := adlint.Run(pkgs, []*adlint.Analyzer{analyzer})

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	// Match diagnostics against expectations at the same file:line.
	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", relKey(root, key), w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted regexps after a `want` marker. Regexps are
// plain double-quoted Go strings without embedded escapes beyond \" — the
// fixture convention keeps patterns simple.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every fixture file's comments for want expectations.
func collectWants(pkgs []*adlint.Package) (map[string][]*want, error) {
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
						pat := strings.ReplaceAll(q[1], `\"`, `"`)
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v",
								pos.Filename, pos.Line, pat, err)
						}
						key := posKey(pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

func posKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

func relPath(root, p string) string {
	if r, err := filepath.Rel(root, p); err == nil {
		return r
	}
	return p
}

func relKey(root, key string) string {
	if i := strings.LastIndex(key, ":"); i >= 0 {
		return relPath(root, key[:i]) + key[i:]
	}
	return key
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
