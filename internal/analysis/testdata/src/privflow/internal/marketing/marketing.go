// Package marketing is the privflow fixture's stand-in for the real wire
// types: an insights response, the shard client that serves it raw, and the
// PrivatizeInsights boundary. The analyzer matches these by name and shape,
// so the stub behaves exactly like the real package.
package marketing

// Config mirrors the privacy configuration knob.
type Config struct {
	K int
}

// PrivacyMarker mirrors the applied-privacy stamp on a response.
type PrivacyMarker struct {
	Level string
}

// InsightsResponse is the wire shape privflow tracks.
type InsightsResponse struct {
	AdID        string
	Impressions int
	Privacy     *PrivacyMarker
}

// Client is the per-shard HTTP client; its reads return raw partition
// slices.
type Client struct {
	addr string
}

// Insights returns the shard's raw delivery report.
func (c *Client) Insights(adID string) (*InsightsResponse, error) {
	return &InsightsResponse{AdID: adID}, nil
}

// InsightsBreakdown returns the shard's raw per-dimension report.
func (c *Client) InsightsBreakdown(adID string, dims ...string) (*InsightsResponse, error) {
	return &InsightsResponse{AdID: adID}, nil
}

// PrivatizeInsights applies suppression and noise; privflow treats its
// result as the only insights value allowed to reach the wire.
func PrivatizeInsights(cfg Config, resp *InsightsResponse) *InsightsResponse {
	out := *resp
	out.Privacy = &PrivacyMarker{Level: "k-anon"}
	return &out
}
