// Package coordinator is the privflow fixture: its import-path suffix
// internal/coordinator puts it in scope, and it exercises both directions
// of merge-then-privatize — raw or merged values reaching the wire, and
// privatization applied below the merge — plus the compliant chain as the
// false-positive regression.
package coordinator

import (
	"encoding/json"
	"io"

	m "github.com/adaudit/impliedidentity/internal/analysis/testdata/src/privflow/internal/marketing"
)

// Coordinator fans reads out to the shard fleet.
type Coordinator struct {
	shards []*m.Client
	cfg    m.Config
}

// writeJSON is the router's encoding boundary; privflow treats it as a wire
// sink.
func writeJSON(w io.Writer, code int, v any) {
	_ = code
	_ = json.NewEncoder(w).Encode(v)
}

// Insights is the sanctioned chain (false-positive regression): gather raw
// parts, merge once, privatize the merged report, and only then let it out.
func (c *Coordinator) Insights(adID string) (*m.InsightsResponse, error) {
	out := make([]*m.InsightsResponse, len(c.shards))
	for i, sc := range c.shards {
		resp, err := sc.Insights(adID)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	merged, err := mergeInsights(out)
	if err != nil {
		return nil, err
	}
	return m.PrivatizeInsights(c.cfg, merged), nil
}

// mergeInsights folds partition slices into the fleet-wide report.
func mergeInsights(parts []*m.InsightsResponse) (*m.InsightsResponse, error) {
	total := &m.InsightsResponse{}
	for _, p := range parts {
		total.Impressions += p.Impressions
	}
	return total, nil
}

// HandleInsights writes a response that went through the coordinator's
// privatized path — clean because Insights reaches PrivatizeInsights
// (false-positive regression for the call-graph classification).
func (c *Coordinator) HandleInsights(w io.Writer, adID string) {
	resp, err := c.Insights(adID)
	if err != nil {
		return
	}
	writeJSON(w, 200, resp)
}

// BelowMerge privatizes a partition slice: per-shard counts sit below the
// k-anonymity floor and the noise draws stack at merge time.
func (c *Coordinator) BelowMerge(adID string) error {
	for _, sc := range c.shards {
		raw, err := sc.Insights(adID)
		if err != nil {
			return err
		}
		_ = m.PrivatizeInsights(c.cfg, raw) // want "raw per-shard response"
	}
	return nil
}

// RawToWire serves one shard's slice straight to the encoder.
func (c *Coordinator) RawToWire(w io.Writer, adID string) {
	raw, _ := c.shards[0].Insights(adID)
	writeJSON(w, 200, raw) // want "raw per-shard insights reach wire encoding"
}

// MergedToWire merges but forgets the privacy boundary.
func (c *Coordinator) MergedToWire(w io.Writer, adID string) error {
	parts := make([]*m.InsightsResponse, 0, len(c.shards))
	for _, sc := range c.shards {
		r, err := sc.InsightsBreakdown(adID, "age")
		if err != nil {
			return err
		}
		parts = append(parts, r)
	}
	merged, err := mergeInsights(parts)
	if err != nil {
		return err
	}
	writeJSON(w, 200, merged) // want "merged insights reach wire encoding"
	return nil
}

// Merged leaks the unprivatized fleet report through the exported API
// surface.
func (c *Coordinator) Merged(adID string) (*m.InsightsResponse, error) {
	parts := make([]*m.InsightsResponse, 0, len(c.shards))
	for _, sc := range c.shards {
		r, err := sc.Insights(adID)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	merged, err := mergeInsights(parts)
	if err != nil {
		return nil, err
	}
	return merged, nil // want "returns merged insights without PrivatizeInsights"
}
