// Package caller exercises walerr's cross-package rules: store-API errors
// discarded by clients, and written handles closed without an error check.
package caller

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"github.com/adaudit/impliedidentity/internal/analysis/testdata/src/walerr/internal/store"
)

// Checkpoint discards store-API errors from outside the store package.
func Checkpoint(s *store.Store) {
	_ = s.Snapshot() // want "error from Store.Snapshot discarded"
	defer s.Close()  // want "error from Store.Close discarded"
}

// WriteReport writes through the handle and then drops the close error —
// the last chance to see a buffered write failure.
func WriteReport(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	f.Close() // want "error from f.Close discarded but f was written to"
	return nil
}

// ReadReport closes a read-only handle: the false-positive regression —
// best-effort close of an unwritten file is fine.
func ReadReport(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
