// Package store is a walerr fixture; its import-path suffix marks it as
// the durability subsystem, so discarded write-path errors are flagged and
// its exported error-returning methods are protected API everywhere.
package store

import (
	"bufio"
	"os"
)

// Store is the fixture durability handle.
type Store struct {
	f *os.File
}

// Sync flushes to stable storage.
func (s *Store) Sync() error { return s.f.Sync() }

// Close releases the handle.
func (s *Store) Close() error { return s.f.Close() }

// Snapshot persists a point-in-time copy.
func (s *Store) Snapshot() error { return nil }

// appendRecord discards write-path errors three different ways.
func (s *Store) appendRecord(w *bufio.Writer, rec []byte) {
	_, _ = w.Write(rec) // want "error from w.Write discarded on the persistence path"
	_ = w.Flush()       // want "error from w.Flush discarded on the persistence path"
	defer s.f.Sync()    // want "error from s.f.Sync discarded on the persistence path"
}

// syncDir fsyncs the directory best-effort, mirroring the real WAL; the
// annotation records the decision.
func syncDir(path string) {
	d, err := os.Open(path)
	if err != nil {
		return
	}
	//adlint:allow walerr (directory fsync is best-effort by design)
	_ = d.Sync()
	_ = d.Close()
}
