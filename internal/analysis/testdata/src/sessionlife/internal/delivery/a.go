// Package delivery is a sessionlife fixture: every BeginDaySession /
// BeginDay call must be paired with FinishDaySession/FinishDay or
// AbortDaySession/AbortDay on all paths to a return, with the Deliver/
// runDayOnce split honored — an error-propagating return is fine exactly
// when every caller owns the abort on its own paths.
package delivery

import "net/http"

// Platform stands in for the delivery engine's session protocol surface.
type Platform struct{ open bool }

func (p *Platform) BeginDaySession(day int) error  { p.open = true; return nil }
func (p *Platform) FinishDaySession(day int) error { p.open = false; return nil }
func (p *Platform) AbortDaySession()               { p.open = false }
func (p *Platform) DaySessionTick() error          { return nil }

// RunDayLeaky opens a day and returns success without closing it — the
// exact leak class: the next BeginDaySession will hit a session conflict.
func RunDayLeaky(p *Platform) error {
	if err := p.BeginDaySession(1); err != nil {
		return err
	}
	_ = p.DaySessionTick()
	return nil // want "without FinishDaySession or AbortDaySession"
}

// RunDayClean is the canonical pairing (false-positive regression): abort
// on the tick error path, finish on success.
func RunDayClean(p *Platform) error {
	if err := p.BeginDaySession(2); err != nil {
		return err
	}
	if err := p.DaySessionTick(); err != nil {
		p.AbortDaySession()
		return err
	}
	return p.FinishDaySession(2)
}

// runDayHelper propagates the tick error with the session open. Its only
// caller, drive, never aborts — so the helper's error return is a real
// leak, not a caller-owned one.
func runDayHelper(p *Platform) error {
	if err := p.BeginDaySession(3); err != nil {
		return err
	}
	if err := p.DaySessionTick(); err != nil {
		return err // want "leaks on this error return and no caller of runDayHelper"
	}
	return p.FinishDaySession(3)
}

func drive(p *Platform) { _ = runDayHelper(p) }

// openDay propagates errors with the session open, but every caller (Drive)
// aborts on failure and finishes on success — the coordinator's
// Deliver/runDayOnce split (false-positive regression).
func openDay(p *Platform) error {
	if err := p.BeginDaySession(4); err != nil {
		return err
	}
	return p.DaySessionTick()
}

// Drive owns the pairing for openDay's session.
func Drive(p *Platform) error {
	if err := openDay(p); err != nil {
		p.AbortDaySession()
		return err
	}
	return p.FinishDaySession(4)
}

// with mimics the coordinator's scatter: it runs the closure synchronously.
func with(fn func() error) error { return fn() }

// Scatter opens and closes the session through fan-out closures — the
// literal's calls count for the statement that launches it (false-positive
// regression for the closure-collapse rule).
func Scatter(p *Platform) error {
	err := with(func() error { return p.BeginDaySession(5) })
	if err != nil {
		return err
	}
	return with(func() error { return p.FinishDaySession(5) })
}

// BeginDay is a protocol wrapper: functions named like the protocol edges
// define the pairing vocabulary and are exempt.
func BeginDay(p *Platform, day int) error { return p.BeginDaySession(day) }

// HandleBegin is an HTTP handler: the wire protocol holds one session open
// across many requests by design, so handlers are exempt.
func HandleBegin(w http.ResponseWriter, r *http.Request, p *Platform) {
	_ = p.BeginDaySession(9)
	w.WriteHeader(http.StatusOK)
}
