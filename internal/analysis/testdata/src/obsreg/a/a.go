// Package a exercises obsreg against the real metrics registry.
package a

import "github.com/adaudit/impliedidentity/internal/obs"

const (
	// MetricHits and friends follow the repo's constant-name discipline.
	MetricHits   = "fixture.hits"
	MetricDepth  = "fixture.depth"
	MetricShared = "fixture.shared"
	// MetricRoute carries the name|label separator in the constant prefix.
	MetricRoute = "fixture.route|"
)

// Record uses constant names and the const|label idiom — no diagnostics;
// these are the false-positive regressions for this analyzer.
func Record(r *obs.Registry, route string) {
	r.Counter(MetricHits).Inc()
	r.Gauge(MetricDepth).Set(3)
	r.Counter(MetricRoute + route).Inc()
	r.Counter("fixture.req|" + route).Inc()
	r.Counter(MetricHits + ".2xx|" + route).Inc()
}

// Dynamic builds the whole metric name at run time.
func Dynamic(r *obs.Registry, name string) {
	r.Counter(name).Inc() // want "dynamic metric name passed to Registry.Counter"
}

// Clash registers one name under two different kinds.
func Clash(r *obs.Registry) {
	r.Counter(MetricShared).Inc()
	r.Gauge(MetricShared).Set(1) // want "registered as Gauge here but as Counter elsewhere"
}
