// Package supervisor is a goroleak fixture: its import-path suffix
// internal/supervisor marks it long-lived, so every go statement needs a
// stop path — ctx cancellation, a done/stop channel shared with the
// spawner, or a WaitGroup join.
package supervisor

import (
	"context"
	"sync"
)

// Super stands in for the fleet supervisor.
type Super struct {
	stop chan struct{}
}

// Start is the real supervisor's shape (false-positive regression): the
// loop selects on the stop channel and the context.
func (s *Super) Start(ctx context.Context) {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Leak spins forever with nothing the spawner can pull.
func (s *Super) Leak() {
	go func() { // want "no reachable stop path"
		for {
			work()
		}
	}()
}

// FanOut joins every worker through the WaitGroup (false-positive
// regression).
func FanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// StartLoop's goroutine is a named in-package method; the stop check lives
// in its body, found transitively (false-positive regression).
func (s *Super) StartLoop(ctx context.Context) {
	go s.loop(ctx)
}

func (s *Super) loop(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// Reaper signals completion by closing a channel declared outside the
// goroutine — the cmd.Wait reaper idiom (false-positive regression).
func Reaper(wait func() error) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		_ = wait()
		close(done)
	}()
	return done
}

// Result joins through a send on the spawner's channel (false-positive
// regression).
func Result(release chan<- error) {
	go func() {
		release <- work2()
	}()
}

// Spawn launches an opaque function value: the analyzer cannot see a body,
// so deliberate fire-and-forget must be annotated.
func Spawn(fn func()) {
	go fn() // want "cannot resolve the goroutine's body"
}

// SelfChannel only touches a channel it made for itself — no one outside
// can stop it.
func SelfChannel() {
	go func() { // want "no reachable stop path"
		ch := make(chan int, 1)
		for {
			ch <- 1
			<-ch
		}
	}()
}

func work()        {}
func work2() error { return nil }
