// Package marketing is a ctxflow fixture; its import-path suffix applies
// the dropped-context rule to exported functions and methods.
package marketing

import (
	"context"
	"net/http"
)

// Client is the fixture API surface.
type Client struct{}

// Fetch drops its context entirely.
func (c *Client) Fetch(ctx context.Context, id string) error { // want "accepts a context.Context .ctx. but never uses it"
	_ = id
	return nil
}

// Deadline has a context but derives from Background instead.
func Deadline(ctx context.Context) error {
	sub, cancel := context.WithTimeout(context.Background(), 0) // want "context.Background severs the cancellation chain; derive from the ctx parameter"
	defer cancel()
	_ = sub
	return ctx.Err()
}

// Handle builds a fresh context instead of using the request's.
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want "context.TODO severs the cancellation chain; derive from the request's r.Context"
	_ = ctx
}

// Propagate forwards its context: the compliant shape and the
// false-positive regression for this analyzer.
func Propagate(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	return sub.Err()
}

// helper is unexported: the dropped-context rule covers only the exported
// API surface.
func helper(ctx context.Context) int {
	return 0
}

// Detach intentionally severs the chain: the audit task outlives the
// request, and the annotation records that decision.
func Detach(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() //adlint:allow ctxflow (audit task outlives the request)
}
