// Package optin opts into determinism checking with the file-level
// directive; it also proves the injectable-Clock pattern is inherently
// exempt (a method named Now never resolves to time.Now).
//
//adlint:deterministic
package optin

import "time"

// Clock abstracts time for injection, mirroring marketing.Clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Stamp reads through the injected clock: no diagnostic.
func Stamp(c Clock) time.Time {
	return c.Now()
}

// Bare reads the wall clock directly in an opted-in package.
func Bare() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}
