// Package clocked is the false-positive regression for detrand: it is not
// determinism-critical (no path-suffix match, no directive), so wall-clock
// reads and global rand draws here must produce no diagnostics.
package clocked

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock in a non-critical package: allowed.
func Stamp() time.Time { return time.Now() }

// Roll draws from the global generator in a non-critical package: allowed.
func Roll() int { return rand.Intn(6) }
