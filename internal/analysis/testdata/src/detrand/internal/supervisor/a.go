// Package supervisor is a detrand fixture: its import-path suffix
// internal/supervisor is on the built-in determinism-critical list — the
// relaunch backoff must be Mix64-jittered from seeded state, never from the
// clock or the global RNG — with no file-level opt-in needed.
package supervisor

import (
	"math/rand"
	"time"
)

// JitterFromClock seeds the relaunch backoff from wall time, so two
// identically-seeded soaks diverge at the first restart.
func JitterFromClock() time.Duration {
	return time.Duration(time.Now().UnixNano() % 1e6) // want "wall-clock read time.Now"
}

// GlobalJitter draws backoff jitter from the process-global generator.
func GlobalJitter(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base/4))) // want "global rand.Int63n"
}

// SeededJitter is the sanctioned shape: jitter from an explicit seeded
// source, pure in (seed, attempt).
func SeededJitter(seed int64, attempt int, base time.Duration) time.Duration {
	rng := rand.New(rand.NewSource(seed ^ int64(attempt)))
	return base + time.Duration(rng.Int63n(int64(base/4)))
}
