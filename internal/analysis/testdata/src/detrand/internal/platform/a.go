// Package platform is a detrand fixture: its import-path suffix
// internal/platform marks it determinism-critical.
package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Tick draws from the wall clock and the global generator.
func Tick() time.Duration {
	start := time.Now() // want "wall-clock read time.Now"
	n := rand.Intn(10)  // want "global rand.Intn"
	_ = n
	return time.Since(start) // want "wall-clock read time.Since"
}

// Seeded uses the sanctioned constructor route: rand.New and rand.NewSource
// are exempt because the caller supplies the seed.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Leak appends map keys in iteration order without sorting.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" inside map iteration"
	}
	return out
}

// CollectSort is the repo idiom: collect in map order, then sort.
func CollectSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Print emits elements in map order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

// Send publishes elements in map order.
func Send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

// Scratch appends to a loop-local slice: per-iteration scratch, not ordered
// output.
func Scratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// Allowed demonstrates the escape hatch for a justified wall-clock read.
func Allowed() time.Time {
	//adlint:allow detrand (boot banner only, not part of the replayed path)
	return time.Now()
}
