// Package privacy is a detrand fixture: its import-path suffix
// internal/privacy marks it determinism-critical — the noise stream must be
// a pure function of seed and cell key, so wall-clock reads, global RNG
// draws, and order-dependent map iteration are all forbidden.
package privacy

import (
	"math/rand"
	"sort"
	"time"
)

// SeedFromClock would make every privatized response different: the same
// query would stop replaying byte-identically across router and shard.
func SeedFromClock() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// GlobalNoise draws from the process-global generator instead of the seeded
// (seed, cellKey) stream.
func GlobalNoise() int {
	return rand.Intn(7) - 3 // want "global rand.Intn"
}

// SuppressLeak releases cell keys in map-iteration order without sorting,
// so two identically-configured servers could disagree on the complementary
// suppression victim.
func SuppressLeak(cells map[string]int, k int) []string {
	var kept []string
	for key, n := range cells {
		if n >= k {
			kept = append(kept, key) // want "append to \"kept\" inside map iteration"
		}
	}
	return kept
}

// SuppressSorted is the sanctioned shape: collect in map order, then sort
// before any tie-break decision.
func SuppressSorted(cells map[string]int, k int) []string {
	var kept []string
	for key, n := range cells {
		if n >= k {
			kept = append(kept, key)
		}
	}
	sort.Strings(kept)
	return kept
}

// SeededNoise is the sanctioned constructor route for auxiliary randomness.
func SeededNoise(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(7) - 3
}
