// Package chaos is a detrand fixture: its import-path suffix internal/chaos
// is on the built-in determinism-critical list — the chaos schedule must be
// a pure function of (seed, tick) so a soak log replays bit-identically —
// with no file-level //adlint:deterministic opt-in needed.
package chaos

import (
	"math/rand"
	"time"
)

// TickFromClock would tie the fault schedule to wall time: the same seed
// would disturb different requests on every run.
func TickFromClock() int64 {
	return time.Now().Unix() // want "wall-clock read time.Now"
}

// PickVictim draws the kill target from the process-global generator
// instead of the seeded schedule.
func PickVictim(n int) int {
	return rand.Intn(n) // want "global rand.Intn"
}

// ScheduledVictim is the sanctioned shape: the decision is a pure function
// of the seeded stream.
func ScheduledVictim(seed int64, tick, n int) int {
	rng := rand.New(rand.NewSource(seed + int64(tick)))
	return rng.Intn(n)
}
