// Package a is a bodyclose fixture: every *http.Response acquired from a
// call must have its Body closed on all paths, discharged by a Close call
// (deferred ones cover every later exit) or by handing the whole response
// to someone else. Passing resp.Body to a reader is not a discharge.
package a

import (
	"io"
	"net/http"
)

// Leaky returns the status with the body still open.
func Leaky(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil // want "response body of resp .* is not closed"
}

// ReadNoClose hands resp.Body to a reader — readers do not close, so the
// body still leaks.
func ReadNoClose(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body) // want "response body of resp .* is not closed"
}

// Deferred is the canonical shape (false-positive regression): the deferred
// Close covers the early error return and the success return alike.
func Deferred(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// SuccessGuard is the probe-loop idiom (false-positive regression): the
// `err == nil` branch is the only path holding a body, and it closes before
// inspecting the status.
func SuccessGuard(c *http.Client, url string) bool {
	for i := 0; i < 3; i++ {
		resp, err := c.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
	}
	return false
}

// Escape returns the response whole: the caller owns the close
// (false-positive regression).
func Escape(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// InClosure leaks inside a goroutine body: each function literal is its own
// scan unit, and this one falls off its end with the body open.
func InClosure(c *http.Client, url string, out chan<- int) {
	go func() {
		resp, err := c.Get(url)
		if err != nil {
			out <- 0
			return
		}
		out <- resp.StatusCode
	}() // want "response body of resp .* is not closed"
}
