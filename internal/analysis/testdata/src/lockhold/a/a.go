// Package a exercises lockhold: blocking calls under a held mutex.
package a

import (
	"os"
	"sync"
	"time"
)

// Clock mirrors the injectable clock; its Sleep blocks exactly like
// time.Sleep does in production.
type Clock interface {
	Sleep(d time.Duration)
}

type widget struct {
	mu sync.Mutex
	n  int
}

// SleepUnderLock blocks while holding mu.
func (w *widget) SleepUnderLock() {
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding w.mu"
	w.mu.Unlock()
}

// DeferredHold keeps mu held through the I/O via the deferred unlock.
func (w *widget) DeferredHold(path string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := os.Open(path) // want "file I/O os.Open while holding w.mu"
	return err
}

// ChannelOps block while holding mu.
func (w *widget) ChannelOps(ch chan int) {
	w.mu.Lock()
	ch <- 1 // want "channel send while holding w.mu"
	<-ch    // want "channel receive while holding w.mu"
	w.mu.Unlock()
}

// SelectWait blocks in a select without a default clause.
func (w *widget) SelectWait(ch chan int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select { // want "select without default while holding w.mu"
	case v := <-ch:
		w.n = v
	}
}

// SelectPoll is non-blocking: a select with default never parks.
func (w *widget) SelectPoll(ch chan int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case v := <-ch:
		w.n = v
	default:
	}
}

// Throttle is the PR 2 pattern and the false-positive regression for this
// analyzer: reserve under the lock, release, then wait outside it.
func (w *widget) Throttle(c Clock) {
	w.mu.Lock()
	wait := time.Duration(w.n)
	w.mu.Unlock()
	c.Sleep(wait)
}

// ClockUnderLock is the shape Throttle exists to avoid: an injected clock's
// Sleep is just as blocking as time.Sleep.
func (w *widget) ClockUnderLock(c Clock) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c.Sleep(time.Millisecond) // want "Sleep call"
}

// Spawn's function literal runs on its own goroutine: it does not hold the
// creating goroutine's lock, so its channel receive is clean.
func (w *widget) Spawn(ch chan int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		<-ch
	}()
}

// Flush deliberately syncs under the lock: the group-commit design.
//
//adlint:allow lockhold (group commit: the single writer flushes under the latch)
func (w *widget) Flush(f *os.File) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return f.Sync()
}
