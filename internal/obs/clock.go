package obs

import "time"

// Clock abstracts wall time so that packages under the determinism lint
// (the delivery engine in particular) can be instrumented without calling
// time.Now directly: the clock arrives by injection, tests can substitute a
// fake, and timing stays observational — it never feeds back into seeded
// computation.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type systemClock struct{}

func (systemClock) Now() time.Time        { return time.Now() }
func (systemClock) Sleep(d time.Duration) { time.Sleep(d) }

// SystemClock is the real wall clock.
var SystemClock Clock = systemClock{}
