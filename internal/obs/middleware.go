package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// Metric names used by the HTTP middleware. Endpoint-scoped metrics append
// "|" + route (e.g. "http.requests|POST /v1/ads") so the flat registry
// namespace stays parseable.
const (
	MetricRequests = "http.requests"
	MetricLatency  = "http.latency"
	MetricInFlight = "http.in_flight"
	// MetricPanicsRecovered counts handler panics converted to 500s by
	// Recover.
	MetricPanicsRecovered = "http.panics_recovered"
	// MetricRequestsShed counts requests rejected with 429 by LoadShed.
	MetricRequestsShed = "http.requests_shed"
	// MetricRequestTimeouts counts requests cut off with 503 by Timeout.
	MetricRequestTimeouts = "http.request_timeouts"
)

// statusRecorder captures the response status for the status-class counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code as "2xx", "4xx", etc.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Instrument wraps a handler with per-endpoint request accounting: total
// requests, status-class counts, latency histogram, and the shared in-flight
// gauge. route is the stable endpoint label (the mux pattern); it is passed
// explicitly so the middleware works on any Go version and any router.
func Instrument(reg *Registry, route string, next http.Handler) http.Handler {
	requests := reg.Counter(MetricRequests + "|" + route)
	latency := reg.Histogram(MetricLatency + "|" + route)
	inFlight := reg.Gauge(MetricInFlight)
	total := reg.Counter(MetricRequests)
	classes := [4]*Counter{
		reg.Counter(MetricRequests + ".2xx|" + route),
		reg.Counter(MetricRequests + ".3xx|" + route),
		reg.Counter(MetricRequests + ".4xx|" + route),
		reg.Counter(MetricRequests + ".5xx|" + route),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w}
		// Accounting runs in a defer so a panicking handler (including the
		// deliberate http.ErrAbortHandler connection abort) cannot leak the
		// in-flight gauge or lose the request count.
		defer func() {
			inFlight.Dec()
			requests.Inc()
			total.Inc()
			latency.Observe(time.Since(start))
			switch statusClass(rec.status) {
			case "2xx":
				classes[0].Inc()
			case "3xx":
				classes[1].Inc()
			case "4xx":
				classes[2].Inc()
			case "5xx":
				classes[3].Inc()
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// Recover converts handler panics into 500 responses and counts them,
// instead of letting net/http kill the connection. http.ErrAbortHandler is
// re-panicked: it is the sanctioned way to abort a response and callers
// (like the fault injector's connection drop) rely on it reaching the
// server loop.
func Recover(reg *Registry, next http.Handler) http.Handler {
	panics := reg.Counter(MetricPanicsRecovered)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			panics.Inc()
			// Only answer if the handler had not started the response;
			// otherwise the wire is already corrupt and closing it is all
			// that is left.
			if rec.status == 0 {
				http.Error(rec, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// LoadShed rejects requests with 429 once more than maxInFlight are already
// being served, bounding queueing collapse under overload: shedding early
// keeps latency flat for the requests that are admitted. A Retry-After: 0
// header marks the rejection as immediately retryable (at the client's own
// backoff). maxInFlight <= 0 disables shedding.
func LoadShed(reg *Registry, maxInFlight int, next http.Handler) http.Handler {
	if maxInFlight <= 0 {
		return next
	}
	shed := reg.Counter(MetricRequestsShed)
	var inFlight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := inFlight.Add(1); n > int64(maxInFlight) {
			inFlight.Add(-1)
			shed.Inc()
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"obs: server over capacity, request shed"}`))
			return
		}
		defer inFlight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// BodyLimit caps the readable request body at maxBytes via
// http.MaxBytesReader: a handler reading past the cap gets a
// *http.MaxBytesError, which JSON decoders surface so the endpoint can
// answer 413. maxBytes <= 0 disables the cap.
func BodyLimit(maxBytes int64, next http.Handler) http.Handler {
	if maxBytes <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// Timeout caps a request's wall time at d: past the deadline the client
// gets a 503 (counted in MetricRequestTimeouts) while the handler finishes
// against a buffered, disconnected writer. Built on http.TimeoutHandler; the
// body is the marketing API's JSON error envelope. d <= 0 disables the cap.
func Timeout(reg *Registry, d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	timeouts := reg.Counter(MetricRequestTimeouts)
	inner := http.TimeoutHandler(next, d, `{"error":"obs: request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		inner.ServeHTTP(rec, r)
		if rec.status == http.StatusServiceUnavailable {
			timeouts.Inc()
		}
	})
}

// MetricsHandler serves the registry snapshot as JSON (the GET /metrics
// endpoint).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// HealthzHandler serves a liveness check with the registry's uptime.
func HealthzHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(HealthResponse{
			Status:        "ok",
			UptimeSeconds: time.Since(reg.start).Seconds(),
		})
	})
}
