package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// Metric names used by the HTTP middleware. Endpoint-scoped metrics append
// "|" + route (e.g. "http.requests|POST /v1/ads") so the flat registry
// namespace stays parseable.
const (
	MetricRequests = "http.requests"
	MetricLatency  = "http.latency"
	MetricInFlight = "http.in_flight"
)

// statusRecorder captures the response status for the status-class counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code as "2xx", "4xx", etc.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Instrument wraps a handler with per-endpoint request accounting: total
// requests, status-class counts, latency histogram, and the shared in-flight
// gauge. route is the stable endpoint label (the mux pattern); it is passed
// explicitly so the middleware works on any Go version and any router.
func Instrument(reg *Registry, route string, next http.Handler) http.Handler {
	requests := reg.Counter(MetricRequests + "|" + route)
	latency := reg.Histogram(MetricLatency + "|" + route)
	inFlight := reg.Gauge(MetricInFlight)
	total := reg.Counter(MetricRequests)
	classes := [4]*Counter{
		reg.Counter(MetricRequests + ".2xx|" + route),
		reg.Counter(MetricRequests + ".3xx|" + route),
		reg.Counter(MetricRequests + ".4xx|" + route),
		reg.Counter(MetricRequests + ".5xx|" + route),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		inFlight.Dec()
		requests.Inc()
		total.Inc()
		latency.Observe(time.Since(start))
		switch statusClass(rec.status) {
		case "2xx":
			classes[0].Inc()
		case "3xx":
			classes[1].Inc()
		case "4xx":
			classes[2].Inc()
		case "5xx":
			classes[3].Inc()
		}
	})
}

// MetricsHandler serves the registry snapshot as JSON (the GET /metrics
// endpoint).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// HealthzHandler serves a liveness check with the registry's uptime.
func HealthzHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(HealthResponse{
			Status:        "ok",
			UptimeSeconds: time.Since(reg.start).Seconds(),
		})
	})
}
