package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1..1000 ms uniformly: p50≈500ms, p99≈990ms, max=1000ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Second {
		t.Errorf("max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	// Bucketed estimate: the true value is 500ms; accept the bucket's range.
	if p50 < 200*time.Millisecond || p50 > 900*time.Millisecond {
		t.Errorf("p50 = %v, want ≈500ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 800*time.Millisecond || p99 > time.Second {
		t.Errorf("p99 = %v, want ≈990ms", p99)
	}
	if q := h.Quantile(1); q != time.Second {
		t.Errorf("q=1 → %v, want max", q)
	}
	mean := h.Mean()
	if mean < 490*time.Millisecond || mean > 511*time.Millisecond {
		t.Errorf("mean = %v, want ≈500.5ms", mean)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 || snap.MaxMs != 1000 {
		t.Errorf("snapshot: %+v", snap)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(2 * time.Hour) // beyond the last bucket bound
	if got := h.Quantile(0.5); got != 2*time.Hour {
		t.Errorf("overflow quantile = %v, want 2h", got)
	}
	h.Observe(-time.Second) // clamped to 0
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
				r.Counter(fmt.Sprintf("own-%d", i)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 16*200 {
		t.Errorf("shared counter = %d, want %d", got, 16*200)
	}
	if got := r.Histogram("h").Count(); got != 16*200 {
		t.Errorf("histogram count = %d, want %d", got, 16*200)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 17 { // "shared" plus 16 "own-i"
		t.Errorf("counters in snapshot: %d, want 17", len(snap.Counters))
	}
	if snap.String() == "" {
		t.Error("snapshot string should not be empty")
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	reg := NewRegistry()
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	})
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	mux := http.NewServeMux()
	mux.Handle("/ok", Instrument(reg, "GET /ok", ok))
	mux.Handle("/bad", Instrument(reg, "GET /bad", bad))
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthzHandler(reg))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/bad")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := reg.Counter(MetricRequests + "|GET /ok").Value(); got != 3 {
		t.Errorf("GET /ok requests = %d, want 3", got)
	}
	if got := reg.Counter(MetricRequests + ".2xx|GET /ok").Value(); got != 3 {
		t.Errorf("GET /ok 2xx = %d, want 3", got)
	}
	if got := reg.Counter(MetricRequests + ".4xx|GET /bad").Value(); got != 1 {
		t.Errorf("GET /bad 4xx = %d, want 1", got)
	}
	if got := reg.Counter(MetricRequests).Value(); got != 4 {
		t.Errorf("total requests = %d, want 4", got)
	}
	if got := reg.Gauge(MetricInFlight).Value(); got != 0 {
		t.Errorf("in-flight after all done = %d, want 0", got)
	}
	if got := reg.Histogram(MetricLatency + "|GET /ok").Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MetricRequests+"|GET /ok"] != 3 {
		t.Errorf("metrics endpoint counters: %+v", snap.Counters)
	}
	if snap.Histograms[MetricLatency+"|GET /ok"].Count != 3 {
		t.Errorf("metrics endpoint histograms: %+v", snap.Histograms)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.UptimeSeconds < 0 {
		t.Errorf("healthz: %+v", health)
	}
}
