// Package obs is the serving-observability core: dependency-free counters,
// gauges, and fixed-bucket latency histograms collected in a named registry,
// plus net/http middleware that instruments a handler per endpoint. Both the
// marketing API server (server-side request metrics) and the load generator
// (client-side operation latencies) record into the same primitives, so the
// two sides of a load test report comparable numbers.
//
// All metric types are safe for concurrent use and allocation-free on the
// hot path: counters and gauges are single atomics, histograms are a fixed
// array of atomic bucket counts. Registration (name → metric) takes a lock
// only on first use of a name.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: exponential bounds from 50µs doubling up to
// ~26 minutes, plus an overflow bucket. 26 doublings keep the relative
// quantile error under a factor of 2 anywhere in the range, which is enough
// to rank p50/p90/p99 across PRs; the exact max is tracked separately.
const (
	histBuckets   = 26
	histBaseNanos = 50_000 // 50µs lower bound of the first bucket's upper edge
)

// bucketBound returns the upper bound (in nanoseconds) of bucket i.
func bucketBound(i int) int64 {
	return histBaseNanos << uint(i)
}

// Histogram is a fixed-bucket latency histogram with streaming count, sum,
// and max. Quantiles are estimated by log-interpolation inside the bucket
// that crosses the requested rank.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	idx := histBuckets // overflow
	for i := 0; i < histBuckets; i++ {
		if ns <= bucketBound(i) {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observation (0 if empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts.
// Within the crossing bucket the estimate log-interpolates between the
// bucket's bounds; the overflow bucket reports the tracked max.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == histBuckets {
				return time.Duration(h.max.Load())
			}
			hi := float64(bucketBound(i))
			lo := hi / 2
			if i == 0 {
				lo = 0
			}
			frac := float64(rank-cum) / float64(n)
			est := lo + frac*(hi-lo)
			if m := float64(h.max.Load()); est > m {
				est = m
			}
			return time.Duration(est)
		}
		cum += n
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is the JSON form of a histogram's summary statistics.
// Latencies are reported in milliseconds, the unit the BENCH_*.json
// trajectory records.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// ms converts a duration to float milliseconds rounded to 3 decimals.
func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
		MeanMs: ms(h.Mean()),
	}
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	start      time.Time
}

// NewRegistry returns an empty registry with the uptime clock started.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		start:      time.Now(),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// String renders the snapshot as sorted "name value" lines, for logs.
func (s Snapshot) String() string {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %-48s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-48s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("latency %-48s n=%d p50=%.3fms p99=%.3fms max=%.3fms",
			name, h.Count, h.P50Ms, h.P99Ms, h.MaxMs))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
