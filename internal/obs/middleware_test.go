package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecoverPanickingHandler is the regression net for the serving path's
// panic hygiene: a panicking handler must come back as a 500, be counted,
// and leave the in-flight gauge at zero.
func TestRecoverPanickingHandler(t *testing.T) {
	reg := NewRegistry()
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	ts := httptest.NewServer(Instrument(reg, "GET /boom", Recover(reg, boom)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "internal server error") {
		t.Errorf("body %q", body)
	}
	if got := reg.Counter(MetricPanicsRecovered).Value(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if got := reg.Counter(MetricRequests + ".5xx|GET /boom").Value(); got != 1 {
		t.Errorf("5xx counted %d, want 1", got)
	}
	if got := reg.Gauge(MetricInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge %d after panic, want 0", got)
	}
}

// TestInstrumentSurvivesUnrecoveredPanic drives a panic PAST Recover (no
// Recover in the chain): the connection dies, but the instrumented
// accounting must still balance thanks to deferred bookkeeping.
func TestInstrumentSurvivesUnrecoveredPanic(t *testing.T) {
	reg := NewRegistry()
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // net/http swallows this one silently
	})
	ts := httptest.NewServer(Instrument(reg, "GET /boom", boom))
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/boom"); err == nil {
		t.Error("aborted connection should surface a transport error")
	}
	if got := reg.Gauge(MetricInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge %d after abort, want 0", got)
	}
	if got := reg.Counter(MetricRequests + "|GET /boom").Value(); got != 1 {
		t.Errorf("requests counted %d, want 1", got)
	}
}

// TestRecoverRepanicsAbortHandler checks the one panic Recover must NOT eat:
// http.ErrAbortHandler is how a handler (or the fault injector) kills a
// connection on purpose.
func TestRecoverRepanicsAbortHandler(t *testing.T) {
	reg := NewRegistry()
	abort := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	h := Recover(reg, abort)
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Errorf("recovered %v, want http.ErrAbortHandler", v)
		}
		if got := reg.Counter(MetricPanicsRecovered).Value(); got != 0 {
			t.Errorf("abort counted as recovered panic: %d", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	t.Fatal("ErrAbortHandler should have propagated")
}

func TestLoadShedOverCap(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	const cap = 2
	ts := httptest.NewServer(LoadShed(reg, cap, slow))
	defer ts.Close()

	// Fill the cap with requests parked inside the handler.
	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < cap; i++ {
		<-started
	}
	// The next request must be shed immediately.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if !strings.Contains(string(body), "shed") {
		t.Errorf("shed body %q", body)
	}
	if got := reg.Counter(MetricRequestsShed).Value(); got != 1 {
		t.Errorf("requests_shed = %d, want 1", got)
	}
	close(release)
	wg.Wait()

	// With capacity free again, requests are admitted.
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-drain status %d, want 200", resp2.StatusCode)
	}
}

func TestTimeoutMiddleware(t *testing.T) {
	reg := NewRegistry()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(Timeout(reg, 10*time.Millisecond, slow))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("timeout body %q", body)
	}
	if got := reg.Counter(MetricRequestTimeouts).Value(); got != 1 {
		t.Errorf("request_timeouts = %d, want 1", got)
	}

	// Fast handlers pass untouched.
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ts2 := httptest.NewServer(Timeout(reg, time.Second, fast))
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("fast handler status %d", resp2.StatusCode)
	}
}
