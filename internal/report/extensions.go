package report

import (
	"fmt"
	"strings"

	"github.com/adaudit/impliedidentity/internal/core"
)

// Objectives renders the E13 comparison.
func Objectives(res *core.ObjectiveComparisonResult) string {
	var b strings.Builder
	b.WriteString("E13 — race skew by delivery objective (the paper ran Traffic only)\n")
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "objective", "race gap", "impressions")
	for _, g := range res.Gaps {
		fmt.Fprintf(&b, "%-12s %+10.1fpp %14d  %s\n", g.Objective, 100*g.RaceGap, g.Impressions, bar(g.RaceGap, 0, 0.3, 16))
	}
	b.WriteString("Awareness ignores the action-rate model, so its skew collapses;\n")
	b.WriteString("the optimized objectives reproduce the congruent race skew.\n")
	return b.String()
}

// GroupPhotos renders the E14 result.
func GroupPhotos(res *core.GroupPhotoResult) string {
	var b strings.Builder
	b.WriteString("E14 — single-person images vs a two-person diverse group photo (§7 future work)\n")
	rows := []struct {
		label string
		d     *core.Delivery
	}{
		{"white man only", &res.WhiteOnly},
		{"diverse pair", &res.DiversePair},
		{"Black man only", &res.BlackOnly},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %5.1f%% Black delivery %s (%d impressions)\n",
			r.label, 100*r.d.FracBlack, bar(r.d.FracBlack, 0.2, 0.9, 20), r.d.Impressions)
	}
	below, above := res.Spread()
	fmt.Fprintf(&b, "the group photo sits between the extremes (Δbelow=%.1fpp, Δabove=%.1fpp)\n",
		100*below, 100*above)
	return b.String()
}

// Lookalike renders the E15 result.
func Lookalike(res *core.LookalikeResult) string {
	var b strings.Builder
	b.WriteString("E15 — lookalike expansion from a Black-voter seed, demographic features excluded\n")
	fmt.Fprintf(&b, "  seed audience:      %6d accounts, %5.1f%% Black\n", res.SeedSize, 100*res.SeedFracBlack)
	fmt.Fprintf(&b, "  lookalike expansion:%6d accounts, %5.1f%% Black %s\n",
		res.Expansion.Size, 100*res.Expansion.FracBlack, bar(res.Expansion.FracBlack, 0, 1, 20))
	fmt.Fprintf(&b, "  random baseline:    %6d accounts, %5.1f%% Black %s\n",
		res.BaselineRandom.Size, 100*res.BaselineRandom.FracBlack, bar(res.BaselineRandom.FracBlack, 0, 1, 20))
	fmt.Fprintf(&b, "  lift over baseline: %+.1f points — ZIP segregation proxies race even when\n", res.Lift())
	b.WriteString("  the expansion model never sees a demographic feature (cf. the paper's ref [58]).\n")
	return b.String()
}

// FeedbackLoop renders the E16 result.
func FeedbackLoop(res *core.FeedbackLoopResult) string {
	var b strings.Builder
	b.WriteString("E16 — skew under the engagement feedback loop (retrain on served impressions)\n")
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "round", "Black coef", "served buffer")
	for _, r := range res.Rounds {
		fmt.Fprintf(&b, "%-8d %12.4f %14d  %s\n", r.Round, r.BlackCoef, r.ServedLog, bar(r.BlackCoef, 0, 0.4, 16))
	}
	b.WriteString("the congruent race skew persists when the model is trained on its own traffic\n")
	return b.String()
}

// Checklist renders the automated shape-verification results.
func Checklist(checks []core.Check) string {
	var b strings.Builder
	b.WriteString("Shape verification — the paper's headline findings, checked programmatically\n")
	pass := 0
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "pass"
			pass++
		}
		fmt.Fprintf(&b, "  [%s] %-4s %s\n         %s\n", mark, c.ID, c.Description, c.Detail)
	}
	fmt.Fprintf(&b, "%d/%d checks passed\n", pass, len(checks))
	return b.String()
}
