package report

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/stats"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func TestBar(t *testing.T) {
	if got := bar(0.5, 0, 1, 10); strings.Count(got, "█") != 5 {
		t.Errorf("bar(0.5) = %q", got)
	}
	if got := bar(-1, 0, 1, 10); strings.Count(got, "█") != 0 {
		t.Errorf("bar clamps low: %q", got)
	}
	if got := bar(2, 0, 1, 10); strings.Count(got, "█") != 10 {
		t.Errorf("bar clamps high: %q", got)
	}
	if got := bar(math.NaN(), 0, 1, 10); strings.Count(got, "█") != 0 {
		t.Errorf("bar(NaN) = %q", got)
	}
	if got := bar(0.5, 0, 1, 0); len([]rune(got)) != 20 {
		t.Errorf("default width: %q", got)
	}
}

func TestTable1Format(t *testing.T) {
	rows := []voter.Table1Row{
		{Age: demo.Age18to24, GroupSize: 100, Total: 400},
		{Age: demo.Age65Plus, GroupSize: 200, Total: 800},
	}
	out := Table1(rows)
	for _, want := range []string{"Table 1", "18-24", "65+", "44968", "78719", "400", "800"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Format(t *testing.T) {
	rows := []core.Table2Row{
		{Campaign: "Campaign 1", Ads: 200, Images: "Stock", Reach: 1000, Impressions: 2000, SpendDollars: 4.2, Section: "§5.2"},
		{Campaign: "Campaign 2", Ads: 200, AgeLimit: true, Images: "Stock", Section: "§5.3"},
	}
	out := Table2(rows)
	if !strings.Contains(out, "Campaign 1") || !strings.Contains(out, "Yes") || !strings.Contains(out, "No") {
		t.Errorf("Table2:\n%s", out)
	}
}

func sampleDeliveries() []core.Delivery {
	var ds []core.Delivery
	for _, p := range demo.AllProfiles() {
		d := core.Delivery{
			Key:         "k-" + p.String(),
			Profile:     p,
			Impressions: 100,
			FracBlack:   0.5,
			FracFemale:  0.5,
			AvgAge:      48,
		}
		if p.Race == demo.RaceBlack {
			d.FracBlack = 0.7
		}
		ds = append(ds, d)
	}
	return ds
}

func TestTable3Format(t *testing.T) {
	rows := core.Table3(sampleDeliveries())
	out := Table3(rows)
	for _, want := range []string{"race:black", "73.8", "age:elderly", "% Black"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func fitTable4(t *testing.T) *core.Table4 {
	t.Helper()
	t4, err := core.RegressTable4(sampleDeliveries(), core.AgeTarget65Plus)
	if err != nil {
		t.Fatal(err)
	}
	return t4
}

func TestTable4Format(t *testing.T) {
	out := Table4(fitTable4(t), "a")
	for _, want := range []string{"Table 4a", "Intercept", "Black", "Elderly", "0.1812", "R²"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q in:\n%s", want, out)
		}
	}
	// Unknown variants fall back to the 4a reference values.
	if out := Table4(fitTable4(t), "z"); !strings.Contains(out, "0.1812") {
		t.Error("unknown variant should fall back to 4a reference")
	}
	if out := Table4(fitTable4(t), "b"); !strings.Contains(out, "0.2534") {
		t.Error("variant b should show the 4b reference coefficient")
	}
}

func TestTable5Format(t *testing.T) {
	// Minimal mixed-effects fixture via the core regression.
	var ds []core.Delivery
	for ji, job := range []string{"lumber", "janitor", "nurse"} {
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for ri, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				ds = append(ds, core.Delivery{
					Key: job, Job: job,
					Profile:     demo.Profile{Gender: g, Race: r, Age: demo.ImpliedAdult},
					Impressions: 50,
					FracBlack:   0.4 + 0.1*float64(ri) + 0.02*float64(ji),
					FracFemale:  0.5,
				})
			}
		}
	}
	t5, err := core.RegressTable5(ds)
	if err != nil {
		t.Fatal(err)
	}
	out := Table5(t5)
	for _, want := range []string{"Table 5", "(I)", "(VI)", "0.105", "adj.R²"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q in:\n%s", want, out)
		}
	}
}

func TestTableA1Format(t *testing.T) {
	a1, err := core.TableA1(sampleDeliveries())
	if err != nil {
		t.Fatal(err)
	}
	out := TableA1(a1)
	for _, want := range []string{"Table A1", "0.0849", "Black"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableA1 missing %q", want)
		}
	}
}

func TestFigureFormats(t *testing.T) {
	ds := sampleDeliveries()
	f1 := Figure1(&core.Figure1Result{WhiteImageFracWhite: 0.56, BlackImageFracWhite: 0.29})
	if !strings.Contains(f1, "56.0%") || !strings.Contains(f1, "29%") {
		t.Errorf("Figure1:\n%s", f1)
	}
	f3 := Figure3(ds, "Figure 3")
	for _, want := range []string{"A)", "B)", "C)", "D)", "child", "elderly"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
	f4 := Figure4(core.Figure4(ds))
	if !strings.Contains(f4, "men 55+") || !strings.Contains(f4, "teen") {
		t.Errorf("Figure4:\n%s", f4)
	}
	sweep := []core.SweepCell{
		{Target: demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
			Classified: demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult}},
		{Target: demo.Profile{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedChild},
			Classified: demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedChild}},
	}
	f6 := Figure6(sweep)
	if !strings.Contains(f6, "1/2") {
		t.Errorf("Figure6 agreement count:\n%s", f6)
	}
	race := []core.Fig7RacePoint{{Job: "lumber", ImpliedGender: demo.GenderMale, BlackImage: 0.55, WhiteImage: 0.28}}
	gender := []core.Fig7GenderPoint{{Job: "lumber", ImpliedRace: demo.RaceWhite, FemaleImage: 0.4, MaleImage: 0.42}}
	f7 := Figure7(race, gender)
	for _, want := range []string{"lumber", "congruent", "55.0%", "28.0%"} {
		if !strings.Contains(f7, want) {
			t.Errorf("Figure7 missing %q in:\n%s", want, f7)
		}
	}
	val := Figure2Validation(&core.ValidationResult{Ads: 10, MeanAbsError: 0.01, MaxAbsError: 0.03, MeanOutOfState: 0.005})
	if !strings.Contains(val, "0.0100") {
		t.Errorf("validation:\n%s", val)
	}
	pov := PovertySummary(&core.PovertyResult{
		PreMedianWhite: 0.11, PreMedianBlack: 0.16,
		PreTest:        stats.WelchT{DeltaM: -0.04, P: 0.0001},
		PostTest:       stats.WelchT{DeltaM: -0.001, P: 0.6},
		AudienceBefore: 1000, AudienceAfter: 600,
		RejectedSpecs: 44, SurvivingSpecs: 56,
	})
	for _, want := range []string{"44 of 100", "16.0%", "11.0%"} {
		if !strings.Contains(pov, want) {
			t.Errorf("poverty summary missing %q in:\n%s", want, pov)
		}
	}
}

func TestDeliveriesCSVRoundTrip(t *testing.T) {
	ds := sampleDeliveries()
	var buf bytes.Buffer
	if err := DeliveriesCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ds)+1 {
		t.Fatalf("rows = %d, want %d", len(recs), len(ds)+1)
	}
	if recs[0][0] != "key" || recs[0][9] != "frac_black" {
		t.Errorf("header: %v", recs[0])
	}
	// Spot check a data row.
	if recs[1][1] != ds[0].Profile.Race.String() {
		t.Errorf("race column: %q", recs[1][1])
	}
}

func TestExtensionFormats(t *testing.T) {
	obj := Objectives(&core.ObjectiveComparisonResult{Gaps: []core.ObjectiveGap{
		{Objective: "AWARENESS", RaceGap: 0.01, Impressions: 100},
		{Objective: "TRAFFIC", RaceGap: 0.13, Impressions: 200},
		{Objective: "CONVERSIONS", RaceGap: 0.20, Impressions: 300},
	}})
	for _, want := range []string{"E13", "AWARENESS", "+13.0pp"} {
		if !strings.Contains(obj, want) {
			t.Errorf("Objectives missing %q in:\n%s", want, obj)
		}
	}
	gp := GroupPhotos(&core.GroupPhotoResult{
		WhiteOnly:   core.Delivery{FracBlack: 0.4, Impressions: 100},
		DiversePair: core.Delivery{FracBlack: 0.5, Impressions: 100},
		BlackOnly:   core.Delivery{FracBlack: 0.65, Impressions: 100},
	})
	for _, want := range []string{"E14", "diverse pair", "50.0%"} {
		if !strings.Contains(gp, want) {
			t.Errorf("GroupPhotos missing %q in:\n%s", want, gp)
		}
	}
	lk := Lookalike(&core.LookalikeResult{
		SeedSize: 700, SeedFracBlack: 1,
		Expansion:      core.LookalikeResult{}.Expansion, // zero value
		BaselineRandom: core.LookalikeResult{}.BaselineRandom,
	})
	if !strings.Contains(lk, "E15") || !strings.Contains(lk, "700") {
		t.Errorf("Lookalike:\n%s", lk)
	}
}

func TestFigure3RaceCI(t *testing.T) {
	ds := sampleDeliveries()
	// One ad per (age, race) cell: insufficient for a CI.
	var single []core.Delivery
	for i := range ds {
		if ds[i].Profile.Gender == demo.GenderMale {
			single = append(single, ds[i])
		}
	}
	out := Figure3RaceCI(single, 1)
	if !strings.Contains(out, "insufficient ads") {
		t.Errorf("single-ad groups should report insufficiency:\n%s", out)
	}
	// The full set has two ads per cell, enough for intervals.
	out = Figure3RaceCI(ds, 1)
	if !strings.Contains(out, "[") || !strings.Contains(out, "child") {
		t.Errorf("CI output:\n%s", out)
	}
}
