package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/adaudit/impliedidentity/internal/core"
)

// DeliveriesCSV writes per-ad delivery measurements as CSV, the raw data
// behind every figure (the paper publishes the same per-ad statistics on its
// project website).
func DeliveriesCSV(w io.Writer, ds []core.Delivery) error {
	cw := csv.NewWriter(w)
	header := []string{
		"key", "implied_race", "implied_gender", "implied_age", "job",
		"impressions", "reach", "clicks", "spend_cents",
		"frac_black", "frac_female", "frac_age35plus", "frac_age45plus",
		"frac_age65plus", "avg_age", "frac_men55plus", "frac_women55plus",
		"out_of_state",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for i := range ds {
		d := &ds[i]
		rec := []string{
			d.Key, d.Profile.Race.String(), d.Profile.Gender.String(), d.Profile.Age.String(), d.Job,
			strconv.Itoa(d.Impressions), strconv.Itoa(d.Reach), strconv.Itoa(d.Clicks),
			f(d.SpendCents), f(d.FracBlack), f(d.FracFemale), f(d.FracAge35Plus),
			f(d.FracAge45Plus), f(d.FracAge65Plus), f(d.AvgAge),
			f(d.FracMen55Plus), f(d.FracWomen55Plus), f(d.OutOfState),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: writing CSV: %w", err)
	}
	return nil
}
